//! Why-empty debugging in a data-integration setting, with non-intrusive
//! user integration (§5.4): a curator queries a freshly integrated
//! DBpedia-like knowledge graph, gets an empty answer, and the rewriter
//! proposes fixes. The curator only *rates* proposals; the engine learns
//! which query parts may be touched and adapts.
//!
//! Run with: `cargo run --release --example data_integration`

use whyquery::core::relax::{CoarseRewriter, RelaxConfig};
use whyquery::core::user::{SimulatedUser, UserPreferences};
use whyquery::datagen::{dbpedia_graph, DbpediaConfig};
use whyquery::prelude::*;
use whyquery::query::{QEid, QVid};

fn main() -> Result<(), WhyqError> {
    let db = Database::open(dbpedia_graph(DbpediaConfig::default()))?;
    let session = db.session();
    println!(
        "DBpedia-like knowledge graph: {} vertices, {} edges",
        db.graph().num_vertices(),
        db.graph().num_edges()
    );

    // films starring persons born in "Borduria" — a country that does not
    // exist in the integrated data
    let query = QueryBuilder::new("films-from-borduria")
        .vertex("f", [Predicate::eq("type", "film")])
        .vertex("p", [Predicate::eq("type", "person")])
        .vertex("s", [Predicate::eq("type", "settlement")])
        .vertex(
            "c",
            [
                Predicate::eq("type", "country"),
                Predicate::eq("name", "Borduria"),
            ],
        )
        .edge("f", "p", "starring")
        .edge("p", "s", "birthPlace")
        .edge("s", "c", "country")
        .build();

    assert_eq!(session.count(&query)?, 0);
    println!("query {:?} is empty", query.name.as_deref().unwrap());

    // the curator cares about the starring relationship and the film
    // vertex — those must survive any rewriting (hidden preferences)
    let mut hidden = UserPreferences::new();
    hidden.set_edge(QEid(0), 1.0); // starring
    hidden.set_vertex(QVid(0), 1.0); // film
    let curator = SimulatedUser::new(hidden);

    let rewriter = CoarseRewriter::new(&db);
    let config = RelaxConfig {
        lambda: 5.0, // let the learned preference model steer
        ..RelaxConfig::default()
    };
    let (outcome, model) = rewriter.session(&query, &config, &curator, 0.75, 6);

    println!("\n--- interactive rewriting session ---");
    for (i, round) in outcome.rounds.iter().enumerate() {
        println!(
            "round {}: {} candidate queries executed, proposal rated {:.2}",
            i + 1,
            round.executed,
            round.rating
        );
        for m in &round.explanation.mods {
            println!("    - {m}");
        }
    }
    match outcome.accepted {
        Some(i) => {
            let accepted = &outcome.rounds[i].explanation;
            println!(
                "\naccepted in round {}: {} result(s), syntactic distance {:.3}",
                i + 1,
                accepted.cardinality,
                accepted.syntactic_distance
            );
            assert!(session.count(&accepted.query)? > 0);
        }
        None => println!("\nno proposal met the curator's bar"),
    }
    println!(
        "preference model learned weights for {} query element(s)",
        model.len()
    );
    Ok(())
}
