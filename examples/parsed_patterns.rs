//! Pattern queries from text: the parser front-end.
//!
//! Queries can be written in a compact ASCII-art syntax instead of builder
//! calls — convenient for interactive debugging sessions and tooling. This
//! example parses patterns, runs them against the LDBC-like graph, and
//! sends a failing one through the why-query engine.
//!
//! Run with: `cargo run --release --example parsed_patterns`

use whyquery::datagen::{ldbc_graph, LdbcConfig};
use whyquery::prelude::*;
use whyquery::query::parse_query;

fn main() -> Result<(), WhyqError> {
    let db = Database::open(ldbc_graph(LdbcConfig::default()))?;
    let engine = WhyEngine::new(&db);

    let patterns = [
        // a star: a person working somewhere, living somewhere, interested
        // in music
        "(p:person)-[:workAt {workFrom >= 2005}]->(co:company); \
         (p)-[:isLocatedIn]->(c:city); \
         (p)-[:hasInterest]->(t:tag {name: 'music'})",
        // a triangle of co-located acquaintances
        "(a:person)-[:knows]->(b:person); \
         (a)-[:isLocatedIn]->(c:city); \
         (b)-[:isLocatedIn]->(c)",
        // a failing query: nobody is called Zarathustra here
        "(p:person {firstName: 'Zarathustra'})-[:knows]->(q:person)",
    ];

    for text in patterns {
        let query = parse_query(text).expect("pattern parses");
        let c = engine.cardinality(&query)?;
        println!("pattern: {text}\n  → {c} match(es)");
        if c == 0 {
            let why = engine.why_empty(&query)?;
            println!("  → why empty: {}", why.differential);
            if let Some(fix) = engine.rewrite(&query, CardinalityGoal::NonEmpty)? {
                println!(
                    "  → suggested fix ({} mods, {} results): {}",
                    fix.mods.len(),
                    fix.cardinality,
                    fix.mods
                        .iter()
                        .map(std::string::ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("; ")
                );
            }
        }
        println!();
    }
    Ok(())
}
