//! Holistic cardinality support (§3.1.3, Fig. 3.1): the search oscillates
//! around the threshold — one candidate overshoots, the next undershoots —
//! and the engine adapts its direction per node until the result size
//! lands inside the requested interval.
//!
//! Run with: `cargo run --release --example interactive_repl`

use whyquery::core::fine::TraverseSearchTree;
use whyquery::datagen::{ldbc_graph, LdbcConfig};
use whyquery::prelude::*;

fn main() -> Result<(), WhyqError> {
    let db = Database::open(ldbc_graph(LdbcConfig::default()))?;
    let engine = WhyEngine::new(&db);

    // start from a broad query: every person who knows someone
    let query = QueryBuilder::new("acquaintances")
        .vertex("p1", [Predicate::eq("type", "person")])
        .vertex("p2", [Predicate::eq("type", "person")])
        .edge("p1", "p2", "knows")
        .build();
    let c0 = engine.cardinality(&query)?;

    // the user wants a shortlist: between 10 and 20 answers
    let goal = CardinalityGoal::Between(10, 20);
    println!("original cardinality: {c0}; goal: 10..=20");
    println!("classified as: {}", engine.classify(&query, goal)?);

    let outcome = TraverseSearchTree::new(&db).run(&query, goal);

    println!(
        "\nexecuted {} candidates; search trajectory (executed → best |C_thr−C|):",
        outcome.executed
    );
    let mut last = u64::MAX;
    for &(executed, dev) in &outcome.trajectory {
        if dev < last {
            println!("  after {executed:>4} executions: deviation {dev}");
            last = dev;
        }
    }

    match outcome.explanation {
        Some(expl) => {
            println!("\nfinal query delivers {} answers via:", expl.cardinality);
            for m in &expl.mods {
                println!("  * {m}");
            }
            assert!((10..=20).contains(&expl.cardinality));
            println!("\ngoal satisfied — holistic oscillation converged");
        }
        None => println!("\nbudget exhausted at deviation {}", outcome.best_deviation),
    }
    Ok(())
}
