//! Debugging a social-network analytics query that returns *too many*
//! answers — the data-integration scenario from the thesis introduction.
//!
//! A seeded LDBC-SNB-like graph is generated, an under-constrained
//! pattern floods the analyst with results, BOUNDEDMCS points at the edge
//! where the explosion starts, and TRAVERSESEARCHTREE tightens the query
//! until the result size fits the analyst's budget.
//!
//! Run with: `cargo run --release --example social_network`

use whyquery::core::fine::{FineConfig, TraverseSearchTree};
use whyquery::core::subgraph::BoundedMcs;
use whyquery::datagen::{ldbc_graph, LdbcConfig};
use whyquery::prelude::*;

fn main() -> Result<(), WhyqError> {
    let db = Database::open(ldbc_graph(LdbcConfig::default()))?;
    let session = db.session();
    println!(
        "LDBC-like social network: {} vertices, {} edges",
        db.graph().num_vertices(),
        db.graph().num_edges()
    );

    // an analyst looks for "female persons who know somebody who lives in
    // some city" — far too unspecific
    let query = QueryBuilder::new("who-knows-city-dwellers")
        .vertex(
            "p1",
            [
                Predicate::eq("type", "person"),
                Predicate::eq("gender", "female"),
            ],
        )
        .vertex("p2", [Predicate::eq("type", "person")])
        .vertex("city", [Predicate::eq("type", "city")])
        .edge("p1", "p2", "knows")
        .edge("p2", "city", "isLocatedIn")
        .build();

    let prepared = session.prepare(&query)?;
    let c = prepared.count()?;
    let budget = 25u64;
    println!("query returns {c} matches — the analyst wanted at most {budget}");

    // the flood never needs to be materialized: stream a handful lazily
    let preview: Vec<_> = prepared.stream().take(3).collect();
    println!(
        "first {} matches pulled lazily from the suspended search",
        preview.len()
    );

    // --- where does the explosion come from? --------------------------
    let goal = CardinalityGoal::AtMost(budget);
    let bounded = BoundedMcs::new(&db).run(&query, goal)?;
    println!("\n--- BOUNDEDMCS ---");
    println!(
        "largest subquery within budget: {} edges ({} results)",
        bounded.mcs.num_edges(),
        bounded.mcs_cardinality
    );
    if let Some(e) = bounded.crossing_edge {
        println!("cardinality explodes at query edge {e}");
    }
    println!("over-producing part: {}", bounded.differential);

    // --- tighten the query automatically ------------------------------
    let fine = TraverseSearchTree::new(&db)
        .with_config(FineConfig {
            max_executed: 1500,
            ..FineConfig::default()
        })
        .run(&query, goal);
    println!("\n--- TRAVERSESEARCHTREE ---");
    println!(
        "executed {} candidates, modification tree has {} nodes ({} discarded as non-contributing)",
        fine.executed,
        fine.tree.len(),
        fine.tree
            .count_status(whyquery::core::fine::NodeStatus::Discarded)
    );
    match fine.explanation {
        Some(expl) => {
            println!("suggested restrictions:");
            for m in &expl.mods {
                println!("  * {m}");
            }
            println!(
                "rewritten query returns {} matches (≤ {budget}), syntactic distance {:.3}",
                expl.cardinality, expl.syntactic_distance
            );
            assert!(expl.cardinality <= budget);
        }
        None => println!(
            "budget exhausted; best deviation reached: {}",
            fine.best_deviation
        ),
    }
    Ok(())
}
