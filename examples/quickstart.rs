//! Quickstart: build a tiny property graph, run a pattern query that
//! unexpectedly returns nothing, and ask the why-query engine to explain
//! and repair it.
//!
//! Run with: `cargo run --example quickstart`

use whyquery::prelude::*;

fn main() {
    // ----------------------------------------------------------------
    // 1. A tiny data graph: Anna works at TU Dresden, located in Dresden.
    // ----------------------------------------------------------------
    let mut g = PropertyGraph::new();
    let anna = g.add_vertex([("type", Value::str("person")), ("name", Value::str("Anna"))]);
    let tud = g.add_vertex([
        ("type", Value::str("university")),
        ("name", Value::str("TU Dresden")),
    ]);
    let dresden = g.add_vertex([
        ("type", Value::str("city")),
        ("name", Value::str("Dresden")),
    ]);
    g.add_edge(anna, tud, "workAt", [("sinceYear", Value::Int(2003))]);
    g.add_edge(tud, dresden, "locatedIn", []);

    // ----------------------------------------------------------------
    // 2. The user asks for people working at a university in *Berlin*.
    // ----------------------------------------------------------------
    let query = QueryBuilder::new("who-works-in-berlin")
        .vertex("p", [Predicate::eq("type", "person")])
        .vertex("u", [Predicate::eq("type", "university")])
        .vertex(
            "c",
            [
                Predicate::eq("type", "city"),
                Predicate::eq("name", "Berlin"),
            ],
        )
        .edge("p", "u", "workAt")
        .edge("u", "c", "locatedIn")
        .build();

    let n = count_matches(&g, &query, None);
    println!(
        "query {:?} returned {n} results",
        query.name.as_deref().unwrap()
    );
    assert_eq!(n, 0);

    // ----------------------------------------------------------------
    // 3. Why is it empty? — subgraph-based explanation (DISCOVERMCS)
    // ----------------------------------------------------------------
    let engine = WhyEngine::new(&g);
    let explanation = engine.why_empty(&query);
    println!("\n--- subgraph-based explanation ---");
    println!(
        "largest succeeding subquery: {} vertices, {} edges, {} result(s)",
        explanation.mcs.num_vertices(),
        explanation.mcs.num_edges(),
        explanation.mcs_cardinality
    );
    println!("failed query part: {}", explanation.differential);
    if let Some(e) = explanation.crossing_edge {
        println!("the traversal died at query edge {e}");
    }

    // ----------------------------------------------------------------
    // 4. How should the query change? — modification-based explanation
    // ----------------------------------------------------------------
    let diagnosis = engine.diagnose(&query, CardinalityGoal::NonEmpty);
    println!("\n--- modification-based explanation ---");
    println!("classified problem: {}", diagnosis.problem);
    let rewrite = diagnosis.rewrite.expect("rewriting found a fix");
    println!("suggested modifications:");
    for m in &rewrite.mods {
        println!("  * {m}");
    }
    println!(
        "rewritten query delivers {} result(s) at syntactic distance {:.3}",
        rewrite.cardinality, rewrite.syntactic_distance
    );

    // the rewritten query really works:
    assert!(count_matches(&g, &rewrite.query, None) > 0);
    println!("\nquickstart OK");
}
