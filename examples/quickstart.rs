//! Quickstart: open a tiny property graph as a database, run a prepared
//! pattern query that unexpectedly returns nothing, and ask the why-query
//! engine to explain and repair it.
//!
//! Run with: `cargo run --example quickstart`

use whyquery::prelude::*;

fn main() -> Result<(), WhyqError> {
    // ----------------------------------------------------------------
    // 1. A tiny data graph: Anna works at TU Dresden, located in Dresden.
    // ----------------------------------------------------------------
    let mut g = PropertyGraph::new();
    let anna = g.add_vertex([("type", Value::str("person")), ("name", Value::str("Anna"))]);
    let tud = g.add_vertex([
        ("type", Value::str("university")),
        ("name", Value::str("TU Dresden")),
    ]);
    let dresden = g.add_vertex([
        ("type", Value::str("city")),
        ("name", Value::str("Dresden")),
    ]);
    g.add_edge(anna, tud, "workAt", [("sinceYear", Value::Int(2003))]);
    g.add_edge(tud, dresden, "locatedIn", []);

    // opening seals the topology and builds the configured indexes
    // (default: an equality index over "type")
    let db = Database::open(g)?;
    let session = db.session();

    // ----------------------------------------------------------------
    // 2. The user asks for people working at a university in *Berlin*.
    // ----------------------------------------------------------------
    let query = QueryBuilder::new("who-works-in-berlin")
        .vertex("p", [Predicate::eq("type", "person")])
        .vertex("u", [Predicate::eq("type", "university")])
        .vertex(
            "c",
            [
                Predicate::eq("type", "city"),
                Predicate::eq("name", "Berlin"),
            ],
        )
        .edge("p", "u", "workAt")
        .edge("u", "c", "locatedIn")
        .build();

    // prepare once — compilation and planning are cached by signature,
    // so every later execution (and re-prepare) skips them
    let prepared = session.prepare(&query)?;
    let n = prepared.count()?;
    println!(
        "query {:?} returned {n} results",
        query.name.as_deref().unwrap()
    );
    assert_eq!(n, 0);

    // ----------------------------------------------------------------
    // 3. Why is it empty? — subgraph-based explanation (DISCOVERMCS)
    // ----------------------------------------------------------------
    let engine = WhyEngine::new(&db);
    let explanation = engine.why_empty(&query)?;
    println!("\n--- subgraph-based explanation ---");
    println!(
        "largest succeeding subquery: {} vertices, {} edges, {} result(s)",
        explanation.mcs.num_vertices(),
        explanation.mcs.num_edges(),
        explanation.mcs_cardinality
    );
    println!("failed query part: {}", explanation.differential);
    if let Some(e) = explanation.crossing_edge {
        println!("the traversal died at query edge {e}");
    }

    // ----------------------------------------------------------------
    // 4. How should the query change? — modification-based explanation
    // ----------------------------------------------------------------
    let diagnosis = engine.diagnose(&query, CardinalityGoal::NonEmpty)?;
    println!("\n--- modification-based explanation ---");
    println!("classified problem: {}", diagnosis.problem);
    let rewrite = diagnosis.rewrite.expect("rewriting found a fix");
    println!("suggested modifications:");
    for m in &rewrite.mods {
        println!("  * {m}");
    }
    println!(
        "rewritten query delivers {} result(s) at syntactic distance {:.3}",
        rewrite.cardinality, rewrite.syntactic_distance
    );

    // the rewritten query really works — stream the first witness lazily
    let fixed = session.prepare(&rewrite.query)?;
    let witness = fixed.stream().next().expect("repaired query matches");
    println!(
        "\nfirst witness binds {} query vertices",
        witness.vertex_bindings().len()
    );
    println!("quickstart OK");
    Ok(())
}
