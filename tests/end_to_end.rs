//! End-to-end integration: workload generators → matcher → why-query
//! engine, verifying the cross-crate contracts the thesis relies on.

use whyquery::core::relax::{CoarseRewriter, RelaxConfig};
use whyquery::core::subgraph::{DiscoverMcs, McsConfig, PathStrategy};
use whyquery::datagen::{
    dbpedia_graph, dbpedia_queries, ldbc_failing_queries, ldbc_graph, ldbc_queries, DbpediaConfig,
    LdbcConfig,
};
use whyquery::prelude::*;

mod common;
use common::count_matches;

fn small_ldbc() -> Database {
    // the default scale guarantees all four workload queries are non-empty
    Database::open(ldbc_graph(LdbcConfig::default())).expect("open")
}

#[test]
fn ldbc_workload_round_trip() {
    let db = small_ldbc();
    let engine = WhyEngine::new(&db);
    for q in ldbc_queries() {
        let c = engine.cardinality(&q).unwrap();
        assert!(c > 0, "{:?} unexpectedly empty", q.name);
        // a satisfied goal yields no explanations
        let d = engine.diagnose(&q, CardinalityGoal::NonEmpty).unwrap();
        assert_eq!(d.problem, WhyProblem::Satisfied);
    }
}

#[test]
fn failing_ldbc_queries_get_explained_and_repaired() {
    let db = small_ldbc();
    let engine = WhyEngine::new(&db);
    for q in ldbc_failing_queries() {
        let d = engine.diagnose(&q, CardinalityGoal::NonEmpty).unwrap();
        assert_eq!(d.problem, WhyProblem::WhyEmpty, "{:?}", q.name);
        // subgraph explanation identifies a non-trivial failed part
        let sub = d.subgraph.expect("subgraph explanation");
        assert!(!sub.differential.is_empty(), "{:?}", q.name);
        // the MCS itself must be satisfiable (that is its definition)
        if sub.mcs.num_vertices() > 0 {
            assert!(
                count_matches(&db, &sub.mcs, Some(1)) > 0,
                "{:?}: MCS not satisfiable",
                q.name
            );
        }
        // the rewrite delivers what it claims
        let rw = d.rewrite.expect("rewrite");
        let recount = count_matches(&db, &rw.query, Some(rw.cardinality + 1));
        assert!(recount > 0, "{:?}: rewrite empty on re-execution", q.name);
        assert!(rw.syntactic_distance > 0.0);
    }
}

#[test]
fn mcs_is_maximal_under_exhaustive_paths() {
    let db = small_ldbc();
    // exhaustive DISCOVERMCS must dominate the single-path approximation
    for q in ldbc_failing_queries() {
        let exhaustive = DiscoverMcs::new(&db)
            .with_config(McsConfig {
                strategy: PathStrategy::Exhaustive,
                max_paths: 256,
                ..McsConfig::default()
            })
            .run(&q)
            .unwrap();
        let single = DiscoverMcs::new(&db)
            .with_config(McsConfig {
                strategy: PathStrategy::SingleSelectivity,
                ..McsConfig::default()
            })
            .run(&q)
            .unwrap();
        assert!(
            exhaustive.mcs.num_edges() >= single.mcs.num_edges(),
            "{:?}",
            q.name
        );
        assert!(single.paths_tried <= exhaustive.paths_tried);
    }
}

#[test]
fn dbpedia_workload_round_trip() {
    let db = Database::open(dbpedia_graph(DbpediaConfig {
        entities: 800,
        seed: 7,
    }))
    .expect("open");
    let engine = WhyEngine::new(&db);
    for q in dbpedia_queries() {
        assert!(engine.cardinality(&q).unwrap() > 0, "{:?}", q.name);
    }
}

#[test]
fn rewriting_mods_are_all_relaxations_for_why_empty() {
    let db = small_ldbc();
    let rewriter = CoarseRewriter::new(&db);
    for q in ldbc_failing_queries() {
        let out = rewriter.rewrite(&q, &RelaxConfig::default());
        let expl = out.explanation.expect("found");
        for m in &expl.mods {
            assert_eq!(
                m.kind(),
                whyquery::query::ModKind::Relaxation,
                "{:?}: non-relaxation {m}",
                q.name
            );
        }
    }
}

#[test]
fn too_many_and_too_few_round_trip() {
    let db = small_ldbc();
    let engine = WhyEngine::new(&db);
    let q = &ldbc_queries()[2]; // co-location triangle
    let c = engine.cardinality(q).unwrap();
    assert!(c > 2);

    // too many: ask for at most half
    let goal_many = CardinalityGoal::AtMost(c / 2);
    let d = engine.diagnose(q, goal_many).unwrap();
    assert_eq!(d.problem, WhyProblem::WhySoMany);
    if let Some(rw) = d.rewrite {
        let recount = count_matches(&db, &rw.query, None);
        assert_eq!(recount, rw.cardinality);
        assert!(goal_many.satisfied(recount));
    }

    // too few: ask for double
    let goal_few = CardinalityGoal::AtLeast(c * 2);
    let d = engine.diagnose(q, goal_few).unwrap();
    assert_eq!(d.problem, WhyProblem::WhySoFew);
    if let Some(rw) = d.rewrite {
        let recount = count_matches(&db, &rw.query, Some(rw.cardinality + 1));
        assert!(recount >= c * 2);
    }
}

#[test]
fn diagnosis_is_deterministic() {
    let db = small_ldbc();
    let engine = WhyEngine::new(&db);
    let q = &ldbc_failing_queries()[0];
    let a = engine.diagnose(q, CardinalityGoal::NonEmpty).unwrap();
    let b = engine.diagnose(q, CardinalityGoal::NonEmpty).unwrap();
    let (ra, rb) = (a.rewrite.unwrap(), b.rewrite.unwrap());
    assert_eq!(ra.cardinality, rb.cardinality);
    assert_eq!(
        whyquery::query::signature::signature(&ra.query),
        whyquery::query::signature::signature(&rb.query)
    );
}
