//! Property-based verification of the matching engine against a
//! brute-force reference: on small random graphs and queries, the
//! prepared-query facade (eager `find`, early-terminating `count` and the
//! lazy `stream`) must produce exactly the assignments a naive
//! enumerate-all-mappings oracle accepts.

use proptest::prelude::*;
use whyquery::graph::{EdgeId, PropertyGraph, VertexId};
use whyquery::matcher::ResultGraph;
use whyquery::prelude::*;
use whyquery::query::{QEid, QVid, QueryEdge, QueryVertex};

fn build_graph(n: usize, types: &[u8], pairs: &[(u8, u8, bool)]) -> PropertyGraph {
    let names = ["red", "green", "blue"];
    let mut g = PropertyGraph::new();
    let vs: Vec<_> = (0..n)
        .map(|i| {
            g.add_vertex([(
                "type",
                Value::str(names[types[i % types.len()] as usize % 3]),
            )])
        })
        .collect();
    for &(a, b, t) in pairs {
        g.add_edge(
            vs[a as usize % n],
            vs[b as usize % n],
            if t { "link" } else { "flow" },
            [],
        );
    }
    g
}

fn build_query(len: usize, types: &[u8], etypes: &[bool], undirected: bool) -> PatternQuery {
    let names = ["red", "green", "blue"];
    let mut q = PatternQuery::new();
    let mut prev: Option<QVid> = None;
    for i in 0..len {
        let v = q.add_vertex(QueryVertex::with([Predicate::eq(
            "type",
            names[types[i % types.len()] as usize % 3],
        )]));
        if let Some(p) = prev {
            let mut e = QueryEdge::typed(
                p,
                v,
                if etypes[i % etypes.len()] {
                    "link"
                } else {
                    "flow"
                },
            );
            if undirected {
                e.directions = DirectionSet::BOTH;
            }
            q.add_edge(e);
        }
        prev = Some(v);
    }
    q
}

/// Brute force: enumerate every injective vertex assignment and every
/// injective choice of data edges per query edge; count accepted mappings.
fn brute_force_count(g: &PropertyGraph, q: &PatternQuery) -> u64 {
    let qvs: Vec<QVid> = q.vertex_ids().collect();
    let qes: Vec<QEid> = q.edge_ids().collect();
    let dvs: Vec<VertexId> = g.vertex_ids().collect();
    let mut count = 0u64;
    let mut assignment: Vec<VertexId> = Vec::new();
    enumerate_vertices(g, q, &qvs, &qes, &dvs, &mut assignment, &mut count);
    count
}

fn enumerate_vertices(
    g: &PropertyGraph,
    q: &PatternQuery,
    qvs: &[QVid],
    qes: &[QEid],
    dvs: &[VertexId],
    assignment: &mut Vec<VertexId>,
    count: &mut u64,
) {
    if assignment.len() == qvs.len() {
        // all vertices placed: check predicates already done; now count
        // injective edge assignments
        *count += count_edge_assignments(g, q, qvs, qes, assignment, 0, &mut Vec::new());
        return;
    }
    let qv = qvs[assignment.len()];
    let vx = q.vertex(qv).expect("live");
    for &dv in dvs {
        if assignment.contains(&dv) {
            continue;
        }
        let ok = vx
            .predicates
            .iter()
            .all(|p| p.matches(g.attr_symbol(&p.attr).and_then(|s| g.vertex_attr(dv, s))));
        if !ok {
            continue;
        }
        assignment.push(dv);
        enumerate_vertices(g, q, qvs, qes, dvs, assignment, count);
        assignment.pop();
    }
}

fn count_edge_assignments(
    g: &PropertyGraph,
    q: &PatternQuery,
    qvs: &[QVid],
    qes: &[QEid],
    assignment: &[VertexId],
    idx: usize,
    used: &mut Vec<EdgeId>,
) -> u64 {
    if idx == qes.len() {
        return 1;
    }
    let qe = q.edge(qes[idx]).expect("live");
    let ms = assignment[qvs.iter().position(|&v| v == qe.src).unwrap()];
    let mt = assignment[qvs.iter().position(|&v| v == qe.dst).unwrap()];
    let mut total = 0u64;
    for de in g.edge_ids() {
        if used.contains(&de) {
            continue;
        }
        let ed = g.edge(de);
        let fwd = qe.directions.forward && ed.src == ms && ed.dst == mt;
        let bwd = qe.directions.backward && ed.src == mt && ed.dst == ms;
        if !fwd && !bwd {
            continue;
        }
        let ty_ok = qe.types.is_empty() || qe.types.iter().any(|t| g.type_symbol(t) == Some(ed.ty));
        if !ty_ok {
            continue;
        }
        let preds_ok = qe
            .predicates
            .iter()
            .all(|p| p.matches(g.attr_symbol(&p.attr).and_then(|s| g.edge_attr(de, s))));
        if !preds_ok {
            continue;
        }
        used.push(de);
        total += count_edge_assignments(g, q, qvs, qes, assignment, idx + 1, used);
        used.pop();
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matcher_agrees_with_brute_force(
        n in 2usize..6,
        vtypes in prop::collection::vec(0u8..3, 6),
        pairs in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..10),
        qlen in 1usize..4,
        qtypes in prop::collection::vec(0u8..3, 4),
        qetypes in prop::collection::vec(any::<bool>(), 4),
        undirected in any::<bool>(),
    ) {
        let g = build_graph(n, &vtypes, &pairs);
        let q = build_query(qlen, &qtypes, &qetypes, undirected);
        let expected = brute_force_count(&g, &q);
        let db = Database::open(g).expect("open");
        let session = db.session();
        let prepared = session.prepare(&q).expect("valid query");
        let got = prepared.count().expect("count");
        prop_assert_eq!(got, expected, "matcher vs brute force");
        // find() agrees with count()
        let found = prepared.find().expect("find");
        prop_assert_eq!(found.len() as u64, expected);
        // the lazy stream yields exactly the eager result sequence
        let streamed: Vec<ResultGraph> = prepared.stream().collect();
        prop_assert_eq!(&streamed, &found, "stream vs find");
        // every found match is valid and distinct
        let g = db.graph();
        let mut seen: Vec<&ResultGraph> = Vec::new();
        for r in &found {
            prop_assert!(validate(g, &q, r));
            prop_assert!(!seen.contains(&r));
            seen.push(r);
        }
    }
}

/// Independent validity check of a result graph.
fn validate(g: &PropertyGraph, q: &PatternQuery, r: &ResultGraph) -> bool {
    // every live query element bound
    for v in q.vertex_ids() {
        let Some(dv) = r.vertex(v) else { return false };
        let vx = q.vertex(v).expect("live");
        if !vx
            .predicates
            .iter()
            .all(|p| p.matches(g.attr_symbol(&p.attr).and_then(|s| g.vertex_attr(dv, s))))
        {
            return false;
        }
    }
    for e in q.edge_ids() {
        let Some(de) = r.edge(e) else { return false };
        let qe = q.edge(e).expect("live");
        let ed = g.edge(de);
        let (ms, mt) = (r.vertex(qe.src).unwrap(), r.vertex(qe.dst).unwrap());
        let fwd = qe.directions.forward && ed.src == ms && ed.dst == mt;
        let bwd = qe.directions.backward && ed.src == mt && ed.dst == ms;
        if !fwd && !bwd {
            return false;
        }
    }
    // injectivity
    let mut vs: Vec<_> = r.vertex_bindings().iter().map(|&(_, v)| v).collect();
    vs.sort();
    vs.dedup();
    if vs.len() != r.num_vertices() {
        return false;
    }
    let mut es: Vec<_> = r.edge_bindings().iter().map(|&(_, e)| e).collect();
    es.sort();
    es.dedup();
    es.len() == r.num_edges()
}
