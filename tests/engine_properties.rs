//! Property-based tests of the why-query engine invariants: MCS
//! satisfiability and maximality, differential complementarity, rewriting
//! soundness — checked over randomly generated small graphs and queries.

use proptest::prelude::*;
use whyquery::core::subgraph::{DiscoverMcs, McsConfig, PathStrategy};
use whyquery::core::DifferentialGraph;
use whyquery::prelude::*;
use whyquery::query::{QEid, QVid, QueryEdge, QueryVertex};

mod common;
use common::count_matches;

/// Build a small random data graph: `n` vertices with a type out of three,
/// edges from the pair list, one edge type out of two.
fn build_graph(n: usize, types: &[u8], pairs: &[(u8, u8, bool)]) -> Database {
    let mut g = PropertyGraph::new();
    let type_names = ["red", "green", "blue"];
    let vs: Vec<_> = (0..n)
        .map(|i| {
            g.add_vertex([
                (
                    "type",
                    Value::str(type_names[types[i % types.len()] as usize % 3]),
                ),
                ("x", Value::Int(i as i64)),
            ])
        })
        .collect();
    for &(a, b, t) in pairs {
        let (a, b) = (a as usize % n, b as usize % n);
        g.add_edge(vs[a], vs[b], if t { "link" } else { "flow" }, []);
    }
    Database::open(g).expect("open")
}

/// Build a small random connected path query over the same vocabulary.
fn build_query(len: usize, types: &[u8], edge_types: &[bool]) -> PatternQuery {
    let type_names = ["red", "green", "blue"];
    let mut q = PatternQuery::named("pq");
    let mut prev: Option<QVid> = None;
    for i in 0..len {
        let v = q.add_vertex(QueryVertex::with([Predicate::eq(
            "type",
            type_names[types[i % types.len()] as usize % 3],
        )]));
        if let Some(p) = prev {
            q.add_edge(QueryEdge::typed(
                p,
                v,
                if edge_types[i % edge_types.len()] {
                    "link"
                } else {
                    "flow"
                },
            ));
        }
        prev = Some(v);
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The MCS is always satisfiable, and the differential graph is exactly
    /// the complement of the MCS in the original query.
    #[test]
    fn mcs_satisfiable_and_differential_complementary(
        n in 3usize..8,
        vtypes in prop::collection::vec(0u8..3, 8),
        pairs in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 2..12),
        qlen in 2usize..5,
        qtypes in prop::collection::vec(0u8..3, 5),
        qetypes in prop::collection::vec(any::<bool>(), 5),
    ) {
        let db = build_graph(n, &vtypes, &pairs);
        let q = build_query(qlen, &qtypes, &qetypes);
        let expl = DiscoverMcs::new(&db).run(&q).unwrap();

        // complementarity: every query element is either in the MCS or in
        // the differential, never both
        let diff = DifferentialGraph::between(&q, &expl.mcs);
        for v in q.vertex_ids() {
            let in_mcs = expl.mcs.vertex(v).is_some();
            let in_diff = diff.vertex_ids().any(|x| x == v);
            prop_assert!(in_mcs ^ in_diff);
        }
        for e in q.edge_ids() {
            let in_mcs = expl.mcs.edge(e).is_some();
            let in_diff = diff.edge_ids().any(|x| x == e);
            prop_assert!(in_mcs ^ in_diff);
        }

        // satisfiability: a non-empty MCS matches something
        if expl.mcs.num_vertices() > 0 {
            prop_assert!(count_matches(&db, &expl.mcs, Some(1)) > 0);
        }

        // consistency: if the query itself succeeds, the differential is
        // empty and vice versa
        let c = count_matches(&db, &q, Some(1));
        if c > 0 {
            prop_assert!(expl.differential.is_empty());
        } else {
            prop_assert!(!expl.differential.is_empty());
        }
    }

    /// Exhaustive DISCOVERMCS never finds a smaller MCS than the
    /// single-path approximation.
    #[test]
    fn exhaustive_dominates_single_path(
        n in 3usize..8,
        vtypes in prop::collection::vec(0u8..3, 8),
        pairs in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 2..12),
        qlen in 2usize..5,
        qtypes in prop::collection::vec(0u8..3, 5),
        qetypes in prop::collection::vec(any::<bool>(), 5),
    ) {
        let db = build_graph(n, &vtypes, &pairs);
        let q = build_query(qlen, &qtypes, &qetypes);
        let exhaustive = DiscoverMcs::new(&db)
            .with_config(McsConfig { max_paths: 512, ..McsConfig::default() })
            .run(&q).unwrap();
        let single = DiscoverMcs::new(&db)
            .with_config(McsConfig {
                strategy: PathStrategy::SingleSelectivity,
                ..McsConfig::default()
            })
            .run(&q).unwrap();
        prop_assert!(exhaustive.mcs.num_edges() >= single.mcs.num_edges());
    }

    /// Whatever the engine returns as a rewrite really satisfies the goal
    /// on re-execution.
    #[test]
    fn rewrites_are_sound(
        n in 4usize..8,
        vtypes in prop::collection::vec(0u8..3, 8),
        pairs in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 3..14),
        qlen in 2usize..4,
        qtypes in prop::collection::vec(0u8..3, 5),
        qetypes in prop::collection::vec(any::<bool>(), 5),
    ) {
        let db = build_graph(n, &vtypes, &pairs);
        let q = build_query(qlen, &qtypes, &qetypes);
        let engine = WhyEngine::new(&db);
        let goal = CardinalityGoal::NonEmpty;
        if let Some(rw) = engine.rewrite(&q, goal).expect("valid query") {
            let c = count_matches(&db, &rw.query, None);
            prop_assert_eq!(c, rw.cardinality);
            prop_assert!(goal.satisfied(c));
        }
    }

    /// The brute-force check of MCS maximality: no strictly larger
    /// connected subquery (by edge count, over edge subsets) is satisfiable.
    #[test]
    fn mcs_edge_count_is_maximal(
        n in 3usize..7,
        vtypes in prop::collection::vec(0u8..3, 8),
        pairs in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 2..10),
        qtypes in prop::collection::vec(0u8..3, 4),
        qetypes in prop::collection::vec(any::<bool>(), 4),
    ) {
        let db = build_graph(n, &vtypes, &pairs);
        let q = build_query(3, &qtypes, &qetypes); // 3 vertices, 2 edges
        let expl = DiscoverMcs::new(&db)
            .with_config(McsConfig { max_paths: 512, ..McsConfig::default() })
            .run(&q).unwrap();
        // enumerate all edge subsets (the query has ≤ 2 edges)
        let eids: Vec<QEid> = q.edge_ids().collect();
        let mut best = 0usize;
        for mask in 0..(1u32 << eids.len()) {
            let subset: Vec<QEid> = eids
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &e)| e)
                .collect();
            let sub = q.edge_subquery(&subset);
            if sub.num_vertices() == 0 {
                continue;
            }
            if sub.is_connected() && count_matches(&db, &sub, Some(1)) > 0 {
                best = best.max(subset.len());
            }
        }
        prop_assert_eq!(expl.mcs.num_edges(), best);
    }
}
