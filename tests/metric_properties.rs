//! Property-based tests of the comparison metrics (§3.2) — the invariants
//! the thesis's evaluation relies on, checked with proptest over randomly
//! generated queries, modifications, and assignment matrices.

use proptest::prelude::*;
use whyquery::graph::Value;
use whyquery::metrics::{
    cardinality_deviation, cardinality_distance, hungarian, result_graph_distance,
    syntactic_distance,
};
use whyquery::query::{
    DirectionSet, GraphMod, Interval, PatternQuery, Predicate, QEid, QVid, QueryEdge, QueryVertex,
    Target,
};

// ---------------------------------------------------------------------
// generators
// ---------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::Int),
        "[a-d]{1,3}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_interval() -> impl Strategy<Value = Interval> {
    prop_oneof![
        prop::collection::vec(arb_value(), 1..4).prop_map(Interval::OneOf),
        (-50.0f64..0.0, 0.0f64..50.0).prop_map(|(lo, hi)| Interval::between(lo, hi)),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    ("[a-c]{1}", arb_interval()).prop_map(|(attr, interval)| Predicate { attr, interval })
}

prop_compose! {
    fn arb_query()(
        vertex_preds in prop::collection::vec(prop::collection::vec(arb_predicate(), 0..3), 2..5),
        edge_specs in prop::collection::vec((0usize..4, 0usize..4, 0usize..3), 1..5),
    ) -> PatternQuery {
        let mut q = PatternQuery::named("arb");
        let n = vertex_preds.len();
        let mut vids = Vec::new();
        for preds in vertex_preds {
            vids.push(q.add_vertex(QueryVertex::with(preds)));
        }
        for (s, d, ty) in edge_specs {
            let src = vids[s % n];
            let dst = vids[d % n];
            q.add_edge(QueryEdge {
                src,
                dst,
                types: vec![format!("t{ty}")],
                directions: DirectionSet::FORWARD,
                predicates: vec![],
                label: None,
            });
        }
        q
    }
}

/// A random applicable modification of `q` (None if the pick is invalid).
fn apply_random_mod(q: &PatternQuery, pick: usize) -> Option<PatternQuery> {
    let vids: Vec<QVid> = q.vertex_ids().collect();
    let eids: Vec<QEid> = q.edge_ids().collect();
    let mods: Vec<GraphMod> = vids
        .iter()
        .flat_map(|&v| {
            q.vertex(v)
                .unwrap()
                .predicates
                .iter()
                .map(move |p| GraphMod::RemovePredicate {
                    target: Target::Vertex(v),
                    attr: p.attr.clone(),
                })
        })
        .chain(eids.iter().map(|&e| GraphMod::RemoveEdge(e)))
        .chain(vids.iter().map(|&v| GraphMod::RemoveVertex(v)))
        .collect();
    if mods.is_empty() {
        return None;
    }
    let m = &mods[pick % mods.len()];
    m.applied(q).ok().map(|(next, _)| next)
}

// ---------------------------------------------------------------------
// syntactic distance
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn syntactic_distance_zero_on_self(q in arb_query()) {
        prop_assert!(syntactic_distance(&q, &q).abs() < 1e-12);
    }

    #[test]
    fn syntactic_distance_symmetric(q in arb_query(), pick in any::<usize>()) {
        if let Some(modified) = apply_random_mod(&q, pick) {
            let a = syntactic_distance(&q, &modified);
            let b = syntactic_distance(&modified, &q);
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn syntactic_distance_bounded(q in arb_query(), pick in any::<usize>()) {
        if let Some(modified) = apply_random_mod(&q, pick) {
            let d = syntactic_distance(&q, &modified);
            prop_assert!((0.0..=1.0).contains(&d));
            prop_assert!(d > 0.0, "a modification must be visible");
        }
    }

    #[test]
    fn interval_distance_bounded_and_symmetric(a in arb_interval(), b in arb_interval()) {
        let d1 = a.distance(&b);
        let d2 = b.distance(&a);
        prop_assert!((0.0..=1.0).contains(&d1));
        prop_assert!((d1 - d2).abs() < 1e-12);
        prop_assert!(a.distance(&a).abs() < 1e-12);
    }
}

// ---------------------------------------------------------------------
// cardinality distance
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cardinality_distance_properties(c1 in 0u64..10_000, c2 in 0u64..10_000, thr in 0u64..10_000) {
        // symmetry
        prop_assert_eq!(cardinality_distance(c1, c2, thr), cardinality_distance(c2, c1, thr));
        // identity
        prop_assert_eq!(cardinality_distance(c1, c1, thr), 0);
        // definition
        let expected = cardinality_deviation(c1, thr).abs_diff(cardinality_deviation(c2, thr));
        prop_assert_eq!(cardinality_distance(c1, c2, thr), expected);
    }
}

// ---------------------------------------------------------------------
// hungarian assignment
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hungarian_beats_or_matches_greedy(
        n in 1usize..6,
        cells in prop::collection::vec(0.0f64..1.0, 36),
    ) {
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| cells[i * 6 + j]).collect())
            .collect();
        let (assignment, total) = hungarian(&cost);
        // assignment is a permutation
        let mut seen = vec![false; n];
        for &c in &assignment {
            prop_assert!(!seen[c]);
            seen[c] = true;
        }
        // total matches the assignment
        let recomputed: f64 = assignment.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
        prop_assert!((total - recomputed).abs() < 1e-9);
        // greedy row-wise assignment can never be cheaper
        let mut used = vec![false; n];
        let mut greedy = 0.0;
        for row in &cost {
            let (j, c) = row
                .iter()
                .enumerate()
                .filter(|(j, _)| !used[*j])
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap();
            used[j] = true;
            greedy += *c;
        }
        prop_assert!(total <= greedy + 1e-9);
    }
}

// ---------------------------------------------------------------------
// result distance
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn result_graph_distance_metric_properties(
        vs1 in prop::collection::vec((0u32..5, 0u32..20), 1..5),
        vs2 in prop::collection::vec((0u32..5, 0u32..20), 1..5),
    ) {
        use whyquery::matcher::ResultGraph;
        use whyquery::graph::VertexId;
        let build = |vs: &[(u32, u32)]| {
            let mut r = ResultGraph::new();
            for &(q, d) in vs {
                if r.vertex(QVid(q)).is_none() {
                    r.bind_vertex(QVid(q), VertexId(d));
                }
            }
            r
        };
        let r1 = build(&vs1);
        let r2 = build(&vs2);
        let d = result_graph_distance(&r1, &r2);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((result_graph_distance(&r2, &r1) - d).abs() < 1e-12);
        prop_assert!(result_graph_distance(&r1, &r1).abs() < 1e-12);
    }
}
