//! Edge-case and failure-injection tests: degenerate graphs, degenerate
//! queries, pathological configurations — the inputs a debugging tool
//! meets precisely when users are already confused.

use whyquery::core::fine::{FineConfig, TraverseSearchTree};
use whyquery::core::relax::{CoarseRewriter, RelaxConfig};
use whyquery::core::subgraph::{DiscoverMcs, McsConfig};
use whyquery::graph::io;
use whyquery::prelude::*;
use whyquery::query::{parse_query, QEid, QVid, QueryEdge, QueryVertex};

fn empty_graph() -> Database {
    Database::open(PropertyGraph::new()).expect("open")
}

fn tiny_graph() -> Database {
    let mut g = PropertyGraph::new();
    let a = g.add_vertex([("type", Value::str("thing"))]);
    let b = g.add_vertex([("type", Value::str("thing"))]);
    g.add_edge(a, b, "rel", []);
    Database::open(g).expect("open")
}

mod common;
use common::{count_matches, find_matches};

#[test]
fn empty_graph_never_panics() {
    let db = empty_graph();
    let q = parse_query("(a:thing)-[:rel]->(b:thing)").unwrap();
    assert_eq!(count_matches(&db, &q, None), 0);
    assert!(find_matches(&db, &q, None).is_empty());
    let engine = WhyEngine::new(&db);
    let d = engine.diagnose(&q, CardinalityGoal::NonEmpty).unwrap();
    assert_eq!(d.problem, WhyProblem::WhyEmpty);
    // nothing in the graph → whole query fails, no rewrite possible
    let sub = d.subgraph.unwrap();
    assert_eq!(sub.mcs.num_vertices(), 0);
    assert!(d.rewrite.is_none());
}

#[test]
fn query_with_unknown_attributes_and_types() {
    let db = tiny_graph();
    let q = parse_query("(a {nonexistent = 1})-[:ghostrel]->(b)").unwrap();
    assert_eq!(count_matches(&db, &q, None), 0);
    let expl = DiscoverMcs::new(&db).run(&q).unwrap();
    // only vertex b (unconstrained) survives
    assert!(expl.mcs.num_edges() == 0);
    assert!(expl.differential.len() >= 2);
}

#[test]
fn tombstone_heavy_queries_stay_consistent() {
    // build a query, delete most of it, keep querying
    let mut q = PatternQuery::new();
    let vs: Vec<QVid> = (0..6)
        .map(|_| q.add_vertex(QueryVertex::with([Predicate::eq("type", "thing")])))
        .collect();
    for w in vs.windows(2) {
        q.add_edge(QueryEdge::typed(w[0], w[1], "rel"));
    }
    for &v in &vs[2..] {
        q.remove_vertex(v);
    }
    assert_eq!(q.num_vertices(), 2);
    assert_eq!(q.num_edges(), 1);
    let db = tiny_graph();
    assert_eq!(count_matches(&db, &q, None), 1);
    // ids beyond the tombstones resolve to None, not panics
    assert!(q.vertex(QVid(5)).is_none());
    assert!(q.edge(QEid(4)).is_none());
}

#[test]
fn zero_and_one_caps() {
    let db = tiny_graph();
    let q = parse_query("(a:thing)").unwrap();
    assert_eq!(count_matches(&db, &q, Some(0)), 0);
    assert_eq!(count_matches(&db, &q, Some(1)), 1);
    assert!(find_matches(&db, &q, Some(0)).is_empty());
}

#[test]
fn huge_thresholds_do_not_overflow() {
    let db = tiny_graph();
    let q = parse_query("(a:thing)").unwrap();
    let engine = WhyEngine::new(&db);
    let d = engine
        .classify(&q, CardinalityGoal::AtLeast(u64::MAX))
        .unwrap();
    assert_eq!(d, WhyProblem::WhySoFew);
    assert_eq!(
        CardinalityGoal::AtLeast(u64::MAX).deviation(2),
        u64::MAX - 2
    );
    // fine search terminates at budget without finding a fix
    let out = TraverseSearchTree::new(&db)
        .with_config(FineConfig {
            max_executed: 10,
            ..FineConfig::default()
        })
        .run(&q, CardinalityGoal::AtLeast(u64::MAX));
    assert!(out.explanation.is_none());
}

#[test]
fn unicode_attributes_round_trip() {
    let mut g = PropertyGraph::new();
    let v = g.add_vertex([("名前", Value::str("Анна 😀")), ("type", Value::str("人"))]);
    let text = io::write_graph(&g);
    let g2 = io::read_graph(&text).unwrap();
    let sym = g2.attr_symbol("名前").unwrap();
    assert_eq!(
        g2.vertex_attr(whyquery::graph::VertexId(v.0), sym),
        Some(&Value::str("Анна 😀"))
    );
    // matching on unicode values works
    let mut q = PatternQuery::new();
    q.add_vertex(QueryVertex::with([Predicate::eq("名前", "Анна 😀")]));
    let db2 = Database::open(g2).expect("open");
    assert_eq!(count_matches(&db2, &q, None), 1);
}

#[test]
fn rewriter_with_zero_lambda_ignores_model() {
    let db = tiny_graph();
    let q = parse_query("(a:thing {x = 1})-[:rel]->(b:thing)").unwrap();
    let rw = CoarseRewriter::new(&db);
    let out = rw.rewrite(
        &q,
        &RelaxConfig {
            lambda: 0.0,
            ..RelaxConfig::default()
        },
    );
    let expl = out.explanation.unwrap();
    assert!(expl.cardinality > 0);
}

#[test]
fn self_loop_query_on_self_loop_data() {
    let mut g = PropertyGraph::new();
    let v = g.add_vertex([("type", Value::str("node"))]);
    g.add_edge(v, v, "self", []);
    let db = Database::open(g).expect("open");
    let mut q = PatternQuery::new();
    let qv = q.add_vertex(QueryVertex::with([Predicate::eq("type", "node")]));
    q.add_edge(QueryEdge::typed(qv, qv, "self"));
    assert_eq!(count_matches(&db, &q, None), 1);
    let expl = DiscoverMcs::new(&db).run(&q).unwrap();
    assert!(expl.differential.is_empty());
}

#[test]
fn disconnected_query_with_failing_and_succeeding_components() {
    let db = tiny_graph();
    let mut q = PatternQuery::new();
    q.add_vertex(QueryVertex::with([Predicate::eq("type", "thing")]));
    q.add_vertex(QueryVertex::with([Predicate::eq("type", "ghost")]));
    assert_eq!(count_matches(&db, &q, None), 0); // cartesian with empty part
    let expl = DiscoverMcs::new(&db)
        .with_config(McsConfig::default())
        .run(&q)
        .unwrap();
    assert!(expl.mcs.vertex(QVid(0)).is_some());
    assert!(expl.mcs.vertex(QVid(1)).is_none());
}

#[test]
fn mcs_with_tiny_intermediate_cap_still_terminates() {
    let db = tiny_graph();
    let q = parse_query("(a:thing)-[:rel]->(b:thing)").unwrap();
    let expl = DiscoverMcs::new(&db)
        .with_config(McsConfig {
            max_intermediate: 1,
            ..McsConfig::default()
        })
        .run(&q)
        .unwrap();
    // with cap 1 the traversal still finds the full (1-match) query
    assert!(expl.differential.is_empty());
}

#[test]
fn malformed_graph_files_are_rejected_not_panicked() {
    for bad in [
        "V\tbroken",
        "E\t0\t0\tt", // edge before any vertex
        "Z\tnothing", // unknown record
        "V\tx=i:notanumber",
    ] {
        assert!(io::read_graph(bad).is_err(), "accepted: {bad:?}");
    }
}

#[test]
fn malformed_patterns_are_rejected_not_panicked() {
    for bad in [
        "",
        "(",
        "(a)-",
        "(a)-[:t]->",
        "(a)->(b)",
        "(a {x})",
        "(a {x = })",
    ] {
        assert!(parse_query(bad).is_err(), "accepted: {bad:?}");
    }
}
