//! Debug-mode plan verification over the full generated test corpus.
//!
//! [`whyquery::matcher::verify_plans`] checks the structural invariants of
//! every compiled plan (single seed per component, connected expansion,
//! each element bound exactly once, plans cover exactly the live query).
//! The matcher already asserts these after every compile in debug builds;
//! this suite drives that check across every LDBC and DBpedia workload
//! query — passing and failing, before and after static analysis — so a
//! planner regression is caught by CI's `static-analysis` lane even if no
//! functional test happens to exercise the broken shape.

use whyquery::datagen::{
    dbpedia_failing_queries, dbpedia_graph, dbpedia_queries, ldbc_failing_queries, ldbc_graph,
    ldbc_hard_failing_queries, ldbc_path_query, ldbc_queries, DbpediaConfig, LdbcConfig,
};
use whyquery::matcher::{verify_plans, Matcher};
use whyquery::prelude::*;
use whyquery::query::analyze_against;

fn verify_corpus(g: &PropertyGraph, queries: Vec<PatternQuery>, corpus: &str) {
    let matcher = Matcher::new(g);
    for q in queries {
        let (compiled, plans) = matcher.compile(&q);
        verify_plans(&q, &compiled, &plans)
            .unwrap_or_else(|violation| panic!("{corpus}/{:?}: {violation}", q.name));
        // the analyzer's simplified query must compile to equally valid
        // plans — this is the shape the session actually executes
        let analysis = analyze_against(&q, g);
        let (compiled, plans) = matcher.compile(&analysis.query);
        verify_plans(&analysis.query, &compiled, &plans)
            .unwrap_or_else(|violation| panic!("{corpus}/{:?} (analyzed): {violation}", q.name));
    }
}

#[test]
fn ldbc_corpus_plans_satisfy_invariants() {
    let g = ldbc_graph(LdbcConfig::default());
    verify_corpus(&g, ldbc_queries(), "ldbc");
    verify_corpus(&g, ldbc_failing_queries(), "ldbc-failing");
    verify_corpus(&g, ldbc_hard_failing_queries(), "ldbc-hard-failing");
    verify_corpus(
        &g,
        (1..=4)
            .flat_map(|h| [ldbc_path_query(h, false), ldbc_path_query(h, true)])
            .collect(),
        "ldbc-paths",
    );
}

#[test]
fn dbpedia_corpus_plans_satisfy_invariants() {
    let g = dbpedia_graph(DbpediaConfig::default());
    verify_corpus(&g, dbpedia_queries(), "dbpedia");
    verify_corpus(&g, dbpedia_failing_queries(), "dbpedia-failing");
}
