//! Helpers shared by the top-level integration suites.

// each test binary compiles this module independently and uses a subset
#![allow(dead_code)]

use whyquery::matcher::ResultGraph;
use whyquery::prelude::*;

/// Count through a throwaway session — the per-test convenience the
/// deprecated free function used to provide.
pub fn count_matches(db: &Database, q: &PatternQuery, limit: Option<u64>) -> u64 {
    db.session()
        .count_opts(q, MatchOptions::counting(limit))
        .expect("test queries are valid")
}

/// Find through a throwaway session — see [`count_matches`].
pub fn find_matches(db: &Database, q: &PatternQuery, limit: Option<usize>) -> Vec<ResultGraph> {
    db.session()
        .find_opts(
            q,
            MatchOptions {
                injective: true,
                limit,
                ..Default::default()
            },
        )
        .expect("test queries are valid")
}
