#!/usr/bin/env python3
"""Check that relative markdown links in the given files resolve.

Usage: check_doc_links.py FILE.md [FILE.md ...]

For every inline markdown link `[text](target)` whose target is not an
absolute URL or a pure fragment, verify the referenced path exists
relative to the linking file's directory (fragments are stripped; their
anchors are not validated). Exits non-zero listing every broken link.

Run locally from the repository root:
    python3 tools/check_doc_links.py README.md ARCHITECTURE.md docs/*.md
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def broken_links(md_file: Path):
    text = md_file.read_text(encoding="utf-8")
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        line = text.count("\n", 0, match.start()) + 1
        resolved = (md_file.parent / path).resolve()
        if not resolved.exists():
            yield line, target


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for name in argv[1:]:
        md_file = Path(name)
        if not md_file.exists():
            print(f"{name}: file not found", file=sys.stderr)
            failures += 1
            continue
        for line, target in broken_links(md_file):
            print(f"{name}:{line}: broken link -> {target}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures} broken link(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
