//! Property-based equivalence of the sealed CSR adjacency and the
//! build-phase `Vec` adjacency: on arbitrary interleaved multigraphs —
//! self-loops, parallel edges, types arriving in any order — every
//! adjacency accessor must answer identically before and after `seal()`,
//! the CSR SoA columns must agree with the `EdgeData` arena, and a
//! mutation after sealing (the melt path) must land the graph back in a
//! consistent build state.

use proptest::prelude::*;
use whyq_graph::{PropertyGraph, VertexId};

const TYPE_NAMES: [&str; 4] = ["knows", "livesIn", "worksAt", "self"];

/// Build a multigraph with `n` vertices and the given `(src, dst, ty)`
/// edge list (indices taken modulo `n`, so self-loops and parallel edges
/// occur naturally).
fn build(n: usize, edges: &[(u8, u8, u8)]) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let vs: Vec<VertexId> = (0..n).map(|_| g.add_vertex([])).collect();
    for &(s, d, t) in edges {
        g.add_edge(
            vs[s as usize % n],
            vs[d as usize % n],
            TYPE_NAMES[t as usize % TYPE_NAMES.len()],
            [],
        );
    }
    g
}

/// Assert every adjacency accessor of `a` and `b` agrees on every vertex
/// and every edge type.
fn assert_adjacency_eq(a: &PropertyGraph, b: &PropertyGraph) {
    assert_eq!(a.num_vertices(), b.num_vertices());
    assert_eq!(a.num_edges(), b.num_edges());
    let tys: Vec<_> = TYPE_NAMES.iter().filter_map(|t| a.type_symbol(t)).collect();
    for v in a.vertex_ids() {
        assert_eq!(a.out_edges(v), b.out_edges(v), "out_edges({v})");
        assert_eq!(a.in_edges(v), b.in_edges(v), "in_edges({v})");
        assert_eq!(a.degree(v), b.degree(v), "degree({v})");
        assert_eq!(
            a.incident(v).collect::<Vec<_>>(),
            b.incident(v).collect::<Vec<_>>(),
            "incident({v})"
        );
        for &ty in &tys {
            assert_eq!(a.out_edges_of(v, ty), b.out_edges_of(v, ty));
            assert_eq!(a.in_edges_of(v, ty), b.in_edges_of(v, ty));
        }
    }
}

/// The CSR columns must mirror the `EdgeData` arena entry by entry.
fn assert_columns_consistent(g: &PropertyGraph) {
    let topo = g.topology();
    for v in g.vertex_ids() {
        let out = topo.out_entries(v);
        for i in 0..out.len() {
            let ed = g.edge(out.edges[i]);
            assert_eq!(ed.src, v);
            assert_eq!(out.others[i], ed.dst);
            assert_eq!(out.types[i], ed.ty);
        }
        let inn = topo.in_entries(v);
        for i in 0..inn.len() {
            let ed = g.edge(inn.edges[i]);
            assert_eq!(ed.dst, v);
            assert_eq!(inn.others[i], ed.src);
            assert_eq!(inn.types[i], ed.ty);
        }
        // typed runs partition the full extent
        let typed_total: usize = TYPE_NAMES
            .iter()
            .filter_map(|t| g.type_symbol(t))
            .map(|ty| topo.out_entries_of(v, ty).len())
            .sum();
        assert_eq!(typed_total, out.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sealing must not change any observable adjacency, and the sealed
    /// columns must agree with the edge arena.
    #[test]
    fn sealed_graph_equals_vec_adjacency(
        n in 1usize..8,
        edges in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..24),
    ) {
        let unsealed = build(n, &edges);
        let mut sealed = unsealed.clone();
        sealed.seal();
        prop_assert!(sealed.is_sealed());
        assert_adjacency_eq(&unsealed, &sealed);
        assert_columns_consistent(&sealed);
        // the lazy topology cache of an unsealed graph is the same CSR
        assert_columns_consistent(&unsealed);
        assert_adjacency_eq(&unsealed, &sealed);
    }

    /// Every edge appears exactly once in `incident` of each endpoint —
    /// self-loops included (the historical double-count regression).
    #[test]
    fn incident_is_deduplicated_per_edge(
        n in 1usize..6,
        edges in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..16),
    ) {
        let mut g = build(n, &edges);
        g.seal();
        for v in g.vertex_ids() {
            let mut seen = std::collections::HashSet::new();
            for (e, _) in g.incident(v) {
                prop_assert!(seen.insert(e), "edge {e} incident to {v} twice");
                let ed = g.edge(e);
                prop_assert!(ed.src == v || ed.dst == v);
            }
            // and none is missing: membership matches the edge arena
            for e in g.edge_ids() {
                let ed = g.edge(e);
                prop_assert_eq!(seen.contains(&e), ed.src == v || ed.dst == v);
            }
        }
    }

    /// Mutating a sealed graph melts it back into a consistent build
    /// state identical to a graph that was never sealed.
    #[test]
    fn melt_after_seal_stays_consistent(
        n in 1usize..6,
        edges in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..16),
        extra in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..5),
    ) {
        let mut never_sealed = build(n, &edges);
        let mut melted = build(n, &edges);
        melted.seal();
        for &(s, d, t) in &extra {
            for g in [&mut never_sealed, &mut melted] {
                g.add_edge(
                    VertexId((s as usize % n) as u32),
                    VertexId((d as usize % n) as u32),
                    TYPE_NAMES[t as usize % TYPE_NAMES.len()],
                    [],
                );
            }
        }
        prop_assert!(!melted.is_sealed());
        assert_adjacency_eq(&never_sealed, &melted);
        // re-sealing after the melt reproduces the same CSR
        melted.seal();
        assert_adjacency_eq(&never_sealed, &melted);
        assert_columns_consistent(&melted);
    }
}
