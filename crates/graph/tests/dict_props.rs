//! Property tests of the value dictionary.
//!
//! Three families of invariants:
//!
//! * **intern/resolve round-trips** — encoding any string through an
//!   [`Interner`] and resolving it back yields the original text, with one
//!   stable symbol per distinct string;
//! * **eq/hash agreement** — a dictionary-encoded [`Value`] must be
//!   indistinguishable from its un-encoded twin under `==`, `Hash`,
//!   `partial_cmp`, `Display` and `as_str`, across arbitrary value pairs
//!   and across *different* dictionaries;
//! * **storage encoding** — whatever mix of values a graph is built from,
//!   every stored string is encoded in the graph's own dictionary and
//!   still equal to its plain form.

use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use whyq_graph::{Interner, PropertyGraph, Value};

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Decode a small integer triple into a `Value` covering every family,
/// with deliberate text collisions across cases.
fn mk_value(kind: u8, payload: i64, text: &str) -> Value {
    match kind % 5 {
        0 => Value::Int(payload),
        1 => Value::Float(payload as f64 / 3.0),
        2 => Value::str(text),
        3 => Value::Bool(payload % 2 == 0),
        _ => Value::Float(-0.0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Interning any sequence of strings round-trips every one of them,
    /// idempotently, with `len` counting the distinct set.
    #[test]
    fn intern_resolve_round_trips(texts in prop::collection::vec("[a-p]{0,10}", 1..20)) {
        let mut dict = Interner::new();
        let syms: Vec<_> = texts.iter().map(|t| dict.intern(t)).collect();
        for (t, s) in texts.iter().zip(&syms) {
            prop_assert_eq!(dict.resolve(*s), t.as_str());
            prop_assert_eq!(dict.get(t), Some(*s));
            // re-interning is a no-op returning the same symbol
            prop_assert_eq!(dict.intern(t), *s);
        }
        let mut distinct = texts.clone();
        distinct.sort();
        distinct.dedup();
        prop_assert_eq!(dict.len(), distinct.len());
    }

    /// `intern_value` round-trips the text and mints values equal to (and
    /// hash-consistent with) their un-encoded twins.
    #[test]
    fn encoded_value_round_trips(texts in prop::collection::vec("[a-f]{0,6}", 1..16)) {
        let mut dict = Interner::new();
        for t in &texts {
            let encoded = dict.intern_value(Value::str(t.clone()));
            let plain = Value::str(t.clone());
            prop_assert_eq!(encoded.as_str(), Some(t.as_str()));
            prop_assert_eq!(&encoded, &plain);
            prop_assert_eq!(&plain, &encoded);
            prop_assert_eq!(hash_of(&encoded), hash_of(&plain));
            prop_assert_eq!(encoded.partial_cmp(&plain), Some(std::cmp::Ordering::Equal));
            prop_assert_eq!(encoded.to_string(), plain.to_string());
        }
    }

    /// Equality, hash and order between arbitrary value pairs are
    /// invariant under dictionary encoding of either or both sides — also
    /// when the two sides are encoded by *different* dictionaries.
    #[test]
    fn eq_hash_order_invariant_under_encoding(
        ka in any::<u8>(), pa in -20i64..20, ta in "[a-c]{0,3}",
        kb in any::<u8>(), pb in -20i64..20, tb in "[a-c]{0,3}",
        shift in 0usize..4,
    ) {
        let a = mk_value(ka, pa, &ta);
        let b = mk_value(kb, pb, &tb);
        let mut d1 = Interner::new();
        let mut d2 = Interner::new();
        for i in 0..shift {
            d2.intern(&format!("shift-{i}")); // desynchronize symbol spaces
        }
        let combos = [
            (d1.intern_value(a.clone()), b.clone()),
            (a.clone(), d2.intern_value(b.clone())),
            (d1.intern_value(a.clone()), d1.intern_value(b.clone())),
            (d1.intern_value(a.clone()), d2.intern_value(b.clone())),
        ];
        let plain_eq = a == b;
        let plain_ord = a.partial_cmp(&b);
        for (ea, eb) in combos {
            prop_assert_eq!(ea == eb, plain_eq, "{:?} vs {:?}", ea, eb);
            prop_assert_eq!(ea.partial_cmp(&eb), plain_ord);
            prop_assert_eq!(hash_of(&ea), hash_of(&a));
            prop_assert_eq!(hash_of(&eb), hash_of(&b));
            if plain_eq {
                prop_assert_eq!(hash_of(&ea), hash_of(&eb));
            }
        }
    }

    /// Every string stored through the graph API is encoded in the graph's
    /// own dictionary, resolvable, and equal to its plain form; non-string
    /// values stay untouched.
    #[test]
    fn graphs_encode_all_stored_strings(
        rows in prop::collection::vec((any::<u8>(), -20i64..20, "[a-d]{0,3}"), 1..24),
    ) {
        let mut g = PropertyGraph::new();
        let mut prev = None;
        for (i, (k, p, t)) in rows.iter().enumerate() {
            let v = mk_value(*k, *p, t);
            let dv = if i % 3 == 0 && prev.is_some() {
                // every third row stores its value on an edge instead
                let dst = g.add_vertex([]);
                let e = g.add_edge(prev.unwrap(), dst, "t", [("attr", v.clone())]);
                let sym = g.attr_symbol("attr").unwrap();
                let stored = g.edge_attr(e, sym).unwrap();
                prop_assert_eq!(stored, &v);
                if let Some(sv) = stored.as_sym() {
                    prop_assert_eq!(sv.dict_id(), g.values().dict_id());
                    prop_assert_eq!(g.values().resolve(sv.sym()), sv.as_str());
                }
                dst
            } else {
                g.add_vertex([("attr", v.clone())])
            };
            let sym = g.attr_symbol("attr").unwrap();
            if let Some(stored) = g.vertex_attr(dv, sym) {
                prop_assert_eq!(stored, &v);
                match (&v, stored.as_sym()) {
                    // strings must come back encoded by this graph...
                    (Value::Str(s), Some(sv)) => {
                        prop_assert_eq!(sv.as_str(), s.as_str());
                        prop_assert_eq!(sv.dict_id(), g.values().dict_id());
                        prop_assert_eq!(g.value_symbol(s), Some(sv.sym()));
                    }
                    (Value::Str(_), None) => prop_assert!(false, "stored string not encoded"),
                    // ...everything else un-encoded
                    (_, enc) => prop_assert!(enc.is_none()),
                }
            }
            prev = Some(dv);
        }
        // the dictionary is exactly the set of distinct stored strings
        let mut texts: Vec<&str> = Vec::new();
        for v in g.vertex_ids() {
            for (_, val) in g.vertex(v).attrs.iter() {
                if let Some(s) = val.as_str() {
                    texts.push(s);
                }
            }
        }
        for e in g.edge_ids() {
            for (_, val) in g.edge(e).attrs.iter() {
                if let Some(s) = val.as_str() {
                    texts.push(s);
                }
            }
        }
        texts.sort();
        texts.dedup();
        prop_assert_eq!(g.values().len(), texts.len());
    }

    /// Re-encoding a value through a second dictionary (the cross-graph
    /// copy path) preserves text and equality.
    #[test]
    fn cross_dictionary_reencoding_preserves_text(texts in prop::collection::vec("[a-e]{0,4}", 1..12)) {
        let mut d1 = Interner::new();
        let mut d2 = Interner::new();
        d2.intern("skew");
        for t in &texts {
            let first = d1.intern_value(Value::str(t.clone()));
            let second = d2.intern_value(first.clone());
            prop_assert_eq!(second.as_str(), Some(t.as_str()));
            prop_assert_eq!(&second, &first);
            let sv = second.as_sym().unwrap();
            prop_assert_eq!(sv.dict_id(), d2.dict_id());
        }
    }
}
