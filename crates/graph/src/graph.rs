//! The property-graph store.
//!
//! `PropertyGraph` is a directed multigraph: any number of edges may connect
//! the same pair of vertices (Definition 1, §3.1.1). Vertices and edges live
//! in dense arenas addressed by `u32` ids, and attribute names and edge
//! types are interned.
//!
//! ## Two-phase adjacency: build, then seal
//!
//! Adjacency has two representations matched to the two phases of a
//! graph's life:
//!
//! * **Build phase** — per-vertex in/out edge lists (`AdjList`), cheap to
//!   append to while edges stream in.
//! * **Sealed phase** — one compressed-sparse-row arena per direction
//!   ([`CsrTopology`]): flat SoA columns (`edge`, `other endpoint`, `type`)
//!   plus per-vertex, per-type run offsets, so candidate scans read
//!   contiguous memory and never touch [`EdgeData`] just to learn an
//!   endpoint or a type.
//!
//! [`PropertyGraph::seal`] compacts the build lists into the CSR and frees
//! them; readers that want the dense layout without an explicit seal call
//! [`PropertyGraph::topology`], which builds the CSR lazily and caches it
//! (any later mutation invalidates the cache and — on a sealed graph —
//! transparently re-materializes the build lists, so mutation is always
//! legal, just not free). The classic slice accessors (`out_edges`,
//! `in_edges_of`, …) serve from whichever representation is current.

use crate::attrs::AttrMap;
use crate::csr::{CsrDir, CsrTopology};
use crate::error::GraphError;
use crate::interner::{Interner, Symbol};
use crate::value::Value;
use std::fmt;
use std::sync::OnceLock;

/// Dense identifier of a data vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u32);

/// Dense identifier of a data edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Payload of a vertex: its attribute map.
#[derive(Debug, Clone, Default)]
pub struct VertexData {
    /// Attribute key/value pairs (`f : V → A_V`).
    pub attrs: AttrMap,
}

/// Payload of an edge: endpoints, type, attributes.
#[derive(Debug, Clone)]
pub struct EdgeData {
    /// Source vertex (`u(e).0`).
    pub src: VertexId,
    /// Target vertex (`u(e).1`).
    pub dst: VertexId,
    /// Interned edge type (e.g. `knows`, `isLocatedIn`).
    pub ty: Symbol,
    /// Attribute key/value pairs (`g : E → A_E`).
    pub attrs: AttrMap,
}

/// Per-vertex adjacency list kept *grouped by edge type*: one flat vector
/// of edge ids ordered as contiguous per-type runs, plus a tiny run table
/// (most vertices touch only a handful of edge types). The whole list and
/// any single-type slice are both O(1)-addressable, which lets the pattern
/// matcher traverse only the edges whose type a query edge admits.
#[derive(Debug, Default, Clone)]
pub(crate) struct AdjList {
    /// Edge ids, contiguous per type run.
    pub(crate) flat: Vec<EdgeId>,
    /// `(type, end offset)` per run, sorted by type symbol; a run starts at
    /// the previous run's end.
    pub(crate) runs: Vec<(Symbol, u32)>,
}

impl AdjList {
    fn insert(&mut self, ty: Symbol, e: EdgeId) {
        // fast path: the common construction orders (same type repeated,
        // or per-type phases with freshly interned — hence increasing —
        // symbols) always touch the last run, where insertion is a plain
        // push. Only interleaving types on one vertex pays the O(degree)
        // middle insert.
        match self.runs.last_mut() {
            Some((last_ty, end)) if *last_ty == ty => {
                self.flat.push(e);
                *end += 1;
                return;
            }
            Some((last_ty, _)) if *last_ty < ty => {
                self.flat.push(e);
                self.runs.push((ty, self.flat.len() as u32));
                return;
            }
            None => {
                self.flat.push(e);
                self.runs.push((ty, 1));
                return;
            }
            _ => {}
        }
        match self.runs.binary_search_by_key(&ty, |(t, _)| *t) {
            Ok(i) => {
                let end = self.runs[i].1 as usize;
                self.flat.insert(end, e);
                for r in &mut self.runs[i..] {
                    r.1 += 1;
                }
            }
            Err(i) => {
                let start = if i == 0 { 0 } else { self.runs[i - 1].1 };
                self.flat.insert(start as usize, e);
                self.runs.insert(i, (ty, start + 1));
                for r in &mut self.runs[i + 1..] {
                    r.1 += 1;
                }
            }
        }
    }

    fn all(&self) -> &[EdgeId] {
        &self.flat
    }

    fn of_type(&self, ty: Symbol) -> &[EdgeId] {
        match self.runs.binary_search_by_key(&ty, |(t, _)| *t) {
            Ok(i) => {
                let start = if i == 0 {
                    0
                } else {
                    self.runs[i - 1].1 as usize
                };
                &self.flat[start..self.runs[i].1 as usize]
            }
            Err(_) => &[],
        }
    }
}

/// An in-memory property graph.
#[derive(Debug, Default, Clone)]
pub struct PropertyGraph {
    attr_names: Interner,
    edge_types: Interner,
    /// The value dictionary: every string attribute value stored in this
    /// graph is interned here on insertion (see `crate::value` for the
    /// encoding invariants).
    values: Interner,
    vertices: Vec<VertexData>,
    edges: Vec<EdgeData>,
    /// Build-phase adjacency; drained (left empty) once sealed.
    out_edges: Vec<AdjList>,
    in_edges: Vec<AdjList>,
    /// Sealed CSR adjacency, built lazily on the first [`Self::topology`]
    /// call and invalidated by any topology mutation.
    csr: OnceLock<CsrTopology>,
    /// True once [`Self::seal`] dropped the build lists: the CSR is then
    /// the *only* adjacency representation until a mutation melts it.
    sealed: bool,
}

impl PropertyGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty graph with pre-sized vertex/edge arenas.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        PropertyGraph {
            attr_names: Interner::new(),
            edge_types: Interner::new(),
            values: Interner::new(),
            vertices: Vec::with_capacity(vertices),
            edges: Vec::with_capacity(edges),
            out_edges: Vec::with_capacity(vertices),
            in_edges: Vec::with_capacity(vertices),
            csr: OnceLock::new(),
            sealed: false,
        }
    }

    // ------------------------------------------------------------------
    // lifecycle: build → seal (→ melt on mutation)
    // ------------------------------------------------------------------

    /// The sealed CSR view of the adjacency, built on first use and cached.
    ///
    /// Cheap after the first call; any mutation invalidates the cache. Bulk
    /// readers (the matcher, traversals) should grab this once and scan
    /// through [`crate::csr::AdjSlice`]s instead of per-edge [`Self::edge`]
    /// lookups.
    pub fn topology(&self) -> &CsrTopology {
        self.csr.get_or_init(|| CsrTopology {
            out: CsrDir::build(
                self.out_edges.iter().map(|l| (&l.flat[..], &l.runs[..])),
                &self.edges,
                true,
            ),
            inn: CsrDir::build(
                self.in_edges.iter().map(|l| (&l.flat[..], &l.runs[..])),
                &self.edges,
                false,
            ),
        })
    }

    /// Seal the graph: compact adjacency into the CSR arena and free the
    /// per-vertex build lists. Idempotent. Reads keep working unchanged
    /// (served from the CSR); a later mutation transparently melts the
    /// graph back into build mode at O(|E|) cost.
    pub fn seal(&mut self) {
        if self.sealed {
            return;
        }
        let _ = self.topology();
        self.out_edges = Vec::new();
        self.in_edges = Vec::new();
        self.sealed = true;
    }

    /// True while the CSR is the only adjacency representation.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Invalidate the CSR cache before a topology mutation; on a sealed
    /// graph, first re-materialize the build lists from the edge arena
    /// (iterating in edge-id order reproduces the original insertion
    /// sequence, hence the exact same run layout).
    fn melt(&mut self) {
        if self.sealed {
            self.out_edges = vec![AdjList::default(); self.vertices.len()];
            self.in_edges = vec![AdjList::default(); self.vertices.len()];
            for (i, ed) in self.edges.iter().enumerate() {
                let id = EdgeId(i as u32);
                self.out_edges[ed.src.0 as usize].insert(ed.ty, id);
                self.in_edges[ed.dst.0 as usize].insert(ed.ty, id);
            }
            self.sealed = false;
        }
        self.csr.take();
    }

    // ------------------------------------------------------------------
    // construction
    // ------------------------------------------------------------------

    /// Add a vertex with the given attributes; returns its id.
    pub fn add_vertex<'a, I>(&mut self, attrs: I) -> VertexId
    where
        I: IntoIterator<Item = (&'a str, Value)>,
    {
        self.melt();
        let id = VertexId(u32::try_from(self.vertices.len()).expect("vertex arena overflow"));
        let attrs = attrs
            .into_iter()
            .map(|(k, v)| (self.attr_names.intern(k), self.values.intern_value(v)))
            .collect();
        self.vertices.push(VertexData { attrs });
        self.out_edges.push(AdjList::default());
        self.in_edges.push(AdjList::default());
        id
    }

    /// Add a directed edge `src → dst` of type `ty`; returns its id.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range (construction-time bug).
    pub fn add_edge<'a, I>(&mut self, src: VertexId, dst: VertexId, ty: &str, attrs: I) -> EdgeId
    where
        I: IntoIterator<Item = (&'a str, Value)>,
    {
        assert!((src.0 as usize) < self.vertices.len(), "src out of range");
        assert!((dst.0 as usize) < self.vertices.len(), "dst out of range");
        self.melt();
        let id = EdgeId(u32::try_from(self.edges.len()).expect("edge arena overflow"));
        let ty = self.edge_types.intern(ty);
        let attrs = attrs
            .into_iter()
            .map(|(k, v)| (self.attr_names.intern(k), self.values.intern_value(v)))
            .collect();
        self.edges.push(EdgeData {
            src,
            dst,
            ty,
            attrs,
        });
        self.out_edges[src.0 as usize].insert(ty, id);
        self.in_edges[dst.0 as usize].insert(ty, id);
        id
    }

    /// Set (insert or overwrite) an attribute on an existing vertex.
    pub fn set_vertex_attr(
        &mut self,
        v: VertexId,
        key: &str,
        value: Value,
    ) -> Result<(), GraphError> {
        let sym = self.attr_names.intern(key);
        let value = self.values.intern_value(value);
        self.vertices
            .get_mut(v.0 as usize)
            .ok_or(GraphError::VertexOutOfRange(v))?
            .attrs
            .insert(sym, value);
        Ok(())
    }

    // ------------------------------------------------------------------
    // sizes
    // ------------------------------------------------------------------

    /// Number of vertices `N_d`.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges `M_d`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    // ------------------------------------------------------------------
    // lookups
    // ------------------------------------------------------------------

    /// The interner of attribute names.
    pub fn attr_names(&self) -> &Interner {
        &self.attr_names
    }

    /// The interner of edge types.
    pub fn edge_types(&self) -> &Interner {
        &self.edge_types
    }

    /// The value dictionary: every string attribute value stored in this
    /// graph, interned. Readers that compile predicates resolve string
    /// constants here once, then compare symbols.
    pub fn values(&self) -> &Interner {
        &self.values
    }

    /// Resolve a string to its value-dictionary symbol, if any stored
    /// attribute carries it. Allocation-free probe.
    pub fn value_symbol(&self, text: &str) -> Option<Symbol> {
        self.values.get(text)
    }

    /// Resolve an attribute name to its symbol, if any element uses it.
    pub fn attr_symbol(&self, name: &str) -> Option<Symbol> {
        self.attr_names.get(name)
    }

    /// Resolve an edge-type name to its symbol, if any edge uses it.
    pub fn type_symbol(&self, name: &str) -> Option<Symbol> {
        self.edge_types.get(name)
    }

    /// Vertex payload.
    pub fn vertex(&self, v: VertexId) -> &VertexData {
        &self.vertices[v.0 as usize]
    }

    /// Edge payload.
    pub fn edge(&self, e: EdgeId) -> &EdgeData {
        &self.edges[e.0 as usize]
    }

    /// Checked vertex lookup.
    pub fn try_vertex(&self, v: VertexId) -> Result<&VertexData, GraphError> {
        self.vertices
            .get(v.0 as usize)
            .ok_or(GraphError::VertexOutOfRange(v))
    }

    /// Checked edge lookup.
    pub fn try_edge(&self, e: EdgeId) -> Result<&EdgeData, GraphError> {
        self.edges
            .get(e.0 as usize)
            .ok_or(GraphError::EdgeOutOfRange(e))
    }

    /// Attribute value of a vertex by symbol.
    pub fn vertex_attr(&self, v: VertexId, key: Symbol) -> Option<&Value> {
        self.vertices[v.0 as usize].attrs.get(key)
    }

    /// Attribute value of an edge by symbol.
    pub fn edge_attr(&self, e: EdgeId, key: Symbol) -> Option<&Value> {
        self.edges[e.0 as usize].attrs.get(key)
    }

    /// Outgoing edges of `v`, grouped in contiguous per-type runs.
    pub fn out_edges(&self, v: VertexId) -> &[EdgeId] {
        match self.csr.get() {
            Some(csr) => csr.out_edge_ids(v),
            None => self.out_edges[v.0 as usize].all(),
        }
    }

    /// Incoming edges of `v`, grouped in contiguous per-type runs.
    pub fn in_edges(&self, v: VertexId) -> &[EdgeId] {
        match self.csr.get() {
            Some(csr) => csr.in_edge_ids(v),
            None => self.in_edges[v.0 as usize].all(),
        }
    }

    /// Outgoing edges of `v` whose type is `ty` — an O(log #types) slice
    /// lookup, so typed traversals touch no foreign-type edges at all.
    pub fn out_edges_of(&self, v: VertexId, ty: Symbol) -> &[EdgeId] {
        match self.csr.get() {
            Some(csr) => csr.out_entries_of(v, ty).edges,
            None => self.out_edges[v.0 as usize].of_type(ty),
        }
    }

    /// Incoming edges of `v` whose type is `ty`.
    pub fn in_edges_of(&self, v: VertexId, ty: Symbol) -> &[EdgeId] {
        match self.csr.get() {
            Some(csr) => csr.in_entries_of(v, ty).edges,
            None => self.in_edges[v.0 as usize].of_type(ty),
        }
    }

    /// Out-degree plus in-degree (a self-loop contributes to both).
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_edges(v).len() + self.in_edges(v).len()
    }

    /// Iterate over all vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertices.len() as u32).map(VertexId)
    }

    /// Iterate over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Neighbors reachable via one edge in either direction (with the
    /// connecting edge), deduplicated per edge: a self-loop sits in both
    /// the out- and the in-list of `v` but is yielded exactly once (from
    /// the out side).
    ///
    /// With the CSR cache present the scan reads the endpoint columns
    /// directly; in build mode it chases each edge id into the arena.
    /// Exactly one source of each chained pair below is non-empty, so the
    /// self-loop dedup rule lives in this one filter for both modes.
    pub fn incident(&self, v: VertexId) -> impl Iterator<Item = (EdgeId, VertexId)> + '_ {
        let csr = self.csr.get();
        let (csr_out, csr_in) = csr
            .map(|c| (c.out_entries(v), c.in_entries(v)))
            .unwrap_or_default();
        let (build_out, build_in): (&[EdgeId], &[EdgeId]) = if csr.is_some() {
            (&[], &[])
        } else {
            (
                self.out_edges[v.0 as usize].all(),
                self.in_edges[v.0 as usize].all(),
            )
        };
        let out = csr_out
            .iter()
            .chain(build_out.iter().map(move |&e| (e, self.edge(e).dst)));
        let inn = csr_in
            .iter()
            .chain(build_in.iter().map(move |&e| (e, self.edge(e).src)));
        out.chain(inn.filter(move |&(_, other)| other != v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (PropertyGraph, VertexId, VertexId, EdgeId) {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person")), ("age", Value::Int(30))]);
        let b = g.add_vertex([("type", Value::str("city"))]);
        let e = g.add_edge(a, b, "livesIn", [("since", Value::Int(2003))]);
        (g, a, b, e)
    }

    #[test]
    fn construction_and_lookup() {
        let (g, a, b, e) = tiny();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
        let age = g.attr_symbol("age").unwrap();
        assert_eq!(g.vertex_attr(a, age), Some(&Value::Int(30)));
        let since = g.attr_symbol("since").unwrap();
        assert_eq!(g.edge_attr(e, since), Some(&Value::Int(2003)));
        assert_eq!(g.edge(e).src, a);
        assert_eq!(g.edge(e).dst, b);
        assert_eq!(g.edge_types().resolve(g.edge(e).ty), "livesIn");
    }

    #[test]
    fn adjacency_lists() {
        let (g, a, b, e) = tiny();
        assert_eq!(g.out_edges(a), &[e]);
        assert_eq!(g.in_edges(b), &[e]);
        assert!(g.out_edges(b).is_empty());
        assert_eq!(g.degree(a), 1);
        let inc: Vec<_> = g.incident(a).collect();
        assert_eq!(inc, vec![(e, b)]);
    }

    #[test]
    fn multigraph_allows_parallel_edges() {
        let (mut g, a, b, _) = tiny();
        let e2 = g.add_edge(a, b, "livesIn", []);
        let e3 = g.add_edge(a, b, "worksIn", []);
        assert_eq!(g.out_edges(a).len(), 3);
        assert_ne!(e2, e3);
        // The two `livesIn` edges share a type symbol, `worksIn` differs.
        assert_eq!(g.edge(e2).ty, g.edge(EdgeId(0)).ty);
        assert_ne!(g.edge(e3).ty, g.edge(e2).ty);
    }

    #[test]
    fn typed_adjacency_slices() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([]);
        let b = g.add_vertex([]);
        let c = g.add_vertex([]);
        // interleave types on one vertex so inserts hit both the push fast
        // path and the middle-insert slow path
        let e1 = g.add_edge(a, b, "knows", []);
        let e2 = g.add_edge(a, c, "livesIn", []);
        let e3 = g.add_edge(a, c, "knows", []);
        let e4 = g.add_edge(b, a, "knows", []);
        let knows = g.type_symbol("knows").unwrap();
        let lives = g.type_symbol("livesIn").unwrap();
        assert_eq!(g.out_edges_of(a, knows), &[e1, e3]);
        assert_eq!(g.out_edges_of(a, lives), &[e2]);
        assert_eq!(g.in_edges_of(a, knows), &[e4]);
        assert!(g.in_edges_of(a, lives).is_empty());
        assert!(g.out_edges_of(b, lives).is_empty());
        // the flat view contains every edge exactly once, grouped by type
        let mut all = g.out_edges(a).to_vec();
        all.sort();
        assert_eq!(all, vec![e1, e2, e3]);
        let missing = g.type_symbol("nope");
        assert!(missing.is_none());
    }

    #[test]
    fn stored_strings_are_dictionary_encoded() {
        let (g, a, b, e) = tiny();
        let ty = g.attr_symbol("type").unwrap();
        // both "person" and "city" landed in the value dictionary...
        let person = g.value_symbol("person").unwrap();
        let city = g.value_symbol("city").unwrap();
        assert_ne!(person, city);
        assert!(g.value_symbol("robot").is_none());
        // ...and the stored values carry those symbols
        let pv = g.vertex_attr(a, ty).unwrap().as_sym().unwrap();
        assert_eq!(pv.sym(), person);
        assert_eq!(pv.dict_id(), g.values().dict_id());
        assert_eq!(g.vertex_attr(b, ty).unwrap().as_sym().unwrap().sym(), city);
        // encoded values still compare equal to plain literals
        assert_eq!(g.vertex_attr(a, ty), Some(&Value::str("person")));
        // non-strings pass through un-encoded
        let since = g.attr_symbol("since").unwrap();
        assert!(g.edge_attr(e, since).unwrap().as_sym().is_none());
    }

    #[test]
    fn set_vertex_attr_encodes_strings_too() {
        let (mut g, a, _, _) = tiny();
        g.set_vertex_attr(a, "type", Value::str("robot")).unwrap();
        let ty = g.attr_symbol("type").unwrap();
        let stored = g.vertex_attr(a, ty).unwrap();
        assert_eq!(
            stored.as_sym().unwrap().sym(),
            g.value_symbol("robot").unwrap()
        );
    }

    #[test]
    fn set_vertex_attr_overwrites() {
        let (mut g, a, _, _) = tiny();
        g.set_vertex_attr(a, "age", Value::Int(31)).unwrap();
        let age = g.attr_symbol("age").unwrap();
        assert_eq!(g.vertex_attr(a, age), Some(&Value::Int(31)));
        assert!(g
            .set_vertex_attr(VertexId(99), "age", Value::Int(1))
            .is_err());
    }

    #[test]
    fn checked_lookups() {
        let (g, a, _, e) = tiny();
        assert!(g.try_vertex(a).is_ok());
        assert!(g.try_edge(e).is_ok());
        assert_eq!(
            g.try_vertex(VertexId(5)).unwrap_err(),
            GraphError::VertexOutOfRange(VertexId(5))
        );
        assert_eq!(
            g.try_edge(EdgeId(5)).unwrap_err(),
            GraphError::EdgeOutOfRange(EdgeId(5))
        );
    }

    #[test]
    fn self_loops_supported() {
        let mut g = PropertyGraph::new();
        let v = g.add_vertex([]);
        let e = g.add_edge(v, v, "self", []);
        assert_eq!(g.out_edges(v), &[e]);
        assert_eq!(g.in_edges(v), &[e]);
        assert_eq!(g.degree(v), 2);
    }

    /// Regression: `incident` chained the out- and in-lists, so a self-loop
    /// (present in both) was yielded twice and inflated neighborhood
    /// discovery. It must appear exactly once — in build and sealed mode.
    #[test]
    fn incident_yields_self_loop_once() {
        let mut g = PropertyGraph::new();
        let v = g.add_vertex([]);
        let w = g.add_vertex([]);
        let loop_e = g.add_edge(v, v, "self", []);
        let out_e = g.add_edge(v, w, "t", []);
        let in_e = g.add_edge(w, v, "t", []);
        let expect = vec![(loop_e, v), (out_e, w), (in_e, w)];
        assert_eq!(g.incident(v).collect::<Vec<_>>(), expect);
        // degree still counts both loop endpoints (standard convention)
        assert_eq!(g.degree(v), 4);
        g.seal();
        assert_eq!(g.incident(v).collect::<Vec<_>>(), expect);
    }

    #[test]
    fn seal_preserves_adjacency_and_typed_slices() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([]);
        let b = g.add_vertex([]);
        let c = g.add_vertex([]);
        // interleaved types + parallel edges + a self-loop
        let e1 = g.add_edge(a, b, "knows", []);
        let e2 = g.add_edge(a, c, "livesIn", []);
        let e3 = g.add_edge(a, c, "knows", []);
        let e4 = g.add_edge(a, a, "knows", []);
        let e5 = g.add_edge(b, a, "knows", []);
        let unsealed = g.clone();
        g.seal();
        assert!(g.is_sealed());
        assert!(!unsealed.is_sealed());
        let knows = g.type_symbol("knows").unwrap();
        let lives = g.type_symbol("livesIn").unwrap();
        for v in [a, b, c] {
            assert_eq!(g.out_edges(v), unsealed.out_edges(v));
            assert_eq!(g.in_edges(v), unsealed.in_edges(v));
            assert_eq!(g.degree(v), unsealed.degree(v));
            for ty in [knows, lives] {
                assert_eq!(g.out_edges_of(v, ty), unsealed.out_edges_of(v, ty));
                assert_eq!(g.in_edges_of(v, ty), unsealed.in_edges_of(v, ty));
            }
        }
        assert_eq!(g.out_edges_of(a, knows), &[e1, e3, e4]);
        assert_eq!(g.out_edges_of(a, lives), &[e2]);
        assert_eq!(g.in_edges_of(a, knows), &[e4, e5]);
        // the SoA columns expose (edge, other, type) without EdgeData
        let entries = g.topology().out_entries_of(a, knows);
        assert_eq!(entries.edges, &[e1, e3, e4]);
        assert_eq!(entries.others, &[b, c, a]);
        assert!(entries.types.iter().all(|&t| t == knows));
        assert_eq!(g.topology().in_entries(a).others, &[a, b]);
    }

    #[test]
    fn mutation_after_seal_melts_and_stays_correct() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([]);
        let b = g.add_vertex([]);
        let e1 = g.add_edge(a, b, "t", []);
        g.seal();
        assert!(g.is_sealed());
        let c = g.add_vertex([]);
        assert!(!g.is_sealed());
        let e2 = g.add_edge(b, c, "t", []);
        let e3 = g.add_edge(a, b, "u", []);
        let t = g.type_symbol("t").unwrap();
        assert_eq!(g.out_edges(a), &[e1, e3]);
        assert_eq!(g.out_edges_of(b, t), &[e2]);
        assert_eq!(g.in_edges(b), &[e1, e3]);
        // re-seal after the melt; everything still agrees
        g.seal();
        assert_eq!(g.out_edges(a), &[e1, e3]);
        assert_eq!(g.out_edges_of(a, t), &[e1]);
        assert_eq!(g.in_edges(c), &[e2]);
    }
}
