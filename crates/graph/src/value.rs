//! Attribute values stored on vertices and edges.
//!
//! The property-graph model annotates graph elements with key/value pairs
//! whose values are drawn from a small set of scalar types. Predicates in
//! pattern queries (`whyq-query`) compare against these values, so `Value`
//! provides a total order within a numeric family (integers and floats
//! compare against each other) and equality across all variants.
//!
//! ## Dictionary encoding (pinned invariants)
//!
//! Strings come in two physical representations that are **semantically one
//! type**: [`Value::Str`] owns its text, [`Value::Sym`] is the
//! dictionary-encoded form minted by an [`crate::Interner`] — a `u32`
//! symbol, the shared `Arc<str>` text, and the id of the dictionary that
//! assigned the symbol. The invariants:
//!
//! * **Every string stored in a graph is encoded.** [`crate::PropertyGraph`]
//!   interns attribute values on every insertion path (`add_vertex`,
//!   `add_edge`, `set_vertex_attr`, and therefore `io::read_graph` and the
//!   generators), so a stored `Value::Sym`'s symbol is always valid in —
//!   and agrees with — its graph's value dictionary. Plain `Value::Str`
//!   appears only *outside* graphs: query constants, decoded values,
//!   user-constructed literals.
//! * **A `Sym` is meaningful relative to its dictionary.** The embedded
//!   dictionary id says which interner assigned the symbol. Two `Sym`s with
//!   the *same* id came from the same assignment history, so equality is
//!   one `u32` compare. With *different* ids the symbols are incomparable
//!   and equality falls back to the text — first an `Arc` pointer check
//!   (clones of a graph share allocations), then a real string compare.
//!   Cross-graph comparison is therefore always correct, just not always
//!   integer-speed.
//! * **Encoding is invisible to semantics.** `Sym` and `Str` of the same
//!   text are equal, hash equal (both hash their text), order identically
//!   (lexicographic), display identically and serialize identically
//!   (`io` writes the decoded text). Code that pattern-matches string
//!   values should use [`Value::as_str`], which decodes both forms.
//!
//! The payoff sits in `whyq-matcher`: query compilation resolves string
//! constants through the graph's dictionary once, after which every
//! candidate check against a stored string is a single integer comparison —
//! and a constant the dictionary has never seen proves its predicate
//! unsatisfiable before any scan starts.
//!
//! ## NaN and signed-zero semantics (pinned)
//!
//! The numeric family is ordered by `f64::total_cmp` with `-0.0`
//! normalized to `0.0`, which makes three guarantees:
//!
//! * **Equality is reflexive and hash-consistent.** `Float(NAN)` equals
//!   itself (same bit pattern), `Int(0) == Float(0.0) == Float(-0.0)`, and
//!   equal values always hash equal — `Value` is safe as a map/index key.
//! * **NaN has a defined sort position** (total order: negative NaN below
//!   `-∞`, positive NaN above `+∞`), so sorting value lists never panics
//!   and is deterministic.
//! * **NaN matches no ordering predicate.** The sort position is a storage
//!   artifact, *not* a query semantic: range predicates
//!   (`whyq_query::Interval::Range`) reject NaN explicitly, so `x ≥ lo`,
//!   `x ≤ hi` and `lo ≤ x ≤ hi` are all false for a NaN attribute. Only an
//!   explicit equality/`OneOf` predicate carrying NaN itself can match a
//!   NaN value (identity membership, not ordering).

use crate::interner::Symbol;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A dictionary-encoded string value: the symbol an [`crate::Interner`]
/// assigned, the shared text, and the dictionary's identity (see the
/// [module docs](self) for the comparison rules these three enable).
#[derive(Debug, Clone)]
pub struct SymStr {
    dict: u32,
    sym: Symbol,
    text: Arc<str>,
}

impl SymStr {
    /// Build an encoded string. Only dictionaries mint these — going
    /// through [`crate::Interner::intern_value`] is what makes the
    /// `(dict, sym) → text` association trustworthy.
    pub(crate) fn new(dict: u32, sym: Symbol, text: Arc<str>) -> Self {
        SymStr { dict, sym, text }
    }

    /// The symbol within the minting dictionary.
    pub fn sym(&self) -> Symbol {
        self.sym
    }

    /// The identity of the minting dictionary
    /// (cf. [`crate::Interner::dict_id`]).
    pub fn dict_id(&self) -> u32 {
        self.dict
    }

    /// The decoded text.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// The shared allocation behind the text.
    pub fn text_arc(&self) -> &Arc<str> {
        &self.text
    }
}

/// A scalar attribute value.
///
/// Integers and floats form one *numeric family*: `Value::Int(2)` compares
/// equal to `Value::Float(2.0)`. Strings — in both physical forms, see the
/// [module docs](self) — and booleans only compare within their own family.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer (years, counts, identifiers, ...).
    Int(i64),
    /// 64-bit float (scores, coordinates, ...).
    Float(f64),
    /// UTF-8 string (names, labels, ...), un-encoded.
    Str(String),
    /// Dictionary-encoded string, minted by [`crate::Interner::intern_value`].
    Sym(SymStr),
    /// Boolean flag.
    Bool(bool),
}

impl Value {
    /// Build a string value from anything string-like.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Returns the numeric view of this value if it belongs to the numeric
    /// family, coercing integers to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the integer if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string slice if this is a string in either physical
    /// form (`Str` or dictionary-encoded `Sym`).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Sym(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns the encoded form if this is a dictionary-encoded string.
    pub fn as_sym(&self) -> Option<&SymStr> {
        match self {
            Value::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if both values belong to the same family (numeric, string in
    /// either encoding, or boolean).
    pub fn same_family(&self, other: &Value) -> bool {
        use Value::*;
        matches!(
            (self, other),
            (Int(_) | Float(_), Int(_) | Float(_))
                | (Str(_) | Sym(_), Str(_) | Sym(_))
                | (Bool(_), Bool(_))
        )
    }

    /// Total comparison *within a family*; `None` when the families differ
    /// (a predicate comparing a string against a number never matches).
    ///
    /// Numbers follow `f64::total_cmp` with `-0.0` normalized, so NaN has
    /// a stable sort position; see the module docs for why that position
    /// deliberately does **not** make NaN satisfy ordering predicates.
    /// Strings compare lexicographically regardless of encoding, with a
    /// same-dictionary symbol check short-circuiting the equal case.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Sym(a), Sym(b)) if a.dict == b.dict && a.sym == b.sym => Some(Ordering::Equal),
            (Str(_) | Sym(_), Str(_) | Sym(_)) => {
                // both sides are strings, as_str never fails
                Some(self.as_str()?.cmp(other.as_str()?))
            }
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                // normalize -0.0 so the numeric family is a consistent order
                let norm = |v: f64| if v == 0.0 { 0.0 } else { v };
                let (x, y) = (norm(a.as_f64()?), norm(b.as_f64()?));
                Some(x.total_cmp(&y))
            }
        }
    }

    /// Short tag used in error messages and debug displays. Both string
    /// encodings report `"str"` — the encoding is a storage detail.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) | Value::Sym(_) => "str",
            Value::Bool(_) => "bool",
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            // dictionary fast path: same dictionary → symbols decide; the
            // cross-dictionary fallback tries pointer identity (clones
            // share allocations) before touching the bytes
            (Sym(a), Sym(b)) => {
                if a.dict == b.dict {
                    a.sym == b.sym
                } else {
                    Arc::ptr_eq(&a.text, &b.text) || a.text == b.text
                }
            }
            (Sym(a), Str(b)) | (Str(b), Sym(a)) => *a.text == **b,
            _ => self.compare(other) == Some(Ordering::Equal),
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Numeric family members must hash identically when equal:
        // hash every numeric value through its canonical f64 bit pattern
        // (normalizing -0.0 to 0.0 so Int(0) == Float(-0.0) hashes equal).
        // Both string encodings hash their text so Sym == Str stays
        // hash-consistent.
        match self {
            Value::Int(i) => {
                let f = *i as f64;
                state.write_u8(0);
                state.write_u64((if f == 0.0 { 0.0f64 } else { f }).to_bits());
            }
            Value::Float(f) => {
                state.write_u8(0);
                state.write_u64((if *f == 0.0 { 0.0f64 } else { *f }).to_bits());
            }
            Value::Str(s) => {
                state.write_u8(1);
                s.hash(state);
            }
            Value::Sym(s) => {
                state.write_u8(1);
                s.as_str().hash(state);
            }
            Value::Bool(b) => {
                state.write_u8(2);
                b.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.compare(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Sym(s) => write!(f, "{:?}", s.as_str()),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_cross_family_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_ne!(Value::Int(2), Value::Float(2.5));
        assert_eq!(hash_of(&Value::Int(2)), hash_of(&Value::Float(2.0)));
    }

    #[test]
    fn negative_zero_normalized() {
        assert_eq!(Value::Float(-0.0), Value::Int(0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Int(0)));
    }

    #[test]
    fn nan_equality_hash_and_order_are_consistent() {
        let nan = Value::Float(f64::NAN);
        // reflexive equality + matching hash: NaN is a usable map key
        assert_eq!(nan, Value::Float(f64::NAN));
        assert_eq!(hash_of(&nan), hash_of(&Value::Float(f64::NAN)));
        // defined sort position: positive NaN above every number...
        assert_eq!(
            nan.compare(&Value::Float(f64::INFINITY)),
            Some(Ordering::Greater)
        );
        assert_eq!(nan.compare(&Value::Int(i64::MAX)), Some(Ordering::Greater));
        // ...negative NaN below every number
        assert_eq!(
            Value::Float(-f64::NAN).compare(&Value::Float(f64::NEG_INFINITY)),
            Some(Ordering::Less)
        );
        // NaN never equals a real number (and vice versa)
        assert_ne!(nan, Value::Int(0));
        assert_ne!(Value::Float(0.0), nan);
    }

    #[test]
    fn cross_family_comparison_is_none() {
        assert_eq!(Value::str("a").compare(&Value::Int(1)), None);
        assert_ne!(Value::str("a"), Value::Int(1));
        assert_eq!(Value::Bool(true).compare(&Value::Int(1)), None);
    }

    #[test]
    fn ordering_within_families() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::str("alpha") < Value::str("beta"));
        assert!(Value::Bool(false) < Value::Bool(true));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::str("a").to_string(), "\"a\"");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn encoded_and_plain_strings_are_one_type() {
        let mut dict = Interner::new();
        let sym = dict.intern_value(Value::str("person"));
        let plain = Value::str("person");
        // equality, hash, order, display, accessors all agree
        assert_eq!(sym, plain);
        assert_eq!(plain, sym);
        assert_eq!(hash_of(&sym), hash_of(&plain));
        assert_eq!(sym.compare(&plain), Some(Ordering::Equal));
        assert_eq!(sym.to_string(), plain.to_string());
        assert_eq!(sym.as_str(), Some("person"));
        assert_eq!(sym.type_name(), "str");
        assert!(sym.same_family(&plain));
        // and a different text stays unequal in every combination
        let other = dict.intern_value(Value::str("city"));
        assert_ne!(sym, other);
        assert_ne!(other, plain);
        assert!(other < sym); // "city" < "person"
    }

    #[test]
    fn cross_dictionary_syms_compare_by_text() {
        let mut a = Interner::new();
        let mut b = Interner::new();
        b.intern("shift"); // make symbol ids diverge
        let va = a.intern_value(Value::str("x"));
        let vb = b.intern_value(Value::str("x"));
        assert_eq!(va, vb);
        assert_eq!(hash_of(&va), hash_of(&vb));
        let wa = a.intern_value(Value::str("y"));
        assert_ne!(wa, vb);
        // same symbol index in different dictionaries is NOT equality:
        // a's "x" and b's "shift" are both symbol 0
        let shift = Value::Sym(SymStr::new(
            b.dict_id(),
            crate::interner::Symbol(0),
            b.resolve_arc(crate::interner::Symbol(0)).clone(),
        ));
        assert_ne!(va, shift);
    }
}
