//! Attribute values stored on vertices and edges.
//!
//! The property-graph model annotates graph elements with key/value pairs
//! whose values are drawn from a small set of scalar types. Predicates in
//! pattern queries (`whyq-query`) compare against these values, so `Value`
//! provides a total order within a numeric family (integers and floats
//! compare against each other) and equality across all variants.
//!
//! ## NaN and signed-zero semantics (pinned)
//!
//! The numeric family is ordered by `f64::total_cmp` with `-0.0`
//! normalized to `0.0`, which makes three guarantees:
//!
//! * **Equality is reflexive and hash-consistent.** `Float(NAN)` equals
//!   itself (same bit pattern), `Int(0) == Float(0.0) == Float(-0.0)`, and
//!   equal values always hash equal — `Value` is safe as a map/index key.
//! * **NaN has a defined sort position** (total order: negative NaN below
//!   `-∞`, positive NaN above `+∞`), so sorting value lists never panics
//!   and is deterministic.
//! * **NaN matches no ordering predicate.** The sort position is a storage
//!   artifact, *not* a query semantic: range predicates
//!   (`whyq_query::Interval::Range`) reject NaN explicitly, so `x ≥ lo`,
//!   `x ≤ hi` and `lo ≤ x ≤ hi` are all false for a NaN attribute. Only an
//!   explicit equality/`OneOf` predicate carrying NaN itself can match a
//!   NaN value (identity membership, not ordering).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A scalar attribute value.
///
/// Integers and floats form one *numeric family*: `Value::Int(2)` compares
/// equal to `Value::Float(2.0)`. Strings and booleans only compare within
/// their own variant.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer (years, counts, identifiers, ...).
    Int(i64),
    /// 64-bit float (scores, coordinates, ...).
    Float(f64),
    /// UTF-8 string (names, labels, ...).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl Value {
    /// Build a string value from anything string-like.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Returns the numeric view of this value if it belongs to the numeric
    /// family, coercing integers to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the integer if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string slice if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if both values belong to the numeric family.
    pub fn same_family(&self, other: &Value) -> bool {
        use Value::*;
        matches!(
            (self, other),
            (Int(_) | Float(_), Int(_) | Float(_)) | (Str(_), Str(_)) | (Bool(_), Bool(_))
        )
    }

    /// Total comparison *within a family*; `None` when the families differ
    /// (a predicate comparing a string against a number never matches).
    ///
    /// Numbers follow `f64::total_cmp` with `-0.0` normalized, so NaN has
    /// a stable sort position; see the module docs for why that position
    /// deliberately does **not** make NaN satisfy ordering predicates.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                // normalize -0.0 so the numeric family is a consistent order
                let norm = |v: f64| if v == 0.0 { 0.0 } else { v };
                let (x, y) = (norm(a.as_f64()?), norm(b.as_f64()?));
                Some(x.total_cmp(&y))
            }
        }
    }

    /// Short tag used in error messages and debug displays.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Bool(_) => "bool",
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.compare(other) == Some(Ordering::Equal)
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Numeric family members must hash identically when equal:
        // hash every numeric value through its canonical f64 bit pattern
        // (normalizing -0.0 to 0.0 so Int(0) == Float(-0.0) hashes equal).
        match self {
            Value::Int(i) => {
                let f = *i as f64;
                state.write_u8(0);
                state.write_u64((if f == 0.0 { 0.0f64 } else { f }).to_bits());
            }
            Value::Float(f) => {
                state.write_u8(0);
                state.write_u64((if *f == 0.0 { 0.0f64 } else { *f }).to_bits());
            }
            Value::Str(s) => {
                state.write_u8(1);
                s.hash(state);
            }
            Value::Bool(b) => {
                state.write_u8(2);
                b.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.compare(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_cross_family_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_ne!(Value::Int(2), Value::Float(2.5));
        assert_eq!(hash_of(&Value::Int(2)), hash_of(&Value::Float(2.0)));
    }

    #[test]
    fn negative_zero_normalized() {
        assert_eq!(Value::Float(-0.0), Value::Int(0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Int(0)));
    }

    #[test]
    fn nan_equality_hash_and_order_are_consistent() {
        let nan = Value::Float(f64::NAN);
        // reflexive equality + matching hash: NaN is a usable map key
        assert_eq!(nan, Value::Float(f64::NAN));
        assert_eq!(hash_of(&nan), hash_of(&Value::Float(f64::NAN)));
        // defined sort position: positive NaN above every number...
        assert_eq!(
            nan.compare(&Value::Float(f64::INFINITY)),
            Some(Ordering::Greater)
        );
        assert_eq!(nan.compare(&Value::Int(i64::MAX)), Some(Ordering::Greater));
        // ...negative NaN below every number
        assert_eq!(
            Value::Float(-f64::NAN).compare(&Value::Float(f64::NEG_INFINITY)),
            Some(Ordering::Less)
        );
        // NaN never equals a real number (and vice versa)
        assert_ne!(nan, Value::Int(0));
        assert_ne!(Value::Float(0.0), nan);
    }

    #[test]
    fn cross_family_comparison_is_none() {
        assert_eq!(Value::str("a").compare(&Value::Int(1)), None);
        assert_ne!(Value::str("a"), Value::Int(1));
        assert_eq!(Value::Bool(true).compare(&Value::Int(1)), None);
    }

    #[test]
    fn ordering_within_families() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::str("alpha") < Value::str("beta"));
        assert!(Value::Bool(false) < Value::Bool(true));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::str("a").to_string(), "\"a\"");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }
}
