//! Basic graph algorithms used by the why-query engine.
//!
//! Only what the thesis needs: weakly connected components (the §4.3.1
//! optimization decomposes the *query* graph, but the same routine also
//! validates generated data graphs) and breadth-first traversal. All
//! traversals run over the graph's sealed CSR topology — neighbor scans
//! read the contiguous endpoint columns instead of chasing `EdgeData`.

use crate::graph::{PropertyGraph, VertexId};
use std::collections::VecDeque;

/// Compute the weakly connected components of the graph.
///
/// Returns one vertex list per component; components are ordered by their
/// smallest vertex id and vertices within a component are in BFS discovery
/// order.
pub fn weakly_connected_components(g: &PropertyGraph) -> Vec<Vec<VertexId>> {
    g.topology(); // warm the CSR cache so incident() scans columns
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    for start in g.vertex_ids() {
        if seen[start.0 as usize] {
            continue;
        }
        let mut comp = Vec::new();
        let mut queue = VecDeque::new();
        seen[start.0 as usize] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            comp.push(v);
            for (_, w) in g.incident(v) {
                if !seen[w.0 as usize] {
                    seen[w.0 as usize] = true;
                    queue.push_back(w);
                }
            }
        }
        components.push(comp);
    }
    components
}

/// Breadth-first order of vertices reachable from `start` treating edges as
/// undirected.
pub fn bfs_order(g: &PropertyGraph, start: VertexId) -> Vec<VertexId> {
    g.topology(); // warm the CSR cache so incident() scans columns
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[start.0 as usize] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for (_, w) in g.incident(v) {
            if !seen[w.0 as usize] {
                seen[w.0 as usize] = true;
                queue.push_back(w);
            }
        }
    }
    order
}

/// Shortest hop distance between two vertices treating edges as undirected;
/// `None` if unreachable.
pub fn hop_distance(g: &PropertyGraph, from: VertexId, to: VertexId) -> Option<usize> {
    if from == to {
        return Some(0);
    }
    g.topology(); // warm the CSR cache so incident() scans columns
    let n = g.num_vertices();
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    dist[from.0 as usize] = 0;
    queue.push_back(from);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.0 as usize];
        for (_, w) in g.incident(v) {
            if dist[w.0 as usize] == usize::MAX {
                dist[w.0 as usize] = d + 1;
                if w == to {
                    return Some(d + 1);
                }
                queue.push_back(w);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let vs: Vec<_> = (0..n).map(|_| g.add_vertex([])).collect();
        for w in vs.windows(2) {
            g.add_edge(w[0], w[1], "next", []);
        }
        g
    }

    #[test]
    fn single_component_chain() {
        let g = chain(5);
        let comps = weakly_connected_components(&g);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 5);
    }

    #[test]
    fn two_components() {
        let mut g = chain(3);
        let x = g.add_vertex([]);
        let y = g.add_vertex([]);
        g.add_edge(y, x, "back", []);
        let comps = weakly_connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 3);
        assert_eq!(comps[1].len(), 2);
    }

    #[test]
    fn bfs_reaches_against_direction() {
        let g = chain(4);
        // start at the last vertex; edges point forward but BFS is undirected
        let order = bfs_order(&g, VertexId(3));
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], VertexId(3));
    }

    #[test]
    fn hop_distances() {
        let g = chain(4);
        assert_eq!(hop_distance(&g, VertexId(0), VertexId(3)), Some(3));
        assert_eq!(hop_distance(&g, VertexId(3), VertexId(0)), Some(3));
        assert_eq!(hop_distance(&g, VertexId(2), VertexId(2)), Some(0));
        let mut g2 = chain(2);
        let lonely = g2.add_vertex([]);
        assert_eq!(hop_distance(&g2, VertexId(0), lonely), None);
    }

    #[test]
    fn empty_graph() {
        let g = PropertyGraph::new();
        assert!(weakly_connected_components(&g).is_empty());
    }
}
