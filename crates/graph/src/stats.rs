//! Graph-level summary statistics.
//!
//! Used by the workload generators to validate the shape of generated data
//! (degree skew, type mix) and by the evaluation harness to report the
//! data-set tables of Appendix A.

use crate::graph::PropertyGraph;
use crate::interner::Symbol;
use crate::value::Value;
use std::collections::HashMap;

/// Counts of edges per edge type.
pub fn edge_type_histogram(g: &PropertyGraph) -> Vec<(String, usize)> {
    let mut counts: HashMap<Symbol, usize> = HashMap::new();
    for e in g.edge_ids() {
        *counts.entry(g.edge(e).ty).or_default() += 1;
    }
    let mut out: Vec<(String, usize)> = counts
        .into_iter()
        .map(|(s, c)| (g.edge_types().resolve(s).to_string(), c))
        .collect();
    out.sort();
    out
}

/// Counts of vertices per value of a given attribute (typically `"type"`).
pub fn vertex_attr_histogram(g: &PropertyGraph, attr: &str) -> Vec<(String, usize)> {
    let Some(sym) = g.attr_symbol(attr) else {
        return Vec::new();
    };
    let mut counts: HashMap<String, usize> = HashMap::new();
    for v in g.vertex_ids() {
        if let Some(val) = g.vertex_attr(v, sym) {
            let key = match val.as_str() {
                Some(s) => s.to_string(),
                None => val.to_string(),
            };
            *counts.entry(key).or_default() += 1;
        }
    }
    let mut out: Vec<(String, usize)> = counts.into_iter().collect();
    out.sort();
    out
}

/// Sizes of the graph's three interners — how compressible the workload's
/// string universe is (the value dictionary is the interesting one: its
/// size vs. the element count is the dictionary-encoding win).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DictSummary {
    /// Distinct attribute names.
    pub attr_names: usize,
    /// Distinct edge types.
    pub edge_types: usize,
    /// Distinct string attribute values.
    pub values: usize,
}

/// Summarize the interner/dictionary sizes of a graph.
pub fn dict_summary(g: &PropertyGraph) -> DictSummary {
    DictSummary {
        attr_names: g.attr_names().len(),
        edge_types: g.edge_types().len(),
        values: g.values().len(),
    }
}

/// Degree distribution summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeSummary {
    /// Smallest total degree.
    pub min: usize,
    /// Largest total degree.
    pub max: usize,
    /// Mean total degree.
    pub mean: f64,
    /// Number of isolated vertices.
    pub isolated: usize,
}

/// Summarize the (in+out) degree distribution.
pub fn degree_summary(g: &PropertyGraph) -> DegreeSummary {
    let n = g.num_vertices();
    if n == 0 {
        return DegreeSummary {
            min: 0,
            max: 0,
            mean: 0.0,
            isolated: 0,
        };
    }
    let topo = g.topology();
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0usize;
    let mut isolated = 0usize;
    for v in g.vertex_ids() {
        // two offset subtractions per vertex off the CSR extents
        let d = topo.out_degree(v) + topo.in_degree(v);
        min = min.min(d);
        max = max.max(d);
        sum += d;
        if d == 0 {
            isolated += 1;
        }
    }
    DegreeSummary {
        min,
        max,
        mean: sum as f64 / n as f64,
        isolated,
    }
}

/// Distinct values of an attribute across all vertices, sorted.
///
/// Feeds the attribute-domain catalog that query *concretization* operations
/// draw new predicate values from (§6.2.2).
pub fn distinct_vertex_values(g: &PropertyGraph, attr: &str) -> Vec<Value> {
    let Some(sym) = g.attr_symbol(attr) else {
        return Vec::new();
    };
    let mut vals: Vec<Value> = Vec::new();
    for v in g.vertex_ids() {
        if let Some(val) = g.vertex_attr(v, sym) {
            if !vals.contains(val) {
                vals.push(val.clone());
            }
        }
    }
    vals.sort_by(|a, b| {
        a.partial_cmp(b)
            .unwrap_or_else(|| a.type_name().cmp(b.type_name()))
    });
    vals
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person")), ("age", Value::Int(30))]);
        let b = g.add_vertex([("type", Value::str("person")), ("age", Value::Int(25))]);
        let c = g.add_vertex([("type", Value::str("city"))]);
        g.add_vertex([]); // isolated
        g.add_edge(a, b, "knows", []);
        g.add_edge(a, c, "livesIn", []);
        g.add_edge(b, c, "livesIn", []);
        g
    }

    #[test]
    fn edge_histogram_counts_types() {
        let g = sample();
        assert_eq!(
            edge_type_histogram(&g),
            vec![("knows".into(), 1), ("livesIn".into(), 2)]
        );
    }

    #[test]
    fn vertex_histogram_counts_attr_values() {
        let g = sample();
        assert_eq!(
            vertex_attr_histogram(&g, "type"),
            vec![("city".into(), 1), ("person".into(), 2)]
        );
        assert!(vertex_attr_histogram(&g, "nope").is_empty());
    }

    #[test]
    fn degree_summary_detects_isolated() {
        let g = sample();
        let s = degree_summary(&g);
        assert_eq!(s.isolated, 1);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 2);
        assert!((s.mean - 6.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn dict_summary_counts_interners() {
        let g = sample();
        let d = dict_summary(&g);
        assert_eq!(d.edge_types, 2); // knows, livesIn
        assert_eq!(d.attr_names, 2); // type, age
        assert_eq!(d.values, 2); // "person", "city"
    }

    #[test]
    fn distinct_values_sorted() {
        let g = sample();
        assert_eq!(
            distinct_vertex_values(&g, "age"),
            vec![Value::Int(25), Value::Int(30)]
        );
    }
}
