//! Error types for the graph substrate.

use crate::graph::{EdgeId, VertexId};
use std::fmt;

/// Errors raised by graph construction and lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id referenced an out-of-range slot.
    VertexOutOfRange(VertexId),
    /// An edge id referenced an out-of-range slot.
    EdgeOutOfRange(EdgeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange(v) => write!(f, "vertex {} out of range", v.0),
            GraphError::EdgeOutOfRange(e) => write!(f, "edge {} out of range", e.0),
        }
    }
}

impl std::error::Error for GraphError {}
