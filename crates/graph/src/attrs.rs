//! Compact attribute maps for graph elements.
//!
//! Most vertices and edges carry only a handful of attributes, so a sorted
//! vector of `(Symbol, Value)` pairs beats a hash map both in memory and in
//! lookup speed (binary search over `u32` keys).

use crate::interner::Symbol;
use crate::value::Value;

/// A small sorted map from interned attribute names to values.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct AttrMap {
    entries: Vec<(Symbol, Value)>,
}

impl AttrMap {
    /// Create an empty attribute map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the element carries no attributes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert or replace the value for `key`, returning the previous value.
    pub fn insert(&mut self, key: Symbol, value: Value) -> Option<Value> {
        match self.entries.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(pos) => Some(std::mem::replace(&mut self.entries[pos].1, value)),
            Err(pos) => {
                self.entries.insert(pos, (key, value));
                None
            }
        }
    }

    /// Look up the value for `key`.
    pub fn get(&self, key: Symbol) -> Option<&Value> {
        self.entries
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|pos| &self.entries[pos].1)
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: Symbol) -> Option<Value> {
        match self.entries.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(pos) => Some(self.entries.remove(pos).1),
            Err(_) => None,
        }
    }

    /// True if `key` is present.
    pub fn contains(&self, key: Symbol) -> bool {
        self.get(key).is_some()
    }

    /// Iterate over `(symbol, value)` pairs in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Value)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }
}

impl FromIterator<(Symbol, Value)> for AttrMap {
    fn from_iter<T: IntoIterator<Item = (Symbol, Value)>>(iter: T) -> Self {
        let mut m = AttrMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_replace() {
        let mut m = AttrMap::new();
        assert_eq!(m.insert(Symbol(3), Value::Int(1)), None);
        assert_eq!(m.insert(Symbol(1), Value::Int(2)), None);
        assert_eq!(m.get(Symbol(3)), Some(&Value::Int(1)));
        assert_eq!(m.insert(Symbol(3), Value::Int(9)), Some(Value::Int(1)));
        assert_eq!(m.get(Symbol(3)), Some(&Value::Int(9)));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn iteration_is_sorted_by_symbol() {
        let mut m = AttrMap::new();
        m.insert(Symbol(5), Value::Int(5));
        m.insert(Symbol(1), Value::Int(1));
        m.insert(Symbol(3), Value::Int(3));
        let keys: Vec<u32> = m.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }

    #[test]
    fn remove_and_contains() {
        let mut m: AttrMap = [(Symbol(0), Value::Bool(true))].into_iter().collect();
        assert!(m.contains(Symbol(0)));
        assert_eq!(m.remove(Symbol(0)), Some(Value::Bool(true)));
        assert!(!m.contains(Symbol(0)));
        assert_eq!(m.remove(Symbol(0)), None);
        assert!(m.is_empty());
    }
}
