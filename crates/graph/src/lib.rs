//! # whyq-graph — property-graph substrate
//!
//! Implements the property-graph model of Definition 1 (§3.1.1) of
//! *"Why-Query Support in Graph Databases"* (Vasilyeva, 2016):
//! a directed multigraph `G = (V, E, u, f, g, A_V, A_E)` where
//!
//! * `V`, `E` are finite sets of vertices and edges,
//! * `u : E → V²` maps every edge to an ordered pair of endpoint vertices,
//! * `f : V → A_V` and `g : E → A_E` attach attribute values
//!   (key/value pairs) to vertices and edges, and
//! * every edge additionally carries a *type* (a distinguished attribute
//!   that predicates treat specially, §3.2.2).
//!
//! The store is an in-memory arena: vertices and edges are dense `u32`
//! indices, attribute names and edge types are interned symbols, and
//! adjacency lives in two phases — per-vertex in/out edge lists while the
//! graph is being **built**, and a cache-dense compressed-sparse-row arena
//! ([`CsrTopology`]) once it is **sealed** (see [`graph`] for the full
//! lifecycle). This is the substrate every other crate of the workspace
//! builds on — the pattern matcher (`whyq-matcher`), the why-query engine
//! (`whyq-core`) and the workload generators (`whyq-datagen`).

// The whole workspace is unsafe-free (audited 2026-08): lock it in.
#![forbid(unsafe_code)]

pub mod algo;
pub mod attrs;
pub mod csr;
pub mod error;
pub mod graph;
pub mod interner;
pub mod io;
pub mod stats;
pub mod value;

pub use attrs::AttrMap;
pub use csr::{AdjSlice, CsrTopology};
pub use error::GraphError;
pub use graph::{EdgeData, EdgeId, PropertyGraph, VertexData, VertexId};
pub use interner::{Interner, Symbol};
pub use io::{read_graph, write_graph};
pub use value::{SymStr, Value};
