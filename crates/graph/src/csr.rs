//! Sealed CSR adjacency — the cache-dense read layout of a
//! [`crate::PropertyGraph`].
//!
//! During construction the graph keeps per-vertex adjacency `Vec`s (cheap
//! to append to). For matching, the hot loop is a *scan* over one vertex's
//! candidate edges, and per-vertex `Vec`s scatter those scans across the
//! heap and force a pointer chase into [`crate::EdgeData`] for every
//! candidate just to learn its opposite endpoint and type. Sealing
//! compacts adjacency into two compressed-sparse-row arenas (one per
//! direction), each a struct-of-arrays:
//!
//! * `edges`   — edge ids, grouped per vertex and, within a vertex, in
//!   contiguous per-type runs (the same order the build lists keep);
//! * `others`  — the opposite endpoint of each entry (`dst` in the out
//!   arena, `src` in the in arena);
//! * `types`   — the edge type of each entry;
//! * `offsets` — per-vertex extents into the arena (`offsets[v]..offsets[v+1]`);
//! * `runs` / `run_offsets` — the per-vertex type-run table, so a typed
//!   scan is one binary search plus one contiguous slice.
//!
//! A candidate scan therefore reads `(edge, other, type)` straight out of
//! three parallel arrays — no `EdgeData` load at all unless a predicate
//! needs edge attributes. [`AdjSlice`] bundles the three parallel slices of
//! one scan.

use crate::graph::{EdgeData, EdgeId, VertexId};
use crate::interner::Symbol;
use std::ops::Range;

/// Parallel slices over one vertex's (possibly type-restricted) adjacency:
/// `edges[i]` connects the scanned vertex to `others[i]` and has type
/// `types[i]`. All three slices have equal length and index together.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdjSlice<'a> {
    /// Candidate edge ids.
    pub edges: &'a [EdgeId],
    /// Opposite endpoint of each candidate edge.
    pub others: &'a [VertexId],
    /// Edge type of each candidate edge.
    pub types: &'a [Symbol],
}

impl<'a> AdjSlice<'a> {
    /// Number of candidate edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterate over `(edge, other endpoint)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeId, VertexId)> + 'a {
        self.edges.iter().copied().zip(self.others.iter().copied())
    }

    /// The `i`-th `(edge, other endpoint)` candidate — random access for
    /// resumable scans (the matcher's streaming DFS stores a position into
    /// the slice across suspension points).
    pub fn get(&self, i: usize) -> (EdgeId, VertexId) {
        (self.edges[i], self.others[i])
    }
}

/// One direction (out or in) of the sealed adjacency.
#[derive(Debug, Clone, Default)]
pub(crate) struct CsrDir {
    edges: Vec<EdgeId>,
    others: Vec<VertexId>,
    types: Vec<Symbol>,
    /// `offsets[v]..offsets[v + 1]` is vertex `v`'s extent in the arena.
    offsets: Vec<u32>,
    /// `(type, absolute end offset)` runs, concatenated across vertices;
    /// a run starts at the previous run's end (or the vertex extent start).
    runs: Vec<(Symbol, u32)>,
    /// `run_offsets[v]..run_offsets[v + 1]` is vertex `v`'s extent in `runs`.
    run_offsets: Vec<u32>,
}

impl CsrDir {
    /// Compact per-vertex `(type, edge)` run lists into one arena.
    /// `lists` yields, per vertex, the flat edge ids and the relative
    /// `(type, end)` run table — exactly the layout the build-phase
    /// adjacency keeps.
    pub(crate) fn build<'a, I>(lists: I, edges: &[EdgeData], take_dst: bool) -> CsrDir
    where
        I: Iterator<Item = (&'a [EdgeId], &'a [(Symbol, u32)])>,
    {
        let mut dir = CsrDir {
            edges: Vec::new(),
            others: Vec::new(),
            types: Vec::new(),
            offsets: vec![0],
            runs: Vec::new(),
            run_offsets: vec![0],
        };
        for (flat, runs) in lists {
            let base = dir.edges.len() as u32;
            for &e in flat {
                let ed = &edges[e.0 as usize];
                dir.edges.push(e);
                dir.others.push(if take_dst { ed.dst } else { ed.src });
                dir.types.push(ed.ty);
            }
            for &(ty, end) in runs {
                dir.runs.push((ty, base + end));
            }
            dir.offsets.push(dir.edges.len() as u32);
            dir.run_offsets.push(dir.runs.len() as u32);
        }
        dir
    }

    fn extent(&self, v: VertexId) -> Range<usize> {
        self.offsets[v.0 as usize] as usize..self.offsets[v.0 as usize + 1] as usize
    }

    fn extent_u32(&self, v: VertexId) -> Range<u32> {
        self.offsets[v.0 as usize]..self.offsets[v.0 as usize + 1]
    }

    fn extent_of_u32(&self, v: VertexId, ty: Symbol) -> Range<u32> {
        let r = self.extent_of(v, ty);
        r.start as u32..r.end as u32
    }

    /// The arena extent of `v`'s edges of type `ty` (empty if none).
    fn extent_of(&self, v: VertexId, ty: Symbol) -> Range<usize> {
        let rr =
            self.run_offsets[v.0 as usize] as usize..self.run_offsets[v.0 as usize + 1] as usize;
        let runs = &self.runs[rr];
        match runs.binary_search_by_key(&ty, |(t, _)| *t) {
            Ok(i) => {
                let start = if i == 0 {
                    self.offsets[v.0 as usize]
                } else {
                    runs[i - 1].1
                };
                start as usize..runs[i].1 as usize
            }
            Err(_) => 0..0,
        }
    }

    pub(crate) fn edge_ids(&self, v: VertexId) -> &[EdgeId] {
        &self.edges[self.extent(v)]
    }

    pub(crate) fn entries(&self, v: VertexId) -> AdjSlice<'_> {
        self.slice(self.extent(v))
    }

    pub(crate) fn entries_of(&self, v: VertexId, ty: Symbol) -> AdjSlice<'_> {
        self.slice(self.extent_of(v, ty))
    }

    pub(crate) fn degree(&self, v: VertexId) -> usize {
        self.extent(v).len()
    }

    fn slice(&self, r: Range<usize>) -> AdjSlice<'_> {
        AdjSlice {
            edges: &self.edges[r.clone()],
            others: &self.others[r.clone()],
            types: &self.types[r],
        }
    }
}

/// The sealed, read-optimized adjacency of a graph: one CSR arena per
/// direction. Obtained from [`crate::PropertyGraph::topology`] (built
/// lazily and cached) or pinned permanently by
/// [`crate::PropertyGraph::seal`].
#[derive(Debug, Clone, Default)]
pub struct CsrTopology {
    pub(crate) out: CsrDir,
    pub(crate) inn: CsrDir,
}

impl CsrTopology {
    /// Outgoing entries of `v`, grouped in contiguous per-type runs.
    pub fn out_entries(&self, v: VertexId) -> AdjSlice<'_> {
        self.out.entries(v)
    }

    /// Incoming entries of `v`, grouped in contiguous per-type runs.
    pub fn in_entries(&self, v: VertexId) -> AdjSlice<'_> {
        self.inn.entries(v)
    }

    /// Outgoing entries of `v` whose type is `ty`.
    pub fn out_entries_of(&self, v: VertexId, ty: Symbol) -> AdjSlice<'_> {
        self.out.entries_of(v, ty)
    }

    /// Incoming entries of `v` whose type is `ty`.
    pub fn in_entries_of(&self, v: VertexId, ty: Symbol) -> AdjSlice<'_> {
        self.inn.entries_of(v, ty)
    }

    /// Outgoing edge ids of `v`.
    pub fn out_edge_ids(&self, v: VertexId) -> &[EdgeId] {
        self.out.edge_ids(v)
    }

    /// Incoming edge ids of `v`.
    pub fn in_edge_ids(&self, v: VertexId) -> &[EdgeId] {
        self.inn.edge_ids(v)
    }

    /// Out-degree of `v` (one offset subtraction).
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out.degree(v)
    }

    /// In-degree of `v` (one offset subtraction).
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.inn.degree(v)
    }

    /// Absolute out-arena extent of `v`'s entries. Pair with
    /// [`CsrTopology::out_slice`]: resumable scans can resolve an extent
    /// once, store the two `u32`s across suspension points, and reslice
    /// in O(1) on every resume instead of re-running the offset (and,
    /// for typed runs, binary-search) lookups.
    pub fn out_extent(&self, v: VertexId) -> Range<u32> {
        self.out.extent_u32(v)
    }

    /// Absolute in-arena extent of `v`'s entries.
    pub fn in_extent(&self, v: VertexId) -> Range<u32> {
        self.inn.extent_u32(v)
    }

    /// Absolute out-arena extent of `v`'s entries of type `ty` (empty if
    /// none).
    pub fn out_extent_of(&self, v: VertexId, ty: Symbol) -> Range<u32> {
        self.out.extent_of_u32(v, ty)
    }

    /// Absolute in-arena extent of `v`'s entries of type `ty` (empty if
    /// none).
    pub fn in_extent_of(&self, v: VertexId, ty: Symbol) -> Range<u32> {
        self.inn.extent_of_u32(v, ty)
    }

    /// Reslice an extent previously obtained from
    /// [`CsrTopology::out_extent`] / [`CsrTopology::out_extent_of`].
    pub fn out_slice(&self, r: Range<u32>) -> AdjSlice<'_> {
        self.out.slice(r.start as usize..r.end as usize)
    }

    /// Reslice an extent previously obtained from
    /// [`CsrTopology::in_extent`] / [`CsrTopology::in_extent_of`].
    pub fn in_slice(&self, r: Range<u32>) -> AdjSlice<'_> {
        self.inn.slice(r.start as usize..r.end as usize)
    }
}
