//! String interning for attribute names and edge types.
//!
//! Attribute names repeat across millions of graph elements; storing them as
//! `u32` symbols keeps [`crate::AttrMap`]s small and makes predicate lookup a
//! binary search over integers instead of string comparisons.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An interned string. Symbols are only meaningful relative to the
/// [`Interner`] (and therefore the [`crate::PropertyGraph`]) that created
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// A simple append-only string interner.
///
/// Each distinct string is allocated exactly once: the lookup map and the
/// symbol-indexed table share one `Arc<str>` (an `Arc` clone is a refcount
/// bump, not a copy), and [`Interner::resolve`] hands out plain `&str`
/// borrows into that shared allocation.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    by_name: HashMap<Arc<str>, Symbol>,
    names: Vec<Arc<str>>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its symbol (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.names.len()).expect("interner overflow"));
        let shared: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&shared));
        self.by_name.insert(shared, sym);
        sym
    }

    /// Look up a previously interned string without interning it.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// Resolve a symbol back to its string.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(symbol, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), &**n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("age");
        let b = i.intern("age");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("age");
        let n = i.intern("name");
        assert_ne!(a, n);
        assert_eq!(i.resolve(a), "age");
        assert_eq!(i.resolve(n), "name");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("missing"), None);
        i.intern("present");
        assert!(i.get("present").is_some());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn map_and_table_share_one_allocation() {
        let mut i = Interner::new();
        let sym = i.intern("shared");
        // the table entry and the map key are the same allocation: one
        // fresh Arc plus the two owners held by the interner
        let name = &i.names[sym.0 as usize];
        assert_eq!(std::sync::Arc::strong_count(name), 2);
        assert!(std::ptr::eq(
            i.resolve(sym),
            &**i.by_name.get_key_value("shared").unwrap().0
        ));
    }

    #[test]
    fn iter_yields_in_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let collected: Vec<_> = i.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(collected, vec!["a", "b"]);
    }
}
