//! String interning for attribute names, edge types and — since the value
//! dictionary — attribute *values*.
//!
//! Attribute names repeat across millions of graph elements; storing them as
//! `u32` symbols keeps [`crate::AttrMap`]s small and makes predicate lookup a
//! binary search over integers instead of string comparisons. The same
//! machinery doubles as the per-graph **value dictionary**: every
//! [`Value::Str`](crate::Value) stored on a vertex or edge is interned
//! through [`Interner::intern_value`] into a
//! [`Value::Sym`](crate::Value), so string-equality predicates compare
//! one `u32` instead of walking heap strings (see `crate::value` for the
//! encoding invariants).
//!
//! Lookups never allocate: [`Interner::get`] and the probe half of
//! [`Interner::intern`] take `&str` and hash the borrowed bytes directly
//! (`Arc<str>: Borrow<str>`), so checking whether a constant exists in a
//! dictionary is allocation-free even for misses.

use crate::value::{SymStr, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// An interned string. Symbols are only meaningful relative to the
/// [`Interner`] (and therefore the [`crate::PropertyGraph`]) that created
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// Source of fresh dictionary identities (see [`Interner::dict_id`]).
static NEXT_DICT_ID: AtomicU32 = AtomicU32::new(1);

fn fresh_dict_id() -> u32 {
    NEXT_DICT_ID.fetch_add(1, Ordering::Relaxed)
}

/// A simple append-only string interner.
///
/// Each distinct string is allocated exactly once: the lookup map and the
/// symbol-indexed table share one `Arc<str>` (an `Arc` clone is a refcount
/// bump, not a copy), and [`Interner::resolve`] hands out plain `&str`
/// borrows into that shared allocation.
///
/// Every interner carries a process-unique **dictionary id**. Two symbols
/// are comparable as integers only when their dictionary ids match; the id
/// is embedded in every [`Value::Sym`] the interner mints so `Value`
/// equality knows when the `u32` fast path is sound. Cloning an interner
/// assigns a *fresh* id: the clone starts with the same table but may
/// diverge (clone A interns `"x"` as symbol 7 while clone B interns `"y"`
/// as symbol 7), so symbols minted after the split must not alias. Values
/// minted *before* the split still compare cheaply across the clones —
/// they share the same `Arc` allocation, which the cross-dictionary
/// fallback detects with a pointer comparison.
#[derive(Debug)]
pub struct Interner {
    dict: u32,
    by_name: HashMap<Arc<str>, Symbol>,
    names: Vec<Arc<str>>,
}

impl Default for Interner {
    fn default() -> Self {
        Interner {
            dict: fresh_dict_id(),
            by_name: HashMap::new(),
            names: Vec::new(),
        }
    }
}

impl Clone for Interner {
    fn clone(&self) -> Self {
        Interner {
            // a fresh identity: the clone's future symbol assignments may
            // diverge from the original's, so their symbols must never be
            // integer-compared against each other (see the type docs)
            dict: fresh_dict_id(),
            by_name: self.by_name.clone(),
            names: self.names.clone(),
        }
    }
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-unique dictionary identity of this interner.
    pub fn dict_id(&self) -> u32 {
        self.dict
    }

    /// Intern `name`, returning its symbol (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.names.len()).expect("interner overflow"));
        let shared: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&shared));
        self.by_name.insert(shared, sym);
        sym
    }

    /// Intern `name` and hand back the shared allocation alongside the
    /// symbol — the building block of [`Interner::intern_value`].
    pub fn intern_arc(&mut self, name: &str) -> (Symbol, Arc<str>) {
        let sym = self.intern(name);
        (sym, Arc::clone(&self.names[sym.0 as usize]))
    }

    /// Dictionary-encode a value: `Str` is interned into a [`Value::Sym`]
    /// carrying this interner's dictionary id; a foreign `Sym` (minted by
    /// another dictionary) is re-encoded through its text; a `Sym` of this
    /// dictionary and every non-string value pass through unchanged.
    pub fn intern_value(&mut self, v: Value) -> Value {
        match v {
            Value::Str(s) => {
                let (sym, text) = self.intern_arc(&s);
                Value::Sym(SymStr::new(self.dict, sym, text))
            }
            Value::Sym(sv) => {
                if sv.dict_id() == self.dict {
                    Value::Sym(sv)
                } else {
                    let (sym, text) = self.intern_arc(sv.as_str());
                    Value::Sym(SymStr::new(self.dict, sym, text))
                }
            }
            other => other,
        }
    }

    /// Look up a previously interned string without interning it. The probe
    /// borrows `name` — no allocation, even on a miss.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// Resolve a symbol back to its string.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Resolve a symbol to the shared allocation behind it.
    pub fn resolve_arc(&self, sym: Symbol) -> &Arc<str> {
        &self.names[sym.0 as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(symbol, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), &**n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("age");
        let b = i.intern("age");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("age");
        let n = i.intern("name");
        assert_ne!(a, n);
        assert_eq!(i.resolve(a), "age");
        assert_eq!(i.resolve(n), "name");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("missing"), None);
        i.intern("present");
        assert!(i.get("present").is_some());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn map_and_table_share_one_allocation() {
        let mut i = Interner::new();
        let sym = i.intern("shared");
        // the table entry and the map key are the same allocation: one
        // fresh Arc plus the two owners held by the interner
        let name = &i.names[sym.0 as usize];
        assert_eq!(std::sync::Arc::strong_count(name), 2);
        assert!(std::ptr::eq(
            i.resolve(sym),
            &**i.by_name.get_key_value("shared").unwrap().0
        ));
    }

    #[test]
    fn iter_yields_in_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let collected: Vec<_> = i.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(collected, vec!["a", "b"]);
    }

    #[test]
    fn dict_ids_are_unique_and_clone_gets_a_fresh_one() {
        let a = Interner::new();
        let b = Interner::new();
        assert_ne!(a.dict_id(), b.dict_id());
        let c = a.clone();
        assert_ne!(a.dict_id(), c.dict_id());
    }

    #[test]
    fn intern_value_encodes_strings_and_passes_scalars() {
        let mut i = Interner::new();
        let v = i.intern_value(Value::str("person"));
        let Value::Sym(sv) = &v else {
            panic!("expected Sym, got {v:?}");
        };
        assert_eq!(sv.as_str(), "person");
        assert_eq!(sv.dict_id(), i.dict_id());
        assert_eq!(i.resolve(sv.sym()), "person");
        // idempotent: re-encoding a native Sym is a no-op
        let again = i.intern_value(v.clone());
        assert_eq!(again, v);
        // scalars pass through untouched
        assert_eq!(i.intern_value(Value::Int(3)), Value::Int(3));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn foreign_sym_is_reencoded() {
        let mut a = Interner::new();
        let mut b = Interner::new();
        b.intern("padding"); // shift symbol space so ids differ
        let va = a.intern_value(Value::str("x"));
        let vb = b.intern_value(va.clone());
        let (Value::Sym(sa), Value::Sym(sb)) = (&va, &vb) else {
            panic!("expected Syms");
        };
        assert_eq!(sb.dict_id(), b.dict_id());
        assert_ne!(sa.sym(), sb.sym());
        // ...but the values still compare equal (same text)
        assert_eq!(va, vb);
    }
}
