//! Plain-text serialization of property graphs.
//!
//! A line-oriented TSV-like format good enough to persist generated
//! workloads and exchange graphs with external tools:
//!
//! ```text
//! V <attr>=<value> ...            # one vertex per line, ids implicit 0..n
//! E <src> <dst> <type> <attr>=<value> ...
//! ```
//!
//! Values encode their type: `i:42`, `f:3.5`, `b:true`, `s:text` (with
//! `\t`, `\n`, `\\` escaped in strings). Attribute order is normalized on
//! write, so serialization is canonical for equal graphs.

use crate::graph::{PropertyGraph, VertexId};
use crate::value::Value;
use std::fmt::Write as _;
use std::str::FromStr;

/// Errors produced by [`read_graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for IoError {}

fn encode_value(v: &Value, out: &mut String) {
    match v {
        Value::Int(i) => {
            let _ = write!(out, "i:{i}");
        }
        Value::Float(x) => {
            let _ = write!(out, "f:{x}");
        }
        Value::Bool(b) => {
            let _ = write!(out, "b:{b}");
        }
        // both string encodings serialize as decoded text — the dictionary
        // is an in-memory artifact, rebuilt on read
        Value::Str(_) | Value::Sym(_) => {
            let s = v.as_str().expect("string family");
            out.push_str("s:");
            for c in s.chars() {
                match c {
                    '\t' => out.push_str("\\t"),
                    '\n' => out.push_str("\\n"),
                    '\\' => out.push_str("\\\\"),
                    c => out.push(c),
                }
            }
        }
    }
}

fn decode_value(text: &str, line: usize) -> Result<Value, IoError> {
    let err = |m: &str| IoError {
        line,
        message: m.to_string(),
    };
    let (tag, body) = text
        .split_once(':')
        .ok_or_else(|| err("missing value tag"))?;
    match tag {
        "i" => i64::from_str(body)
            .map(Value::Int)
            .map_err(|_| err("bad integer")),
        "f" => f64::from_str(body)
            .map(Value::Float)
            .map_err(|_| err("bad float")),
        "b" => match body {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => Err(err("bad boolean")),
        },
        "s" => {
            let mut s = String::with_capacity(body.len());
            let mut chars = body.chars();
            while let Some(c) = chars.next() {
                if c == '\\' {
                    match chars.next() {
                        Some('t') => s.push('\t'),
                        Some('n') => s.push('\n'),
                        Some('\\') => s.push('\\'),
                        _ => return Err(err("bad escape")),
                    }
                } else {
                    s.push(c);
                }
            }
            Ok(Value::Str(s))
        }
        _ => Err(err("unknown value tag")),
    }
}

/// Serialize a graph to the canonical text format.
pub fn write_graph(g: &PropertyGraph) -> String {
    let mut out = String::new();
    for v in g.vertex_ids() {
        out.push('V');
        for (sym, val) in g.vertex(v).attrs.iter() {
            out.push('\t');
            out.push_str(g.attr_names().resolve(sym));
            out.push('=');
            encode_value(val, &mut out);
        }
        out.push('\n');
    }
    for e in g.edge_ids() {
        let ed = g.edge(e);
        let _ = write!(
            out,
            "E\t{}\t{}\t{}",
            ed.src.0,
            ed.dst.0,
            g.edge_types().resolve(ed.ty)
        );
        for (sym, val) in ed.attrs.iter() {
            out.push('\t');
            out.push_str(g.attr_names().resolve(sym));
            out.push('=');
            encode_value(val, &mut out);
        }
        out.push('\n');
    }
    out
}

/// Parse a graph from the text format.
pub fn read_graph(text: &str) -> Result<PropertyGraph, IoError> {
    let mut g = PropertyGraph::new();
    let mut vertex_count = 0u32;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let err = |m: &str| IoError {
            line: lineno,
            message: m.to_string(),
        };
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        match fields.next() {
            Some("V") => {
                let mut attrs = Vec::new();
                for f in fields {
                    let (k, v) = f
                        .split_once('=')
                        .ok_or_else(|| err("expected attr=value"))?;
                    attrs.push((k, decode_value(v, lineno)?));
                }
                g.add_vertex(attrs.iter().map(|(k, v)| (*k, v.clone())));
                vertex_count += 1;
            }
            Some("E") => {
                let src: u32 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad src id"))?;
                let dst: u32 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad dst id"))?;
                let ty = fields.next().ok_or_else(|| err("missing edge type"))?;
                if src >= vertex_count || dst >= vertex_count {
                    return Err(err("edge endpoint out of range"));
                }
                let mut attrs = Vec::new();
                for f in fields {
                    let (k, v) = f
                        .split_once('=')
                        .ok_or_else(|| err("expected attr=value"))?;
                    attrs.push((k, decode_value(v, lineno)?));
                }
                g.add_edge(
                    VertexId(src),
                    VertexId(dst),
                    ty,
                    attrs.iter().map(|(k, v)| (*k, v.clone())),
                );
            }
            _ => return Err(err("expected 'V' or 'E' record")),
        }
    }
    // a parsed graph is complete: hand it back already sealed so readers
    // start on the CSR layout without paying a later lazy build (string
    // values were dictionary-encoded on the way in by `add_vertex`/
    // `add_edge`)
    g.seal();
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([
            ("type", Value::str("person")),
            ("name", Value::str("Anna\tTab")),
            ("age", Value::Int(30)),
        ]);
        let b = g.add_vertex([("type", Value::str("city")), ("lat", Value::Float(51.05))]);
        g.add_edge(
            a,
            b,
            "livesIn",
            [("since", Value::Int(2003)), ("ok", Value::Bool(true))],
        );
        g
    }

    #[test]
    fn round_trip_preserves_everything() {
        let g = sample();
        let text = write_graph(&g);
        let g2 = read_graph(&text).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        // canonical: serializing again yields identical text
        assert_eq!(write_graph(&g2), text);
        // attributes including escaped tab survive
        let name = g2.attr_symbol("name").unwrap();
        assert_eq!(
            g2.vertex_attr(VertexId(0), name),
            Some(&Value::str("Anna\tTab"))
        );
        let since = g2.attr_symbol("since").unwrap();
        assert_eq!(
            g2.edge_attr(crate::graph::EdgeId(0), since),
            Some(&Value::Int(2003))
        );
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let g = read_graph("# a comment\n\nV\ttype=s:x\n").unwrap();
        assert_eq!(g.num_vertices(), 1);
    }

    #[test]
    fn errors_report_line_numbers() {
        let err = read_graph("V\nX\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = read_graph("E\t0\t1\tt\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("out of range"));
        let err = read_graph("V\tx=q:1\n").unwrap_err();
        assert!(err.message.contains("unknown value tag"));
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = PropertyGraph::new();
        assert_eq!(read_graph(&write_graph(&g)).unwrap().num_vertices(), 0);
    }
}
