//! Minimum-cost assignment (Algorithm 2, §3.2.4).
//!
//! The result-level comparison models matching original result graphs to
//! explanation result graphs as a generalized assignment problem (Def. 8)
//! solved by the Hungarian method. This is the O(n³) potential-based
//! Kuhn–Munkres formulation for square cost matrices.

/// Solve the square minimum-cost assignment problem.
///
/// `cost[i][j]` is the cost of assigning row `i` to column `j`. Returns the
/// column assigned to each row and the total cost.
///
/// # Panics
/// Panics if `cost` is not square.
pub fn hungarian(cost: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = cost.len();
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    for row in cost {
        assert_eq!(row.len(), n, "cost matrix must be square");
    }

    const INF: f64 = f64::INFINITY;
    // 1-based potentials; p[j] = row matched to column j (0 = none)
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1];
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // augmenting path
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![0usize; n];
    let mut total = 0.0;
    for j in 1..=n {
        if p[j] > 0 {
            assignment[p[j] - 1] = j - 1;
            total += cost[p[j] - 1][j - 1];
        }
    }
    (assignment, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        let n = cost.len();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut best = f64::INFINITY;
        permute(&mut perm, 0, cost, &mut best);
        best
    }

    fn permute(perm: &mut Vec<usize>, k: usize, cost: &[Vec<f64>], best: &mut f64) {
        let n = perm.len();
        if k == n {
            let total: f64 = (0..n).map(|i| cost[i][perm[i]]).sum();
            if total < *best {
                *best = total;
            }
            return;
        }
        for i in k..n {
            perm.swap(k, i);
            permute(perm, k + 1, cost, best);
            perm.swap(k, i);
        }
    }

    #[test]
    fn thesis_worked_example() {
        // §3.2.4 example matrix; optimal assignment d31, d22, d43, d14 with
        // total cost 0.58 and normalized distance 0.145
        let cost = vec![
            vec![0.15, 0.21, 0.18, 0.16],
            vec![0.10, 0.17, 0.60, 0.48],
            vec![0.12, 0.29, 0.10, 0.15],
            vec![0.23, 0.44, 0.13, 0.25],
        ];
        let (assignment, total) = hungarian(&cost);
        assert!((total - 0.58).abs() < 1e-9, "total was {total}");
        assert_eq!(assignment, vec![3, 1, 0, 2]);
    }

    #[test]
    fn identity_is_optimal_for_diagonal_zeroes() {
        let cost = vec![
            vec![0.0, 5.0, 5.0],
            vec![5.0, 0.0, 5.0],
            vec![5.0, 5.0, 0.0],
        ];
        let (assignment, total) = hungarian(&cost);
        assert_eq!(assignment, vec![0, 1, 2]);
        assert_eq!(total, 0.0);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        // deterministic pseudo-random values via a simple LCG
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for n in 1..=6 {
            let cost: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
            let (_, total) = hungarian(&cost);
            let expected = brute_force(&cost);
            assert!(
                (total - expected).abs() < 1e-9,
                "n={n}: hungarian {total} vs brute {expected}"
            );
        }
    }

    #[test]
    fn empty_matrix() {
        let (a, t) = hungarian(&[]);
        assert!(a.is_empty());
        assert_eq!(t, 0.0);
    }

    #[test]
    fn single_cell() {
        let (a, t) = hungarian(&[vec![0.7]]);
        assert_eq!(a, vec![0]);
        assert!((t - 0.7).abs() < 1e-12);
    }
}
