//! # whyq-metrics — comprehensive comparison of explanations
//!
//! Implements the three-level explanation comparison of §3.2 of *"Why-Query
//! Support in Graph Databases"*:
//!
//! * **syntactic level** (§3.2.2) — how different an explanation *looks* to
//!   the user, computed as a modified-Hausdorff set distance over the
//!   set-based query model (Algorithm 1, eqs. 3.10–3.13);
//! * **cardinality level** (§3.2.3) — how far the explanation's result size
//!   is from the cardinality threshold (Def. 5, eqs. 3.19/3.20);
//! * **result level** (§3.2.4) — how much of the original result content an
//!   explanation preserves, computed as a normalized graph-edit distance
//!   between result graphs (Def. 7) combined through a minimum-cost
//!   assignment (Def. 8, the Hungarian algorithm of Algorithm 2).

// The whole workspace is unsafe-free (audited 2026-08): lock it in.
#![forbid(unsafe_code)]

pub mod cardinality;
pub mod ged;
pub mod hungarian;
pub mod result;
pub mod setdist;
pub mod syntactic;

pub use cardinality::{cardinality_deviation, cardinality_distance, cardinality_distance_empty};
pub use ged::{graph_edit_counts, graph_edit_distance, EditCounts};
pub use hungarian::hungarian;
pub use result::{result_graph_distance, result_set_distance};
pub use syntactic::syntactic_distance;

/// All three comparison levels for one explanation against the original
/// query, bundled for the evaluation harness.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplanationScores {
    /// Syntactic distance to the original query in `[0, 1]`.
    pub syntactic: f64,
    /// `|C_thr − C(explanation)|` (deviation from the threshold).
    pub cardinality_deviation: u64,
    /// Result distance to the original result set in `[0, 1]`.
    pub result: f64,
}
