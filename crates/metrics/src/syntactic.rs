//! Syntactic distance between two queries (Algorithm 1, §3.2.2).
//!
//! The distance describes *how different an explanation appears to the
//! user* relative to the original query. Both queries are viewed through the
//! set-based model: per-vertex predicate-interval distances plus in/out edge
//! id-set distances aggregate into vertex distances (eq. 3.11); predicate,
//! type, direction and endpoint distances aggregate into edge distances
//! (eq. 3.12); vertex and edge distances average into the query distance
//! (eq. 3.13). Elements present in only one query contribute distance 1.
//!
//! Because explanations are derived from the original query, query element
//! ids are shared — the union of ids aligns elements across both queries.

use crate::setdist::mhd_bool;
use whyq_query::{PatternQuery, QEid, QVid};

/// Distance between two aligned query vertices (eq. 3.11).
fn vertex_distance(q1: &PatternQuery, q2: &PatternQuery, v: QVid) -> f64 {
    let (Some(v1), Some(v2)) = (q1.vertex(v), q2.vertex(v)) else {
        return 1.0;
    };
    // union of predicate attributes
    let mut attrs: Vec<&str> = v1
        .predicates
        .iter()
        .chain(v2.predicates.iter())
        .map(|p| p.attr.as_str())
        .collect();
    attrs.sort();
    attrs.dedup();
    let mut pi_sum = 0.0;
    for attr in &attrs {
        pi_sum += match (v1.predicate(attr), v2.predicate(attr)) {
            (Some(p1), Some(p2)) => p1.interval.distance(&p2.interval),
            _ => 1.0,
        };
    }
    let d_in = mhd_bool(&q1.in_edges(v), &q2.in_edges(v));
    let d_out = mhd_bool(&q1.out_edges(v), &q2.out_edges(v));
    (pi_sum + d_in + d_out) / (attrs.len() as f64 + 2.0)
}

/// Distance between two aligned query edges (eq. 3.12).
fn edge_distance(q1: &PatternQuery, q2: &PatternQuery, e: QEid) -> f64 {
    let (Some(e1), Some(e2)) = (q1.edge(e), q2.edge(e)) else {
        return 1.0;
    };
    let mut attrs: Vec<&str> = e1
        .predicates
        .iter()
        .chain(e2.predicates.iter())
        .map(|p| p.attr.as_str())
        .collect();
    attrs.sort();
    attrs.dedup();
    let mut pi_sum = 0.0;
    for attr in &attrs {
        pi_sum += match (e1.predicate(attr), e2.predicate(attr)) {
            (Some(p1), Some(p2)) => p1.interval.distance(&p2.interval),
            _ => 1.0,
        };
    }
    let t1: Vec<&str> = e1.types.iter().map(String::as_str).collect();
    let t2: Vec<&str> = e2.types.iter().map(String::as_str).collect();
    let d_types = mhd_bool(&t1, &t2);
    let d_dirs = e1.directions.distance(&e2.directions);
    let d_src = if e1.src == e2.src { 0.0 } else { 1.0 };
    let d_dst = if e1.dst == e2.dst { 0.0 } else { 1.0 };
    (pi_sum + d_types + d_dirs + d_src + d_dst) / (attrs.len() as f64 + 4.0)
}

/// Syntactic distance between an original query and an explanation
/// (Algorithm 1 / eq. 3.13), in `[0, 1]`.
pub fn syntactic_distance(q1: &PatternQuery, q2: &PatternQuery) -> f64 {
    // union of vertex ids and edge ids across both queries
    let mut vids: Vec<QVid> = q1.vertex_ids().chain(q2.vertex_ids()).collect();
    vids.sort();
    vids.dedup();
    let mut eids: Vec<QEid> = q1.edge_ids().chain(q2.edge_ids()).collect();
    eids.sort();
    eids.dedup();
    if vids.is_empty() && eids.is_empty() {
        return 0.0;
    }
    let v_sum: f64 = vids.iter().map(|&v| vertex_distance(q1, q2, v)).sum();
    let e_sum: f64 = eids.iter().map(|&e| edge_distance(q1, q2, e)).sum();
    (v_sum + e_sum) / (vids.len() + eids.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_query::{DirectionSet, GraphMod, Interval, Predicate, QueryBuilder, Target};

    /// Fig. 3.5a — the thesis's worked example query.
    fn fig35a() -> PatternQuery {
        QueryBuilder::new("fig3.5a")
            .vertex(
                "anna",
                [
                    Predicate::eq("type", "person"),
                    Predicate::eq("name", "Anna"),
                ],
            )
            .vertex("uni", [Predicate::eq("type", "university")])
            .vertex(
                "city",
                [
                    Predicate::eq("type", "city"),
                    Predicate::eq("name", "Berlin"),
                ],
            )
            .vertex(
                "student",
                [
                    Predicate::eq("type", "person"),
                    Predicate::eq("gender", "male"),
                    Predicate::eq("nationality", "Chinese"),
                ],
            )
            .edge_full(
                "anna",
                "uni",
                "workAt",
                DirectionSet::FORWARD,
                [Predicate::eq("sinceYear", 2003)],
            )
            .edge("uni", "city", "locatedIn")
            .edge("student", "uni", "studyAt")
            .build()
    }

    /// Fig. 3.5b — the modified query Q2 of the worked example.
    fn fig35b() -> PatternQuery {
        let mut q = fig35a();
        // v4 (student) removed together with e3 (studyAt)
        GraphMod::RemoveVertex(QVid(3)).apply(&mut q).unwrap();
        // name: Anna OR Alice OR Sandra
        GraphMod::ReplaceInterval {
            target: Target::Vertex(QVid(0)),
            attr: "name".into(),
            interval: Interval::one_of(["Anna", "Alice", "Sandra"]),
        }
        .apply(&mut q)
        .unwrap();
        // type: university OR college
        GraphMod::ReplaceInterval {
            target: Target::Vertex(QVid(1)),
            attr: "type".into(),
            interval: Interval::one_of(["university", "college"]),
        }
        .apply(&mut q)
        .unwrap();
        // city name: Madrid OR Rom
        GraphMod::ReplaceInterval {
            target: Target::Vertex(QVid(2)),
            attr: "name".into(),
            interval: Interval::one_of(["Madrid", "Rom"]),
        }
        .apply(&mut q)
        .unwrap();
        // sinceYear: 2003 OR 2004
        GraphMod::ReplaceInterval {
            target: Target::Edge(QEid(0)),
            attr: "sinceYear".into(),
            interval: Interval::one_of([2003, 2004]),
        }
        .apply(&mut q)
        .unwrap();
        q
    }

    #[test]
    fn identical_queries_have_zero_distance() {
        let q = fig35a();
        assert_eq!(syntactic_distance(&q, &q), 0.0);
    }

    #[test]
    fn thesis_worked_example_vertex_distances() {
        let (q1, q2) = (fig35a(), fig35b());
        // eq. 3.16: d(v2) = 1/3
        assert!((vertex_distance(&q1, &q2, QVid(1)) - 1.0 / 3.0).abs() < 1e-9);
        // paper: d(v1) = 0.16 (exactly (0 + 2/3 + 0 + 0)/4 = 1/6)
        assert!((vertex_distance(&q1, &q2, QVid(0)) - 1.0 / 6.0).abs() < 1e-9);
        // removed vertex v4 contributes 1
        assert_eq!(vertex_distance(&q1, &q2, QVid(3)), 1.0);
        // edge e1: only sinceYear changed → (1/2)/5 = 0.1
        assert!((edge_distance(&q1, &q2, QEid(0)) - 0.1).abs() < 1e-9);
        // e2 unchanged, e3 removed
        assert_eq!(edge_distance(&q1, &q2, QEid(1)), 0.0);
        assert_eq!(edge_distance(&q1, &q2, QEid(2)), 1.0);
    }

    #[test]
    fn thesis_worked_example_total() {
        // The thesis reports 0.42 (eq. 3.18) using d(v3) = 0.33; the exact
        // evaluation of eqs. 3.10–3.13 yields d(v3) = 0.25 and a total of
        // (1/6 + 1/3 + 1/4 + 1 + 0.1 + 0 + 1) / 7 ≈ 0.407 — the thesis
        // rounds the vertex distances before summing. We assert the exact
        // value and its proximity to the reported one.
        let d = syntactic_distance(&fig35a(), &fig35b());
        let exact = (1.0 / 6.0 + 1.0 / 3.0 + 0.25 + 1.0 + 0.1 + 0.0 + 1.0) / 7.0;
        assert!((d - exact).abs() < 1e-9);
        assert!((d - 0.42).abs() < 0.02);
    }

    #[test]
    fn distance_is_symmetric() {
        let (q1, q2) = (fig35a(), fig35b());
        assert!((syntactic_distance(&q1, &q2) - syntactic_distance(&q2, &q1)).abs() < 1e-12);
    }

    #[test]
    fn monotone_under_additional_changes() {
        let q1 = fig35a();
        let mut q2 = q1.clone();
        GraphMod::RemovePredicate {
            target: Target::Vertex(QVid(3)),
            attr: "gender".into(),
        }
        .apply(&mut q2)
        .unwrap();
        let d_one = syntactic_distance(&q1, &q2);
        GraphMod::RemovePredicate {
            target: Target::Vertex(QVid(3)),
            attr: "nationality".into(),
        }
        .apply(&mut q2)
        .unwrap();
        let d_two = syntactic_distance(&q1, &q2);
        assert!(d_one > 0.0);
        assert!(d_two > d_one);
    }

    #[test]
    fn empty_queries() {
        let q = PatternQuery::new();
        assert_eq!(syntactic_distance(&q, &q), 0.0);
        let q2 = fig35a();
        assert!(syntactic_distance(&q, &q2) > 0.99);
    }

    use whyq_query::PatternQuery;
    use whyq_query::{QEid, QVid};
}
