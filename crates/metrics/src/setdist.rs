//! Modified-Hausdorff set distances (Def. 4).
//!
//! With Boolean point-point distances (eq. 3.8), the point-set distance
//! (Def. 3) degenerates to set membership (eq. 3.9) and the modified
//! Hausdorff distance of Dubuisson & Jain becomes
//!
//! ```text
//! MHD(A, B) = max( |A∖B| / |A| , |B∖A| / |B| )
//! ```
//!
//! which is what the syntactic comparison applies to id sets, type sets and
//! direction sets. (Predicate intervals additionally support measure-based
//! distances for numeric ranges — see [`whyq_query::Interval::distance`].)

/// MHD over two slices with Boolean point distances.
///
/// Conventions: two empty sets are identical (0); an empty set against a
/// non-empty one is maximally distant (1).
pub fn mhd_bool<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let a_not_b = a.iter().filter(|x| !b.contains(x)).count() as f64;
    let b_not_a = b.iter().filter(|x| !a.contains(x)).count() as f64;
    (a_not_b / a.len() as f64).max(b_not_a / b.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets() {
        assert_eq!(mhd_bool(&[1, 2, 3], &[1, 2, 3]), 0.0);
        assert_eq!(mhd_bool::<i32>(&[], &[]), 0.0);
    }

    #[test]
    fn disjoint_sets() {
        assert_eq!(mhd_bool(&[1], &[2]), 1.0);
    }

    #[test]
    fn asymmetric_overlap_takes_max() {
        // A = {1,2}, B = {1}: A∖B = 1/2, B∖A = 0 → 0.5
        assert!((mhd_bool(&[1, 2], &[1]) - 0.5).abs() < 1e-12);
        // thesis eq. 3.15: IN sets {e1} vs {e1, e3} → 1/2
        assert!((mhd_bool(&["e1"], &["e1", "e3"]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_vs_nonempty() {
        assert_eq!(mhd_bool(&[], &[1]), 1.0);
        assert_eq!(mhd_bool(&[1], &[]), 1.0);
    }

    #[test]
    fn symmetry() {
        let a = [1, 2, 3, 4];
        let b = [3, 4, 5];
        assert_eq!(mhd_bool(&a, &b), mhd_bool(&b, &a));
    }
}
