//! Cardinality-level comparison (§3.2.3).
//!
//! For too-few/too-many problems a cardinality threshold `C_thr` is given
//! and two explanations compare by how much closer they bring the result
//! size to it (Def. 5, eq. 3.19). For the empty-answer problem no threshold
//! exists — non-empty explanations compare by plain size difference,
//! preferring smaller results (eq. 3.20).

/// Deviation of a result size from the threshold: `|C_thr − C|`.
///
/// This is the per-explanation quantity plotted in Fig. 3.9 and minimized by
/// the fine-grained rewriter (Ch. 6).
pub fn cardinality_deviation(c: u64, c_thr: u64) -> u64 {
    c_thr.abs_diff(c)
}

/// Cardinality distance between two explanations under a threshold
/// (eq. 3.19): `||C_thr − C₁| − |C_thr − C₂||`.
pub fn cardinality_distance(c1: u64, c2: u64, c_thr: u64) -> u64 {
    cardinality_deviation(c1, c_thr).abs_diff(cardinality_deviation(c2, c_thr))
}

/// Cardinality distance for the empty-answer problem (eq. 3.20):
/// `|C₁ − C₂|` over two *non-empty* explanations. Returns `None` when
/// either explanation is still empty (undefined per the thesis).
pub fn cardinality_distance_empty(c1: u64, c2: u64) -> Option<u64> {
    if c1 == 0 || c2 == 0 {
        None
    } else {
        Some(c1.abs_diff(c2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation() {
        assert_eq!(cardinality_deviation(10, 25), 15);
        assert_eq!(cardinality_deviation(30, 25), 5);
        assert_eq!(cardinality_deviation(25, 25), 0);
    }

    #[test]
    fn threshold_distance() {
        // C_thr = 100: C1=90 (dev 10), C2=120 (dev 20) → distance 10
        assert_eq!(cardinality_distance(90, 120, 100), 10);
        // symmetric
        assert_eq!(cardinality_distance(120, 90, 100), 10);
        // equal deviations on opposite sides → 0
        assert_eq!(cardinality_distance(90, 110, 100), 0);
    }

    #[test]
    fn empty_problem_distance() {
        assert_eq!(cardinality_distance_empty(5, 8), Some(3));
        assert_eq!(cardinality_distance_empty(0, 8), None);
        assert_eq!(cardinality_distance_empty(5, 0), None);
    }
}
