//! Coarse-grained graph-edit distance between queries (§3.2.1).
//!
//! Before introducing the fine-granular set-based syntactic distance, the
//! thesis discusses the classic graph-edit-distance view: count the basic
//! modification operations (Table 3.1) needed to transform one query into
//! another. The count ignores *how much* a predicate interval changed —
//! which is exactly why §3.2.2 replaces it — but it remains useful as a
//! cheap upper-level comparison and for explaining modification sequences
//! to users ("3 changes away from your query").
//!
//! Because explanations share element ids with their original query, the
//! minimal edit script is computable exactly by aligning per id (no
//! correspondence search is needed).

use whyq_query::{PatternQuery, QEid, QVid};

/// Breakdown of the edit script between two queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EditCounts {
    /// Vertices present in exactly one query.
    pub vertex_edits: usize,
    /// Edges present in exactly one query or with changed endpoints.
    pub edge_edits: usize,
    /// Predicate insertions/deletions (a changed interval counts as one
    /// deletion plus one insertion, per §3.2.1).
    pub predicate_edits: usize,
    /// Edge-type insertions/deletions.
    pub type_edits: usize,
    /// Direction insertions/deletions.
    pub direction_edits: usize,
}

impl EditCounts {
    /// Total number of basic operations.
    pub fn total(&self) -> usize {
        self.vertex_edits
            + self.edge_edits
            + self.predicate_edits
            + self.type_edits
            + self.direction_edits
    }
}

/// Count the basic edit operations transforming `q1` into `q2`
/// (id-aligned, exact).
pub fn graph_edit_counts(q1: &PatternQuery, q2: &PatternQuery) -> EditCounts {
    let mut counts = EditCounts::default();

    let mut vids: Vec<QVid> = q1.vertex_ids().chain(q2.vertex_ids()).collect();
    vids.sort();
    vids.dedup();
    for v in vids {
        match (q1.vertex(v), q2.vertex(v)) {
            (Some(a), Some(b)) => {
                // predicate-level diff by attribute
                let mut attrs: Vec<&str> = a
                    .predicates
                    .iter()
                    .chain(b.predicates.iter())
                    .map(|p| p.attr.as_str())
                    .collect();
                attrs.sort();
                attrs.dedup();
                for attr in attrs {
                    match (a.predicate(attr), b.predicate(attr)) {
                        (Some(pa), Some(pb)) => {
                            if pa.interval != pb.interval {
                                counts.predicate_edits += 2; // delete + insert
                            }
                        }
                        (None, None) => {}
                        _ => counts.predicate_edits += 1,
                    }
                }
            }
            (None, None) => {}
            _ => counts.vertex_edits += 1,
        }
    }

    let mut eids: Vec<QEid> = q1.edge_ids().chain(q2.edge_ids()).collect();
    eids.sort();
    eids.dedup();
    for e in eids {
        match (q1.edge(e), q2.edge(e)) {
            (Some(a), Some(b)) => {
                if a.src != b.src || a.dst != b.dst {
                    // rewired edge = deletion + insertion
                    counts.edge_edits += 2;
                    continue;
                }
                for t in &a.types {
                    if !b.types.contains(t) {
                        counts.type_edits += 1;
                    }
                }
                for t in &b.types {
                    if !a.types.contains(t) {
                        counts.type_edits += 1;
                    }
                }
                counts.direction_edits += usize::from(a.directions.forward != b.directions.forward)
                    + usize::from(a.directions.backward != b.directions.backward);
                let mut attrs: Vec<&str> = a
                    .predicates
                    .iter()
                    .chain(b.predicates.iter())
                    .map(|p| p.attr.as_str())
                    .collect();
                attrs.sort();
                attrs.dedup();
                for attr in attrs {
                    match (a.predicate(attr), b.predicate(attr)) {
                        (Some(pa), Some(pb)) => {
                            if pa.interval != pb.interval {
                                counts.predicate_edits += 2;
                            }
                        }
                        (None, None) => {}
                        _ => counts.predicate_edits += 1,
                    }
                }
            }
            (None, None) => {}
            _ => counts.edge_edits += 1,
        }
    }
    counts
}

/// The coarse GED: total basic-operation count.
pub fn graph_edit_distance(q1: &PatternQuery, q2: &PatternQuery) -> usize {
    graph_edit_counts(q1, q2).total()
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_query::{Direction, GraphMod, Interval, Predicate, QueryBuilder, Target};

    fn base() -> PatternQuery {
        QueryBuilder::new("b")
            .vertex(
                "a",
                [Predicate::eq("type", "person"), Predicate::eq("age", 30)],
            )
            .vertex("b", [Predicate::eq("type", "city")])
            .edge("a", "b", "livesIn")
            .build()
    }

    #[test]
    fn identical_queries_have_zero_ged() {
        assert_eq!(graph_edit_distance(&base(), &base()), 0);
    }

    #[test]
    fn single_predicate_removal_costs_one() {
        let q = base();
        let (modified, _) = GraphMod::RemovePredicate {
            target: Target::Vertex(QVid(0)),
            attr: "age".into(),
        }
        .applied(&q)
        .unwrap();
        let c = graph_edit_counts(&q, &modified);
        assert_eq!(c.predicate_edits, 1);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn interval_change_costs_two() {
        let q = base();
        let (modified, _) = GraphMod::ReplaceInterval {
            target: Target::Vertex(QVid(0)),
            attr: "age".into(),
            interval: Interval::one_of([30, 31]),
        }
        .applied(&q)
        .unwrap();
        // deletion of the old interval + insertion of the new one
        assert_eq!(graph_edit_distance(&q, &modified), 2);
    }

    #[test]
    fn vertex_removal_counts_vertex_and_incident_edges() {
        let q = base();
        let (modified, _) = GraphMod::RemoveVertex(QVid(1)).applied(&q).unwrap();
        let c = graph_edit_counts(&q, &modified);
        assert_eq!(c.vertex_edits, 1);
        assert_eq!(c.edge_edits, 1);
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn type_and_direction_edits() {
        let q = base();
        let (m1, _) = GraphMod::InsertType {
            edge: QEid(0),
            ty: "worksIn".into(),
        }
        .applied(&q)
        .unwrap();
        assert_eq!(graph_edit_counts(&q, &m1).type_edits, 1);
        let (m2, _) = GraphMod::InsertDirection {
            edge: QEid(0),
            dir: Direction::Backward,
        }
        .applied(&q)
        .unwrap();
        assert_eq!(graph_edit_counts(&q, &m2).direction_edits, 1);
    }

    #[test]
    fn ged_is_symmetric() {
        let q = base();
        let (modified, _) = GraphMod::RemoveEdge(QEid(0)).applied(&q).unwrap();
        assert_eq!(
            graph_edit_distance(&q, &modified),
            graph_edit_distance(&modified, &q)
        );
    }

    #[test]
    fn ged_is_coarser_than_syntactic_distance() {
        // the thesis's motivation for the set-based distance: GED cannot
        // tell a small interval widening from a large one
        let q = base();
        let (small, _) = GraphMod::ReplaceInterval {
            target: Target::Vertex(QVid(0)),
            attr: "age".into(),
            interval: Interval::one_of([30, 31]),
        }
        .applied(&q)
        .unwrap();
        let (large, _) = GraphMod::ReplaceInterval {
            target: Target::Vertex(QVid(0)),
            attr: "age".into(),
            interval: Interval::one_of([30, 31, 32, 33, 34, 35, 36, 37]),
        }
        .applied(&q)
        .unwrap();
        assert_eq!(
            graph_edit_distance(&q, &small),
            graph_edit_distance(&q, &large)
        );
        let syn_small = crate::syntactic::syntactic_distance(&q, &small);
        let syn_large = crate::syntactic::syntactic_distance(&q, &large);
        assert!(syn_large > syn_small);
    }

    use whyq_query::{QEid, QVid};
}
