//! Result-level comparison (§3.2.4).
//!
//! A result graph maps query elements to data elements (Def. 6). The
//! distance between two result graphs is a graph-edit distance normalized
//! by the union of involved query elements (Def. 7): aligned bindings with
//! different data ids cost one relabel, bindings present in only one result
//! cost one deletion/insertion.
//!
//! Two *result sets* compare through a minimum-cost assignment of result
//! graphs (Def. 8, solved by the Hungarian method) normalized by the size of
//! the original result set. Explanations with extra answers are not
//! penalized for the surplus; lost original answers cost 1 each.

use crate::hungarian::hungarian;
use whyq_matcher::ResultGraph;
use whyq_query::{QEid, QVid};

/// Normalized graph-edit distance between two result graphs (Def. 7).
pub fn result_graph_distance(r1: &ResultGraph, r2: &ResultGraph) -> f64 {
    // union of bound query vertex/edge ids
    let mut vids: Vec<QVid> = r1
        .vertex_bindings()
        .iter()
        .chain(r2.vertex_bindings())
        .map(|&(q, _)| q)
        .collect();
    vids.sort();
    vids.dedup();
    let mut eids: Vec<QEid> = r1
        .edge_bindings()
        .iter()
        .chain(r2.edge_bindings())
        .map(|&(q, _)| q)
        .collect();
    eids.sort();
    eids.dedup();
    let total = vids.len() + eids.len();
    if total == 0 {
        return 0.0;
    }
    let mut ged = 0usize;
    for v in vids {
        match (r1.vertex(v), r2.vertex(v)) {
            (Some(a), Some(b)) if a == b => {}
            _ => ged += 1, // relabel, deletion or insertion — unit cost each
        }
    }
    for e in eids {
        match (r1.edge(e), r2.edge(e)) {
            (Some(a), Some(b)) if a == b => {}
            _ => ged += 1,
        }
    }
    ged as f64 / total as f64
}

/// Distance between an original result set `r1` and an explanation's result
/// set `r2` (Def. 8), in `[0, 1]`.
///
/// Rows are original answers, columns are explanation answers. When the
/// original set is larger, surplus rows map to padding columns at cost 1
/// (per Algorithm 2 step 0 — lost answers). When the explanation is larger,
/// surplus columns map to zero-cost padding rows (new answers are free).
/// The assignment cost is normalized by `|R1|`.
///
/// Returns 1.0 when the original set is empty or the explanation set is
/// empty (a completely different result).
pub fn result_set_distance(r1: &[ResultGraph], r2: &[ResultGraph]) -> f64 {
    if r1.is_empty() || r2.is_empty() {
        return if r1.is_empty() && r2.is_empty() {
            0.0
        } else {
            1.0
        };
    }
    let m = r1.len();
    let n = r2.len();
    let size = m.max(n);
    let mut cost = vec![vec![0.0f64; size]; size];
    for (i, row) in cost.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = if i < m && j < n {
                result_graph_distance(&r1[i], &r2[j])
            } else if i < m {
                // original answer with no counterpart → lost
                1.0
            } else {
                // padding row: surplus explanation answers are free
                0.0
            };
        }
    }
    let (_, total) = hungarian(&cost);
    total / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_graph::{EdgeId, VertexId};

    fn rg(vs: &[(u32, u32)], es: &[(u32, u32)]) -> ResultGraph {
        let mut r = ResultGraph::new();
        for &(q, d) in vs {
            r.bind_vertex(QVid(q), VertexId(d));
        }
        for &(q, d) in es {
            r.bind_edge(QEid(q), EdgeId(d));
        }
        r
    }

    #[test]
    fn thesis_fig36_example() {
        // Fig. 3.6: r1 = {v1:person.1, v2:person.2, v3:city.5; e1:1, e2:10},
        //           r2 = {v1:person.1, v2:person.2, v4:city.15; e1:1, e4:15}
        // → GED 4 over union of 4 vertices + 3 edges = 4/7
        let r1 = rg(&[(0, 1), (1, 2), (2, 5)], &[(0, 1), (1, 10)]);
        let r2 = rg(&[(0, 1), (1, 2), (3, 15)], &[(0, 1), (3, 15)]);
        assert!((result_graph_distance(&r1, &r2) - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn identical_results_zero_distance() {
        let r = rg(&[(0, 1), (1, 2)], &[(0, 0)]);
        assert_eq!(result_graph_distance(&r, &r), 0.0);
    }

    #[test]
    fn relabeling_costs_one_each() {
        let r1 = rg(&[(0, 1), (1, 2)], &[]);
        let r2 = rg(&[(0, 1), (1, 9)], &[]);
        assert!((result_graph_distance(&r1, &r2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn set_distance_identical_sets() {
        let set = vec![rg(&[(0, 1)], &[]), rg(&[(0, 2)], &[])];
        assert_eq!(result_set_distance(&set, &set), 0.0);
    }

    #[test]
    fn set_distance_handles_unequal_sizes() {
        let orig = vec![rg(&[(0, 1)], &[]), rg(&[(0, 2)], &[])];
        // explanation keeps one original answer and adds two new ones
        let expl = vec![rg(&[(0, 1)], &[]), rg(&[(0, 7)], &[]), rg(&[(0, 8)], &[])];
        // best assignment: (0→keep, cost 0), (1→one of the new, cost 1) → 1/2
        assert!((result_set_distance(&orig, &expl) - 0.5).abs() < 1e-12);
        // surplus answers alone are free: superset explanation
        let expl2 = vec![rg(&[(0, 1)], &[]), rg(&[(0, 2)], &[]), rg(&[(0, 9)], &[])];
        assert_eq!(result_set_distance(&orig, &expl2), 0.0);
    }

    #[test]
    fn set_distance_lost_answers_penalized() {
        let orig = vec![rg(&[(0, 1)], &[]), rg(&[(0, 2)], &[]), rg(&[(0, 3)], &[])];
        let expl = vec![rg(&[(0, 1)], &[])];
        // one kept, two lost → 2/3
        assert!((result_set_distance(&orig, &expl) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sets() {
        let set = vec![rg(&[(0, 1)], &[])];
        assert_eq!(result_set_distance(&[], &set), 1.0);
        assert_eq!(result_set_distance(&set, &[]), 1.0);
        assert_eq!(result_set_distance(&[], &[]), 0.0);
    }

    #[test]
    fn thesis_matrix_normalization() {
        // §3.2.4: costs 0.58 over 4 original answers → 0.145; rebuild via
        // four synthetic result graphs is unnecessary — verify the published
        // normalization arithmetic holds for our pipeline on a same-shape
        // matrix by checking the hungarian total directly in hungarian.rs.
        // Here: distance bounded by [0, 1] sanity on random-ish inputs.
        let orig = vec![
            rg(&[(0, 1), (1, 2)], &[(0, 0)]),
            rg(&[(0, 3), (1, 4)], &[(0, 1)]),
        ];
        let expl = vec![rg(&[(0, 1), (1, 9)], &[(0, 0)])];
        let d = result_set_distance(&orig, &expl);
        assert!((0.0..=1.0).contains(&d));
    }
}
