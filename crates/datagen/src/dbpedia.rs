//! DBpedia-like heterogeneous knowledge graph (App. A.2.2).
//!
//! DBpedia extracts are schema-poor and skewed: a few entity types
//! dominate, attributes are sparse and heterogeneous, and popularity
//! follows a long tail (a handful of settlements/persons attract most
//! links). The generator reproduces those shape properties with seeded
//! randomness: typed entities (person, settlement, organisation, film,
//! book, country) with type-specific attributes, and relationship types
//! (birthPlace, deathPlace, country, author, starring, director,
//! headquarter, employer) wired with preferential attachment.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use whyq_graph::{PropertyGraph, Value, VertexId};
use whyq_query::{PatternQuery, Predicate, QueryBuilder};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct DbpediaConfig {
    /// Total number of entities.
    pub entities: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DbpediaConfig {
    fn default() -> Self {
        DbpediaConfig {
            entities: 2000,
            seed: 7,
        }
    }
}

const COUNTRY_NAMES: [&str; 8] = [
    "Germany", "France", "Italy", "Japan", "Brazil", "Canada", "Egypt", "India",
];

/// Pick with preferential attachment: mostly from the weighted pool,
/// sometimes uniformly (keeps the tail alive).
fn prefer(rng: &mut StdRng, pool: &[VertexId], all: &[VertexId]) -> VertexId {
    if !pool.is_empty() && rng.random_bool(0.65) {
        pool[rng.random_range(0..pool.len())]
    } else {
        all[rng.random_range(0..all.len())]
    }
}

/// Generate the DBpedia-like graph.
pub fn dbpedia_graph(config: DbpediaConfig) -> PropertyGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.entities.max(100);
    let mut g = PropertyGraph::with_capacity(n, n * 4);

    let countries: Vec<VertexId> = COUNTRY_NAMES
        .iter()
        .map(|&c| g.add_vertex([("type", Value::str("country")), ("name", Value::str(c))]))
        .collect();

    // settlements: 15% of entities, population long-tailed
    let n_settlements = n * 15 / 100;
    let mut settlements = Vec::with_capacity(n_settlements);
    for i in 0..n_settlements {
        let population = (1000.0 * (1.0 / (1.0 - rng.random::<f64>())).powf(1.2)) as i64;
        let s = g.add_vertex([
            ("type", Value::str("settlement")),
            ("name", Value::str(format!("Settlement-{i}"))),
            ("population", Value::Int(population.min(20_000_000))),
        ]);
        let c = countries[rng.random_range(0..countries.len())];
        g.add_edge(s, c, "country", []);
        settlements.push(s);
    }
    let mut settlement_pool: Vec<VertexId> = settlements.clone();

    // organisations: 10%
    let n_orgs = n / 10;
    let mut orgs = Vec::with_capacity(n_orgs);
    for i in 0..n_orgs {
        let o = g.add_vertex([
            ("type", Value::str("organisation")),
            ("name", Value::str(format!("Org-{i}"))),
            ("foundingYear", Value::Int(rng.random_range(1850..2015))),
        ]);
        let s = prefer(&mut rng, &settlement_pool, &settlements);
        g.add_edge(o, s, "headquarter", []);
        settlement_pool.push(s);
        orgs.push(o);
    }

    // persons: 45%
    let n_persons = n * 45 / 100;
    let mut persons = Vec::with_capacity(n_persons);
    let mut person_pool: Vec<VertexId> = Vec::new();
    for i in 0..n_persons {
        let birth = rng.random_range(1800..2000);
        let p = g.add_vertex([
            ("type", Value::str("person")),
            ("name", Value::str(format!("Person-{i}"))),
            ("birthYear", Value::Int(birth)),
        ]);
        let s = prefer(&mut rng, &settlement_pool, &settlements);
        g.add_edge(p, s, "birthPlace", []);
        settlement_pool.push(s);
        if rng.random_bool(0.3) {
            let s2 = prefer(&mut rng, &settlement_pool, &settlements);
            g.add_edge(p, s2, "deathPlace", []);
        }
        if rng.random_bool(0.4) && !orgs.is_empty() {
            let o = orgs[rng.random_range(0..orgs.len())];
            g.add_edge(p, o, "employer", []);
        }
        persons.push(p);
        person_pool.push(p);
    }

    // films: 18%
    let n_films = n * 18 / 100;
    for i in 0..n_films {
        let f = g.add_vertex([
            ("type", Value::str("film")),
            ("name", Value::str(format!("Film-{i}"))),
            ("releaseYear", Value::Int(rng.random_range(1930..2016))),
        ]);
        for _ in 0..rng.random_range(1..4) {
            let star = prefer(&mut rng, &person_pool, &persons);
            g.add_edge(f, star, "starring", []);
            person_pool.push(star);
        }
        let director = prefer(&mut rng, &person_pool, &persons);
        g.add_edge(f, director, "director", []);
    }

    // books: 12%
    let n_books = n * 12 / 100;
    for i in 0..n_books {
        let b = g.add_vertex([
            ("type", Value::str("book")),
            ("name", Value::str(format!("Book-{i}"))),
            ("publicationYear", Value::Int(rng.random_range(1850..2016))),
        ]);
        let author = prefer(&mut rng, &person_pool, &persons);
        g.add_edge(b, author, "author", []);
        person_pool.push(author);
    }

    // generated graphs are immutable workloads: seal into the CSR layout
    g.seal();
    g
}

/// Three heterogeneous evaluation queries over the DBpedia-like graph.
pub fn dbpedia_queries() -> Vec<PatternQuery> {
    vec![
        // D1 — film -starring-> person -birthPlace-> settlement -country->
        // country(Germany)
        QueryBuilder::new("DBPEDIA QUERY 1")
            .vertex("f", [Predicate::eq("type", "film")])
            .vertex("p", [Predicate::eq("type", "person")])
            .vertex("s", [Predicate::eq("type", "settlement")])
            .vertex(
                "c",
                [
                    Predicate::eq("type", "country"),
                    Predicate::eq("name", "Germany"),
                ],
            )
            .edge("f", "p", "starring")
            .edge("p", "s", "birthPlace")
            .edge("s", "c", "country")
            .build(),
        // D2 — book -author-> person -employer-> organisation(founded≥1950)
        QueryBuilder::new("DBPEDIA QUERY 2")
            .vertex("b", [Predicate::eq("type", "book")])
            .vertex("p", [Predicate::eq("type", "person")])
            .vertex(
                "o",
                [
                    Predicate::eq("type", "organisation"),
                    Predicate::at_least("foundingYear", 1950.0),
                ],
            )
            .edge("b", "p", "author")
            .edge("p", "o", "employer")
            .build(),
        // D3 — person(born 1900–1950) -birthPlace-> settlement(pop≥100k)
        QueryBuilder::new("DBPEDIA QUERY 3")
            .vertex(
                "p",
                [
                    Predicate::eq("type", "person"),
                    Predicate::between("birthYear", 1900.0, 1950.0),
                ],
            )
            .vertex(
                "s",
                [
                    Predicate::eq("type", "settlement"),
                    Predicate::at_least("population", 20_000.0),
                ],
            )
            .edge("p", "s", "birthPlace")
            .build(),
    ]
}

/// Why-empty variants of the DBpedia queries.
pub fn dbpedia_failing_queries() -> Vec<PatternQuery> {
    let mut queries = dbpedia_queries();
    // D1: a country missing from the data
    queries[0]
        .vertex_mut(whyq_query::QVid(3))
        .expect("live")
        .predicate_mut("name")
        .expect("present")
        .interval = whyq_query::Interval::eq("Borduria");
    // D2: an impossible founding year
    queries[1]
        .vertex_mut(whyq_query::QVid(2))
        .expect("live")
        .predicate_mut("foundingYear")
        .expect("present")
        .interval = whyq_query::Interval::at_least(2100.0);
    // D3: birth-year range before any data
    queries[2]
        .vertex_mut(whyq_query::QVid(0))
        .expect("live")
        .predicate_mut("birthYear")
        .expect("present")
        .interval = whyq_query::Interval::between(1500.0, 1600.0);
    for q in &mut queries {
        if let Some(name) = &mut q.name {
            name.push_str(" (failing)");
        }
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_matcher::{MatchOptions, Matcher};

    fn count_matches(
        g: &whyq_graph::PropertyGraph,
        q: &whyq_query::PatternQuery,
        limit: Option<u64>,
    ) -> u64 {
        Matcher::new(g).count(q, MatchOptions::counting(limit))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = dbpedia_graph(DbpediaConfig::default());
        let b = dbpedia_graph(DbpediaConfig::default());
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn long_tailed_degrees() {
        let g = dbpedia_graph(DbpediaConfig::default());
        let s = whyq_graph::stats::degree_summary(&g);
        assert!(s.max as f64 > 8.0 * s.mean, "max {} mean {}", s.max, s.mean);
    }

    #[test]
    fn heterogeneous_types_present() {
        let g = dbpedia_graph(DbpediaConfig::default());
        let hist = whyq_graph::stats::vertex_attr_histogram(&g, "type");
        assert!(hist.len() >= 6);
        // persons dominate
        let persons = hist.iter().find(|(t, _)| t == "person").unwrap().1;
        let films = hist.iter().find(|(t, _)| t == "film").unwrap().1;
        assert!(persons > films);
    }

    #[test]
    fn queries_succeed_and_failing_variants_fail() {
        let g = dbpedia_graph(DbpediaConfig::default());
        for q in dbpedia_queries() {
            assert!(count_matches(&g, &q, None) > 0, "{:?} empty", q.name);
        }
        for q in dbpedia_failing_queries() {
            assert_eq!(count_matches(&g, &q, None), 0, "{:?} not empty", q.name);
        }
    }
}
