//! LDBC-SNB-like social network generator and queries (App. A.2.1).
//!
//! Emulates the entity/relationship schema of the LDBC Social Network
//! Benchmark: persons living in cities (which belong to countries), study
//! at universities, work at companies, are interested in tags, know each
//! other (preferential attachment → skewed degrees), and interact through
//! forums, posts and comments. All randomness is seeded, so a given
//! `(scale, seed)` pair always produces the identical graph.
//!
//! The four evaluation queries mirror the *roles* of LDBC QUERY 1–4 in
//! Table A.1: a name-anchored path, an attribute-heavy star, a co-location
//! triangle, and a deep content path. Their absolute cardinalities depend
//! on the scale factor (the thesis reports C₁ = 21/39/188/195 on SF1); the
//! cardinality *factors* of the evaluation (0.2/0.5/2/5) are applied
//! relative to the measured counts, exactly as in the thesis.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use whyq_graph::{PropertyGraph, Value, VertexId};
use whyq_query::{PatternQuery, Predicate, QueryBuilder};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct LdbcConfig {
    /// Number of persons (everything else scales along).
    pub persons: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LdbcConfig {
    fn default() -> Self {
        LdbcConfig {
            persons: 300,
            seed: 42,
        }
    }
}

const COUNTRIES: [&str; 10] = [
    "Germany", "France", "Spain", "Italy", "Poland", "China", "India", "USA", "Brazil", "Japan",
];

const FIRST_NAMES: [&str; 20] = [
    "Anna", "Bert", "Carlos", "Dana", "Emil", "Fatima", "Gustav", "Hana", "Ivan", "Jun", "Karl",
    "Lena", "Miguel", "Nadia", "Otto", "Priya", "Quentin", "Rosa", "Sven", "Tao",
];

const LAST_NAMES: [&str; 15] = [
    "Schmidt", "Novak", "Garcia", "Rossi", "Kowalski", "Wang", "Patel", "Smith", "Silva", "Tanaka",
    "Weber", "Dubois", "Lopez", "Bauer", "Kim",
];

const BROWSERS: [&str; 4] = ["Chrome", "Firefox", "Safari", "Opera"];
const LANGUAGES: [&str; 5] = ["en", "de", "es", "zh", "pt"];
const TAG_NAMES: [&str; 18] = [
    "music",
    "sports",
    "cooking",
    "travel",
    "books",
    "movies",
    "science",
    "history",
    "photography",
    "gaming",
    "art",
    "politics",
    "fashion",
    "hiking",
    "chess",
    "gardening",
    "astronomy",
    "databases",
];

/// Generate the LDBC-like social network.
pub fn ldbc_graph(config: LdbcConfig) -> PropertyGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.persons.max(10);
    let mut g = PropertyGraph::with_capacity(n * 7, n * 25);

    // --- places -------------------------------------------------------
    let countries: Vec<VertexId> = COUNTRIES
        .iter()
        .map(|&name| g.add_vertex([("type", Value::str("country")), ("name", Value::str(name))]))
        .collect();
    let mut cities = Vec::new();
    for (ci, &country) in countries.iter().enumerate() {
        for k in 0..3 {
            let city = g.add_vertex([
                ("type", Value::str("city")),
                ("name", Value::str(format!("{}-City-{}", COUNTRIES[ci], k))),
            ]);
            g.add_edge(city, country, "isPartOf", []);
            cities.push(city);
        }
    }
    let universities: Vec<VertexId> = (0..15)
        .map(|i| {
            let u = g.add_vertex([
                ("type", Value::str("university")),
                ("name", Value::str(format!("University-{i}"))),
            ]);
            let city = cities[rng.random_range(0..cities.len())];
            g.add_edge(u, city, "isLocatedIn", []);
            u
        })
        .collect();
    let companies: Vec<VertexId> = (0..20)
        .map(|i| {
            let c = g.add_vertex([
                ("type", Value::str("company")),
                ("name", Value::str(format!("Company-{i}"))),
            ]);
            let country = countries[rng.random_range(0..countries.len())];
            g.add_edge(c, country, "isLocatedIn", []);
            c
        })
        .collect();
    let tags: Vec<VertexId> = TAG_NAMES
        .iter()
        .map(|&t| g.add_vertex([("type", Value::str("tag")), ("name", Value::str(t))]))
        .collect();

    // --- persons ------------------------------------------------------
    let mut persons = Vec::with_capacity(n);
    for _ in 0..n {
        let country_idx = rng.random_range(0..COUNTRIES.len());
        let p = g.add_vertex([
            ("type", Value::str("person")),
            (
                "firstName",
                Value::str(FIRST_NAMES[rng.random_range(0..FIRST_NAMES.len())]),
            ),
            (
                "lastName",
                Value::str(LAST_NAMES[rng.random_range(0..LAST_NAMES.len())]),
            ),
            (
                "gender",
                Value::str(if rng.random_bool(0.5) {
                    "male"
                } else {
                    "female"
                }),
            ),
            ("birthYear", Value::Int(rng.random_range(1950..2000))),
            (
                "browserUsed",
                Value::str(BROWSERS[rng.random_range(0..BROWSERS.len())]),
            ),
            ("nationality", Value::str(COUNTRIES[country_idx])),
        ]);
        // live in a city of the home country (mostly)
        let city = if rng.random_bool(0.8) {
            cities[country_idx * 3 + rng.random_range(0..3)]
        } else {
            cities[rng.random_range(0..cities.len())]
        };
        g.add_edge(p, city, "isLocatedIn", []);
        if rng.random_bool(0.7) {
            let u = universities[rng.random_range(0..universities.len())];
            g.add_edge(
                p,
                u,
                "studyAt",
                [("classYear", Value::Int(rng.random_range(1970..2013)))],
            );
        }
        if rng.random_bool(0.8) {
            let c = companies[rng.random_range(0..companies.len())];
            g.add_edge(
                p,
                c,
                "workAt",
                [("workFrom", Value::Int(rng.random_range(1990..2016)))],
            );
        }
        for _ in 0..rng.random_range(1..5) {
            let t = tags[rng.random_range(0..tags.len())];
            g.add_edge(p, t, "hasInterest", []);
        }
        persons.push(p);
    }

    // --- knows network (preferential attachment) -----------------------
    // endpoints list doubles as a degree-weighted sampling pool
    let mut endpoint_pool: Vec<usize> = vec![0, 1.min(n - 1)];
    for i in 1..n {
        let k = 1 + rng.random_range(0..4);
        for _ in 0..k {
            let j = if rng.random_bool(0.7) && !endpoint_pool.is_empty() {
                endpoint_pool[rng.random_range(0..endpoint_pool.len())]
            } else {
                rng.random_range(0..i)
            };
            if j == i {
                continue;
            }
            g.add_edge(
                persons[i],
                persons[j],
                "knows",
                [("since", Value::Int(rng.random_range(2000..2016)))],
            );
            endpoint_pool.push(i);
            endpoint_pool.push(j);
        }
    }

    // --- content: forums, posts, comments ------------------------------
    let forums: Vec<VertexId> = (0..n / 10)
        .map(|i| {
            let f = g.add_vertex([
                ("type", Value::str("forum")),
                ("title", Value::str(format!("Forum-{i}"))),
            ]);
            let moderator = persons[rng.random_range(0..n)];
            g.add_edge(f, moderator, "hasModerator", []);
            for _ in 0..rng.random_range(5..20) {
                let m = persons[rng.random_range(0..n)];
                g.add_edge(
                    f,
                    m,
                    "hasMember",
                    [("joinDate", Value::Int(rng.random_range(2008..2016)))],
                );
            }
            f
        })
        .collect();
    let mut posts = Vec::new();
    for _ in 0..n * 2 {
        let post = g.add_vertex([
            ("type", Value::str("post")),
            ("creationDate", Value::Int(rng.random_range(2008..2016))),
            (
                "language",
                Value::str(LANGUAGES[rng.random_range(0..LANGUAGES.len())]),
            ),
            ("length", Value::Int(rng.random_range(10..500))),
        ]);
        let creator = persons[rng.random_range(0..n)];
        g.add_edge(post, creator, "hasCreator", []);
        if !forums.is_empty() {
            let f = forums[rng.random_range(0..forums.len())];
            g.add_edge(f, post, "containerOf", []);
        }
        let t = tags[rng.random_range(0..tags.len())];
        g.add_edge(post, t, "hasTag", []);
        posts.push(post);
    }
    for _ in 0..n {
        let c = g.add_vertex([
            ("type", Value::str("comment")),
            ("creationDate", Value::Int(rng.random_range(2009..2016))),
            ("length", Value::Int(rng.random_range(5..200))),
        ]);
        let post = posts[rng.random_range(0..posts.len())];
        g.add_edge(c, post, "replyOf", []);
        let creator = persons[rng.random_range(0..n)];
        g.add_edge(c, creator, "hasCreator", []);
    }

    // generated graphs are immutable workloads: seal into the CSR layout
    g.seal();
    g
}

/// The four evaluation queries (analogues of LDBC QUERY 1–4, Table A.1).
pub fn ldbc_queries() -> Vec<PatternQuery> {
    vec![
        // LDBC QUERY 1 — name-anchored path:
        // person(firstName=Anna) -knows-> person -isLocatedIn-> city
        QueryBuilder::new("LDBC QUERY 1")
            .vertex(
                "p1",
                [
                    Predicate::eq("type", "person"),
                    Predicate::eq("firstName", "Anna"),
                ],
            )
            .vertex("p2", [Predicate::eq("type", "person")])
            .vertex("city", [Predicate::eq("type", "city")])
            .edge("p1", "p2", "knows")
            .edge("p2", "city", "isLocatedIn")
            .build(),
        // LDBC QUERY 2 — attribute-heavy star:
        // person -workAt{workFrom≥2005}-> company; -isLocatedIn-> city;
        // -hasInterest-> tag(music)
        QueryBuilder::new("LDBC QUERY 2")
            .vertex(
                "p",
                [
                    Predicate::eq("type", "person"),
                    Predicate::eq("gender", "female"),
                ],
            )
            .vertex("co", [Predicate::eq("type", "company")])
            .vertex("city", [Predicate::eq("type", "city")])
            .vertex(
                "tag",
                [Predicate::eq("type", "tag"), Predicate::eq("name", "music")],
            )
            .edge_full(
                "p",
                "co",
                "workAt",
                whyq_query::DirectionSet::FORWARD,
                [Predicate::at_least("workFrom", 2005.0)],
            )
            .edge("p", "city", "isLocatedIn")
            .edge("p", "tag", "hasInterest")
            .build(),
        // LDBC QUERY 3 — co-location triangle:
        // person1 -knows-> person2, both -isLocatedIn-> the same city
        QueryBuilder::new("LDBC QUERY 3")
            .vertex("p1", [Predicate::eq("type", "person")])
            .vertex("p2", [Predicate::eq("type", "person")])
            .vertex("city", [Predicate::eq("type", "city")])
            .edge("p1", "p2", "knows")
            .edge("p1", "city", "isLocatedIn")
            .edge("p2", "city", "isLocatedIn")
            .build(),
        // LDBC QUERY 4 — deep content path:
        // comment -replyOf-> post -hasCreator-> person -studyAt-> university
        QueryBuilder::new("LDBC QUERY 4")
            .vertex("cm", [Predicate::eq("type", "comment")])
            .vertex(
                "post",
                [
                    Predicate::eq("type", "post"),
                    Predicate::eq("language", "en"),
                ],
            )
            .vertex("p", [Predicate::eq("type", "person")])
            .vertex("u", [Predicate::eq("type", "university")])
            .edge("cm", "post", "replyOf")
            .edge("post", "p", "hasCreator")
            .edge("p", "u", "studyAt")
            .build(),
    ]
}

/// Why-empty variants: each query with one unsatisfiable constraint
/// injected (used by the Ch. 4/5 evaluations).
pub fn ldbc_failing_queries() -> Vec<PatternQuery> {
    let mut queries = ldbc_queries();
    // Q1: a first name that does not exist
    queries[0]
        .vertex_mut(whyq_query::QVid(0))
        .expect("live")
        .predicate_mut("firstName")
        .expect("present")
        .interval = whyq_query::Interval::eq("Zarathustra");
    // Q2: a work-from year in the future
    queries[1]
        .edge_mut(whyq_query::QEid(0))
        .expect("live")
        .predicate_mut("workFrom")
        .expect("present")
        .interval = whyq_query::Interval::at_least(2050.0);
    // Q3: a city name that does not exist
    queries[2]
        .vertex_mut(whyq_query::QVid(2))
        .expect("live")
        .predicates
        .push(Predicate::eq("name", "Atlantis"));
    // Q4: an impossible post language
    queries[3]
        .vertex_mut(whyq_query::QVid(1))
        .expect("live")
        .predicate_mut("language")
        .expect("present")
        .interval = whyq_query::Interval::eq("xx");
    for q in &mut queries {
        if let Some(name) = &mut q.name {
            name.push_str(" (failing)");
        }
    }
    queries
}

/// Hard why-empty variants: **two** unsatisfiable constraints per query,
/// so a single relaxation step cannot fix them — these separate the
/// statistics-driven priority functions from the baselines (§5.5).
pub fn ldbc_hard_failing_queries() -> Vec<PatternQuery> {
    let mut queries = ldbc_failing_queries();
    // Q1: additionally ask for a non-existent city name
    queries[0]
        .vertex_mut(whyq_query::QVid(2))
        .expect("live")
        .predicates
        .push(Predicate::eq("name", "Nowhere"));
    // Q2: additionally ask for a non-existent tag
    queries[1]
        .vertex_mut(whyq_query::QVid(3))
        .expect("live")
        .predicate_mut("name")
        .expect("present")
        .interval = whyq_query::Interval::eq("unobtainium");
    // Q3: additionally require an impossible gender
    queries[2]
        .vertex_mut(whyq_query::QVid(0))
        .expect("live")
        .predicates
        .push(Predicate::eq("gender", "other"));
    // Q4: additionally require an impossible study year
    queries[3]
        .edge_mut(whyq_query::QEid(2))
        .expect("live")
        .predicates
        .push(Predicate::at_least("classYear", 2050.0));
    for q in &mut queries {
        if let Some(name) = &mut q.name {
            *name = name.replace(" (failing)", " (hard)");
        }
    }
    queries
}

/// A `knows`-path query of `hops` person hops ending in a city lookup;
/// with `failing`, the terminal city name is unsatisfiable. Used for the
/// §4.5 query-size sweeps.
pub fn ldbc_path_query(hops: usize, failing: bool) -> PatternQuery {
    let mut b = QueryBuilder::new(format!("path-{hops}{}", if failing { "-fail" } else { "" }));
    for i in 0..=hops {
        b = b.vertex(&format!("p{i}"), [Predicate::eq("type", "person")]);
    }
    let city_pred: Vec<Predicate> = if failing {
        vec![
            Predicate::eq("type", "city"),
            Predicate::eq("name", "Nowhere"),
        ]
    } else {
        vec![Predicate::eq("type", "city")]
    };
    b = b.vertex("city", city_pred);
    for i in 0..hops {
        b = b.edge(&format!("p{i}"), &format!("p{}", i + 1), "knows");
    }
    b = b.edge(&format!("p{hops}"), "city", "isLocatedIn");
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_matcher::{MatchOptions, Matcher};

    fn count_matches(
        g: &whyq_graph::PropertyGraph,
        q: &whyq_query::PatternQuery,
        limit: Option<u64>,
    ) -> u64 {
        Matcher::new(g).count(q, MatchOptions::counting(limit))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ldbc_graph(LdbcConfig::default());
        let b = ldbc_graph(LdbcConfig::default());
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        // spot-check an arbitrary vertex's attributes match
        let sym = a.attr_symbol("firstName").unwrap();
        let v = whyq_graph::VertexId(100);
        assert_eq!(a.vertex_attr(v, sym), b.vertex_attr(v, sym));
    }

    #[test]
    fn different_seeds_differ() {
        let a = ldbc_graph(LdbcConfig {
            seed: 1,
            ..Default::default()
        });
        let b = ldbc_graph(LdbcConfig {
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn schema_shape() {
        let g = ldbc_graph(LdbcConfig::default());
        let hist = whyq_graph::stats::vertex_attr_histogram(&g, "type");
        let types: Vec<&str> = hist.iter().map(|(t, _)| t.as_str()).collect();
        for expected in [
            "person",
            "city",
            "country",
            "university",
            "company",
            "tag",
            "forum",
            "post",
            "comment",
        ] {
            assert!(types.contains(&expected), "missing {expected}");
        }
        let person_count = hist.iter().find(|(t, _)| t == "person").unwrap().1;
        assert_eq!(person_count, 300);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = ldbc_graph(LdbcConfig::default());
        let s = whyq_graph::stats::degree_summary(&g);
        assert!(s.max as f64 > 4.0 * s.mean, "max {} mean {}", s.max, s.mean);
        assert_eq!(s.isolated, 0);
    }

    #[test]
    fn queries_have_nontrivial_cardinalities() {
        let g = ldbc_graph(LdbcConfig::default());
        for q in ldbc_queries() {
            let c = count_matches(&g, &q, None);
            assert!(c > 0, "{:?} is empty", q.name);
            assert!(c < 100_000, "{:?} too large: {c}", q.name);
        }
    }

    #[test]
    fn failing_queries_are_empty() {
        let g = ldbc_graph(LdbcConfig::default());
        for q in ldbc_failing_queries() {
            assert_eq!(count_matches(&g, &q, None), 0, "{:?} not empty", q.name);
        }
    }

    #[test]
    fn path_queries_scale_and_fail_on_demand() {
        let g = ldbc_graph(LdbcConfig::default());
        for hops in 1..=3 {
            let ok = ldbc_path_query(hops, false);
            assert_eq!(ok.num_edges(), hops + 1);
            assert!(count_matches(&g, &ok, Some(10)) > 0);
            let fail = ldbc_path_query(hops, true);
            assert_eq!(count_matches(&g, &fail, None), 0);
        }
    }
}
