//! # whyq-datagen — evaluation workloads
//!
//! The thesis evaluates on two data sets (Appendix A): the LDBC social
//! network benchmark (SF1) with four pattern queries (Table A.1) and a
//! DBPEDIA extract with heterogeneous entities. Both are substituted here
//! by **seeded generators** that reproduce the *shape* properties the
//! evaluation depends on — schema structure, degree skew, and predicate
//! selectivities — at laptop scale (see `DESIGN.md` §3 for the
//! substitution rationale).
//!
//! * [`ldbc`] — LDBC-SNB-like social network: persons, cities, countries,
//!   universities, companies, tags, forums, posts, comments, with the SNB
//!   relationship types; plus analogues of LDBC QUERY 1–4.
//! * [`dbpedia`] — DBpedia-like heterogeneous knowledge graph with a
//!   long-tailed degree distribution; plus three evaluation queries.
//! * [`mutation`] — the random explanation generator of the §3.2.5 metric
//!   study: seeded pools of modified queries at 1–3 modification levels.

// The whole workspace is unsafe-free (audited 2026-08): lock it in.
#![forbid(unsafe_code)]

pub mod dbpedia;
pub mod ldbc;
pub mod mutation;

pub use dbpedia::{dbpedia_failing_queries, dbpedia_graph, dbpedia_queries, DbpediaConfig};
pub use ldbc::{
    ldbc_failing_queries, ldbc_graph, ldbc_hard_failing_queries, ldbc_path_query, ldbc_queries,
    LdbcConfig,
};
pub use mutation::{random_explanations, MutationConfig};
