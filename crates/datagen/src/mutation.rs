//! Random explanation pools for the metric evaluation (§3.2.5).
//!
//! The thesis characterizes its three comparison metrics by generating
//! *random* modification-based explanations: repeatedly pick random
//! modification operators and random query elements, apply up to three
//! levels of modification, and measure all three distances of every
//! generated explanation against the original query. This module is that
//! generator — seeded, deduplicated by signature, drawing its operator
//! pool from the same fine-grained candidate generator the rewriter uses.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;
use whyq_core::domains::AttributeDomains;
use whyq_core::fine::generate::fine_candidates;
use whyq_query::{signature::signature, GraphMod, PatternQuery};

/// Pool-generation configuration.
#[derive(Debug, Clone, Copy)]
pub struct MutationConfig {
    /// Number of explanations to generate.
    pub count: usize,
    /// Maximum modification depth (the thesis uses three levels).
    pub max_ops: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig {
            count: 300,
            max_ops: 3,
            seed: 17,
        }
    }
}

/// Generate a pool of distinct random explanations for `q`.
///
/// Each explanation applies 1..=`max_ops` random modifications drawn from
/// the union of relaxing and concretizing candidates of the evolving
/// query. Candidates that fail to apply are skipped; duplicates (by
/// canonical signature) are discarded. Returns `(query, applied mods)`
/// pairs.
pub fn random_explanations(
    q: &PatternQuery,
    domains: &AttributeDomains,
    config: MutationConfig,
) -> Vec<(PatternQuery, Vec<GraphMod>)> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut seen: HashSet<String> = HashSet::new();
    seen.insert(signature(q));
    let mut out = Vec::with_capacity(config.count);
    // generation attempts are bounded to avoid spinning on tiny op spaces
    let max_attempts = config.count * 20;
    let mut attempts = 0;
    while out.len() < config.count && attempts < max_attempts {
        attempts += 1;
        let depth = rng.random_range(1..=config.max_ops.max(1));
        let mut current = q.clone();
        let mut mods = Vec::new();
        for _ in 0..depth {
            let mut pool = fine_candidates(&current, domains, true, true);
            pool.extend(fine_candidates(&current, domains, false, true));
            if pool.is_empty() {
                break;
            }
            let m = pool[rng.random_range(0..pool.len())].clone();
            if let Ok((next, _)) = m.applied(&current) {
                current = next;
                mods.push(m);
            }
        }
        if mods.is_empty() {
            continue;
        }
        if seen.insert(signature(&current)) {
            out.push((current, mods));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ldbc::{ldbc_graph, ldbc_queries, LdbcConfig};

    #[test]
    fn pool_is_distinct_and_seeded() {
        let g = ldbc_graph(LdbcConfig {
            persons: 60,
            seed: 3,
        });
        let domains = AttributeDomains::build(&g, 64);
        let q = &ldbc_queries()[0];
        let config = MutationConfig {
            count: 50,
            max_ops: 3,
            seed: 5,
        };
        let pool_a = random_explanations(q, &domains, config);
        let pool_b = random_explanations(q, &domains, config);
        assert_eq!(pool_a.len(), pool_b.len());
        assert!(pool_a.len() >= 40, "only {} generated", pool_a.len());
        // all distinct
        let sigs: HashSet<String> = pool_a.iter().map(|(q, _)| signature(q)).collect();
        assert_eq!(sigs.len(), pool_a.len());
        // depth bounded
        assert!(pool_a.iter().all(|(_, m)| (1..=3).contains(&m.len())));
        // determinism
        for (a, b) in pool_a.iter().zip(&pool_b) {
            assert_eq!(signature(&a.0), signature(&b.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let g = ldbc_graph(LdbcConfig {
            persons: 60,
            seed: 3,
        });
        let domains = AttributeDomains::build(&g, 64);
        let q = &ldbc_queries()[0];
        let a = random_explanations(
            q,
            &domains,
            MutationConfig {
                count: 30,
                max_ops: 2,
                seed: 1,
            },
        );
        let b = random_explanations(
            q,
            &domains,
            MutationConfig {
                count: 30,
                max_ops: 2,
                seed: 2,
            },
        );
        let sigs_a: HashSet<String> = a.iter().map(|(q, _)| signature(q)).collect();
        let sigs_b: HashSet<String> = b.iter().map(|(q, _)| signature(q)).collect();
        assert_ne!(sigs_a, sigs_b);
    }
}
