//! Server observability counters.
//!
//! Every decision the serving layer makes — admit, shed, batch, degrade,
//! cancel — increments a lock-free counter here, and the whole set is
//! exposed two ways: over the wire through the `STATS` command and
//! in-process through [`crate::Server::stats`]. These are the inputs any
//! future *adaptive* admission controller needs (shed rate vs. queue
//! depth is the classic control signal), so the counters are first-class
//! protocol surface, not debug logging.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counter block shared by every connection, the batcher and
/// the accept loop. All counters are monotone except the two gauges
/// (`queue_depth`, `open_connections`).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections ever accepted.
    pub(crate) connections: AtomicU64,
    /// Connections fully torn down (reader and worker exited).
    pub(crate) disconnects: AtomicU64,
    /// Requests admitted past admission control.
    pub(crate) admitted: AtomicU64,
    /// Requests refused by admission control (`ROWS 0 shed`).
    pub(crate) shed: AtomicU64,
    /// Requests that ran inside a same-signature batch group of ≥ 2.
    pub(crate) batched: AtomicU64,
    /// Admitted requests answered `complete`.
    pub(crate) completed: AtomicU64,
    /// Admitted requests answered with a partial (`deadline`/`budget`).
    pub(crate) degraded: AtomicU64,
    /// Admitted requests answered `cancelled` (client `CANCEL` or a
    /// dropped connection tripping its token).
    pub(crate) cancelled: AtomicU64,
    /// Requests that ended in an engine error (`ERR internal`, …).
    pub(crate) failed: AtomicU64,
    /// Frames answered with any `ERR` protocol response.
    pub(crate) protocol_errors: AtomicU64,
    /// Gauge: requests admitted but not yet answered.
    pub(crate) queue_depth: AtomicU64,
    /// Gauge: currently open connections.
    pub(crate) open_connections: AtomicU64,
}

impl ServerStats {
    pub(crate) fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Bump the gauge; returns the depth *after* the increment.
    pub(crate) fn enter_queue(&self) -> u64 {
        self.queue_depth.fetch_add(1, Ordering::AcqRel) + 1
    }

    pub(crate) fn leave_queue(&self) {
        self.queue_depth.fetch_sub(1, Ordering::AcqRel);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            batched: self.batched.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Acquire),
            open_connections: self.open_connections.load(Ordering::Acquire),
            // engine-side counters; merged in by `Shared::stats_snapshot`
            // via `StatsSnapshot::with_sibling`
            sibling_hits: 0,
            sibling_invalidations: 0,
        }
    }
}

/// A point-in-time copy of the server counters — what `STATS` renders and
/// what tests assert on. Field order is the wire order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections ever accepted.
    pub connections: u64,
    /// Connections fully torn down.
    pub disconnects: u64,
    /// Requests admitted past admission control.
    pub admitted: u64,
    /// Requests refused by admission control.
    pub shed: u64,
    /// Requests that ran inside a same-signature batch group of ≥ 2.
    pub batched: u64,
    /// Admitted requests answered `complete`.
    pub completed: u64,
    /// Admitted requests answered with a deadline/budget partial.
    pub degraded: u64,
    /// Admitted requests answered `cancelled`.
    pub cancelled: u64,
    /// Admitted requests that ended in an engine error.
    pub failed: u64,
    /// Frames answered with an `ERR` response.
    pub protocol_errors: u64,
    /// Gauge: requests admitted but not yet answered.
    pub queue_depth: u64,
    /// Gauge: currently open connections.
    pub open_connections: u64,
    /// Component results replayed from the database's sibling cache
    /// instead of re-executed (see `whyq_session::SiblingStats`).
    pub sibling_hits: u64,
    /// Component units a sibling's delta invalidated (re-executed while
    /// the rest of their query replayed) plus generation-bump drops.
    pub sibling_invalidations: u64,
}

impl StatsSnapshot {
    /// The `(name, value)` pairs in wire order.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("connections", self.connections),
            ("disconnects", self.disconnects),
            ("admitted", self.admitted),
            ("shed", self.shed),
            ("batched", self.batched),
            ("completed", self.completed),
            ("degraded", self.degraded),
            ("cancelled", self.cancelled),
            ("failed", self.failed),
            ("protocol_errors", self.protocol_errors),
            ("queue_depth", self.queue_depth),
            ("open_connections", self.open_connections),
            ("sibling_hits", self.sibling_hits),
            ("sibling_invalidations", self.sibling_invalidations),
        ]
    }

    /// Render the `STATS` response payload.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("STATS");
        for (name, value) in self.fields() {
            let _ = write!(out, "\n{name}={value}");
        }
        out
    }

    /// This snapshot with the database's sibling-cache counters merged
    /// in — the engine-side half of the `STATS` surface. The server's own
    /// counters live in [`ServerStats`] atomics; the sibling counters
    /// live in the shared `Database`, so the merge happens at render
    /// time.
    pub fn with_sibling(mut self, hits: u64, invalidations: u64) -> StatsSnapshot {
        self.sibling_hits = hits;
        self.sibling_invalidations = invalidations;
        self
    }

    /// Rebuild a snapshot from parsed `STATS` counter lines (the client
    /// side). Unknown counters are ignored so old clients keep working
    /// when the server grows new ones.
    pub fn from_counters(counters: &[(String, u64)]) -> StatsSnapshot {
        let mut s = StatsSnapshot::default();
        for (name, value) in counters {
            match name.as_str() {
                "connections" => s.connections = *value,
                "disconnects" => s.disconnects = *value,
                "admitted" => s.admitted = *value,
                "shed" => s.shed = *value,
                "batched" => s.batched = *value,
                "completed" => s.completed = *value,
                "degraded" => s.degraded = *value,
                "cancelled" => s.cancelled = *value,
                "failed" => s.failed = *value,
                "protocol_errors" => s.protocol_errors = *value,
                "queue_depth" => s.queue_depth = *value,
                "open_connections" => s.open_connections = *value,
                "sibling_hits" => s.sibling_hits = *value,
                "sibling_invalidations" => s.sibling_invalidations = *value,
                _ => {}
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_reply, Reply};

    #[test]
    fn snapshot_round_trips_through_the_wire_rendering() {
        let stats = ServerStats::default();
        ServerStats::incr(&stats.admitted);
        ServerStats::incr(&stats.admitted);
        ServerStats::incr(&stats.shed);
        assert_eq!(stats.enter_queue(), 1);
        let snap = stats.snapshot();
        assert_eq!((snap.admitted, snap.shed, snap.queue_depth), (2, 1, 1));
        stats.leave_queue();
        assert_eq!(stats.snapshot().queue_depth, 0);

        let rendered = snap.render();
        let Reply::Stats(counters) = parse_reply(&rendered).unwrap() else {
            panic!("STATS payload should parse as a stats reply");
        };
        assert_eq!(StatsSnapshot::from_counters(&counters), snap);
    }
}
