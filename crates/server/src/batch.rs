//! The batching scheduler: coalesces requests arriving within a window
//! into one `Executor` batch.
//!
//! All admitted requests funnel through one mpsc channel into a single
//! batcher thread. When a request arrives, the batcher keeps collecting
//! for [`crate::ServerConfig::batch_window`] (or until
//! [`crate::ServerConfig::max_batch`] requests are queued) and then
//! executes the whole set through [`Executor::find_batch`] — the
//! inference-serving trick applied to graph queries. Same-signature
//! requests in a batch share one compiled plan: each executor worker
//! prepares against the database's shared plan cache, whose per-signature
//! slot compiles at most once under any contention, so N concurrent
//! clients sending the same query text cost one compile
//! (`Database::compile_count() == 1`), not N.
//!
//! Each request still carries its own `MatchOptions` — its own SLO budget
//! and cancel token — so one slow request degrades *itself*, never its
//! batch siblings, and errors stay per-slot ([`Executor::find_batch`]'s
//! contract).

use crate::Shared;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;
use whyq_matcher::{MatchOptions, ResultGraph};
use whyq_query::PatternQuery;
use whyq_session::{Executor, Governed, ParallelOpts, WhyqError};

/// One admitted request, queued for the batcher.
pub(crate) struct BatchJob {
    /// The parsed query (shared so the batcher never re-parses).
    pub query: Arc<PatternQuery>,
    /// Per-request options: SLO budget, cancel token, row cap.
    pub opts: MatchOptions,
    /// Where the connection worker waits for the result.
    pub reply: mpsc::Sender<BatchReply>,
}

/// What the batcher sends back for one job.
pub(crate) type BatchReply = Result<Governed<Vec<ResultGraph>>, WhyqError>;

/// The batcher loop. Exits when every job sender is gone (the server
/// drops its handle at shutdown; connections only hold transient clones).
pub(crate) fn run(shared: &Arc<Shared>, rx: &mpsc::Receiver<BatchJob>) {
    let threads = shared.config.threads;
    let exec = if threads == 0 {
        Executor::from_env()
    } else {
        Executor::new(ParallelOpts::with_threads(threads))
    };
    loop {
        let first = match rx.recv() {
            Ok(job) => job,
            Err(mpsc::RecvError) => return,
        };
        let mut jobs = vec![first];
        let window = shared.config.batch_window;
        if window.is_zero() {
            // no waiting, but still sweep up whatever is already queued
            while jobs.len() < shared.config.max_batch {
                match rx.try_recv() {
                    Ok(job) => jobs.push(job),
                    Err(_) => break,
                }
            }
        } else {
            let deadline = Instant::now() + window;
            while jobs.len() < shared.config.max_batch {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(job) => jobs.push(job),
                    Err(_) => break,
                }
            }
        }

        // observability: count members of same-signature groups of >= 2 —
        // the requests that actually shared a plan inside this batch
        let mut by_sig: HashMap<String, u64> = HashMap::new();
        for job in &jobs {
            *by_sig.entry(job.query.signature()).or_insert(0) += 1;
        }
        for group in by_sig.into_values() {
            if group >= 2 {
                shared.stats.batched.fetch_add(group, Ordering::Relaxed);
            }
        }

        let requests: Vec<(&PatternQuery, MatchOptions)> = jobs
            .iter()
            .map(|job| (&*job.query, job.opts.clone()))
            .collect();
        let results = exec.find_batch(&shared.db, &requests);
        drop(requests);
        for (job, result) in jobs.into_iter().zip(results) {
            // a worker that stopped waiting (its connection died) just
            // drops the receiver; that is not the batcher's problem
            let _ = job.reply.send(result);
        }
    }
}
