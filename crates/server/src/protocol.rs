//! The `whyqd` wire protocol: length-prefixed text frames.
//!
//! Every message in either direction is one **frame**: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 text.
//! Requests are single-line commands (`HELLO`, `QUERY`, `PREPARE`,
//! `EXEC`, `CANCEL`, `STATS`, `SHUTDOWN`); responses are `OK`/`ROWS`/
//! `STATS`/`ERR` payloads whose first line carries the status and whose
//! remaining lines carry rows or counters. `docs/wire-protocol.md` at
//! the repository root specifies the grammar with a worked transcript;
//! this module is the single implementation both the server and the
//! [`crate::client`] parse and render with, so the two cannot drift.
//!
//! Robustness contract: every malformed input — an oversized length
//! prefix, a non-UTF-8 payload, an unknown verb, an unparsable pattern —
//! maps to a typed [`ProtocolError`] with a stable machine-readable
//! [`ProtocolError::code`]. Only errors where the *stream itself* has
//! lost framing ([`ProtocolError::is_fatal`]) close the connection;
//! everything else is answered with an `ERR` frame and the session
//! continues.

use std::fmt;
use std::io::{self, Read, Write};
use whyq_matcher::Termination;
use whyq_query::PatternQuery;

/// Wire protocol version announced in the `HELLO` response.
pub const PROTOCOL_VERSION: u32 = 1;

/// Default upper bound on a frame payload (bytes). A pattern query is a
/// few hundred bytes; anything near this limit is a malfunctioning or
/// hostile client.
pub const DEFAULT_MAX_FRAME: usize = 64 * 1024;

/// Typed protocol-level failures. Every variant renders to a stable
/// `ERR <code> <message>` response via [`ProtocolError::code`] and
/// [`fmt::Display`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The length prefix exceeds the configured frame cap. Fatal: the
    /// bytes that follow cannot be skipped reliably, so after reporting
    /// the error the connection closes.
    FrameTooLarge {
        /// Length the prefix announced.
        len: usize,
        /// Configured cap it exceeded.
        max: usize,
    },
    /// The payload was not valid UTF-8.
    InvalidUtf8,
    /// A zero-length or all-whitespace payload.
    EmptyFrame,
    /// The first token is not a known command verb.
    UnknownCommand {
        /// The unrecognized verb.
        verb: String,
    },
    /// A command was syntactically incomplete (missing pattern, handle…).
    BadArguments {
        /// What was malformed.
        message: String,
    },
    /// The pattern text did not parse (`whyq_query::parser` rejected it).
    BadPattern {
        /// The parser's positioned message.
        message: String,
    },
    /// `EXEC` named a handle this connection never prepared.
    BadHandle {
        /// The unknown handle.
        handle: u64,
    },
    /// `QUERY`/`EXEC` named an SLO class the server is not configured
    /// with.
    BadClass {
        /// The unknown class name.
        class: String,
    },
    /// The server is draining and admits no new work.
    ShuttingDown,
    /// The engine failed the request (a worker panic, an invalid query
    /// that passed parsing). The database stays up; the connection stays
    /// open.
    Internal {
        /// The engine error rendered as text.
        message: String,
    },
}

impl ProtocolError {
    /// Stable machine-readable error code (the second token of an `ERR`
    /// response).
    pub fn code(&self) -> &'static str {
        match self {
            ProtocolError::FrameTooLarge { .. } => "frame-too-large",
            ProtocolError::InvalidUtf8 => "invalid-utf8",
            ProtocolError::EmptyFrame => "empty-frame",
            ProtocolError::UnknownCommand { .. } => "unknown-command",
            ProtocolError::BadArguments { .. } => "bad-arguments",
            ProtocolError::BadPattern { .. } => "bad-pattern",
            ProtocolError::BadHandle { .. } => "bad-handle",
            ProtocolError::BadClass { .. } => "bad-class",
            ProtocolError::ShuttingDown => "shutting-down",
            ProtocolError::Internal { .. } => "internal",
        }
    }

    /// True when the stream has lost framing and the connection must
    /// close after the error is reported.
    pub fn is_fatal(&self) -> bool {
        matches!(self, ProtocolError::FrameTooLarge { .. })
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max} byte cap")
            }
            ProtocolError::InvalidUtf8 => write!(f, "payload is not valid UTF-8"),
            ProtocolError::EmptyFrame => write!(f, "empty command frame"),
            ProtocolError::UnknownCommand { verb } => write!(f, "unknown command {verb:?}"),
            ProtocolError::BadArguments { message } => write!(f, "{message}"),
            ProtocolError::BadPattern { message } => write!(f, "{message}"),
            ProtocolError::BadHandle { handle } => {
                write!(
                    f,
                    "no prepared query with handle {handle} on this connection"
                )
            }
            ProtocolError::BadClass { class } => write!(f, "unknown SLO class {class:?}"),
            ProtocolError::ShuttingDown => write!(f, "server is draining; no new work admitted"),
            ProtocolError::Internal { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

// ---------------------------------------------------------------------
// framing
// ---------------------------------------------------------------------

/// Write one frame: 4-byte big-endian length + UTF-8 payload.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large to encode"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Why [`FrameReader::read_frame`] returned without a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying read failed (including `WouldBlock`/`TimedOut`
    /// from a read-timeout poll — the reader's buffer stays consistent,
    /// so the caller can simply call again).
    Io(io::Error),
    /// The peer closed the stream in the middle of a frame.
    TruncatedEof,
    /// The frame violates the protocol (oversized prefix, bad UTF-8).
    Protocol(ProtocolError),
}

/// Incremental frame decoder over any `Read`.
///
/// Accumulates bytes in an internal buffer and yields complete frames, so
/// it composes with read timeouts: a timed-out `read` surfaces as
/// [`FrameError::Io`] without disturbing partial state, and the next call
/// resumes where the stream left off.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    max_frame: usize,
}

impl FrameReader {
    /// A decoder enforcing the given payload cap.
    pub fn new(max_frame: usize) -> Self {
        FrameReader {
            buf: Vec::new(),
            max_frame,
        }
    }

    /// Pull bytes from `r` until one full frame is decoded.
    ///
    /// `Ok(Some(payload))` — a complete frame; `Ok(None)` — the peer
    /// closed cleanly at a frame boundary; `Err` — see [`FrameError`].
    pub fn read_frame(&mut self, r: &mut impl Read) -> Result<Option<String>, FrameError> {
        loop {
            if let Some(frame) = self.take_buffered()? {
                return Ok(Some(frame));
            }
            let mut chunk = [0u8; 4096];
            match r.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(FrameError::TruncatedEof)
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }

    /// Decode one frame from the buffer if fully present.
    fn take_buffered(&mut self) -> Result<Option<String>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > self.max_frame {
            return Err(FrameError::Protocol(ProtocolError::FrameTooLarge {
                len,
                max: self.max_frame,
            }));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload: Vec<u8> = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        match String::from_utf8(payload) {
            Ok(s) => Ok(Some(s)),
            Err(_) => Err(FrameError::Protocol(ProtocolError::InvalidUtf8)),
        }
    }
}

// ---------------------------------------------------------------------
// commands
// ---------------------------------------------------------------------

/// A parsed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Handshake; the server answers with its identity and the graph
    /// dimensions.
    Hello,
    /// Parse and execute a pattern under the (optional) SLO class.
    Query {
        /// SLO class (`@interactive` on the wire); `None` = server default.
        class: Option<String>,
        /// Pattern text in the `whyq_query::parser` syntax.
        pattern: String,
    },
    /// Parse and cache a pattern on this connection, returning a handle.
    Prepare {
        /// Pattern text.
        pattern: String,
    },
    /// Execute a previously prepared handle under the (optional) class.
    Exec {
        /// SLO class; `None` = server default.
        class: Option<String>,
        /// Handle returned by `PREPARE`.
        handle: u64,
    },
    /// Cancel the query currently in flight on this connection (handled
    /// out of band by the frame reader; the acknowledgement is ordered).
    Cancel,
    /// Report the server's observability counters.
    Stats,
    /// Begin graceful shutdown: stop accepting, drain in-flight work
    /// within the drain deadline, then exit.
    Shutdown,
}

/// Parse one request payload into a [`Command`].
pub fn parse_command(payload: &str) -> Result<Command, ProtocolError> {
    let text = payload.trim();
    if text.is_empty() {
        return Err(ProtocolError::EmptyFrame);
    }
    let (verb, rest) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim_start()),
        None => (text, ""),
    };
    // an optional leading `@class` token
    let split_class = |rest: &str| -> (Option<String>, String) {
        if let Some(stripped) = rest.strip_prefix('@') {
            match stripped.find(char::is_whitespace) {
                Some(i) => (
                    Some(stripped[..i].to_string()),
                    stripped[i..].trim_start().to_string(),
                ),
                None => (Some(stripped.to_string()), String::new()),
            }
        } else {
            (None, rest.to_string())
        }
    };
    match verb {
        "HELLO" => Ok(Command::Hello),
        "QUERY" => {
            let (class, pattern) = split_class(rest);
            if pattern.is_empty() {
                return Err(ProtocolError::BadArguments {
                    message: "QUERY needs a pattern".into(),
                });
            }
            Ok(Command::Query { class, pattern })
        }
        "PREPARE" => {
            if rest.is_empty() {
                return Err(ProtocolError::BadArguments {
                    message: "PREPARE needs a pattern".into(),
                });
            }
            Ok(Command::Prepare {
                pattern: rest.to_string(),
            })
        }
        "EXEC" => {
            let (class, handle) = split_class(rest);
            let handle = handle.trim();
            let handle = handle
                .parse::<u64>()
                .map_err(|_| ProtocolError::BadArguments {
                    message: format!("EXEC needs a numeric handle, got {handle:?}"),
                })?;
            Ok(Command::Exec { class, handle })
        }
        "CANCEL" => Ok(Command::Cancel),
        "STATS" => Ok(Command::Stats),
        "SHUTDOWN" => Ok(Command::Shutdown),
        other => Err(ProtocolError::UnknownCommand {
            verb: other.to_string(),
        }),
    }
}

// ---------------------------------------------------------------------
// responses
// ---------------------------------------------------------------------

/// Wire rendering of how a request ended — [`Termination`] plus the
/// admission-control outcome `shed`, which tags a refused request as a
/// degraded-but-well-formed response rather than an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermTag {
    /// Results are the full answer.
    Complete,
    /// Partial: the SLO deadline passed mid-search.
    Deadline,
    /// Partial: the SLO step budget ran out.
    Budget,
    /// Partial: the request (or its connection) was cancelled.
    Cancelled,
    /// Empty: admission control refused the request under load.
    Shed,
}

impl TermTag {
    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            TermTag::Complete => "complete",
            TermTag::Deadline => "deadline",
            TermTag::Budget => "budget",
            TermTag::Cancelled => "cancelled",
            TermTag::Shed => "shed",
        }
    }

    /// Parse a wire token.
    pub fn parse(s: &str) -> Option<TermTag> {
        Some(match s {
            "complete" => TermTag::Complete,
            "deadline" => TermTag::Deadline,
            "budget" => TermTag::Budget,
            "cancelled" => TermTag::Cancelled,
            "shed" => TermTag::Shed,
            _ => return None,
        })
    }

    /// True iff the rows under this tag are the exact, complete answer.
    pub fn is_complete(self) -> bool {
        matches!(self, TermTag::Complete)
    }
}

impl From<Termination> for TermTag {
    fn from(t: Termination) -> TermTag {
        match t {
            Termination::Complete => TermTag::Complete,
            Termination::DeadlineExceeded => TermTag::Deadline,
            Termination::BudgetExhausted => TermTag::Budget,
            Termination::Cancelled => TermTag::Cancelled,
        }
    }
}

impl fmt::Display for TermTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Render a rows response: header `ROWS <n> <termination> [capped]`,
/// then one line per result listing its vertex bindings (`v0=17 v1=4`).
pub fn render_rows(rows: &[whyq_matcher::ResultGraph], tag: TermTag, capped: bool) -> String {
    use fmt::Write as _;
    let mut out = format!("ROWS {} {}", rows.len(), tag.as_str());
    if capped {
        out.push_str(" capped");
    }
    for r in rows {
        out.push('\n');
        let mut first = true;
        for (qv, dv) in r.vertex_bindings() {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "{qv}={dv}");
            first = false;
        }
    }
    out
}

/// Render an error response: `ERR <code> <message>` (message forced onto
/// one line so the frame stays a simple line protocol).
pub fn render_err(e: &ProtocolError) -> String {
    format!("ERR {} {}", e.code(), e.to_string().replace('\n', " "))
}

/// A parsed server response, the client-side dual of the render
/// functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `OK <detail>` — acknowledgement with free-form detail text.
    Ok(String),
    /// `ROWS …` — query results.
    Rows {
        /// One line per result (`v0=17 v1=4`).
        rows: Vec<String>,
        /// How the execution ended.
        termination: TermTag,
        /// True when the row count hit the server's per-request cap.
        capped: bool,
    },
    /// `STATS` — counter lines (`admitted=12`), in server order.
    Stats(Vec<(String, u64)>),
    /// `ERR <code> <message>`.
    Err {
        /// Machine-readable code (see [`ProtocolError::code`]).
        code: String,
        /// Human-readable message.
        message: String,
    },
}

/// Parse a response payload. `Err(msg)` means the payload violates the
/// response grammar itself.
pub fn parse_reply(payload: &str) -> Result<Reply, String> {
    let mut lines = payload.lines();
    let head = lines.next().ok_or("empty response frame")?;
    let mut toks = head.split_whitespace();
    match toks.next() {
        Some("OK") => {
            let detail = head.strip_prefix("OK").unwrap_or("").trim().to_string();
            Ok(Reply::Ok(detail))
        }
        Some("ROWS") => {
            let n: usize = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or("ROWS header missing count")?;
            let termination = toks
                .next()
                .and_then(TermTag::parse)
                .ok_or("ROWS header missing termination tag")?;
            let capped = toks.next() == Some("capped");
            let rows: Vec<String> = lines.map(str::to_string).collect();
            if rows.len() != n {
                return Err(format!("ROWS announced {n} rows, carried {}", rows.len()));
            }
            Ok(Reply::Rows {
                rows,
                termination,
                capped,
            })
        }
        Some("STATS") => {
            let mut counters = Vec::new();
            for line in lines {
                let (k, v) = line.split_once('=').ok_or("malformed STATS line")?;
                let v: u64 = v.parse().map_err(|_| "malformed STATS value")?;
                counters.push((k.to_string(), v));
            }
            Ok(Reply::Stats(counters))
        }
        Some("ERR") => {
            let code = toks.next().unwrap_or("unknown").to_string();
            let message = head.splitn(3, ' ').nth(2).unwrap_or("").to_string();
            Ok(Reply::Err { code, message })
        }
        _ => Err(format!("unknown response status line {head:?}")),
    }
}

/// Parse a pattern, mapping the parser error into the protocol error
/// space.
pub fn parse_pattern(text: &str) -> Result<PatternQuery, ProtocolError> {
    whyq_query::parse_query(text).map_err(|e| ProtocolError::BadPattern {
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "HELLO").unwrap();
        write_frame(&mut wire, "QUERY (a)").unwrap();
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(
            reader.read_frame(&mut cursor).unwrap().as_deref(),
            Some("HELLO")
        );
        assert_eq!(
            reader.read_frame(&mut cursor).unwrap().as_deref(),
            Some("QUERY (a)")
        );
        assert!(reader.read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_prefix_is_fatal_truncation_is_not_a_frame() {
        let mut reader = FrameReader::new(16);
        let mut cursor = io::Cursor::new(vec![0xFF, 0xFF, 0xFF, 0xFF]);
        match reader.read_frame(&mut cursor) {
            Err(FrameError::Protocol(e)) => {
                assert_eq!(e.code(), "frame-too-large");
                assert!(e.is_fatal());
            }
            other => panic!("expected protocol error, got {other:?}"),
        }
        // a frame cut off mid-payload is a truncation error at EOF
        let mut reader = FrameReader::new(1024);
        let mut partial = Vec::new();
        partial.extend_from_slice(&10u32.to_be_bytes());
        partial.extend_from_slice(b"abc");
        let mut cursor = io::Cursor::new(partial);
        assert!(matches!(
            reader.read_frame(&mut cursor),
            Err(FrameError::TruncatedEof)
        ));
    }

    #[test]
    fn bad_utf8_is_a_typed_error() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&2u32.to_be_bytes());
        wire.extend_from_slice(&[0xC3, 0x28]); // invalid UTF-8 pair
        let mut reader = FrameReader::new(1024);
        let mut cursor = io::Cursor::new(wire);
        match reader.read_frame(&mut cursor) {
            Err(FrameError::Protocol(e)) => {
                assert_eq!(e.code(), "invalid-utf8");
                assert!(!e.is_fatal());
            }
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn commands_parse() {
        assert_eq!(parse_command("HELLO").unwrap(), Command::Hello);
        assert_eq!(
            parse_command("QUERY (a:person)").unwrap(),
            Command::Query {
                class: None,
                pattern: "(a:person)".into()
            }
        );
        assert_eq!(
            parse_command("QUERY @interactive (a)-[:knows]->(b)").unwrap(),
            Command::Query {
                class: Some("interactive".into()),
                pattern: "(a)-[:knows]->(b)".into()
            }
        );
        assert_eq!(
            parse_command("PREPARE (a)").unwrap(),
            Command::Prepare {
                pattern: "(a)".into()
            }
        );
        assert_eq!(
            parse_command("EXEC @batch 3").unwrap(),
            Command::Exec {
                class: Some("batch".into()),
                handle: 3
            }
        );
        assert_eq!(parse_command("CANCEL").unwrap(), Command::Cancel);
        assert_eq!(parse_command("STATS").unwrap(), Command::Stats);
        assert_eq!(parse_command("SHUTDOWN").unwrap(), Command::Shutdown);
    }

    #[test]
    fn command_errors_are_typed() {
        assert_eq!(parse_command("  ").unwrap_err().code(), "empty-frame");
        assert_eq!(
            parse_command("NOPE x").unwrap_err().code(),
            "unknown-command"
        );
        assert_eq!(parse_command("QUERY").unwrap_err().code(), "bad-arguments");
        assert_eq!(
            parse_command("QUERY @fast").unwrap_err().code(),
            "bad-arguments"
        );
        assert_eq!(
            parse_command("EXEC zero").unwrap_err().code(),
            "bad-arguments"
        );
        assert_eq!(
            parse_command("PREPARE").unwrap_err().code(),
            "bad-arguments"
        );
        assert_eq!(parse_pattern("(((").unwrap_err().code(), "bad-pattern");
    }

    #[test]
    fn replies_round_trip() {
        assert_eq!(
            parse_reply("OK whyqd proto=1").unwrap(),
            Reply::Ok("whyqd proto=1".into())
        );
        let rows = parse_reply("ROWS 2 complete\nv0=1 v1=2\nv0=3 v1=4").unwrap();
        assert_eq!(
            rows,
            Reply::Rows {
                rows: vec!["v0=1 v1=2".into(), "v0=3 v1=4".into()],
                termination: TermTag::Complete,
                capped: false,
            }
        );
        let shed = parse_reply("ROWS 0 shed").unwrap();
        assert_eq!(
            shed,
            Reply::Rows {
                rows: vec![],
                termination: TermTag::Shed,
                capped: false,
            }
        );
        assert_eq!(
            parse_reply("ERR bad-pattern parse error at byte 3: x").unwrap(),
            Reply::Err {
                code: "bad-pattern".into(),
                message: "parse error at byte 3: x".into()
            }
        );
        assert_eq!(
            parse_reply("STATS\nadmitted=4\nshed=1").unwrap(),
            Reply::Stats(vec![("admitted".into(), 4), ("shed".into(), 1)])
        );
        // grammar violations are detected, not guessed around
        assert!(parse_reply("ROWS 2 complete\nonly-one-row").is_err());
        assert!(parse_reply("GARBAGE").is_err());
    }

    #[test]
    fn termination_tags_cover_all_terminations() {
        for t in [
            Termination::Complete,
            Termination::DeadlineExceeded,
            Termination::BudgetExhausted,
            Termination::Cancelled,
        ] {
            let tag = TermTag::from(t);
            assert_eq!(TermTag::parse(tag.as_str()), Some(tag));
            assert_eq!(tag.is_complete(), t.is_complete());
        }
        assert_eq!(TermTag::parse("shed"), Some(TermTag::Shed));
        assert_eq!(TermTag::parse("bogus"), None);
    }
}
