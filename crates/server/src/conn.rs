//! Per-connection machinery: a frame-reader thread and a worker thread.
//!
//! Each accepted socket gets two threads joined by an mpsc queue:
//!
//! * the **reader** decodes frames and parses commands. It handles
//!   `CANCEL` out of band — tripping the in-flight request's
//!   [`CancelToken`] the moment the frame arrives, while still queuing
//!   the command so its acknowledgement stays in pipeline order — and on
//!   EOF or a socket error it kills the connection, which trips the
//!   token too: **a dropped connection cancels its in-flight query**,
//!   and the matcher observes that within one budget check interval.
//! * the **worker** owns the write half, executes commands in order, and
//!   is the only thread that ever writes a response — so pipelined
//!   requests (many frames in flight before the first response) are
//!   answered strictly in request order.
//!
//! Both threads poll the connection's dead flag and the server state with
//! short read/recv timeouts, so teardown — local or remote — is bounded.

use crate::batch::BatchJob;
use crate::protocol::{
    parse_command, parse_pattern, render_err, render_rows, write_frame, Command, FrameError,
    FrameReader, ProtocolError, TermTag, PROTOCOL_VERSION,
};
use crate::stats::ServerStats;
use crate::Shared;
use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;
use whyq_matcher::{CancelToken, MatchOptions, Termination};
use whyq_query::PatternQuery;
use whyq_session::WhyqError;

/// How often blocked reads/receives wake up to poll liveness flags.
const POLL: Duration = Duration::from_millis(20);

/// Shared per-connection state: the registry entry the server uses to
/// cancel and tear the connection down from outside.
#[derive(Debug)]
pub(crate) struct ConnHandle {
    /// Registry key.
    pub id: u64,
    /// The [`CancelToken`] of the request currently in flight (refreshed
    /// by the worker at every admission). Cancelling it is always safe:
    /// tokens are single-request and one-way.
    cancel_slot: Mutex<CancelToken>,
    /// Set once the connection is condemned (peer gone, fatal protocol
    /// error, server teardown). Both threads poll it.
    dead: AtomicBool,
}

impl ConnHandle {
    pub(crate) fn new(id: u64) -> Self {
        ConnHandle {
            id,
            cancel_slot: Mutex::new(CancelToken::new()),
            dead: AtomicBool::new(false),
        }
    }

    fn slot(&self) -> std::sync::MutexGuard<'_, CancelToken> {
        // a poisoned slot only means a panicking thread held the lock
        // mid-store; the token inside is always valid to use
        self.cancel_slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Install the token of a newly admitted request.
    fn arm(&self, token: CancelToken) {
        *self.slot() = token;
    }

    /// Cancel whatever request is currently in flight.
    pub(crate) fn cancel_current(&self) {
        self.slot().cancel();
    }

    pub(crate) fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Condemn the connection and cancel its in-flight request.
    pub(crate) fn kill(&self) {
        self.dead.store(true, Ordering::Release);
        self.cancel_current();
    }
}

/// Launch the reader/worker pair for one accepted socket. The threads are
/// detached; they unregister the connection and fix the gauges on exit.
pub(crate) fn spawn(shared: Arc<Shared>, stream: TcpStream, handle: Arc<ConnHandle>) {
    let Ok(writer) = stream.try_clone() else {
        teardown(&shared, &handle);
        return;
    };
    // short read timeouts turn blocking reads into a liveness poll
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_nodelay(true);
    let (tx, rx) = mpsc::channel::<Result<Command, ProtocolError>>();
    {
        let shared = Arc::clone(&shared);
        let handle = Arc::clone(&handle);
        thread::spawn(move || read_loop(&shared, stream, &handle, &tx));
    }
    thread::spawn(move || {
        work_loop(&shared, writer, &handle, &rx);
        teardown(&shared, &handle);
    });
}

/// Unregister and fix the connection gauges. Runs exactly once, from the
/// worker (or from `spawn` if the worker never started).
fn teardown(shared: &Shared, handle: &ConnHandle) {
    handle.kill();
    shared.unregister(handle.id);
    ServerStats::incr(&shared.stats.disconnects);
    shared.stats.open_connections.fetch_sub(1, Ordering::AcqRel);
}

/// The reader: decode frames, parse commands, act on `CANCEL` instantly,
/// queue everything for the worker in arrival order.
fn read_loop(
    shared: &Shared,
    mut stream: TcpStream,
    handle: &ConnHandle,
    tx: &mpsc::Sender<Result<Command, ProtocolError>>,
) {
    let mut frames = FrameReader::new(shared.config.max_frame);
    loop {
        if handle.is_dead() || shared.is_stopped() {
            break;
        }
        match frames.read_frame(&mut stream) {
            Ok(Some(payload)) => {
                let parsed = parse_command(&payload);
                if matches!(parsed, Ok(Command::Cancel)) {
                    // out of band: trip the in-flight request *now*; the
                    // queued copy only orders the acknowledgement
                    handle.cancel_current();
                }
                if tx.send(parsed).is_err() {
                    break;
                }
            }
            // clean EOF at a frame boundary
            Ok(None) => break,
            Err(FrameError::Io(e))
                if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) =>
            {
                // just a liveness poll tick
            }
            // peer vanished mid-frame or the socket broke
            Err(FrameError::Io(_) | FrameError::TruncatedEof) => break,
            Err(FrameError::Protocol(e)) => {
                let fatal = e.is_fatal();
                if tx.send(Err(e)).is_err() {
                    break;
                }
                if fatal {
                    // framing is lost; stop consuming bytes — the worker
                    // reports the error and closes
                    break;
                }
            }
        }
    }
    // a gone reader means a gone (or condemned) connection: make sure the
    // in-flight query stops burning budget
    handle.kill();
    // dropping `tx` lets the worker drain the queue and exit
}

/// The worker: execute queued commands in order, own all writes.
fn work_loop(
    shared: &Arc<Shared>,
    mut writer: TcpStream,
    handle: &ConnHandle,
    rx: &mpsc::Receiver<Result<Command, ProtocolError>>,
) {
    let mut prepared: HashMap<u64, Arc<PatternQuery>> = HashMap::new();
    let mut next_handle: u64 = 1;
    loop {
        let message = match rx.recv_timeout(POLL) {
            Ok(m) => m,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if handle.is_dead() || shared.is_stopped() {
                    break;
                }
                continue;
            }
            // reader gone and queue drained
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        let outcome: Result<String, ProtocolError> = match message {
            Err(e) => Err(e),
            Ok(command) => run_command(shared, handle, &mut prepared, &mut next_handle, command),
        };
        let (response, fatal) = match outcome {
            Ok(response) => (response, false),
            Err(e) => {
                ServerStats::incr(&shared.stats.protocol_errors);
                (render_err(&e), e.is_fatal())
            }
        };
        if write_frame(&mut writer, &response).is_err() || fatal {
            break;
        }
    }
    let _ = writer.shutdown(std::net::Shutdown::Both);
}

/// Execute one command, producing the response payload.
fn run_command(
    shared: &Arc<Shared>,
    handle: &ConnHandle,
    prepared: &mut HashMap<u64, Arc<PatternQuery>>,
    next_handle: &mut u64,
    command: Command,
) -> Result<String, ProtocolError> {
    match command {
        Command::Hello => {
            let g = shared.db.graph();
            Ok(format!(
                "OK whyqd proto={PROTOCOL_VERSION} vertices={} edges={}",
                g.num_vertices(),
                g.num_edges()
            ))
        }
        Command::Stats => Ok(shared.stats_snapshot().render()),
        // the out-of-band trip already happened in the reader; this reply
        // just keeps the pipeline ordered
        Command::Cancel => Ok("OK cancel".to_string()),
        Command::Shutdown => {
            shared.begin_drain();
            Ok("OK draining".to_string())
        }
        Command::Prepare { pattern } => {
            let query = parse_pattern(&pattern)?;
            // warm the shared plan cache now, so the first EXEC pays no
            // compile — and surface engine-level rejections early
            let session = shared.db.session();
            session.prepare(&query).map_err(engine_error)?;
            let id = *next_handle;
            *next_handle += 1;
            let sig = query.signature_hash();
            prepared.insert(id, Arc::new(query));
            Ok(format!("OK prepared id={id} sig={sig:016x}"))
        }
        Command::Query { class, pattern } => {
            let query = Arc::new(parse_pattern(&pattern)?);
            execute(shared, handle, class.as_deref(), query)
        }
        Command::Exec { class, handle: h } => {
            let query = prepared
                .get(&h)
                .cloned()
                .ok_or(ProtocolError::BadHandle { handle: h })?;
            execute(shared, handle, class.as_deref(), query)
        }
    }
}

/// Admission → batching → response for one `QUERY`/`EXEC` request.
fn execute(
    shared: &Arc<Shared>,
    handle: &ConnHandle,
    class: Option<&str>,
    query: Arc<PatternQuery>,
) -> Result<String, ProtocolError> {
    if !shared.is_running() {
        return Err(ProtocolError::ShuttingDown);
    }
    let slo = shared.config.class(class)?;

    // admission control: shed rather than queue past the depth bound.
    // A shed is a *servable degraded answer* (`ROWS 0 shed`), not an
    // error — the why-query contract of tagged partial results extended
    // to the zero-results case.
    let depth = shared.stats.queue_depth.load(Ordering::Acquire);
    if depth >= shared.config.max_queue_depth as u64 {
        ServerStats::incr(&shared.stats.shed);
        return Ok(render_rows(&[], TermTag::Shed, false));
    }

    // one fresh token per request, installed where the reader (CANCEL,
    // disconnect) and the server (drain timeout) can reach it
    let token = CancelToken::new();
    handle.arm(token.clone());
    if handle.is_dead() {
        // the reader died between arming and here; don't start dead work
        token.cancel();
    }
    let budget = slo.budget(&token);
    let opts = MatchOptions::limited(shared.config.max_rows + 1).with_budget(budget);

    let Some(jobs) = shared.job_sender() else {
        return Err(ProtocolError::ShuttingDown);
    };
    ServerStats::incr(&shared.stats.admitted);
    shared.stats.enter_queue();
    let (reply_tx, reply_rx) = mpsc::channel();
    let sent = jobs
        .send(BatchJob {
            query,
            opts,
            reply: reply_tx,
        })
        .is_ok();
    drop(jobs);
    let result = if sent {
        loop {
            match reply_rx.recv_timeout(POLL) {
                Ok(result) => break result,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if handle.is_dead() {
                        // belt and braces: the kill path cancels via the
                        // slot, but the slot may already hold a newer token
                        token.cancel();
                    }
                }
                // the batcher died without replying — count the request
                // as cancelled rather than inventing rows
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    break Err(WhyqError::Interrupted {
                        termination: Termination::Cancelled,
                    });
                }
            }
        }
    } else {
        Err(WhyqError::Interrupted {
            termination: Termination::Cancelled,
        })
    };
    shared.stats.leave_queue();

    match result {
        Ok(governed) => {
            let tag = TermTag::from(governed.termination);
            match tag {
                TermTag::Complete => ServerStats::incr(&shared.stats.completed),
                TermTag::Deadline | TermTag::Budget => {
                    ServerStats::incr(&shared.stats.degraded);
                }
                TermTag::Cancelled => ServerStats::incr(&shared.stats.cancelled),
                TermTag::Shed => {}
            }
            let mut rows = governed.value;
            let capped = rows.len() > shared.config.max_rows;
            if capped {
                rows.truncate(shared.config.max_rows);
            }
            Ok(render_rows(&rows, tag, capped))
        }
        Err(e) => {
            ServerStats::incr(&shared.stats.failed);
            Err(engine_error(e))
        }
    }
}

/// Map an engine error onto the wire error space.
fn engine_error(e: WhyqError) -> ProtocolError {
    match e {
        // the query text parsed but the engine rejected its structure —
        // still the client's query, not a server fault
        WhyqError::InvalidQuery { reason } => ProtocolError::BadPattern { message: reason },
        other => ProtocolError::Internal {
            message: other.to_string(),
        },
    }
}
