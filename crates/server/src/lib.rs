//! # whyq-server — the `whyqd` network serving layer
//!
//! A dependency-free TCP front end multiplexing many client connections
//! onto one shared [`Database`], built from `std::net` plus the
//! workspace's own primitives: the scoped-thread
//! [`Executor`](whyq_session::Executor) for batch execution and
//! [`Budget`]/[`CancelToken`] governance for per-request SLOs. It borrows
//! the shape of an inference-serving front end — admission control,
//! same-signature batching, deadlines, load shedding — because worst-case
//! pattern matching is as unpredictable as model inference, and the
//! why-query contract of *tagged partial answers* (`deadline`, `budget`,
//! `cancelled`, `shed`) makes degraded responses first-class servable
//! content rather than errors.
//!
//! The pieces, one module each:
//!
//! * [`protocol`] — the length-prefixed text wire protocol (`HELLO`,
//!   `QUERY`/`PREPARE`/`EXEC`, `CANCEL`, `STATS`, `SHUTDOWN`), its typed
//!   error space, and the response grammar. Specified in
//!   `docs/wire-protocol.md`.
//! * [`conn`](self) — per connection, a frame-reader thread and a worker
//!   thread: pipelined commands are answered strictly in order, `CANCEL`
//!   trips the in-flight request's token out of band, and a dropped
//!   connection cancels its query within one budget check interval.
//! * [`batch`](self) — all admitted requests funnel into one batcher
//!   thread that coalesces a batching window's worth of traffic into one
//!   `Executor::find_batch` call; same-signature requests share one
//!   compiled plan through the database's plan cache.
//! * [`stats`] — lock-free counters behind the `STATS` command:
//!   admitted / shed / batched / degraded / cancelled and the queue-depth
//!   gauge, the raw inputs of any future adaptive admission policy.
//! * [`client`] — a small blocking client used by `whyq client`, the
//!   integration tests and the load generator.
//!
//! ## Request lifecycle
//!
//! ```text
//! frame → parse → admission (queue depth < bound? else shed)
//!       → per-request Budget from the SLO class (+ fresh CancelToken)
//!       → batch queue → window/size-bounded batch → Executor::find_batch
//!       → rows + termination tag (complete | deadline | budget | cancelled)
//! ```
//!
//! ## Example
//!
//! ```
//! use whyq_graph::{PropertyGraph, Value};
//! use whyq_server::{client::Client, Server, ServerConfig};
//! use whyq_session::Database;
//! use std::sync::Arc;
//!
//! let mut g = PropertyGraph::new();
//! let a = g.add_vertex([("type", Value::str("person"))]);
//! let b = g.add_vertex([("type", Value::str("person"))]);
//! g.add_edge(a, b, "knows", []);
//!
//! let db = Arc::new(Database::open(g)?);
//! let server = Server::start(db, ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let reply = client.query("(p:person)-[:knows]->(q:person)", None)?;
//! assert_eq!(reply.rows.len(), 1);
//! assert!(reply.termination.is_complete());
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// The whole workspace is unsafe-free (audited 2026-08): lock it in.
#![forbid(unsafe_code)]
// Every public item documents itself; CI's docs lane denies this warning.
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod stats;

mod batch;
mod conn;

pub use stats::{ServerStats, StatsSnapshot};

use batch::BatchJob;
use conn::ConnHandle;
use protocol::ProtocolError;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};
use whyq_matcher::{Budget, CancelToken};
use whyq_session::Database;

/// One service-level-objective class: the [`Budget`] template a request
/// of this class executes under (per the ROADMAP "Budget semantics"
/// note: budgets are derived at admission, one per request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloClass {
    /// Class name as it appears on the wire (`QUERY @interactive …`).
    pub name: String,
    /// Wall-clock deadline, measured from admission.
    pub deadline: Option<Duration>,
    /// Step budget (DFS transitions, block-granular).
    pub steps: Option<u64>,
}

impl SloClass {
    /// A named class with the given limits.
    pub fn new(name: impl Into<String>, deadline: Option<Duration>, steps: Option<u64>) -> Self {
        SloClass {
            name: name.into(),
            deadline,
            steps,
        }
    }

    /// Build the per-request [`Budget`]: this class's limits plus the
    /// request's own cancel token. Combinators apply before any clone is
    /// shared, as the budget contract requires.
    pub fn budget(&self, token: &CancelToken) -> Budget {
        let mut b = Budget::cancelled_by(token);
        if let Some(d) = self.deadline {
            b = b.with_deadline(d);
        }
        if let Some(s) = self.steps {
            b = b.with_steps(s);
        }
        b
    }
}

/// Server tuning knobs. [`ServerConfig::default`] binds an ephemeral
/// loopback port with moderate limits — the configuration the tests and
/// the `whyqd` binary start from.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` = ephemeral loopback port).
    pub addr: String,
    /// Executor worker threads for batch execution. `0` = environment
    /// default (`WHYQ_THREADS`, else available parallelism).
    pub threads: usize,
    /// Admission bound: a request arriving while this many admitted
    /// requests are unanswered is shed (`ROWS 0 shed`).
    pub max_queue_depth: usize,
    /// How long the batcher waits after the first queued request for
    /// same-window companions. Zero disables waiting (arrivals already
    /// queued still coalesce).
    pub batch_window: Duration,
    /// Hard cap on requests per batch.
    pub max_batch: usize,
    /// Row cap per response; overflow is truncated and tagged `capped`.
    pub max_rows: usize,
    /// Frame payload cap in bytes (see [`protocol::DEFAULT_MAX_FRAME`]).
    pub max_frame: usize,
    /// How long graceful shutdown waits for in-flight requests before
    /// cancelling them.
    pub drain_deadline: Duration,
    /// Class used when a request names none.
    pub default_class: String,
    /// The SLO class table.
    pub classes: Vec<SloClass>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            max_queue_depth: 64,
            batch_window: Duration::from_micros(500),
            max_batch: 32,
            max_rows: 1000,
            max_frame: protocol::DEFAULT_MAX_FRAME,
            drain_deadline: Duration::from_secs(2),
            default_class: "standard".to_string(),
            classes: vec![
                // tail-latency-sensitive traffic: tight wall clock, small
                // step budget — answers degrade rather than queue
                SloClass::new(
                    "interactive",
                    Some(Duration::from_millis(50)),
                    Some(2_000_000),
                ),
                // the default: roomy enough for real analytical patterns
                SloClass::new(
                    "standard",
                    Some(Duration::from_millis(500)),
                    Some(20_000_000),
                ),
                // background work: wall-clock bound only
                SloClass::new("batch", Some(Duration::from_secs(5)), None),
                // explicitly ungoverned (still cancellable)
                SloClass::new("unlimited", None, None),
            ],
        }
    }
}

impl ServerConfig {
    /// Resolve a wire class name (or the default when `None`).
    pub fn class(&self, name: Option<&str>) -> Result<&SloClass, ProtocolError> {
        let name = name.unwrap_or(&self.default_class);
        self.classes
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| ProtocolError::BadClass {
                class: name.to_string(),
            })
    }
}

/// Lifecycle states of [`Shared::state`].
const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

/// State shared by the accept loop, the batcher and every connection.
pub(crate) struct Shared {
    pub(crate) db: Arc<Database>,
    pub(crate) config: ServerConfig,
    pub(crate) stats: ServerStats,
    state: AtomicU8,
    /// The batch-queue sender; `None` once the server has stopped.
    /// Connections clone it per request, so dropping this handle (plus
    /// the transient clones) is what lets the batcher exit.
    jobs: Mutex<Option<mpsc::Sender<BatchJob>>>,
    conns: Mutex<HashMap<u64, Arc<ConnHandle>>>,
    next_conn_id: AtomicU64,
}

impl Shared {
    /// The full `STATS` surface: the server's own counters plus the
    /// shared database's sibling-cache counters merged in.
    pub(crate) fn stats_snapshot(&self) -> StatsSnapshot {
        let sib = self.db.sibling_stats();
        self.stats
            .snapshot()
            .with_sibling(sib.hits, sib.invalidations)
    }

    pub(crate) fn is_running(&self) -> bool {
        self.state.load(Ordering::Acquire) == RUNNING
    }

    pub(crate) fn is_stopped(&self) -> bool {
        self.state.load(Ordering::Acquire) == STOPPED
    }

    /// Enter the draining state (idempotent; the accept loop takes over).
    pub(crate) fn begin_drain(&self) {
        let _ = self
            .state
            .compare_exchange(RUNNING, DRAINING, Ordering::AcqRel, Ordering::Acquire);
    }

    /// A sender into the batch queue, if the server still accepts work.
    pub(crate) fn job_sender(&self) -> Option<mpsc::Sender<BatchJob>> {
        self.lock_jobs().clone()
    }

    pub(crate) fn unregister(&self, id: u64) {
        self.lock_conns().remove(&id);
    }

    fn lock_jobs(&self) -> std::sync::MutexGuard<'_, Option<mpsc::Sender<BatchJob>>> {
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_conns(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Arc<ConnHandle>>> {
        self.conns.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A running `whyqd` server: an accept loop, a batcher, and two threads
/// per live connection, all over one shared [`Database`].
///
/// Start with [`Server::start`], stop with [`Server::shutdown`] (local)
/// or the `SHUTDOWN` wire command (remote); both run the same graceful
/// drain: stop accepting, wait out in-flight requests up to
/// [`ServerConfig::drain_deadline`], then cancel stragglers through
/// their per-request tokens.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
    addr: SocketAddr,
}

impl Server {
    /// Bind, spawn the accept loop and the batcher, and start serving.
    ///
    /// The database arrives in an `Arc` so the caller keeps a handle —
    /// tests assert on [`Database::compile_count`] while the server runs.
    pub fn start(db: Arc<Database>, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (jobs_tx, jobs_rx) = mpsc::channel::<BatchJob>();
        let shared = Arc::new(Shared {
            db,
            config,
            stats: ServerStats::default(),
            state: AtomicU8::new(RUNNING),
            jobs: Mutex::new(Some(jobs_tx)),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(1),
        });
        let batcher = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || batch::run(&shared, &jobs_rx))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&shared, &listener, batcher))
        };
        Ok(Server {
            shared,
            accept: Some(accept),
            addr,
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` configs).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared database.
    pub fn database(&self) -> &Arc<Database> {
        &self.shared.db
    }

    /// A point-in-time copy of the observability counters (server
    /// counters plus the database's sibling-cache counters).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats_snapshot()
    }

    /// Request graceful shutdown without waiting (idempotent).
    pub fn begin_shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Block until the server has fully stopped — i.e. until someone
    /// (this process or a `SHUTDOWN` frame) initiates shutdown and the
    /// drain completes. This is the `whyqd` main-thread call.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Graceful shutdown: initiate the drain and wait for it to finish.
    pub fn shutdown(self) {
        self.begin_shutdown();
        self.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // a dropped handle must not strand the accept thread in a bound
        // socket; drain asynchronously (join only happens via `join`)
        self.shared.begin_drain();
    }
}

/// The accept loop: poll-accept while running, then run the drain
/// sequence and stop.
fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener, batcher: thread::JoinHandle<()>) {
    while shared.is_running() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                let handle = Arc::new(ConnHandle::new(id));
                shared.lock_conns().insert(id, Arc::clone(&handle));
                ServerStats::incr(&shared.stats.connections);
                shared.stats.open_connections.fetch_add(1, Ordering::AcqRel);
                conn::spawn(Arc::clone(shared), stream, handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }

    // ---- drain sequence -------------------------------------------------
    // 1. in-flight requests get until the drain deadline to finish
    let deadline = Instant::now() + shared.config.drain_deadline;
    while shared.stats.snapshot().queue_depth > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(5));
    }
    // 2. stragglers are cancelled through their per-request tokens, and
    //    every connection is condemned
    let conns: Vec<Arc<ConnHandle>> = shared.lock_conns().values().cloned().collect();
    for conn in conns {
        conn.kill();
    }
    shared.state.store(STOPPED, Ordering::Release);
    // 3. dropping the job sender lets the batcher finish its queue and
    //    exit once connection workers (transient clones) are gone
    shared.lock_jobs().take();
    // 4. bounded wait for connection teardown, then reap the batcher
    let teardown_deadline = Instant::now() + Duration::from_secs(3);
    while shared.stats.snapshot().open_connections > 0 && Instant::now() < teardown_deadline {
        thread::sleep(Duration::from_millis(5));
    }
    if shared.stats.snapshot().open_connections == 0 {
        let _ = batcher.join();
    }
    // the listener closes when this function returns
}
