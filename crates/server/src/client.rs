//! A small blocking client for the `whyqd` wire protocol.
//!
//! Shared by the `whyq client` CLI subcommand, the integration tests and
//! the open-loop load generator, so all three speak through exactly the
//! code path real clients would. The client is strictly synchronous: one
//! request frame out, one response frame in (servers answer pipelined
//! requests in order, so synchronous use is just the depth-1 case).

use crate::protocol::{parse_reply, write_frame, FrameError, FrameReader, Reply, TermTag};
use crate::stats::StatsSnapshot;
use std::fmt;
use std::io::{self, ErrorKind};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(io::Error),
    /// The server answered `ERR <code> <message>`.
    Server {
        /// Machine-readable error code.
        code: String,
        /// Human-readable message.
        message: String,
    },
    /// The server's bytes violated the response grammar.
    Malformed(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Malformed(m) => write!(f, "malformed server response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A query answer: rows plus the termination tag that says whether they
/// are complete, a tagged partial, or a shed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReply {
    /// One line per result graph (`v0=17 v1=4` vertex bindings).
    pub rows: Vec<String>,
    /// How the execution ended (`complete`/`deadline`/`budget`/
    /// `cancelled`/`shed`).
    pub termination: TermTag,
    /// True when the server truncated the rows at its per-request cap.
    pub capped: bool,
}

/// A blocking connection to a `whyqd` server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    frames: FrameReader,
}

impl Client {
    /// Connect with a 10-second response timeout — generous for tests
    /// and CLI use while still turning a wedged server into an error
    /// instead of a hang.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_with(addr, Duration::from_secs(10))
    }

    /// Connect with an explicit response timeout.
    pub fn connect_with(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            frames: FrameReader::new(crate::protocol::DEFAULT_MAX_FRAME),
        })
    }

    /// Send one raw request payload and read one response frame. The
    /// building block the typed helpers below are sugar over.
    pub fn send(&mut self, payload: &str) -> Result<Reply, ClientError> {
        write_frame(&mut self.stream, payload)?;
        self.receive()
    }

    /// Read one response frame without sending anything (for pipelined
    /// use: several `send_only` calls, then matching `receive` calls).
    pub fn receive(&mut self) -> Result<Reply, ClientError> {
        match self.frames.read_frame(&mut self.stream) {
            Ok(Some(payload)) => parse_reply(&payload).map_err(ClientError::Malformed),
            Ok(None) => Err(ClientError::Io(io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
            Err(FrameError::Io(e)) => Err(ClientError::Io(e)),
            Err(FrameError::TruncatedEof) => Err(ClientError::Io(io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed mid-frame",
            ))),
            Err(FrameError::Protocol(e)) => Err(ClientError::Malformed(e.to_string())),
        }
    }

    /// Send a request frame without waiting for its response.
    pub fn send_only(&mut self, payload: &str) -> Result<(), ClientError> {
        write_frame(&mut self.stream, payload)?;
        Ok(())
    }

    /// `HELLO` handshake; returns the server's identity line.
    pub fn hello(&mut self) -> Result<String, ClientError> {
        match self.send("HELLO")? {
            Reply::Ok(detail) => Ok(detail),
            other => Err(unexpected(other)),
        }
    }

    /// Execute a query, optionally under an SLO class.
    pub fn query(&mut self, pattern: &str, class: Option<&str>) -> Result<QueryReply, ClientError> {
        let payload = match class {
            Some(c) => format!("QUERY @{c} {pattern}"),
            None => format!("QUERY {pattern}"),
        };
        match self.send(&payload)? {
            Reply::Rows {
                rows,
                termination,
                capped,
            } => Ok(QueryReply {
                rows,
                termination,
                capped,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// `PREPARE` a pattern; returns the server-assigned handle.
    pub fn prepare(&mut self, pattern: &str) -> Result<u64, ClientError> {
        match self.send(&format!("PREPARE {pattern}"))? {
            Reply::Ok(detail) => detail
                .split_whitespace()
                .find_map(|tok| tok.strip_prefix("id=")?.parse().ok())
                .ok_or_else(|| ClientError::Malformed(format!("no handle in {detail:?}"))),
            other => Err(unexpected(other)),
        }
    }

    /// `EXEC` a prepared handle, optionally under an SLO class.
    pub fn exec(&mut self, handle: u64, class: Option<&str>) -> Result<QueryReply, ClientError> {
        let payload = match class {
            Some(c) => format!("EXEC @{c} {handle}"),
            None => format!("EXEC {handle}"),
        };
        match self.send(&payload)? {
            Reply::Rows {
                rows,
                termination,
                capped,
            } => Ok(QueryReply {
                rows,
                termination,
                capped,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Fetch the server's observability counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.send("STATS")? {
            Reply::Stats(counters) => Ok(StatsSnapshot::from_counters(&counters)),
            other => Err(unexpected(other)),
        }
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<String, ClientError> {
        match self.send("SHUTDOWN")? {
            Reply::Ok(detail) => Ok(detail),
            other => Err(unexpected(other)),
        }
    }
}

/// Turn an off-script reply into the matching error.
fn unexpected(reply: Reply) -> ClientError {
    match reply {
        Reply::Err { code, message } => ClientError::Server { code, message },
        other => ClientError::Malformed(format!("unexpected reply {other:?}")),
    }
}
