//! Protocol robustness: malformed, truncated, oversized and interleaved
//! frames must always yield a typed protocol error response — the server
//! never panics, hangs, or leaks a connection. The fault-injected half
//! (worker panics under live connections, forced-slow searches for the
//! dropped-connection drain bound) runs under the `fault-inject` feature.

use rand::{RngExt, SeedableRng, StdRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use whyq_graph::{PropertyGraph, Value};
use whyq_server::client::Client;
use whyq_server::protocol::{Reply, TermTag};
use whyq_server::{Server, ServerConfig, StatsSnapshot};
use whyq_session::Database;

fn social() -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let a = g.add_vertex([("type", Value::str("person"))]);
    let b = g.add_vertex([("type", Value::str("person"))]);
    g.add_edge(a, b, "knows", []);
    g
}

const KNOWS: &str = "(p:person)-[:knows]->(q:person)";

fn start(config: ServerConfig) -> (Server, Arc<Database>) {
    let db = Arc::new(Database::open(social()).unwrap());
    let server = Server::start(Arc::clone(&db), config).unwrap();
    (server, db)
}

fn wait_for(server: &Server, bound: Duration, pred: impl Fn(&StatsSnapshot) -> bool) -> bool {
    let deadline = Instant::now() + bound;
    loop {
        if pred(&server.stats()) {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Raw frame write: 4-byte big-endian length + payload bytes (which the
/// tests deliberately fill with garbage).
fn write_raw_frame(stream: &mut TcpStream, payload: &[u8]) {
    let len = u32::try_from(payload.len()).unwrap();
    stream.write_all(&len.to_be_bytes()).unwrap();
    stream.write_all(payload).unwrap();
    stream.flush().unwrap();
}

/// Read one response frame off a raw stream (10 s guard against hangs).
fn read_raw_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).ok()?;
    let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
    stream.read_exact(&mut payload).ok()?;
    Some(payload)
}

#[test]
fn garbage_payloads_get_typed_errors_and_the_connection_survives() {
    let (server, _db) = start(ServerConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // invalid UTF-8, control noise, an unknown verb, an empty frame
    for garbage in [
        &[0xC3u8, 0x28][..],
        &[0x00, 0x01, 0x02, 0xFF][..],
        b"BOGUS COMMAND",
        b"",
        b"QUERY \xF0\x28\x8C\x28",
    ] {
        write_raw_frame(&mut stream, garbage);
        let response = read_raw_frame(&mut stream).expect("server must answer, not hang");
        let text = String::from_utf8(response).expect("responses are UTF-8");
        assert!(text.starts_with("ERR "), "got {text:?} for {garbage:?}");
    }
    // the connection is still fully serviceable
    write_raw_frame(&mut stream, format!("QUERY {KNOWS}").as_bytes());
    let text = String::from_utf8(read_raw_frame(&mut stream).unwrap()).unwrap();
    assert!(text.starts_with("ROWS 1 complete"), "got {text:?}");
    server.shutdown();
}

#[test]
fn oversized_length_prefix_errors_then_closes_without_touching_others() {
    let (server, _db) = start(ServerConfig::default());
    let mut victim = TcpStream::connect(server.local_addr()).unwrap();
    let mut bystander = Client::connect(server.local_addr()).unwrap();

    // announce a 256 MiB frame: fatal — framing can no longer be trusted
    victim.write_all(&(256u32 << 20).to_be_bytes()).unwrap();
    victim.flush().unwrap();
    let text = String::from_utf8(read_raw_frame(&mut victim).unwrap()).unwrap();
    assert!(text.starts_with("ERR frame-too-large"), "got {text:?}");
    // ... after which the server closes this connection
    victim
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut rest = Vec::new();
    assert_eq!(victim.read_to_end(&mut rest).unwrap_or(0), 0);

    // the other connection (and new ones) never noticed
    assert_eq!(bystander.query(KNOWS, None).unwrap().rows.len(), 1);
    assert!(
        wait_for(&server, Duration::from_secs(2), |s| s.open_connections == 1),
        "victim connection leaked: {:?}",
        server.stats()
    );
    server.shutdown();
}

#[test]
fn truncated_frame_then_disconnect_leaks_nothing() {
    let (server, _db) = start(ServerConfig::default());
    {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // announce 100 bytes, send 3, vanish
        stream.write_all(&100u32.to_be_bytes()).unwrap();
        stream.write_all(b"abc").unwrap();
        stream.flush().unwrap();
    }
    assert!(
        wait_for(&server, Duration::from_secs(2), |s| {
            s.connections == 1 && s.open_connections == 0
        }),
        "truncated connection leaked: {:?}",
        server.stats()
    );
    // the server keeps serving
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(client.query(KNOWS, None).unwrap().rows.len(), 1);
    server.shutdown();
}

#[test]
fn interleaved_frames_across_connections_answer_in_per_connection_order() {
    let (server, _db) = start(ServerConfig::default());
    let mut a = Client::connect(server.local_addr()).unwrap();
    let mut b = Client::connect(server.local_addr()).unwrap();
    // interleave pipelined traffic across two connections
    a.send_only("HELLO").unwrap();
    b.send_only(&format!("QUERY {KNOWS}")).unwrap();
    a.send_only(&format!("QUERY {KNOWS}")).unwrap();
    b.send_only("STATS").unwrap();
    a.send_only("NOPE").unwrap();
    // each connection sees its own responses, in its own send order
    assert!(matches!(a.receive().unwrap(), Reply::Ok(d) if d.contains("whyqd")));
    assert!(matches!(
        a.receive().unwrap(),
        Reply::Rows {
            termination: TermTag::Complete,
            ..
        }
    ));
    assert!(matches!(a.receive().unwrap(), Reply::Err { code, .. } if code == "unknown-command"));
    assert!(matches!(
        b.receive().unwrap(),
        Reply::Rows {
            termination: TermTag::Complete,
            ..
        }
    ));
    assert!(matches!(b.receive().unwrap(), Reply::Stats(_)));
    server.shutdown();
}

/// Seeded fuzz: random payloads (random bytes, random lengths, random
/// fragment pacing) must never panic or hang the server; every fully
/// framed payload gets a response while framing holds, and after each
/// session a fresh client must find the database fully serviceable.
#[test]
fn fuzzed_frames_never_panic_or_hang_the_server() {
    let (server, _db) = start(ServerConfig::default());
    let mut rng = StdRng::seed_from_u64(0x5eed_f00d);
    for round in 0..40 {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let frames = rng.random_range(1..5usize);
        for _ in 0..frames {
            let len = rng.random_range(0..64usize);
            let payload: Vec<u8> = (0..len).map(|_| rng.random::<u8>()).collect();
            write_raw_frame(&mut stream, &payload);
            let Some(response) = read_raw_frame(&mut stream) else {
                panic!("round {round}: server hung or died on {payload:?}");
            };
            let text = String::from_utf8(response).expect("responses are UTF-8");
            assert!(
                text.starts_with("ERR ")
                    || text.starts_with("OK ")
                    || text.starts_with("ROWS ")
                    || text.starts_with("STATS"),
                "round {round}: unframed response {text:?}"
            );
        }
        // sometimes vanish mid-frame on the way out
        if rng.random_bool(0.5) {
            let _ = stream.write_all(&1000u32.to_be_bytes());
        }
        drop(stream);
        let mut probe = Client::connect(server.local_addr()).unwrap();
        assert_eq!(
            probe.query(KNOWS, None).unwrap().rows.len(),
            1,
            "round {round}: database stopped serving"
        );
    }
    // every fuzz connection was torn down, none leaked
    assert!(
        wait_for(&server, Duration::from_secs(3), |s| s.open_connections == 0),
        "fuzz connections leaked: {:?}",
        server.stats()
    );
    server.shutdown();
}

/// The fault-injected half: worker panics under live connections, and a
/// forced-slow search to pin down the dropped-connection drain bound.
#[cfg(feature = "fault-inject")]
mod fault {
    use super::*;
    use whyq_matcher::fault::{arm, FaultPlan};

    #[test]
    fn worker_panic_under_a_live_connection_errors_that_request_only() {
        let (server, db) = start(ServerConfig::default());
        let mut client = Client::connect(server.local_addr()).unwrap();
        {
            let _guard = arm(FaultPlan {
                panic_at_unit: Some(0),
                ..FaultPlan::default()
            });
            match client.query(KNOWS, None) {
                Err(whyq_server::client::ClientError::Server { code, message }) => {
                    assert_eq!(code, "internal");
                    assert!(message.contains("panic"), "got {message:?}");
                }
                other => panic!("expected ERR internal, got {other:?}"),
            }
        } // disarmed
          // same connection, same database: still serving
        assert_eq!(client.query(KNOWS, None).unwrap().rows.len(), 1);
        assert_eq!(db.compile_count(), 1);
        let stats = server.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
        server.shutdown();
    }

    /// Complete directed graph on `n` same-typed vertices — a directed
    /// path query has combinatorially many injective matches, so the
    /// search spans many budget check intervals.
    fn clique(n: usize) -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let vs: Vec<_> = (0..n)
            .map(|_| g.add_vertex([("type", Value::str("red"))]))
            .collect();
        for &a in &vs {
            for &b in &vs {
                if a != b {
                    g.add_edge(a, b, "link", []);
                }
            }
        }
        g
    }

    const PATH3: &str = "(v0:red)-[:link]->(v1:red)-[:link]->(v2:red)";

    /// Acceptance criterion: a dropped connection cancels its in-flight
    /// query and the server drains it within a bounded interval. The
    /// search is forced slow with a seed-bind delay so the drop
    /// deterministically lands mid-flight, and the clique workload is
    /// large enough that at least one budget check runs after the sleep.
    #[test]
    fn dropped_connection_cancels_its_in_flight_query_with_bounded_drain() {
        let db = Arc::new(Database::open(clique(20)).unwrap());
        let server = Server::start(Arc::clone(&db), ServerConfig::default()).unwrap();
        let _guard = arm(FaultPlan {
            // the first bound seed sleeps 1 s — plenty of mid-flight time
            delay_at_seed: Some((0, Duration::from_secs(1))),
            ..FaultPlan::default()
        });
        {
            let mut client = Client::connect(server.local_addr()).unwrap();
            // `unlimited`: no deadline/step budget — only cancellation
            // can stop this request early
            client
                .send_only(&format!("QUERY @unlimited {PATH3}"))
                .unwrap();
            assert!(
                wait_for(&server, Duration::from_secs(2), |s| s.queue_depth == 1),
                "request never reached execution: {:?}",
                server.stats()
            );
        } // connection dropped with the query in flight
        let dropped_at = Instant::now();
        assert!(
            wait_for(&server, Duration::from_secs(3), |s| {
                s.cancelled == 1 && s.queue_depth == 0 && s.open_connections == 0
            }),
            "in-flight query was not drained: {:?}",
            server.stats()
        );
        // bounded drain: the injected sleep is 1 s and cancellation is
        // observed within one budget check interval after it
        assert!(
            dropped_at.elapsed() < Duration::from_secs(3),
            "drain took {:?}",
            dropped_at.elapsed()
        );
        // the server is unharmed
        let mut probe = Client::connect(server.local_addr()).unwrap();
        let reply = probe.query(PATH3, None).unwrap();
        assert!(!reply.rows.is_empty());
        server.shutdown();
    }
}
