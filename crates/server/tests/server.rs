//! End-to-end serving tests over real TCP: round trips, admission
//! control, same-signature batching, pipelining order, counters and
//! graceful shutdown.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use whyq_graph::{PropertyGraph, Value};
use whyq_server::client::Client;
use whyq_server::protocol::TermTag;
use whyq_server::{Server, ServerConfig, SloClass, StatsSnapshot};
use whyq_session::Database;

/// Two persons who know each other plus a city — one `knows` match.
fn social() -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let a = g.add_vertex([("type", Value::str("person"))]);
    let b = g.add_vertex([("type", Value::str("person"))]);
    let city = g.add_vertex([("type", Value::str("city"))]);
    g.add_edge(a, b, "knows", []);
    g.add_edge(a, city, "livesIn", []);
    g.add_edge(b, city, "livesIn", []);
    g
}

const KNOWS: &str = "(p:person)-[:knows]->(q:person)";

fn start(config: ServerConfig) -> (Server, Arc<Database>) {
    let db = Arc::new(Database::open(social()).unwrap());
    let server = Server::start(Arc::clone(&db), config).unwrap();
    (server, db)
}

/// Poll the server counters until `pred` holds or `bound` elapses.
fn wait_for(server: &Server, bound: Duration, pred: impl Fn(&StatsSnapshot) -> bool) -> bool {
    let deadline = Instant::now() + bound;
    loop {
        if pred(&server.stats()) {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn hello_query_prepare_exec_round_trip() {
    let (server, _db) = start(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    let hello = client.hello().unwrap();
    assert!(hello.contains("whyqd proto=1"), "got {hello:?}");
    assert!(hello.contains("vertices=3"), "got {hello:?}");

    let reply = client.query(KNOWS, None).unwrap();
    assert_eq!(reply.termination, TermTag::Complete);
    assert_eq!(reply.rows.len(), 1);
    // one line of `name=vertex` bindings per result graph
    assert!(reply.rows[0].contains('='), "got {:?}", reply.rows[0]);
    assert!(!reply.capped);

    // the prepared path answers identically and reuses the cached plan
    let handle = client.prepare(KNOWS).unwrap();
    let execd = client.exec(handle, Some("interactive")).unwrap();
    assert_eq!(execd.rows, reply.rows);
    assert_eq!(server.database().compile_count(), 1);

    let stats = client.stats().unwrap();
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.admitted, 2);
    assert_eq!(stats.completed, 2);
    assert_eq!((stats.shed, stats.queue_depth), (0, 0));

    server.shutdown();
}

#[test]
fn typed_errors_keep_the_connection_serving() {
    let (server, _db) = start(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    for (payload, code) in [
        ("NOPE", "unknown-command"),
        ("QUERY (((", "bad-pattern"),
        ("QUERY", "bad-arguments"),
        ("EXEC 99", "bad-handle"),
        ("QUERY @warp (p:person)", "bad-class"),
        ("", "empty-frame"),
    ] {
        match client.send(payload) {
            Ok(whyq_server::protocol::Reply::Err { code: got, .. }) => {
                assert_eq!(got, code, "for payload {payload:?}");
            }
            other => panic!("expected ERR {code} for {payload:?}, got {other:?}"),
        }
    }
    // same connection, still serving
    let reply = client.query(KNOWS, None).unwrap();
    assert_eq!(reply.rows.len(), 1);
    assert_eq!(server.stats().protocol_errors, 6);
    server.shutdown();
}

#[test]
fn admission_control_sheds_with_a_termination_tag() {
    let config = ServerConfig {
        max_queue_depth: 0, // everything sheds
        ..ServerConfig::default()
    };
    let (server, _db) = start(config);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let reply = client.query(KNOWS, None).unwrap();
    // a shed is a servable degraded answer, not an error
    assert_eq!(reply.termination, TermTag::Shed);
    assert!(reply.rows.is_empty());
    let stats = client.stats().unwrap();
    assert_eq!((stats.shed, stats.admitted), (1, 0));
    server.shutdown();
}

#[test]
fn same_signature_concurrent_clients_share_one_compiled_plan() {
    const CLIENTS: usize = 6;
    let config = ServerConfig {
        // a wide window so the barrier-released wave lands in one batch
        batch_window: Duration::from_millis(50),
        ..ServerConfig::default()
    };
    let (server, db) = start(config);
    let addr = server.local_addr();
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                client.query(KNOWS, None).unwrap()
            })
        })
        .collect();
    for worker in workers {
        let reply = worker.join().unwrap();
        assert_eq!(reply.termination, TermTag::Complete);
        assert_eq!(reply.rows.len(), 1);
    }
    // the acceptance criterion: N clients, one compile
    assert_eq!(db.compile_count(), 1);
    let stats = server.stats();
    assert_eq!(
        (stats.admitted, stats.completed),
        (CLIENTS as u64, CLIENTS as u64)
    );
    assert!(
        stats.batched >= 2,
        "expected at least one same-signature batch group, stats: {stats:?}"
    );
    server.shutdown();
}

#[test]
fn pipelined_commands_answer_in_request_order() {
    let (server, _db) = start(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    // three frames in flight before any response is read
    client.send_only(&format!("QUERY {KNOWS}")).unwrap();
    client.send_only("CANCEL").unwrap();
    client.send_only("HELLO").unwrap();
    let first = client.receive().unwrap();
    assert!(
        matches!(first, whyq_server::protocol::Reply::Rows { .. }),
        "got {first:?}"
    );
    assert_eq!(
        client.receive().unwrap(),
        whyq_server::protocol::Reply::Ok("cancel".into())
    );
    match client.receive().unwrap() {
        whyq_server::protocol::Reply::Ok(detail) => assert!(detail.contains("whyqd")),
        other => panic!("got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn slo_classes_resolve_and_unknown_budget_is_usable() {
    let config = ServerConfig {
        classes: vec![SloClass::new(
            "tiny",
            Some(Duration::from_millis(1)),
            Some(1),
        )],
        default_class: "tiny".to_string(),
        ..ServerConfig::default()
    };
    let (server, _db) = start(config);
    let mut client = Client::connect(server.local_addr()).unwrap();
    // the 1-step budget trips at the first block: the answer degrades
    // into a tagged partial instead of erroring
    let reply = client.query(KNOWS, Some("tiny")).unwrap();
    assert!(
        matches!(
            reply.termination,
            TermTag::Budget | TermTag::Deadline | TermTag::Complete
        ),
        "got {:?}",
        reply.termination
    );
    let stats = server.stats();
    assert_eq!(stats.admitted, 1);
    assert_eq!(stats.completed + stats.degraded, 1);
    server.shutdown();
}

#[test]
fn graceful_shutdown_via_wire_command_drains_and_stops() {
    let (server, _db) = start(ServerConfig::default());
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.query(KNOWS, None).unwrap().rows.len(), 1);
    let detail = client.shutdown_server().unwrap();
    assert!(detail.contains("draining"), "got {detail:?}");
    // further work is refused while draining
    match client.query(KNOWS, None) {
        Ok(reply) => panic!("draining server served {reply:?}"),
        Err(e) => {
            let msg = e.to_string();
            assert!(
                msg.contains("shutting-down") || msg.contains("i/o") || msg.contains("closed"),
                "got {msg}"
            );
        }
    }
    // the accept loop exits and the whole server winds down
    server.join();
}

#[test]
fn dropped_connection_is_reaped() {
    let (server, _db) = start(ServerConfig::default());
    {
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert_eq!(client.query(KNOWS, None).unwrap().rows.len(), 1);
    } // client dropped: socket closes with no goodbye
    assert!(
        wait_for(&server, Duration::from_secs(2), |s| {
            s.open_connections == 0 && s.disconnects == 1
        }),
        "connection not reaped: {:?}",
        server.stats()
    );
    server.shutdown();
}

/// Two persons living in differently-typed places — the `city` and
/// `town` query variants below each match exactly one of them.
fn two_towns() -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let p1 = g.add_vertex([("type", Value::str("person"))]);
    let p2 = g.add_vertex([("type", Value::str("person"))]);
    let x = g.add_vertex([("type", Value::str("city"))]);
    let y = g.add_vertex([("type", Value::str("town"))]);
    g.add_edge(p1, x, "livesIn", []);
    g.add_edge(p2, y, "livesIn", []);
    g
}

/// The batcher's gap: clients sending *sibling* signatures (same shape,
/// one `OneOf` constant apart) used to recompile per variant. With the
/// delta path, the second variant's plan is derived from the first —
/// `compile_count` stays flat — and repeats replay from the sibling
/// cache, observable through the new `STATS` counters.
#[test]
fn sibling_signatures_derive_one_plan_and_replay_from_the_sibling_cache() {
    const LIVES_IN_CITY: &str = "(p:person)-[:livesIn]->(c:city)";
    const LIVES_IN_TOWN: &str = "(p:person)-[:livesIn]->(c:town)";
    let config = ServerConfig {
        batch_window: Duration::from_millis(50),
        ..ServerConfig::default()
    };
    let db = Arc::new(Database::open(two_towns()).unwrap());
    let server = Server::start(Arc::clone(&db), config).unwrap();
    let addr = server.local_addr();

    // warm the parent plan so the sibling wave below can derive from it
    let mut warm = Client::connect(addr).unwrap();
    let reply = warm.query(LIVES_IN_CITY, None).unwrap();
    assert_eq!(
        (reply.termination, reply.rows.len()),
        (TermTag::Complete, 1)
    );
    assert_eq!(db.compile_count(), 1);

    // a concurrent wave mixing the parent signature and its one-constant
    // sibling: the batcher coalesces the same-signature groups, and the
    // sibling's plan is patched from the parent instead of compiled
    const CLIENTS: usize = 4;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let pattern = if i % 2 == 0 {
                    LIVES_IN_CITY
                } else {
                    LIVES_IN_TOWN
                };
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                client.query(pattern, None).unwrap()
            })
        })
        .collect();
    for worker in workers {
        let reply = worker.join().unwrap();
        assert_eq!(reply.termination, TermTag::Complete);
        assert_eq!(reply.rows.len(), 1);
    }

    // the satellite acceptance: sibling signatures stay on one compile
    assert_eq!(
        db.compile_count(),
        1,
        "the one-OneOf-constant sibling must derive, not recompile"
    );
    let sib = db.sibling_stats();
    assert!(sib.derived_plans >= 1, "sibling stats: {sib:?}");
    assert!(
        sib.hits >= 1,
        "repeat executions replay from the sibling cache: {sib:?}"
    );

    // the counters are first-class wire surface, over TCP and in-process
    let wire = warm.stats().unwrap();
    let local = server.stats();
    assert!(wire.sibling_hits >= 1, "STATS: {wire:?}");
    assert_eq!(local.sibling_hits, db.sibling_stats().hits);
    assert_eq!(
        local.sibling_invalidations,
        db.sibling_stats().invalidations
    );
    server.shutdown();
}
