//! Naive reference matcher — the correctness oracle for the slot-based
//! engine.
//!
//! This is a faithful retention of the pre-optimization engine: per call it
//! plans by *exactly counting* candidate vertices with a full vertex scan
//! per query vertex (the original `build_plans` behavior), and the DFS
//! clones the whole partial [`ResultGraph`] for every candidate binding,
//! checking injectivity by linear scans over the partial assignment. It is
//! kept for three reasons:
//!
//! * the equivalence property test asserts the optimized engine returns the
//!   same match sets and counts on randomized inputs;
//! * the matcher micro-benchmarks measure the optimized engine against it
//!   (`BENCH_matcher.json`) — the speedup numbers are before/after this PR;
//! * it documents the semantics without any performance machinery on top.
//!
//! Since the value dictionary, this also means the reference evaluates
//! predicates on **decoded strings**: it resolves only attribute *names*
//! to symbols (as the original engine did) and leaves every constant
//! comparison to [`whyq_query::Predicate::matches`], whose string equality
//! walks text whatever the physical encoding. The optimized engine's
//! symbol-compiled predicates are therefore checked against an oracle that
//! shares none of the dictionary machinery.
//!
//! Nothing in the hot path should ever call into this module.

use crate::engine::MatchOptions;
use crate::result::ResultGraph;
use whyq_graph::{AttrMap, EdgeData, EdgeId, PropertyGraph, Symbol, VertexId};
use whyq_query::{PatternQuery, Predicate, QEid, QVid};

/// A predicate with only its attribute *name* resolved; constants stay in
/// the query's own representation and compare by decoded value.
struct NaivePredicate {
    sym: Option<Symbol>,
    pred: Predicate,
}

impl NaivePredicate {
    fn matches(&self, attrs: &AttrMap) -> bool {
        match self.sym {
            Some(s) => self.pred.matches(attrs.get(s)),
            None => false,
        }
    }
}

/// Naive compiled form of one query vertex.
struct NaiveVertex {
    preds: Vec<NaivePredicate>,
}

impl NaiveVertex {
    fn accepts(&self, g: &PropertyGraph, v: VertexId) -> bool {
        let attrs = &g.vertex(v).attrs;
        self.preds.iter().all(|p| p.matches(attrs))
    }
}

/// Naive compiled form of one query edge.
struct NaiveEdge {
    types: Option<Vec<Symbol>>,
    preds: Vec<NaivePredicate>,
}

impl NaiveEdge {
    fn accepts(&self, ed: &EdgeData) -> bool {
        if let Some(tys) = &self.types {
            if !tys.contains(&ed.ty) {
                return false;
            }
        }
        self.preds.iter().all(|p| p.matches(&ed.attrs))
    }
}

/// Per-slot naive compilation (name resolution only).
struct NaiveCompiled {
    vertices: Vec<Option<NaiveVertex>>,
    edges: Vec<Option<NaiveEdge>>,
}

impl NaiveCompiled {
    fn new(g: &PropertyGraph, q: &PatternQuery) -> Self {
        let resolve = |preds: &[Predicate]| -> Vec<NaivePredicate> {
            preds
                .iter()
                .map(|p| NaivePredicate {
                    sym: g.attr_symbol(&p.attr),
                    pred: p.clone(),
                })
                .collect()
        };
        let mut vertices: Vec<Option<NaiveVertex>> = (0..q.vertex_slots()).map(|_| None).collect();
        for v in q.vertex_ids() {
            let qv = q.vertex(v).expect("live");
            vertices[v.0 as usize] = Some(NaiveVertex {
                preds: resolve(&qv.predicates),
            });
        }
        let mut edges: Vec<Option<NaiveEdge>> = (0..q.edge_slots()).map(|_| None).collect();
        for e in q.edge_ids() {
            let qe = q.edge(e).expect("live");
            let types = if qe.types.is_empty() {
                None
            } else {
                let mut tys: Vec<_> = qe.types.iter().filter_map(|t| g.type_symbol(t)).collect();
                tys.sort_unstable();
                tys.dedup();
                Some(tys)
            };
            edges[e.0 as usize] = Some(NaiveEdge {
                types,
                preds: resolve(&qe.predicates),
            });
        }
        NaiveCompiled { vertices, edges }
    }

    fn vertex(&self, v: QVid) -> &NaiveVertex {
        self.vertices[v.0 as usize].as_ref().expect("compiled")
    }

    fn edge(&self, e: QEid) -> &NaiveEdge {
        self.edges[e.0 as usize].as_ref().expect("compiled")
    }
}

/// One step of the fixed naive plan (mirrors `compile::Step` but is built
/// without any selectivity input).
enum NaiveStep {
    Seed(QVid),
    Expand { edge: QEid, from: QVid, to: QVid },
    Close(QEid),
}

/// Exact per-query-vertex candidate counts — the original planner scanned
/// the whole vertex arena once per query vertex on every call.
fn exact_candidate_counts(
    g: &PropertyGraph,
    q: &PatternQuery,
    compiled: &NaiveCompiled,
) -> Vec<u64> {
    let mut cand_count: Vec<u64> = vec![0; q.vertex_slots()];
    for v in q.vertex_ids() {
        let cv = compiled.vertex(v);
        let mut c = 0u64;
        for dv in g.vertex_ids() {
            if cv.accepts(g, dv) {
                c += 1;
            }
        }
        cand_count[v.0 as usize] = c;
    }
    cand_count
}

/// Greedy plan of one component, seeded at the vertex with the fewest
/// exactly counted candidates (the original planner).
fn naive_plan(q: &PatternQuery, comp: &[QVid], cand_count: &[u64]) -> Vec<NaiveStep> {
    let seed = *comp
        .iter()
        .min_by_key(|v| cand_count[v.0 as usize])
        .expect("non-empty component");
    let mut steps = vec![NaiveStep::Seed(seed)];
    let mut bound = vec![seed];
    let mut remaining: Vec<QEid> = comp
        .iter()
        .flat_map(|&v| q.incident_edges(v))
        .collect::<Vec<_>>();
    remaining.sort();
    remaining.dedup();
    while !remaining.is_empty() {
        // prefer closing edges
        if let Some(pos) = remaining.iter().position(|&e| {
            let ed = q.edge(e).expect("live");
            bound.contains(&ed.src) && bound.contains(&ed.dst)
        }) {
            steps.push(NaiveStep::Close(remaining.remove(pos)));
            continue;
        }
        // otherwise the frontier edge with the cheapest new endpoint
        let (pos, from, to) = remaining
            .iter()
            .enumerate()
            .filter_map(|(i, &e)| {
                let ed = q.edge(e).expect("live");
                if bound.contains(&ed.src) {
                    Some((i, ed.src, ed.dst))
                } else if bound.contains(&ed.dst) {
                    Some((i, ed.dst, ed.src))
                } else {
                    None
                }
            })
            .min_by_key(|&(_, _, to)| cand_count[to.0 as usize])
            .expect("component is connected");
        let e = remaining.remove(pos);
        steps.push(NaiveStep::Expand { edge: e, from, to });
        bound.push(to);
    }
    steps
}

#[allow(clippy::too_many_arguments)]
fn step(
    g: &PropertyGraph,
    q: &PatternQuery,
    compiled: &NaiveCompiled,
    steps: &[NaiveStep],
    i: usize,
    injective: bool,
    partial: &ResultGraph,
    emit: &mut dyn FnMut(&ResultGraph) -> bool,
) -> bool {
    if i == steps.len() {
        return emit(partial);
    }
    match steps[i] {
        NaiveStep::Seed(vertex) => {
            let cv = compiled.vertex(vertex);
            for dv in g.vertex_ids() {
                if !cv.accepts(g, dv) {
                    continue;
                }
                if injective && partial.uses_data_vertex(dv) {
                    continue;
                }
                let mut next = partial.clone();
                next.bind_vertex(vertex, dv);
                if !step(g, q, compiled, steps, i + 1, injective, &next, emit) {
                    return false;
                }
            }
            true
        }
        NaiveStep::Expand { edge, from, to } => {
            let qe = q.edge(edge).expect("live");
            let ce = compiled.edge(edge);
            let cv_to = compiled.vertex(to);
            let bound = partial.vertex(from).expect("plan binds from first");
            let from_is_src = from == qe.src;
            let mut cands: Vec<(EdgeId, VertexId)> = Vec::new();
            if qe.directions.forward {
                if from_is_src {
                    for &de in g.out_edges(bound) {
                        cands.push((de, g.edge(de).dst));
                    }
                } else {
                    for &de in g.in_edges(bound) {
                        cands.push((de, g.edge(de).src));
                    }
                }
            }
            if qe.directions.backward {
                if from_is_src {
                    for &de in g.in_edges(bound) {
                        cands.push((de, g.edge(de).src));
                    }
                } else {
                    for &de in g.out_edges(bound) {
                        cands.push((de, g.edge(de).dst));
                    }
                }
            }
            cands.sort();
            cands.dedup();
            for (de, dv) in cands {
                if !ce.accepts(g.edge(de)) || !cv_to.accepts(g, dv) {
                    continue;
                }
                if injective && (partial.uses_data_vertex(dv) || partial.uses_data_edge(de)) {
                    continue;
                }
                let mut next = partial.clone();
                next.bind_vertex(to, dv);
                next.bind_edge(edge, de);
                if !step(g, q, compiled, steps, i + 1, injective, &next, emit) {
                    return false;
                }
            }
            true
        }
        NaiveStep::Close(edge) => {
            let qe = q.edge(edge).expect("live");
            let ce = compiled.edge(edge);
            let ms = partial.vertex(qe.src).expect("bound");
            let mt = partial.vertex(qe.dst).expect("bound");
            let mut cands: Vec<EdgeId> = Vec::new();
            if qe.directions.forward {
                for &de in g.out_edges(ms) {
                    if g.edge(de).dst == mt {
                        cands.push(de);
                    }
                }
            }
            if qe.directions.backward {
                for &de in g.out_edges(mt) {
                    if g.edge(de).dst == ms {
                        cands.push(de);
                    }
                }
            }
            cands.sort();
            cands.dedup();
            for de in cands {
                if !ce.accepts(g.edge(de)) {
                    continue;
                }
                if injective && partial.uses_data_edge(de) {
                    continue;
                }
                let mut next = partial.clone();
                next.bind_edge(edge, de);
                if !step(g, q, compiled, steps, i + 1, injective, &next, emit) {
                    return false;
                }
            }
            true
        }
    }
}

/// Enumerate result graphs with the naive engine.
pub fn find_matches_naive(
    g: &PropertyGraph,
    q: &PatternQuery,
    opts: MatchOptions,
) -> Vec<ResultGraph> {
    if q.num_vertices() == 0 {
        return Vec::new();
    }
    let compiled = NaiveCompiled::new(g, q);
    let cand_count = exact_candidate_counts(g, q, &compiled);
    let cap = opts.limit.unwrap_or(usize::MAX);
    let mut per_component: Vec<Vec<ResultGraph>> = Vec::new();
    for comp in q.weakly_connected_components() {
        let steps = naive_plan(q, &comp, &cand_count);
        let mut results = Vec::new();
        let root = ResultGraph::new();
        step(
            g,
            q,
            &compiled,
            &steps,
            0,
            opts.injective,
            &root,
            &mut |r| {
                results.push(r.clone());
                results.len() < cap
            },
        );
        if results.is_empty() {
            return Vec::new();
        }
        per_component.push(results);
    }
    let mut combined = per_component.remove(0);
    for comp in per_component {
        let mut next = Vec::new();
        'outer: for base in &combined {
            for extra in &comp {
                next.push(base.merged(extra));
                if next.len() >= cap {
                    break 'outer;
                }
            }
        }
        combined = next;
    }
    combined.truncate(cap);
    combined
}

/// Count result graphs with the naive engine, stopping early at the limit.
pub fn count_matches_naive(g: &PropertyGraph, q: &PatternQuery, opts: MatchOptions) -> u64 {
    if q.num_vertices() == 0 {
        return 0;
    }
    let compiled = NaiveCompiled::new(g, q);
    let cand_count = exact_candidate_counts(g, q, &compiled);
    let limit = opts.limit.map(|l| l as u64);
    let mut counts: Vec<u64> = Vec::new();
    for comp in q.weakly_connected_components() {
        let steps = naive_plan(q, &comp, &cand_count);
        let mut c: u64 = 0;
        let root = ResultGraph::new();
        step(
            g,
            q,
            &compiled,
            &steps,
            0,
            opts.injective,
            &root,
            &mut |_| {
                c += 1;
                limit.is_none_or(|l| c < l)
            },
        );
        if c == 0 {
            return 0;
        }
        counts.push(c);
    }
    let total = counts.into_iter().fold(1u64, u64::saturating_mul);
    match limit {
        Some(l) => total.min(l),
        None => total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_graph::Value;
    use whyq_query::{Predicate, QueryBuilder};

    #[test]
    fn naive_matches_known_counts() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person"))]);
        let b = g.add_vertex([("type", Value::str("person"))]);
        let c = g.add_vertex([("type", Value::str("person"))]);
        g.add_edge(a, b, "knows", []);
        g.add_edge(b, c, "knows", []);
        let q = QueryBuilder::new("pairs")
            .vertex("p1", [Predicate::eq("type", "person")])
            .vertex("p2", [Predicate::eq("type", "person")])
            .edge("p1", "p2", "knows")
            .build();
        assert_eq!(count_matches_naive(&g, &q, MatchOptions::default()), 2);
        assert_eq!(find_matches_naive(&g, &q, MatchOptions::default()).len(), 2);
        assert_eq!(count_matches_naive(&g, &q, MatchOptions::limited(1)), 1);
    }
}
