//! Cartesian combination of per-component partial bindings.
//!
//! Weakly connected query components match independently; a full result
//! graph is one choice of partial binding per component, merged (§4.3.3).
//! The blow-up lives entirely in this product, so the combiner is kept
//! separate from the search: the engine's eager [`combine_components`] and
//! the streaming DFS's incremental [`FactorOdometer`] enumerate the exact
//! same order — base component slowest, last factor fastest — which is
//! also the order the pre-refactor inline loops produced. The parallel
//! executor of `whyq-session` reuses the same combiner to merge the
//! per-component outputs of its work units, so serial and parallel
//! evaluation cannot drift apart in how they count or enumerate products.

use crate::result::ResultGraph;

/// Incremental cartesian enumerator over the result lists of components
/// `1..n` (the *factors*), combined against a caller-supplied binding of
/// component `0`.
///
/// Digits advance last-fastest, mirroring the nesting order of the eager
/// product. An odometer over zero factors combines every base with exactly
/// one (empty) factor choice.
#[derive(Debug, Default)]
pub struct FactorOdometer {
    factors: Vec<Vec<ResultGraph>>,
    odo: Vec<usize>,
}

impl FactorOdometer {
    /// Odometer over `factors`. An empty factor zeroes the product —
    /// check [`FactorOdometer::is_zero`] before enumerating.
    pub fn new(factors: Vec<Vec<ResultGraph>>) -> Self {
        let odo = vec![0; factors.len()];
        FactorOdometer { factors, odo }
    }

    /// Number of factor components (excluding the base component).
    pub fn num_factors(&self) -> usize {
        self.factors.len()
    }

    /// True when some factor is empty, making every product empty.
    pub fn is_zero(&self) -> bool {
        self.factors.iter().any(Vec::is_empty)
    }

    /// Merge the current factor choice into `base`.
    pub fn combine(&self, base: &ResultGraph) -> ResultGraph {
        let mut r = base.clone();
        for (factor, &digit) in self.factors.iter().zip(&self.odo) {
            r = r.merged(&factor[digit]);
        }
        r
    }

    /// Advance to the next factor combination (last digit fastest).
    /// Returns `false` on wrap-around — every combination for the current
    /// base has been enumerated and the digits are reset to zero.
    pub fn advance(&mut self) -> bool {
        let mut i = self.odo.len();
        loop {
            if i == 0 {
                return false;
            }
            i -= 1;
            self.odo[i] += 1;
            if self.odo[i] < self.factors[i].len() {
                return true;
            }
            self.odo[i] = 0;
        }
    }

    /// Reset the digits for a fresh base binding.
    pub fn reset(&mut self) {
        self.odo.iter_mut().for_each(|d| *d = 0);
    }
}

/// Eagerly combine per-component result lists into at most `cap` full
/// result graphs. `per_component[0]` is the base; empty input or any empty
/// component yields no results (the component must match for the query to
/// match). A single component is returned as-is (no clone).
pub fn combine_components(
    mut per_component: Vec<Vec<ResultGraph>>,
    cap: usize,
) -> Vec<ResultGraph> {
    if cap == 0 || per_component.is_empty() || per_component.iter().any(Vec::is_empty) {
        return Vec::new();
    }
    let base = per_component.remove(0);
    if per_component.is_empty() {
        let mut base = base;
        base.truncate(cap);
        return base;
    }
    let mut odo = FactorOdometer::new(per_component);
    let mut out = Vec::new();
    'outer: for b in &base {
        loop {
            out.push(odo.combine(b));
            if out.len() >= cap {
                break 'outer;
            }
            if !odo.advance() {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_graph::{EdgeId, VertexId};
    use whyq_query::{QEid, QVid};

    fn binding(slot: u32, dv: u32) -> ResultGraph {
        let mut r = ResultGraph::new();
        r.bind_vertex(QVid(slot), VertexId(dv));
        r
    }

    #[test]
    fn single_component_passes_through() {
        let comp = vec![binding(0, 1), binding(0, 2)];
        let out = combine_components(vec![comp.clone()], usize::MAX);
        assert_eq!(out, comp);
        assert_eq!(combine_components(vec![comp], 1).len(), 1);
    }

    #[test]
    fn empty_component_zeroes_the_product() {
        assert!(combine_components(vec![], 10).is_empty());
        let comp = vec![binding(0, 1)];
        assert!(combine_components(vec![comp, vec![]], 10).is_empty());
    }

    #[test]
    fn product_order_is_base_major_last_factor_fastest() {
        let base = vec![binding(0, 0), binding(0, 1)];
        let f1 = vec![binding(1, 10), binding(1, 11)];
        let f2 = vec![binding(2, 20), binding(2, 21)];
        let out = combine_components(vec![base, f1, f2], usize::MAX);
        assert_eq!(out.len(), 8);
        let key = |r: &ResultGraph| {
            (
                r.vertex(QVid(0)).unwrap().0,
                r.vertex(QVid(1)).unwrap().0,
                r.vertex(QVid(2)).unwrap().0,
            )
        };
        let keys: Vec<_> = out.iter().map(key).collect();
        assert_eq!(
            keys,
            vec![
                (0, 10, 20),
                (0, 10, 21),
                (0, 11, 20),
                (0, 11, 21),
                (1, 10, 20),
                (1, 10, 21),
                (1, 11, 20),
                (1, 11, 21),
            ]
        );
    }

    #[test]
    fn cap_truncates_mid_product() {
        let base = vec![binding(0, 0), binding(0, 1)];
        let f1 = vec![binding(1, 10), binding(1, 11)];
        let out = combine_components(vec![base, f1], 3);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn zero_cap_yields_nothing_even_with_factors() {
        let base = vec![binding(0, 0)];
        let f1 = vec![binding(1, 10)];
        assert!(combine_components(vec![base.clone(), f1], 0).is_empty());
        assert!(combine_components(vec![base], 0).is_empty());
    }

    #[test]
    fn odometer_tracks_edges_too() {
        let mut base = binding(0, 0);
        base.bind_edge(QEid(0), EdgeId(5));
        let f1 = vec![binding(1, 10)];
        let mut odo = FactorOdometer::new(vec![f1]);
        assert!(!odo.is_zero());
        let combined = odo.combine(&base);
        assert_eq!(combined.edge(QEid(0)), Some(EdgeId(5)));
        assert_eq!(combined.vertex(QVid(1)), Some(VertexId(10)));
        assert!(!odo.advance(), "single combination wraps immediately");
        odo.reset();
    }
}
