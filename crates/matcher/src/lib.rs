//! # whyq-matcher — pattern matching over property graphs
//!
//! Evaluates [`whyq_query::PatternQuery`] against a
//! [`whyq_graph::PropertyGraph`]: finds the data subgraphs matching the
//! query (the *result graphs* of Def. 6, §3.2.4) or counts them with early
//! termination.
//!
//! Matching semantics (§3.1.2):
//!
//! * a result graph maps query vertices to data vertices and query edges to
//!   data edges;
//! * the mapping honors every vertex/edge predicate, the edge-type
//!   disjunction and the admissible direction set of every query edge;
//! * within one weakly connected query component the mapping is
//!   **injective** on vertices and edges (subgraph-isomorphism style;
//!   homomorphic matching is available through [`MatchOptions`]);
//! * unconnected query components are matched independently and combined as
//!   a cartesian product (§4.3.3) — cardinalities multiply.
//!
//! Besides whole-query evaluation the crate exposes the *incremental* API
//! ([`seed_matches`] / [`extend_matches`]) that the why-query algorithms of
//! `whyq-core` (DISCOVERMCS, BOUNDEDMCS, change propagation) are built on:
//! grow a set of partial result graphs by one query edge at a time.

pub mod compile;
pub mod engine;
pub mod incremental;
pub mod index;
pub mod reference;
pub mod result;

pub use engine::{count_matches, find_matches, MatchOptions, Matcher};
pub use incremental::{extend_matches, seed_matches};
pub use index::AttrIndex;
pub use reference::{count_matches_naive, find_matches_naive};
pub use result::ResultGraph;
