//! # whyq-matcher — pattern matching over property graphs
//!
//! Evaluates [`whyq_query::PatternQuery`] against a
//! [`whyq_graph::PropertyGraph`]: finds the data subgraphs matching the
//! query (the *result graphs* of Def. 6, §3.2.4), counts them with early
//! termination, or streams them lazily.
//!
//! Matching semantics (§3.1.2):
//!
//! * a result graph maps query vertices to data vertices and query edges to
//!   data edges;
//! * the mapping honors every vertex/edge predicate, the edge-type
//!   disjunction and the admissible direction set of every query edge;
//! * within one weakly connected query component the mapping is
//!   **injective** on vertices and edges (subgraph-isomorphism style;
//!   homomorphic matching is available through [`MatchOptions`]);
//! * unconnected query components are matched independently and combined as
//!   a cartesian product (§4.3.3) — cardinalities multiply.
//!
//! ## Execution model
//!
//! [`Matcher`] is the execution core: it owns a reusable scratch arena and
//! any number of shared attribute indexes ([`AttrIndex`], `Arc`-shared so
//! one database's indexes serve every session), compiles queries against
//! the graph's name/value dictionaries ([`compile`]) and runs a
//! zero-allocation backtracking DFS ([`engine`]). Compilation and planning
//! are exposed separately ([`Matcher::compile`] +
//! [`Matcher::find_compiled`] / [`Matcher::count_compiled`] /
//! [`MatchStream::over`]) so the `whyq-session` facade can memoize plans
//! by query signature and skip them entirely on repeat queries.
//!
//! **Most callers should not drive this crate directly**: open a
//! `whyq_session::Database`, take a `Session` and use
//! `session.prepare(&q)?` — prepared queries add plan caching, configured
//! indexes and a `Result`-based error surface on top of the same engine.
//! The free functions [`find_matches`] / [`count_matches`] and
//! [`Matcher::with_index`] remain as deprecated shims for incremental
//! migration.
//!
//! Result enumeration comes in two shapes: eager ([`Matcher::find`],
//! returning a `Vec`) and lazy ([`Matcher::stream`], a suspendable DFS
//! that yields [`ResultGraph`]s one at a time without materializing the
//! result set — see [`stream::MatchStream`]).
//!
//! ## Work model
//!
//! Execution decomposes into component × seed-subrange [`WorkUnit`]s
//! ([`work`]): each weakly connected component over each slice of its
//! [`SeedList`] is independently executable ([`Matcher::find_unit`] /
//! [`Matcher::count_unit`]) against any matcher's private scratch arena,
//! and per-component partial bindings are merged by the standalone
//! cartesian combiner ([`combine`]). The `whyq-session` executor builds
//! its parallel `find_par`/`count_par` on exactly these pieces — serial
//! evaluation is the one-unit-per-component special case.
//!
//! The incremental edge-at-a-time growth primitive the why-query algorithms
//! (DISCOVERMCS, BOUNDEDMCS, change propagation) are built on lives with
//! those algorithms in `whyq_core::grow`; it reuses this crate's
//! per-element predicate compilation ([`compile`]).

// The whole workspace is unsafe-free (audited 2026-08): lock it in.
#![forbid(unsafe_code)]
// Every public item documents itself; CI's docs lane denies this warning.
#![warn(missing_docs)]

pub mod budget;
pub mod combine;
pub mod compile;
pub mod derive;
pub mod engine;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod index;
#[cfg(feature = "legacy-interp")]
pub mod legacy;
pub mod optimize;
pub mod plan_ir;
pub mod reference;
pub mod result;
pub mod stream;
pub mod verify;
pub mod vm;
pub mod work;

pub use budget::{Budget, CancelToken, Termination};
pub use combine::{combine_components, FactorOdometer};
pub use derive::derive_sibling;
#[allow(deprecated)] // compatibility re-exports of the deprecated shims
pub use engine::{count_matches, find_matches};
pub use engine::{CompiledQuery, MatchOptions, Matcher};
pub use index::AttrIndex;
pub use optimize::{optimize, PassSet};
pub use plan_ir::{lower, PlanIr};
pub use reference::{count_matches_naive, find_matches_naive};
pub use result::ResultGraph;
pub use stream::MatchStream;
pub use verify::{verify_ir, verify_plans};
pub use vm::QueryProgram;
pub use work::{split_ranges, SeedList, WorkUnit};
