//! Dead-bind elimination: drop trivially true filters, fuse binds into
//! scans.

use crate::compile::Compiled;
use crate::plan_ir::{FilterTest, IrNode, PlanIr};

/// True when `test` can never reject a candidate and is safe to delete.
///
/// A vertex test is dead when the query vertex compiled to zero
/// predicates; an edge-attribute test is dead when the compiled edge
/// never needs edge data (no attribute predicates). `EdgeType` tests are
/// never dead here — only emitted for edges with a real type disjunction.
fn is_dead(test: FilterTest, compiled: &Compiled) -> bool {
    match test {
        FilterTest::VertexPreds(v) => compiled.vertex(v).preds.is_empty(),
        FilterTest::EdgeAttrs(e) => !compiled.edge(e).needs_edge_data(),
        FilterTest::EdgeType(_) => false,
    }
}

/// Remove trivially true filters (standalone and inline) and fuse each
/// [`IrNode::Bind`] that directly follows its scan into the scan
/// (`bind: true`), so the VM binds accepted candidates inside the scan
/// loop instead of dispatching a separate instruction.
///
/// The fused bind performs the same occupancy check the standalone node
/// would, just earlier in the candidate loop — rejected candidates are
/// skipped instead of bounced, which changes nothing observable.
pub fn dead_bind(ir: &mut PlanIr, compiled: &Compiled) {
    for comp in &mut ir.components {
        let mut out: Vec<IrNode> = Vec::with_capacity(comp.nodes.len());
        for mut node in comp.nodes.drain(..) {
            match &mut node {
                IrNode::Filter { test } if is_dead(*test, compiled) => continue,
                IrNode::SeedScan { filters, .. }
                | IrNode::ExpandRun { filters, .. }
                | IrNode::CloseRun { filters, .. } => {
                    filters.retain(|t| !is_dead(*t, compiled));
                }
                IrNode::Bind { .. } => {
                    // Fuse only when the scan is adjacent: a standalone
                    // filter in between must keep running before the bind.
                    if let Some(
                        IrNode::SeedScan { bind, .. }
                        | IrNode::ExpandRun { bind, .. }
                        | IrNode::CloseRun { bind, .. },
                    ) = out.last_mut()
                    {
                        if !*bind {
                            *bind = true;
                            continue;
                        }
                    }
                }
                _ => {}
            }
            out.push(node);
        }
        comp.nodes = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{build_plans_est, Compiled};
    use crate::optimize::pushdown;
    use crate::plan_ir::lower;
    use whyq_graph::{PropertyGraph, Value};
    use whyq_query::{Predicate, QueryBuilder};

    fn setup() -> (PropertyGraph, whyq_query::PatternQuery) {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person"))]);
        let b = g.add_vertex([]);
        g.add_edge(a, b, "knows", []);
        // "b" is unconstrained, the edge has no attribute predicates:
        // both of those filters are dead.
        let q = QueryBuilder::new("q")
            .vertex("a", [Predicate::eq("type", "person")])
            .vertex("b", [])
            .edge("a", "b", "knows")
            .build();
        (g, q)
    }

    #[test]
    fn dead_filters_vanish_and_adjacent_binds_fuse() {
        let (g, q) = setup();
        let compiled = Compiled::new(&g, &q);
        let (plans, est) = build_plans_est(&g, &q, &compiled, &[]);
        let mut ir = lower(&compiled, &plans, &est);
        dead_bind(&mut ir, &compiled);
        let nodes = &ir.components[0].nodes;
        // EdgeAttrs("knows" has no preds) and VertexPreds(b) are gone;
        // EdgeType and VertexPreds(a) remain as standalone filters, so no
        // bind fuses (none is scan-adjacent except after the expand's
        // remaining EdgeType filter... seed keeps its VertexPreds filter).
        assert!(!nodes.iter().any(|n| matches!(
            n,
            IrNode::Filter {
                test: FilterTest::EdgeAttrs(_)
            }
        )));
        crate::verify::verify_ir(&q, &compiled, &ir, 0).unwrap();
    }

    #[test]
    fn after_pushdown_binds_fuse_into_scans() {
        let (g, q) = setup();
        let compiled = Compiled::new(&g, &q);
        let (plans, est) = build_plans_est(&g, &q, &compiled, &[]);
        let mut ir = lower(&compiled, &plans, &est);
        pushdown(&mut ir);
        dead_bind(&mut ir, &compiled);
        let nodes = &ir.components[0].nodes;
        // Everything folded: SeedScan{bind} + ExpandRun{bind} + Emit.
        assert_eq!(nodes.len(), 3);
        assert!(matches!(nodes[0], IrNode::SeedScan { bind: true, .. }));
        assert!(matches!(
            nodes[1],
            IrNode::ExpandRun {
                bind: true,
                typed: true,
                ..
            }
        ));
        assert!(matches!(nodes[2], IrNode::Emit));
        crate::verify::verify_ir(&q, &compiled, &ir, 0).unwrap();
    }
}
