//! Index-aware seed selection: replace seed full-scans with the cheapest
//! candidate source the attached indexes support.

use crate::index::AttrIndex;
use crate::plan_ir::{IrNode, PlanIr, SeedSpec};
use std::sync::Arc;
use whyq_graph::PropertyGraph;
use whyq_query::{Interval, PatternQuery};

/// Rewrite each component's [`IrNode::SeedScan`] source.
///
/// Candidate sources, costed by (an upper bound on) their candidate
/// count:
///
/// - one index bucket per point-equality predicate on an indexed
///   attribute (cost = bucket length);
/// - one bucket union per multi-value disjunction (cost = summed bucket
///   lengths — an upper bound, duplicates double-count);
/// - the **intersection** of all point probes when two or more indexed
///   equality predicates constrain the seed (cost = the smallest probe's
///   bucket length, an upper bound on the intersection size).
///
/// The cheapest source wins; full scan remains only when no indexed
/// predicate applies. This goes beyond the engine's greedy
/// `seed_source`, which only ever picks a *single* predicate's bucket or
/// union: with several indexed equality predicates the intersection is
/// never larger than the best single probe and usually far smaller.
///
/// Every source enumerates ascending vertex ids and every scan still
/// applies the full predicate filter chain, so a wider-than-necessary
/// source changes cost, never results.
pub fn seed_select(
    ir: &mut PlanIr,
    g: &PropertyGraph,
    q: &PatternQuery,
    indexes: &[Arc<AttrIndex>],
) {
    if indexes.is_empty() {
        return;
    }
    for comp in &mut ir.components {
        let Some(IrNode::SeedScan {
            vertex, spec, est, ..
        }) = comp.nodes.first_mut()
        else {
            continue;
        };
        let Some(qv) = q.vertex(*vertex) else {
            continue;
        };
        // Gather candidate sources from the indexed predicates.
        let mut points: Vec<(usize, whyq_graph::Value, usize)> = Vec::new();
        let mut best_union: Option<(usize, Vec<whyq_graph::Value>, usize)> = None;
        for p in &qv.predicates {
            let Some(attr) = g.attr_symbol(&p.attr) else {
                continue;
            };
            let Some(pos) = indexes.iter().position(|i| i.attr() == attr) else {
                continue;
            };
            let idx = &indexes[pos];
            if let Interval::OneOf(vals) = &p.interval {
                if vals.len() == 1 {
                    let len = idx.lookup(g, &vals[0]).len();
                    points.push((pos, vals[0].clone(), len));
                } else {
                    let size: usize = vals.iter().map(|v| idx.lookup(g, v).len()).sum();
                    if best_union.as_ref().is_none_or(|(_, _, s)| size < *s) {
                        best_union = Some((pos, vals.clone(), size));
                    }
                }
            } else if let Some(pv) = p.interval.point_value() {
                let len = idx.lookup(g, &pv).len();
                points.push((pos, pv, len));
            }
        }
        // Cost of each assembled option.
        let intersect_cost = if points.len() >= 2 {
            Some(points.iter().map(|&(_, _, l)| l).min().unwrap())
        } else {
            None
        };
        let single_cost = points.iter().map(|&(_, _, l)| l).min();
        let union_cost = best_union.as_ref().map(|&(_, _, s)| s);

        // Pick: intersection beats any single probe by construction, so
        // it only competes with the best union; otherwise best single vs
        // best union; ties favour the tighter (point-based) source.
        let chosen = match (intersect_cost, single_cost, union_cost) {
            (Some(ic), _, Some(uc)) if uc < ic => {
                let (pos, keys, _) = best_union.unwrap();
                Some((uc, SeedSpec::Union { index: pos, keys }))
            }
            (Some(ic), _, _) => {
                points.sort_by_key(|&(_, _, l)| l);
                let probes = points.drain(..).map(|(pos, v, _)| (pos, v)).collect();
                Some((ic, SeedSpec::Intersect { probes }))
            }
            (None, Some(sc), uc) if uc.is_none_or(|u| sc <= u) => {
                let &(pos, ref v, _) = points.iter().min_by_key(|&&(_, _, l)| l).unwrap();
                Some((
                    sc,
                    SeedSpec::Bucket {
                        index: pos,
                        key: v.clone(),
                    },
                ))
            }
            (None, _, Some(uc)) => {
                let (pos, keys, _) = best_union.unwrap();
                Some((uc, SeedSpec::Union { index: pos, keys }))
            }
            // (None, Some, None) with a failed guard is unreachable —
            // `uc.is_none_or` always holds when `uc` is `None`
            _ => None,
        };
        if let Some((cost, new_spec)) = chosen {
            *spec = new_spec;
            *est = (*est).min(cost as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{build_plans_est, Compiled};
    use crate::plan_ir::lower;
    use whyq_graph::{PropertyGraph, Value};
    use whyq_query::{Predicate, QueryBuilder};

    fn graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        for i in 0..8 {
            g.add_vertex([
                ("color", Value::str(if i % 2 == 0 { "red" } else { "blue" })),
                ("size", Value::Int(i % 4)),
            ]);
        }
        g
    }

    fn idx(g: &PropertyGraph, attr: &str) -> Arc<AttrIndex> {
        Arc::new(AttrIndex::build(g, attr).unwrap())
    }

    #[test]
    fn two_point_probes_intersect() {
        let g = graph();
        let indexes = vec![idx(&g, "color"), idx(&g, "size")];
        let q = QueryBuilder::new("q")
            .vertex(
                "a",
                [Predicate::eq("color", "red"), Predicate::eq("size", 2)],
            )
            .build();
        let compiled = Compiled::new(&g, &q);
        let (plans, est) = build_plans_est(&g, &q, &compiled, &indexes);
        let mut ir = lower(&compiled, &plans, &est);
        seed_select(&mut ir, &g, &q, &indexes);
        let IrNode::SeedScan { spec, .. } = &ir.components[0].nodes[0] else {
            unreachable!()
        };
        let SeedSpec::Intersect { probes } = spec else {
            panic!("expected Intersect, got {spec:?}");
        };
        assert_eq!(probes.len(), 2);
        // smallest bucket first: size=2 has 2 vertices, color=red has 4
        assert_eq!(probes[0].0, 1);
        crate::verify::verify_ir(&q, &compiled, &ir, indexes.len()).unwrap();
    }

    #[test]
    fn disjunction_becomes_union_and_no_index_stays_scan() {
        let g = graph();
        let indexes = vec![idx(&g, "color")];
        let q = QueryBuilder::new("q")
            .vertex("a", [Predicate::one_of("color", ["red", "blue"])])
            .vertex("b", [Predicate::eq("weight", 3)])
            .build();
        let compiled = Compiled::new(&g, &q);
        let (plans, est) = build_plans_est(&g, &q, &compiled, &indexes);
        let mut ir = lower(&compiled, &plans, &est);
        seed_select(&mut ir, &g, &q, &indexes);
        let specs: Vec<_> = ir
            .components
            .iter()
            .map(|c| match &c.nodes[0] {
                IrNode::SeedScan { spec, .. } => spec.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert!(specs
            .iter()
            .any(|s| matches!(s, SeedSpec::Union { keys, .. } if keys.len() == 2)));
        assert!(specs.iter().any(|s| matches!(s, SeedSpec::FullScan)));
        crate::verify::verify_ir(&q, &compiled, &ir, indexes.len()).unwrap();
    }
}
