//! Predicate pushdown: fuse standalone filters into their scan.

use crate::plan_ir::{FilterTest, IrNode, PlanIr};

/// Fuse each scan's immediately following [`IrNode::Filter`] nodes into
/// the scan itself.
///
/// An [`FilterTest::EdgeType`] filter on an expansion or close becomes
/// `typed: true` — the VM then iterates only the CSR runs of the
/// admissible types instead of testing every edge. All other filters are
/// appended to the scan's inline `filters` list *in their original
/// order*, so the sequence of tests applied to each candidate is
/// unchanged; only the dispatch overhead between them disappears.
pub fn pushdown(ir: &mut PlanIr) {
    for comp in &mut ir.components {
        let mut out: Vec<IrNode> = Vec::with_capacity(comp.nodes.len());
        for node in comp.nodes.drain(..) {
            match node {
                IrNode::Filter { test } => {
                    // Fuse into the most recent scan if its bind is still
                    // pending (i.e. no Bind node emitted since).
                    let fuse = matches!(
                        out.last(),
                        Some(
                            IrNode::SeedScan { bind: false, .. }
                                | IrNode::ExpandRun { bind: false, .. }
                                | IrNode::CloseRun { bind: false, .. }
                        )
                    );
                    if !fuse {
                        out.push(IrNode::Filter { test });
                        continue;
                    }
                    match (out.last_mut().unwrap(), test) {
                        (
                            IrNode::ExpandRun { typed, .. } | IrNode::CloseRun { typed, .. },
                            FilterTest::EdgeType(_),
                        ) => {
                            *typed = true;
                        }
                        (
                            IrNode::SeedScan { filters, .. }
                            | IrNode::ExpandRun { filters, .. }
                            | IrNode::CloseRun { filters, .. },
                            t,
                        ) => filters.push(t),
                        _ => unreachable!("fuse guard matched a non-scan"),
                    }
                }
                other => out.push(other),
            }
        }
        comp.nodes = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{build_plans_est, Compiled};
    use crate::plan_ir::lower;
    use whyq_graph::{PropertyGraph, Value};
    use whyq_query::{Predicate, QueryBuilder};

    #[test]
    fn filters_fold_into_scans_and_types_become_runs() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person"))]);
        let b = g.add_vertex([("type", Value::str("person"))]);
        g.add_edge(a, b, "knows", []);
        let q = QueryBuilder::new("q")
            .vertex("a", [Predicate::eq("type", "person")])
            .vertex("b", [Predicate::eq("type", "person")])
            .edge("a", "b", "knows")
            .build();
        let compiled = Compiled::new(&g, &q);
        let (plans, est) = build_plans_est(&g, &q, &compiled, &[]);
        let mut ir = lower(&compiled, &plans, &est);
        pushdown(&mut ir);
        let nodes = &ir.components[0].nodes;
        // no standalone filters remain
        assert!(!nodes.iter().any(|n| matches!(n, IrNode::Filter { .. })));
        // the expansion is now typed with its remaining filters inline
        let expand = nodes
            .iter()
            .find(|n| matches!(n, IrNode::ExpandRun { .. }))
            .unwrap();
        let IrNode::ExpandRun { typed, filters, .. } = expand else {
            unreachable!()
        };
        assert!(*typed);
        assert_eq!(filters.len(), 2); // EdgeAttrs + VertexPreds
        crate::verify::verify_ir(&q, &compiled, &ir, 0).unwrap();
    }
}
