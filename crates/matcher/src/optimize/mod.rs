//! Optimizer passes over the plan IR.
//!
//! Three independent, individually toggleable passes run in a fixed order
//! over the naive lowering of [`crate::plan_ir::lower`]:
//!
//! 1. [`pushdown`] — predicate pushdown: fuse the standalone
//!    [`crate::plan_ir::IrNode::Filter`] nodes following each scan into
//!    the scan's own filter list, and turn `EdgeType` filters into typed
//!    CSR run selection (`typed: true`), so the VM's scan loop walks only
//!    the admissible per-type adjacency runs instead of filtering after
//!    the fact.
//! 2. [`dead_bind`] — dead-bind elimination: drop trivially true filters
//!    (vertex tests with no compiled predicates, edge-attribute tests on
//!    edges that never need edge data) and fuse a
//!    [`crate::plan_ir::IrNode::Bind`] that immediately follows its scan
//!    into the scan itself (`bind: true`), removing a dispatch round-trip
//!    per accepted candidate.
//! 3. [`seed_select`] — index-aware seed selection: replace a seed scan's
//!    candidate source with the cheapest option the attached attribute
//!    indexes support — a single bucket, a union of buckets, or the
//!    intersection of several point probes — going beyond the planner's
//!    greedy estimate-only choice.
//!
//! Passes only rewrite *how* candidates are produced and tested, never
//! the binding order or the set of predicates that ultimately gate a
//! binding, so every subset of passes is result-equivalent (enforced by
//! `tests/optimizer_props.rs` over the pass power set). Each enabled pass
//! is re-verified with [`crate::verify::verify_ir`] in debug builds.

mod dead_bind;
mod pushdown;
mod seed_select;

pub use dead_bind::dead_bind;
pub use pushdown::pushdown;
pub use seed_select::seed_select;

use crate::compile::Compiled;
use crate::index::AttrIndex;
use crate::plan_ir::PlanIr;
use whyq_graph::PropertyGraph;
use whyq_query::PatternQuery;

/// Which optimizer passes to run. [`Default`] enables all of them; the
/// equivalence suite toggles each independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassSet {
    /// Fuse filters into scans and select typed CSR runs.
    pub pushdown: bool,
    /// Drop trivially true filters and fuse binds into scans.
    pub dead_bind: bool,
    /// Replace seed full-scans with index bucket / union / intersection
    /// sources.
    pub seed_select: bool,
}

impl Default for PassSet {
    fn default() -> Self {
        PassSet {
            pushdown: true,
            dead_bind: true,
            seed_select: true,
        }
    }
}

impl PassSet {
    /// No passes at all: the naive lowering runs as-is.
    pub const NONE: PassSet = PassSet {
        pushdown: false,
        dead_bind: false,
        seed_select: false,
    };

    /// The `i`-th subset of the pass power set (bit 0 = pushdown, bit 1 =
    /// dead_bind, bit 2 = seed_select); `i < 8`. Used by the pass-matrix
    /// property tests to enumerate every combination.
    pub fn subset(i: u8) -> PassSet {
        PassSet {
            pushdown: i & 1 != 0,
            dead_bind: i & 2 != 0,
            seed_select: i & 4 != 0,
        }
    }
}

/// Run the enabled passes over `ir` in their fixed order.
///
/// In debug builds the IR is re-verified with
/// [`crate::verify::verify_ir`] after every enabled pass; a pass that
/// breaks an invariant is a bug, so this panics rather than returning an
/// error.
pub fn optimize(
    ir: &mut PlanIr,
    g: &PropertyGraph,
    q: &PatternQuery,
    compiled: &Compiled,
    indexes: &[std::sync::Arc<AttrIndex>],
    passes: PassSet,
) {
    let check = |ir: &PlanIr, pass: &str| {
        if cfg!(debug_assertions) {
            if let Err(e) = crate::verify::verify_ir(q, compiled, ir, indexes.len()) {
                panic!("optimizer pass `{pass}` broke the IR: {e}");
            }
        }
    };
    if passes.pushdown {
        pushdown(ir);
        check(ir, "pushdown");
    }
    if passes.dead_bind {
        dead_bind(ir, compiled);
        check(ir, "dead_bind");
    }
    if passes.seed_select {
        seed_select(ir, g, q, indexes);
        check(ir, "seed_select");
    }
}
