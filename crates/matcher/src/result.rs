//! Result graphs: mappings from query elements to data elements.
//!
//! Definition 6 (§3.2.4): *a result graph describes a data subgraph as a
//! mapping between query vertices and data vertices, query edges and data
//! edges*. The result distance of Def. 7 compares two result graphs per
//! query identifier, which is why the mapping is keyed by stable query ids.

use whyq_graph::{EdgeId, VertexId};
use whyq_query::{QEid, QVid};

/// One match: an assignment of data elements to query elements.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResultGraph {
    vertices: Vec<(QVid, VertexId)>,
    edges: Vec<(QEid, EdgeId)>,
}

impl ResultGraph {
    /// Empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// The data vertex assigned to a query vertex.
    pub fn vertex(&self, q: QVid) -> Option<VertexId> {
        self.vertices
            .binary_search_by_key(&q, |(k, _)| *k)
            .ok()
            .map(|i| self.vertices[i].1)
    }

    /// The data edge assigned to a query edge.
    pub fn edge(&self, q: QEid) -> Option<EdgeId> {
        self.edges
            .binary_search_by_key(&q, |(k, _)| *k)
            .ok()
            .map(|i| self.edges[i].1)
    }

    /// Bind a query vertex to a data vertex.
    ///
    /// # Panics
    /// Panics if the query vertex is already bound (engine invariant).
    pub fn bind_vertex(&mut self, q: QVid, d: VertexId) {
        match self.vertices.binary_search_by_key(&q, |(k, _)| *k) {
            Ok(_) => panic!("query vertex {q} bound twice"),
            Err(pos) => self.vertices.insert(pos, (q, d)),
        }
    }

    /// Bind a query edge to a data edge.
    ///
    /// # Panics
    /// Panics if the query edge is already bound (engine invariant).
    pub fn bind_edge(&mut self, q: QEid, d: EdgeId) {
        match self.edges.binary_search_by_key(&q, |(k, _)| *k) {
            Ok(_) => panic!("query edge {q} bound twice"),
            Err(pos) => self.edges.insert(pos, (q, d)),
        }
    }

    /// Is the data vertex already used by this assignment?
    pub fn uses_data_vertex(&self, d: VertexId) -> bool {
        self.vertices.iter().any(|&(_, v)| v == d)
    }

    /// Is the data edge already used by this assignment?
    pub fn uses_data_edge(&self, d: EdgeId) -> bool {
        self.edges.iter().any(|&(_, e)| e == d)
    }

    /// Bound query vertices with their data vertices, in query-id order.
    pub fn vertex_bindings(&self) -> &[(QVid, VertexId)] {
        &self.vertices
    }

    /// Bound query edges with their data edges, in query-id order.
    pub fn edge_bindings(&self) -> &[(QEid, EdgeId)] {
        &self.edges
    }

    /// Number of bound vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of bound edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Merge two assignments over disjoint query elements (used for the
    /// cartesian combination of unconnected query components).
    ///
    /// # Panics
    /// Panics if the assignments share a query element.
    pub fn merged(&self, other: &ResultGraph) -> ResultGraph {
        let mut out = self.clone();
        for &(q, d) in &other.vertices {
            out.bind_vertex(q, d);
        }
        for &(q, d) in &other.edges {
            out.bind_edge(q, d);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_lookup() {
        let mut r = ResultGraph::new();
        r.bind_vertex(QVid(2), VertexId(20));
        r.bind_vertex(QVid(0), VertexId(10));
        r.bind_edge(QEid(1), EdgeId(5));
        assert_eq!(r.vertex(QVid(0)), Some(VertexId(10)));
        assert_eq!(r.vertex(QVid(2)), Some(VertexId(20)));
        assert_eq!(r.vertex(QVid(1)), None);
        assert_eq!(r.edge(QEid(1)), Some(EdgeId(5)));
        // bindings are sorted by query id
        assert_eq!(r.vertex_bindings()[0].0, QVid(0));
    }

    #[test]
    fn usage_checks() {
        let mut r = ResultGraph::new();
        r.bind_vertex(QVid(0), VertexId(7));
        assert!(r.uses_data_vertex(VertexId(7)));
        assert!(!r.uses_data_vertex(VertexId(8)));
        r.bind_edge(QEid(0), EdgeId(3));
        assert!(r.uses_data_edge(EdgeId(3)));
    }

    #[test]
    fn merge_disjoint() {
        let mut a = ResultGraph::new();
        a.bind_vertex(QVid(0), VertexId(1));
        let mut b = ResultGraph::new();
        b.bind_vertex(QVid(1), VertexId(2));
        let m = a.merged(&b);
        assert_eq!(m.num_vertices(), 2);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut r = ResultGraph::new();
        r.bind_vertex(QVid(0), VertexId(1));
        r.bind_vertex(QVid(0), VertexId(2));
    }
}
