//! The bytecode VM: flat programs compiled from the plan IR, executed by
//! a resumable dispatch loop over the matcher's scratch arena.
//!
//! A [`Program`] is one component's [`crate::plan_ir::ComponentIr`]
//! flattened into a `Vec<Instruction>` plus a pooled filter table; a
//! [`QueryProgram`] bundles one program per weakly connected component
//! and is the artifact the `whyq-session` plan cache stores and the
//! parallel executor ships across threads (it is `Send + Sync` and
//! immutable after compilation).
//!
//! ## Execution model
//!
//! The *register file* is the existing scratch arena
//! (`Scratch::vslots`/`eslots` plus the generation-stamped occupancy
//! arrays): instruction operands are query vertex/edge slot numbers, so
//! binding a candidate writes the same slots the recursive interpreter
//! wrote and [`crate::engine::Matcher`]'s result materialization is
//! unchanged.
//!
//! [`next_match`] is the whole engine: a loop over a program counter and
//! an explicit frame stack, one frame per active *scan* instruction. A
//! scan instruction pushes a frame on first entry and advances its
//! cursor to the next acceptable candidate on re-entry; `Filter` tests
//! the top frame's candidate and jumps back to the owning scan on
//! failure; `Bind` commits the candidate to the register file (occupancy
//! checked here in injective mode); `Emit` suspends the machine and
//! yields. Resumption re-enters at the deepest frame's scan — exactly
//! the suspension shape [`crate::stream::MatchStream`] needs, so eager
//! (`find`/`count`), streamed, governed and [`crate::work::WorkUnit`]
//! execution all run this one loop.
//!
//! Candidate order and filter sequence mirror the retired recursive
//! engine exactly (occupancy stamps before predicate checks, `EdgeData`
//! loaded only when a filter needs it, the self-loop and
//! duplicate-direction skip rules of undirected edges included), so
//! programs compiled with any optimizer [`crate::optimize::PassSet`]
//! enumerate the same matches; with identical seed sources they
//! enumerate them in the same order. The budget is charged every
//! [`CHECK_INTERVAL`] VM transitions, preserving the governed-prefix
//! property of the interpreter.
//!
//! Instruction encodings and the compilation scheme are documented in
//! `docs/plan-ir.md`.

use crate::budget::{Budget, CHECK_INTERVAL};
use crate::compile::Compiled;
use crate::engine::Scratch;
use crate::plan_ir::{BindTarget, FilterTest, IrNode, PlanIr, SeedSpec};
use whyq_graph::{CsrTopology, EdgeId, PropertyGraph, VertexId};
use whyq_query::{PatternQuery, QEid, QVid};

/// A range into a [`Program`]'s pooled filter table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilterRange {
    /// First filter index.
    pub start: u16,
    /// Number of filters.
    pub len: u16,
}

/// What a [`Instruction::Bind`] commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindKind {
    /// Bind the component's seed vertex.
    Seed {
        /// Query vertex slot.
        vertex: u16,
    },
    /// Bind an expansion's edge and newly reached vertex.
    Expansion {
        /// Query edge slot.
        edge: u16,
        /// Query vertex slot of the reached endpoint.
        to: u16,
    },
    /// Bind a closing edge (endpoints already bound).
    Closure {
        /// Query edge slot.
        edge: u16,
    },
}

/// One VM instruction. Operands are query vertex/edge *slot numbers*
/// (`u16` — a query with more than 65 535 slots is rejected at
/// compilation), filter operands index the program's pooled filter
/// table via [`FilterRange`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// Produce seed candidates from the program's [`SeedSpec`]; `filters`
    /// are applied inline, `bind` commits accepted candidates in-loop.
    SeedScan {
        /// Query vertex slot being seeded.
        vertex: u16,
        /// Inline filters (pushdown pass).
        filters: FilterRange,
        /// Bind in-loop (dead-bind pass) instead of via a `Bind`.
        bind: bool,
    },
    /// Traverse a query edge from the bound `from` slot, producing
    /// `(edge, vertex)` candidates for (`edge`, `to`).
    Expand {
        /// Query edge slot being traversed.
        edge: u16,
        /// Bound endpoint slot the traversal leaves.
        from: u16,
        /// Endpoint slot the traversal reaches.
        to: u16,
        /// Walk only the admissible per-type CSR runs (pushdown pass)
        /// instead of the full adjacency.
        typed: bool,
        /// Inline filters.
        filters: FilterRange,
        /// Bind in-loop.
        bind: bool,
    },
    /// Bind a query edge whose endpoints are both bound, scanning the
    /// shorter endpoint adjacency for edges between the mapped vertices.
    Close {
        /// Query edge slot being closed.
        edge: u16,
        /// Walk only the admissible per-type CSR runs.
        typed: bool,
        /// Inline filters.
        filters: FilterRange,
        /// Bind in-loop.
        bind: bool,
    },
    /// Test the current scan candidate against one pooled filter; on
    /// failure jump back to the owning scan.
    Filter {
        /// Index into the pooled filter table.
        test: u16,
    },
    /// Commit the current scan candidate to the register file (occupancy
    /// checked in injective mode; on conflict jump back to the scan).
    Bind {
        /// What to bind.
        kind: BindKind,
    },
    /// Yield the complete assignment and suspend. Always last.
    Emit,
}

/// One component's compiled bytecode.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    code: Vec<Instruction>,
    /// Pooled filter table, referenced by [`FilterRange`] and
    /// [`Instruction::Filter`] operands.
    filters: Vec<FilterTest>,
    seed: SeedSpec,
    seed_vertex: QVid,
}

impl Program {
    /// The flat instruction sequence.
    pub fn code(&self) -> &[Instruction] {
        &self.code
    }

    /// The pooled filter table.
    pub fn filters(&self) -> &[FilterTest] {
        &self.filters
    }

    /// Where the component's seed candidates come from.
    pub fn seed(&self) -> &SeedSpec {
        &self.seed
    }

    /// The component's seed query vertex.
    pub fn seed_vertex(&self) -> QVid {
        self.seed_vertex
    }

    /// A copy of this program drawing its seed candidates from a
    /// different source. The instruction stream and filter table are
    /// shared verbatim — sound because seed selection never elides
    /// filters, so any covering seed source yields identical results
    /// (possibly at different cost). This is how a sibling plan derived
    /// by [`crate::derive_sibling`] swaps in a seed spec rebuilt for the
    /// changed predicate interval.
    pub fn with_seed(&self, seed: SeedSpec) -> Program {
        Program {
            code: self.code.clone(),
            filters: self.filters.clone(),
            seed,
            seed_vertex: self.seed_vertex,
        }
    }

    /// Stable content fingerprint of this program (instructions, filter
    /// table, seed source, seed vertex). Two programs with equal
    /// fingerprints enumerate rows in the same order, so cached *row
    /// lists* may only be replayed when fingerprints match — a derived
    /// sibling program can legitimately order rows differently from a
    /// fresh compile of the same query. Counts are order-independent and
    /// do not need this check.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let repr = format!(
            "{:?}|{:?}|{:?}|{:?}",
            self.code, self.filters, self.seed, self.seed_vertex
        );
        let mut h = FNV_OFFSET;
        for b in repr.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

/// The compiled bytecode of a whole query: one [`Program`] per weakly
/// connected component, in plan order. Empty exactly when the query is
/// unsatisfiable or has no vertices — executing it answers "no matches"
/// without touching the graph. This is what the session plan cache
/// memoizes per query signature.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryProgram {
    components: Vec<Program>,
}

impl QueryProgram {
    /// Compile verified IR into bytecode. Panics if a query slot exceeds
    /// the `u16` operand range (65 535 slots — far beyond any real
    /// pattern).
    pub fn from_ir(ir: &PlanIr) -> QueryProgram {
        QueryProgram {
            components: ir.components.iter().map(compile_component).collect(),
        }
    }

    /// Assemble a program from per-component programs, in plan order.
    /// Used by sibling-plan derivation to splice a patched component
    /// program next to components shared verbatim with the parent plan.
    pub fn from_components(components: Vec<Program>) -> QueryProgram {
        QueryProgram { components }
    }

    /// Per-component programs, in plan order.
    pub fn components(&self) -> &[Program] {
        &self.components
    }

    /// True when the query compiled to no programs (unsatisfiable or
    /// vertex-less).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

fn slot16(n: u32) -> u16 {
    n.try_into().expect("query slot exceeds u16 operand range")
}

fn compile_component(comp: &crate::plan_ir::ComponentIr) -> Program {
    let mut code = Vec::with_capacity(comp.nodes.len());
    let mut filters = Vec::new();
    let mut seed = SeedSpec::FullScan;
    let pool = |list: &[FilterTest], filters: &mut Vec<FilterTest>| -> FilterRange {
        let start = slot16(filters.len() as u32);
        filters.extend_from_slice(list);
        FilterRange {
            start,
            len: slot16(list.len() as u32),
        }
    };
    for node in &comp.nodes {
        match node {
            IrNode::SeedScan {
                vertex,
                spec,
                filters: fs,
                bind,
                ..
            } => {
                seed = spec.clone();
                code.push(Instruction::SeedScan {
                    vertex: slot16(vertex.0),
                    filters: pool(fs, &mut filters),
                    bind: *bind,
                });
            }
            IrNode::ExpandRun {
                edge,
                from,
                to,
                typed,
                filters: fs,
                bind,
                ..
            } => code.push(Instruction::Expand {
                edge: slot16(edge.0),
                from: slot16(from.0),
                to: slot16(to.0),
                typed: *typed,
                filters: pool(fs, &mut filters),
                bind: *bind,
            }),
            IrNode::CloseRun {
                edge,
                typed,
                filters: fs,
                bind,
            } => code.push(Instruction::Close {
                edge: slot16(edge.0),
                typed: *typed,
                filters: pool(fs, &mut filters),
                bind: *bind,
            }),
            IrNode::Filter { test } => {
                let idx = slot16(filters.len() as u32);
                filters.push(*test);
                code.push(Instruction::Filter { test: idx });
            }
            IrNode::Bind { target } => code.push(Instruction::Bind {
                kind: match *target {
                    BindTarget::Seed { vertex } => BindKind::Seed {
                        vertex: slot16(vertex.0),
                    },
                    BindTarget::Expansion { edge, to } => BindKind::Expansion {
                        edge: slot16(edge.0),
                        to: slot16(to.0),
                    },
                    BindTarget::Closure { edge } => BindKind::Closure {
                        edge: slot16(edge.0),
                    },
                },
            }),
            IrNode::Emit => code.push(Instruction::Emit),
        }
    }
    Program {
        code,
        filters,
        seed,
        seed_vertex: comp.seed_vertex,
    }
}

/// Where one program run draws its seed candidates from. The engine
/// resolves the program's [`SeedSpec`] (or a [`crate::work::WorkUnit`]'s
/// seed-list subrange) into one of these before starting the machine.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SeedSrc<'a> {
    /// The dense vertex-id range `[start, end)`.
    Range { start: u32, end: u32 },
    /// An explicit candidate list (index bucket, materialized union or
    /// intersection, or a work unit's slice).
    Slice(&'a [VertexId]),
}

impl SeedSrc<'_> {
    fn get(&self, pos: usize) -> Option<VertexId> {
        match *self {
            SeedSrc::Range { start, end } => {
                let v = start.checked_add(pos as u32)?;
                (v < end).then_some(VertexId(v))
            }
            SeedSrc::Slice(seeds) => seeds.get(pos).copied(),
        }
    }
}

/// Loop-invariant inputs of one component-program run.
pub(crate) struct VmCtx<'a> {
    pub(crate) g: &'a PropertyGraph,
    pub(crate) topo: &'a CsrTopology,
    pub(crate) q: &'a PatternQuery,
    pub(crate) compiled: &'a Compiled,
    pub(crate) prog: &'a Program,
    pub(crate) injective: bool,
    pub(crate) budget: &'a Budget,
    pub(crate) seeds: SeedSrc<'a>,
}

/// Resumable cursor of one active scan instruction.
#[derive(Debug, Clone)]
enum Cursor {
    /// Position in the seed source.
    Seed { pos: usize },
    /// Adjacency walk of an expansion: the anchor data vertex, the
    /// direction phase (0 = forward, 1 = backward), the per-type run
    /// index and the position inside the current run. The admissible
    /// directions and the anchor's role are loop invariants, looked up
    /// once at frame push; `ext`/`resolved` cache the current run's
    /// absolute CSR extent so every resume reslices in O(1) instead of
    /// re-running the offset (and typed binary-search) lookups.
    Expand {
        anchor: VertexId,
        phase: u8,
        ty: usize,
        pos: usize,
        fwd: bool,
        bwd: bool,
        from_is_src: bool,
        ext: (u32, u32),
        resolved: bool,
    },
    /// Adjacency walk of a close: the mapped endpoint pair plus the same
    /// phase/run/position cursor, cached direction flags, and the cached
    /// choice of scanned arena (`scan_out`), extent and wanted opposite
    /// endpoint of the current run.
    Close {
        ms: VertexId,
        mt: VertexId,
        phase: u8,
        ty: usize,
        pos: usize,
        fwd: bool,
        bwd: bool,
        ext: (u32, u32),
        scan_out: bool,
        want: VertexId,
        resolved: bool,
    },
}

/// One active scan: the instruction it executes, whether its candidate
/// is currently committed to the register file, the candidate itself and
/// the scan cursor.
#[derive(Debug, Clone)]
struct Frame {
    pc: usize,
    bound: bool,
    de: EdgeId,
    dv: VertexId,
    cur: Cursor,
}

/// The suspendable machine state of one component-program run: a frame
/// *file* — one preallocated slot per scan instruction, since a linear
/// program's scans activate in a fixed nesting order — plus the current
/// activation depth and started/done markers. Entering a scan overwrites
/// its slot in place; backtracking just decrements `depth`. No `Vec`
/// push/pop (or capacity check) ever runs on the transition path.
/// `Default` is the pristine not-yet-started machine; the file is sized
/// lazily on first use against the program being run.
#[derive(Debug, Clone, Default)]
pub(crate) struct VmState {
    frames: Vec<Frame>,
    depth: usize,
    started: bool,
    done: bool,
}

impl VmState {
    /// Reset to the pristine state, keeping the frame-file allocation.
    pub(crate) fn reset(&mut self) {
        self.depth = 0;
        self.started = false;
        self.done = false;
    }

    /// Size the frame file for `prog` (one slot per scan instruction).
    /// Cheap after the first call: the file only ever grows.
    fn ensure_frames(&mut self, prog: &Program) {
        let scans = prog
            .code()
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instruction::SeedScan { .. }
                        | Instruction::Expand { .. }
                        | Instruction::Close { .. }
                )
            })
            .count();
        if self.frames.len() < scans {
            self.frames.resize(
                scans,
                Frame {
                    pc: 0,
                    bound: false,
                    de: EdgeId(0),
                    dv: VertexId(0),
                    cur: Cursor::Seed { pos: 0 },
                },
            );
        }
    }
}

/// Outcome of advancing one scan frame.
enum Adv {
    /// A candidate was accepted (and bound, for fused scans).
    Found,
    /// The scan ran out of candidates.
    Exhausted,
    /// The budget tripped mid-scan; abort the run (sticky).
    Tripped,
}

#[inline]
fn tick(cx: &VmCtx<'_>, st: &mut Scratch) -> bool {
    st.ticks += 1;
    !(st.ticks.is_multiple_of(CHECK_INTERVAL as u64)
        && cx.budget.charge(CHECK_INTERVAL as u64).is_err())
}

/// Apply one pooled filter to a candidate `(de, dv)`.
#[inline]
fn test_filter(cx: &VmCtx<'_>, test: FilterTest, de: EdgeId, dv: VertexId) -> bool {
    match test {
        FilterTest::VertexPreds(v) => cx.compiled.vertex(v).accepts(cx.g, dv),
        FilterTest::EdgeType(e) => match &cx.compiled.edge(e).types {
            Some(tys) => tys.contains(&cx.g.edge(de).ty),
            None => true,
        },
        FilterTest::EdgeAttrs(e) => {
            let ce = cx.compiled.edge(e);
            !ce.needs_edge_data() || ce.accepts_attrs(&cx.g.edge(de).attrs)
        }
    }
}

/// Resolve a [`FilterRange`] into its slice of the pooled filter table —
/// once per advance call, so the per-candidate loop tests a plain slice.
#[inline]
fn filter_slice(prog: &Program, range: FilterRange) -> &[FilterTest] {
    &prog.filters[range.start as usize..(range.start + range.len) as usize]
}

#[inline]
fn inline_filters(cx: &VmCtx<'_>, fs: &[FilterTest], de: EdgeId, dv: VertexId) -> bool {
    fs.iter().all(|&t| test_filter(cx, t, de, dv))
}

/// Run the machine until the next complete match. Returns `true` with
/// the full assignment committed to `st`'s slot arrays (read it with
/// `Scratch::to_result`, or just count); `false` when the program is
/// exhausted *or* the budget tripped — distinguish via
/// [`Budget::termination`]. The machine suspends on emission; calling
/// again resumes by advancing the deepest scan. After the final `false`
/// (or when abandoning a run early) call [`unwind`] to release the
/// registers.
pub(crate) fn next_match(cx: &VmCtx<'_>, st: &mut Scratch, vs: &mut VmState) -> bool {
    run(cx, st, vs, None)
}

/// Run the machine to completion, delivering every match through `emit`
/// inline — the eager twin of [`next_match`] for `count`/`find`, where
/// suspending (and later re-entering) the dispatch loop once per match
/// would dominate high-cardinality result sets. The machine stops when
/// the program exhausts, the budget trips, or `emit` returns `false`
/// (state is left suspended exactly as after a `next_match` emission, so
/// [`unwind`] releases the registers either way).
pub(crate) fn run_to_end(
    cx: &VmCtx<'_>,
    st: &mut Scratch,
    vs: &mut VmState,
    emit: &mut dyn FnMut(&Scratch) -> bool,
) {
    run(cx, st, vs, Some(emit));
}

/// The dispatch loop behind [`next_match`] (`emit: None` — return on
/// each match) and [`run_to_end`] (`emit: Some` — deliver matches inline
/// and keep going until one is declined).
fn run(
    cx: &VmCtx<'_>,
    st: &mut Scratch,
    vs: &mut VmState,
    mut emit: Option<&mut dyn FnMut(&Scratch) -> bool>,
) -> bool {
    if vs.done || cx.budget.poll().is_err() {
        return false;
    }
    let code = cx.prog.code();
    vs.ensure_frames(cx.prog);
    // `fresh` distinguishes the two ways control reaches a scan
    // instruction: falling through from the previous instruction (a new
    // activation — initialize the scan's frame slot) versus backtracking
    // or resuming (re-advance the existing activation). Tracking it as a
    // dispatch-local flag avoids inspecting the frame file per step.
    let mut fresh;
    let mut pc: usize = if !vs.started {
        vs.started = true;
        fresh = true;
        0
    } else {
        if vs.depth == 0 {
            vs.done = true;
            return false;
        }
        fresh = false;
        vs.frames[vs.depth - 1].pc
    };
    // No budget tick here: every candidate a scan produces is ticked
    // inside its advance loop, and the O(1) Filter/Bind/Emit steps ride
    // on the tick of the candidate that reached them — charging per
    // dispatch as well would double-count each transition relative to
    // the retired interpreter.
    loop {
        match code[pc] {
            Instruction::SeedScan {
                vertex,
                filters,
                bind,
            } => {
                if fresh {
                    let f = &mut vs.frames[vs.depth];
                    f.pc = pc;
                    f.bound = false;
                    f.cur = Cursor::Seed { pos: 0 };
                    vs.depth += 1;
                }
                match advance_seed(cx, st, &mut vs.frames[vs.depth - 1], vertex, filters, bind) {
                    Adv::Found => {
                        pc += 1;
                        fresh = true;
                    }
                    Adv::Tripped => return false,
                    Adv::Exhausted => {
                        vs.depth -= 1;
                        if vs.depth == 0 {
                            vs.done = true;
                            return false;
                        }
                        pc = vs.frames[vs.depth - 1].pc;
                        fresh = false;
                    }
                }
            }
            Instruction::Expand {
                edge,
                from,
                to,
                typed,
                filters,
                bind,
            } => {
                if fresh {
                    let anchor =
                        st.vslots[from as usize].expect("program binds `from` before Expand");
                    let qe = cx.q.edge(QEid(edge as u32)).expect("live");
                    let f = &mut vs.frames[vs.depth];
                    f.pc = pc;
                    f.bound = false;
                    f.cur = Cursor::Expand {
                        anchor,
                        phase: 0,
                        ty: 0,
                        pos: 0,
                        fwd: qe.directions.forward,
                        bwd: qe.directions.backward,
                        from_is_src: QVid(from as u32) == qe.src,
                        ext: (0, 0),
                        resolved: false,
                    };
                    vs.depth += 1;
                }
                match advance_expand(
                    cx,
                    st,
                    &mut vs.frames[vs.depth - 1],
                    edge,
                    to,
                    typed,
                    filters,
                    bind,
                ) {
                    Adv::Found => {
                        pc += 1;
                        fresh = true;
                    }
                    Adv::Tripped => return false,
                    Adv::Exhausted => {
                        vs.depth -= 1;
                        if vs.depth == 0 {
                            vs.done = true;
                            return false;
                        }
                        pc = vs.frames[vs.depth - 1].pc;
                        fresh = false;
                    }
                }
            }
            Instruction::Close {
                edge,
                typed,
                filters,
                bind,
            } => {
                if fresh {
                    let qe = cx.q.edge(QEid(edge as u32)).expect("live");
                    let ms = st.vslots[qe.src.0 as usize].expect("bound");
                    let mt = st.vslots[qe.dst.0 as usize].expect("bound");
                    let f = &mut vs.frames[vs.depth];
                    f.pc = pc;
                    f.bound = false;
                    f.cur = Cursor::Close {
                        ms,
                        mt,
                        phase: 0,
                        ty: 0,
                        pos: 0,
                        fwd: qe.directions.forward,
                        bwd: qe.directions.backward,
                        ext: (0, 0),
                        scan_out: true,
                        want: VertexId(0),
                        resolved: false,
                    };
                    vs.depth += 1;
                }
                match advance_close(
                    cx,
                    st,
                    &mut vs.frames[vs.depth - 1],
                    edge,
                    typed,
                    filters,
                    bind,
                ) {
                    Adv::Found => {
                        pc += 1;
                        fresh = true;
                    }
                    Adv::Tripped => return false,
                    Adv::Exhausted => {
                        vs.depth -= 1;
                        if vs.depth == 0 {
                            vs.done = true;
                            return false;
                        }
                        pc = vs.frames[vs.depth - 1].pc;
                        fresh = false;
                    }
                }
            }
            Instruction::Filter { test } => {
                let f = &vs.frames[vs.depth - 1];
                if test_filter(cx, cx.prog.filters()[test as usize], f.de, f.dv) {
                    pc += 1;
                } else {
                    pc = f.pc;
                    fresh = false;
                }
            }
            Instruction::Bind { kind } => {
                let f = &mut vs.frames[vs.depth - 1];
                let ok = match kind {
                    BindKind::Seed { vertex } => {
                        // the seed is the first binding of its component,
                        // so no occupancy check (injectivity is
                        // per-component)
                        #[cfg(feature = "fault-inject")]
                        crate::fault::on_seed_bound();
                        st.vslots[vertex as usize] = Some(f.dv);
                        if cx.injective {
                            st.set_vertex_used(f.dv, true);
                        }
                        true
                    }
                    BindKind::Expansion { edge, to } => {
                        if cx.injective && (st.vertex_used(f.dv) || st.edge_used(f.de)) {
                            false
                        } else {
                            st.vslots[to as usize] = Some(f.dv);
                            st.eslots[edge as usize] = Some(f.de);
                            if cx.injective {
                                st.set_vertex_used(f.dv, true);
                                st.set_edge_used(f.de, true);
                            }
                            true
                        }
                    }
                    BindKind::Closure { edge } => {
                        if cx.injective && st.edge_used(f.de) {
                            false
                        } else {
                            st.eslots[edge as usize] = Some(f.de);
                            if cx.injective {
                                st.set_edge_used(f.de, true);
                            }
                            true
                        }
                    }
                };
                if ok {
                    f.bound = true;
                    pc += 1;
                } else {
                    pc = f.pc;
                    fresh = false;
                }
            }
            Instruction::Emit => match emit.as_mut() {
                None => return true,
                Some(e) => {
                    if !e(st) {
                        return true;
                    }
                    // continue as a resume would: re-advance the deepest
                    // scan for the next assignment
                    pc = vs.frames[vs.depth - 1].pc;
                    fresh = false;
                }
            },
        }
    }
}

/// Release every register the machine still holds and mark it done. Must
/// run after a component run ends — exhausted, tripped or abandoned —
/// so stale bindings never leak into a later component's
/// `Scratch::to_result`.
pub(crate) fn unwind(cx: &VmCtx<'_>, st: &mut Scratch, vs: &mut VmState) {
    while vs.depth > 0 {
        vs.depth -= 1;
        let f = vs.frames[vs.depth].clone();
        if f.bound {
            unbind(cx, st, &f);
        }
    }
    vs.done = true;
}

/// Release one frame's registers (slot `take` + occupancy unstamp).
fn unbind(cx: &VmCtx<'_>, st: &mut Scratch, f: &Frame) {
    match cx.prog.code()[f.pc] {
        Instruction::SeedScan { vertex, .. } => {
            if let Some(dv) = st.vslots[vertex as usize].take() {
                if cx.injective {
                    st.set_vertex_used(dv, false);
                }
            }
        }
        Instruction::Expand { edge, to, .. } => {
            if let Some(de) = st.eslots[edge as usize].take() {
                if cx.injective {
                    st.set_edge_used(de, false);
                }
            }
            if let Some(dv) = st.vslots[to as usize].take() {
                if cx.injective {
                    st.set_vertex_used(dv, false);
                }
            }
        }
        Instruction::Close { edge, .. } => {
            if let Some(de) = st.eslots[edge as usize].take() {
                if cx.injective {
                    st.set_edge_used(de, false);
                }
            }
        }
        _ => unreachable!("frames belong to scan instructions"),
    }
}

fn advance_seed(
    cx: &VmCtx<'_>,
    st: &mut Scratch,
    f: &mut Frame,
    vertex: u16,
    filters: FilterRange,
    bind: bool,
) -> Adv {
    if f.bound {
        if let Some(dv) = st.vslots[vertex as usize].take() {
            if cx.injective {
                st.set_vertex_used(dv, false);
            }
        }
        f.bound = false;
    }
    let Cursor::Seed { pos } = &mut f.cur else {
        unreachable!("seed frame carries a seed cursor")
    };
    let fs = filter_slice(cx.prog, filters);
    loop {
        let Some(dv) = cx.seeds.get(*pos) else {
            return Adv::Exhausted;
        };
        *pos += 1;
        if !inline_filters(cx, fs, EdgeId(0), dv) {
            continue;
        }
        // one budget tick per accepted candidate — the DFS-transition
        // cadence of the retired interpreter (rejected candidates are
        // plain scan work, charged via the transition that consumed them)
        if !tick(cx, st) {
            return Adv::Tripped;
        }
        f.dv = dv;
        if bind {
            #[cfg(feature = "fault-inject")]
            crate::fault::on_seed_bound();
            st.vslots[vertex as usize] = Some(dv);
            if cx.injective {
                st.set_vertex_used(dv, true);
            }
            f.bound = true;
        }
        return Adv::Found;
    }
}

#[allow(clippy::too_many_arguments)]
fn advance_expand(
    cx: &VmCtx<'_>,
    st: &mut Scratch,
    f: &mut Frame,
    edge: u16,
    to: u16,
    typed: bool,
    filters: FilterRange,
    bind: bool,
) -> Adv {
    if f.bound {
        if let Some(de) = st.eslots[edge as usize].take() {
            if cx.injective {
                st.set_edge_used(de, false);
            }
        }
        if let Some(dv) = st.vslots[to as usize].take() {
            if cx.injective {
                st.set_vertex_used(dv, false);
            }
        }
        f.bound = false;
    }
    let Cursor::Expand {
        anchor,
        phase,
        ty,
        pos,
        fwd,
        bwd,
        from_is_src,
        ext,
        resolved,
    } = &mut f.cur
    else {
        unreachable!("expand frame carries an expand cursor")
    };
    let (anchor, fwd, bwd, from_is_src) = (*anchor, *fwd, *bwd, *from_is_src);
    let fs = filter_slice(cx.prog, filters);
    loop {
        if *phase > 1 {
            return Adv::Exhausted;
        }
        let dir_on = if *phase == 0 { fwd } else { bwd };
        if !dir_on {
            *phase += 1;
            *ty = 0;
            *pos = 0;
            *resolved = false;
            continue;
        }
        // forward pass: the anchor plays the data edge's source role iff
        // it is the query edge's source; the backward pass mirrors it
        let along_src = (*phase == 0) == from_is_src;
        // a self-loop at the anchor sits in both adjacency lists — the
        // backward pass skips the ones forward already tried
        let skip_self_loops = *phase == 1 && fwd;
        if !*resolved {
            let r = if typed {
                let ce = cx.compiled.edge(QEid(edge as u32));
                let tys = ce.types.as_deref().expect("typed scan on typed edge");
                if *ty >= tys.len() {
                    *phase += 1;
                    *ty = 0;
                    *pos = 0;
                    continue;
                }
                let t = tys[*ty];
                if along_src {
                    cx.topo.out_extent_of(anchor, t)
                } else {
                    cx.topo.in_extent_of(anchor, t)
                }
            } else {
                if *ty >= 1 {
                    *phase += 1;
                    *ty = 0;
                    *pos = 0;
                    continue;
                }
                if along_src {
                    cx.topo.out_extent(anchor)
                } else {
                    cx.topo.in_extent(anchor)
                }
            };
            *ext = (r.start, r.end);
            *resolved = true;
            *pos = 0;
        }
        let list = if along_src {
            cx.topo.out_slice(ext.0..ext.1)
        } else {
            cx.topo.in_slice(ext.0..ext.1)
        };
        let mut p = *pos;
        for (&de, &dv) in list.edges[p..].iter().zip(&list.others[p..]) {
            p += 1;
            if skip_self_loops && dv == anchor {
                continue;
            }
            if bind && cx.injective && (st.vertex_used(dv) || st.edge_used(de)) {
                continue;
            }
            if !inline_filters(cx, fs, de, dv) {
                continue;
            }
            *pos = p;
            if !tick(cx, st) {
                return Adv::Tripped;
            }
            f.de = de;
            f.dv = dv;
            if bind {
                st.vslots[to as usize] = Some(dv);
                st.eslots[edge as usize] = Some(de);
                if cx.injective {
                    st.set_vertex_used(dv, true);
                    st.set_edge_used(de, true);
                }
                f.bound = true;
            }
            return Adv::Found;
        }
        *ty += 1;
        *pos = 0;
        *resolved = false;
    }
}

#[allow(clippy::too_many_arguments)]
fn advance_close(
    cx: &VmCtx<'_>,
    st: &mut Scratch,
    f: &mut Frame,
    edge: u16,
    typed: bool,
    filters: FilterRange,
    bind: bool,
) -> Adv {
    if f.bound {
        if let Some(de) = st.eslots[edge as usize].take() {
            if cx.injective {
                st.set_edge_used(de, false);
            }
        }
        f.bound = false;
    }
    let Cursor::Close {
        ms,
        mt,
        phase,
        ty,
        pos,
        fwd,
        bwd,
        ext,
        scan_out,
        want,
        resolved,
    } = &mut f.cur
    else {
        unreachable!("close frame carries a close cursor")
    };
    let (ms, mt, fwd, bwd) = (*ms, *mt, *fwd, *bwd);
    let fs = filter_slice(cx.prog, filters);
    loop {
        if *phase > 1 {
            return Adv::Exhausted;
        }
        let dir_on = if *phase == 0 {
            fwd
        } else {
            // when both endpoints map to one data vertex the forward pass
            // already enumerated every self-loop there
            bwd && !(fwd && ms == mt)
        };
        if !dir_on {
            *phase += 1;
            *ty = 0;
            *pos = 0;
            *resolved = false;
            continue;
        }
        let ends = if *phase == 0 { (ms, mt) } else { (mt, ms) };
        if !*resolved {
            let (r_out, r_in) = if typed {
                let ce = cx.compiled.edge(QEid(edge as u32));
                let tys = ce.types.as_deref().expect("typed scan on typed edge");
                if *ty >= tys.len() {
                    *phase += 1;
                    *ty = 0;
                    *pos = 0;
                    continue;
                }
                let t = tys[*ty];
                (
                    cx.topo.out_extent_of(ends.0, t),
                    cx.topo.in_extent_of(ends.1, t),
                )
            } else {
                if *ty >= 1 {
                    *phase += 1;
                    *ty = 0;
                    *pos = 0;
                    continue;
                }
                (cx.topo.out_extent(ends.0), cx.topo.in_extent(ends.1))
            };
            // scan whichever slice of the two endpoints is shorter; the
            // deterministic choice keeps resumption stable
            let so = r_out.end - r_out.start <= r_in.end - r_in.start;
            let r = if so { r_out } else { r_in };
            *ext = (r.start, r.end);
            *scan_out = so;
            *want = if so { ends.1 } else { ends.0 };
            *resolved = true;
            *pos = 0;
        }
        let list = if *scan_out {
            cx.topo.out_slice(ext.0..ext.1)
        } else {
            cx.topo.in_slice(ext.0..ext.1)
        };
        let want = *want;
        let mut p = *pos;
        for (&de, &other) in list.edges[p..].iter().zip(&list.others[p..]) {
            p += 1;
            if other != want {
                continue;
            }
            if bind && cx.injective && st.edge_used(de) {
                continue;
            }
            if !inline_filters(cx, fs, de, f.dv) {
                continue;
            }
            *pos = p;
            if !tick(cx, st) {
                return Adv::Tripped;
            }
            f.de = de;
            if bind {
                st.eslots[edge as usize] = Some(de);
                if cx.injective {
                    st.set_edge_used(de, true);
                }
                f.bound = true;
            }
            return Adv::Found;
        }
        *ty += 1;
        *pos = 0;
        *resolved = false;
    }
}
