//! Resource governance: deadlines, step budgets and cooperative
//! cancellation for pattern evaluation.
//!
//! Worst-case pattern evaluation is intractable (the search space of the
//! backtracking matcher is exponential in the query size), so a serving
//! layer needs *admission control*: every search must be refusable up
//! front, cancellable mid-flight, and bounded in wall-clock time. This
//! module provides the one shared vocabulary for all three:
//!
//! * [`Budget`] — an immutable, cheaply clonable handle bundling an
//!   optional **deadline** (absolute [`Instant`]), an optional **step
//!   budget** (a count of DFS transitions), and an optional external
//!   [`CancelToken`]. The default budget is *unlimited* and costs one
//!   `Option` check per probe.
//! * [`CancelToken`] — an `Arc<AtomicBool>` flag an operator (or another
//!   thread) flips to request cooperative cancellation.
//! * [`Termination`] — how an execution ended: ran to completion, or was
//!   cut short by the deadline, a cancel, or step exhaustion.
//!
//! ## Semantics
//!
//! A `Budget` is **single-run state**: it records the first limit that
//! tripped in a sticky cell, and every later [`Budget::charge`]/
//! [`Budget::poll`] on the same budget (or any clone — clones share
//! state) fails immediately with the same [`Termination`]. Create a fresh
//! budget per logical request; share clones of it across all the
//! evaluations that serve that request so they stop together.
//!
//! Because the trip state lives *in the budget*, governed execution APIs
//! keep their signatures: run the search, then ask
//! [`Budget::termination`] whether the produced results are complete or a
//! partial (prefix-consistent) subset.
//!
//! ## Granularity and overhead
//!
//! The matcher DFS charges the budget in blocks of [`CHECK_INTERVAL`]
//! transitions, so a deadline or cancel is observed within at most one
//! block of extra work and `Instant::now` is off the per-step hot path.
//! Step budgets therefore trip at block granularity: a budget of
//! `Budget::steps(100)` stops after the first block (1024 steps), not
//! after exactly 100. Long-running *loops* (the relax frontier, MCS path
//! traversal, baseline samplers) additionally [`Budget::poll`] between
//! iterations, so cancellation latency is bounded by one matcher block or
//! one loop iteration, whichever the execution is inside.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many DFS transitions the matcher executes between budget charges.
///
/// Power of two so the tick check compiles to a mask test. Chosen so that
/// even pathological per-step costs keep deadline observation latency in
/// the tens of microseconds while the `Instant::now` syscall amortizes to
/// noise (< 5% overhead is pinned by the `matcher/deadline-overhead`
/// bench).
pub const CHECK_INTERVAL: u32 = 1024;

/// How a governed execution ended.
///
/// `Complete` is the only value for which produced results are the full
/// answer; every other variant tags results as a partial,
/// prefix-consistent subset of what the ungoverned run would return.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Termination {
    /// The search ran to completion; results are exact.
    Complete,
    /// The wall-clock deadline passed mid-search.
    DeadlineExceeded,
    /// The external [`CancelToken`] was flipped.
    Cancelled,
    /// The step budget was consumed (or exhaustion was fault-injected).
    BudgetExhausted,
}

impl Termination {
    /// True iff results produced under this termination are complete.
    pub fn is_complete(self) -> bool {
        matches!(self, Termination::Complete)
    }

    fn code(self) -> u8 {
        match self {
            Termination::Complete => 0,
            Termination::DeadlineExceeded => 1,
            Termination::Cancelled => 2,
            Termination::BudgetExhausted => 3,
        }
    }

    fn from_code(code: u8) -> Termination {
        match code {
            1 => Termination::DeadlineExceeded,
            2 => Termination::Cancelled,
            3 => Termination::BudgetExhausted,
            _ => Termination::Complete,
        }
    }
}

impl fmt::Display for Termination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Termination::Complete => "complete",
            Termination::DeadlineExceeded => "deadline exceeded",
            Termination::Cancelled => "cancelled",
            Termination::BudgetExhausted => "budget exhausted",
        })
    }
}

/// A shared cancellation flag.
///
/// Clones share the flag: flip it from any thread with
/// [`CancelToken::cancel`] and every budget built
/// [`Budget::with_cancel`]\(token) observes the request at its next
/// charge or poll. Cancellation is cooperative and one-way — there is no
/// un-cancel.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation of every execution governed by this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[derive(Debug)]
struct BudgetInner {
    deadline: Option<Instant>,
    /// Remaining steps; signed so concurrent over-charge saturates
    /// negative instead of wrapping.
    steps: Option<AtomicI64>,
    cancel: Option<CancelToken>,
    /// Sticky first-trip cell: 0 = running, else a `Termination` code.
    tripped: AtomicU8,
}

/// A deadline / step-budget / cancellation bundle governing one logical
/// request.
///
/// See the [module docs](self) for the sharing and stickiness semantics.
/// The default ([`Budget::unlimited`]) imposes no limits and makes every
/// charge a single branch, so ungoverned execution pays essentially
/// nothing.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    inner: Option<Arc<BudgetInner>>,
}

impl Budget {
    /// No limits: every charge succeeds, [`Budget::termination`] is
    /// always [`Termination::Complete`].
    pub fn unlimited() -> Self {
        Budget { inner: None }
    }

    /// A wall-clock budget: trips once `timeout` has elapsed from *now*.
    pub fn deadline(timeout: Duration) -> Self {
        Budget::unlimited().with_deadline(timeout)
    }

    /// A step budget: trips once `steps` DFS transitions (or explicit
    /// unit charges) have been consumed. Observed at [`CHECK_INTERVAL`]
    /// granularity inside the matcher.
    pub fn steps(steps: u64) -> Self {
        Budget::unlimited().with_steps(steps)
    }

    /// A budget governed only by an external cancel token.
    pub fn cancelled_by(token: &CancelToken) -> Self {
        Budget::unlimited().with_cancel(token)
    }

    /// Add (or replace) a deadline of `timeout` from now.
    ///
    /// Combinators rebuild the budget, so apply them *before* sharing
    /// clones — clones made earlier do not see the new limit.
    pub fn with_deadline(self, timeout: Duration) -> Self {
        self.rebuild(|inner| inner.deadline = Instant::now().checked_add(timeout))
    }

    /// Add (or replace) a step budget.
    pub fn with_steps(self, steps: u64) -> Self {
        self.rebuild(|inner| inner.steps = Some(AtomicI64::new(steps.min(i64::MAX as u64) as i64)))
    }

    /// Attach an external cancel token (clones of `token` share the flag).
    pub fn with_cancel(self, token: &CancelToken) -> Self {
        let token = token.clone();
        self.rebuild(move |inner| inner.cancel = Some(token))
    }

    fn rebuild(self, apply: impl FnOnce(&mut BudgetInner)) -> Self {
        let mut inner = match self.inner {
            Some(prev) => BudgetInner {
                deadline: prev.deadline,
                steps: prev
                    .steps
                    .as_ref()
                    .map(|s| AtomicI64::new(s.load(Ordering::Relaxed))),
                cancel: prev.cancel.clone(),
                tripped: AtomicU8::new(prev.tripped.load(Ordering::Relaxed)),
            },
            None => BudgetInner {
                deadline: None,
                steps: None,
                cancel: None,
                tripped: AtomicU8::new(0),
            },
        };
        apply(&mut inner);
        Budget {
            inner: Some(Arc::new(inner)),
        }
    }

    /// True when this budget imposes no limits at all.
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// Consume `steps` units of work and check every limit. `Err` carries
    /// the (sticky) termination cause; once a budget has tripped, every
    /// subsequent charge fails with the same cause.
    pub fn charge(&self, steps: u64) -> Result<(), Termination> {
        let Some(inner) = self.inner.as_deref() else {
            return Ok(());
        };
        let code = inner.tripped.load(Ordering::Acquire);
        if code != 0 {
            return Err(Termination::from_code(code));
        }
        #[cfg(feature = "fault-inject")]
        if crate::fault::charge_exhausted() {
            return Err(self.trip(Termination::BudgetExhausted));
        }
        if let Some(cancel) = &inner.cancel {
            if cancel.is_cancelled() {
                return Err(self.trip(Termination::Cancelled));
            }
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Err(self.trip(Termination::DeadlineExceeded));
            }
        }
        if steps > 0 {
            if let Some(remaining) = &inner.steps {
                let steps = steps.min(i64::MAX as u64) as i64;
                if remaining.fetch_sub(steps, Ordering::AcqRel) < steps {
                    return Err(self.trip(Termination::BudgetExhausted));
                }
            }
        }
        Ok(())
    }

    /// Check every limit without consuming steps. Loops that do
    /// non-matcher work (relaxation, path traversal, sampling) call this
    /// between iterations.
    pub fn poll(&self) -> Result<(), Termination> {
        self.charge(0)
    }

    /// Trip this budget with an explicit cause (first trip wins; returns
    /// the cause actually recorded). Used by fault injection and by
    /// executors that want to stop sibling work units after an error.
    pub fn trip(&self, cause: Termination) -> Termination {
        let Some(inner) = self.inner.as_deref() else {
            return Termination::Complete;
        };
        match inner
            .tripped
            .compare_exchange(0, cause.code(), Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => cause,
            Err(prev) => Termination::from_code(prev),
        }
    }

    /// How the governed execution ended *so far*: [`Termination::Complete`]
    /// while no limit has tripped, else the sticky first cause. Inspect
    /// this after running a search to learn whether its results are exact
    /// or a partial prefix.
    pub fn termination(&self) -> Termination {
        match self.inner.as_deref() {
            None => Termination::Complete,
            Some(inner) => Termination::from_code(inner.tripped.load(Ordering::Acquire)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..10 {
            assert_eq!(b.charge(u64::MAX), Ok(()));
        }
        assert_eq!(b.termination(), Termination::Complete);
        // tripping an unlimited budget is a no-op
        assert_eq!(b.trip(Termination::Cancelled), Termination::Complete);
        assert_eq!(b.termination(), Termination::Complete);
    }

    #[test]
    fn step_budget_trips_and_sticks() {
        let b = Budget::steps(100);
        assert!(!b.is_unlimited());
        assert_eq!(b.charge(50), Ok(()));
        assert_eq!(b.charge(49), Ok(()));
        assert_eq!(b.charge(10), Err(Termination::BudgetExhausted));
        // sticky: even a zero-cost poll now fails with the same cause
        assert_eq!(b.poll(), Err(Termination::BudgetExhausted));
        assert_eq!(b.termination(), Termination::BudgetExhausted);
    }

    #[test]
    fn elapsed_deadline_trips_immediately() {
        let b = Budget::deadline(Duration::ZERO);
        assert_eq!(b.poll(), Err(Termination::DeadlineExceeded));
        assert_eq!(b.termination(), Termination::DeadlineExceeded);
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let b = Budget::deadline(Duration::from_secs(3600));
        assert_eq!(b.charge(1_000_000), Ok(()));
        assert_eq!(b.termination(), Termination::Complete);
    }

    #[test]
    fn cancel_token_is_shared_by_clones() {
        let token = CancelToken::new();
        let b = Budget::cancelled_by(&token);
        let clone = b.clone();
        assert_eq!(clone.poll(), Ok(()));
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(b.poll(), Err(Termination::Cancelled));
        // clones share the sticky state
        assert_eq!(clone.termination(), Termination::Cancelled);
    }

    #[test]
    fn first_trip_wins() {
        let b = Budget::steps(1000);
        assert_eq!(
            b.trip(Termination::DeadlineExceeded),
            Termination::DeadlineExceeded
        );
        assert_eq!(
            b.trip(Termination::Cancelled),
            Termination::DeadlineExceeded
        );
        assert_eq!(b.termination(), Termination::DeadlineExceeded);
    }

    #[test]
    fn combinators_stack_and_rebuild() {
        let token = CancelToken::new();
        let b = Budget::steps(10_000)
            .with_deadline(Duration::from_secs(3600))
            .with_cancel(&token);
        assert_eq!(b.charge(1), Ok(()));
        token.cancel();
        assert_eq!(b.charge(1), Err(Termination::Cancelled));
    }
}
