//! The explicit plan IR between the greedy planner and the bytecode VM.
//!
//! [`crate::compile::build_plans`] produces one [`ComponentPlan`] per
//! weakly connected query component — a list of *what to bind in which
//! order*. This module lowers those plans into a finer representation in
//! which every per-candidate test is an explicit node: scans
//! ([`IrNode::SeedScan`], [`IrNode::ExpandRun`], [`IrNode::CloseRun`])
//! produce candidate elements, [`IrNode::Filter`] nodes test them,
//! [`IrNode::Bind`] nodes commit them to the register file (the scratch
//! slot arrays) and a final [`IrNode::Emit`] yields the complete
//! assignment.
//!
//! The naive lowering produced by [`lower`] is deliberately literal: seed
//! scans read the full vertex arena ([`SeedSpec::FullScan`]), expansion
//! and closing scans walk untyped adjacency, and every predicate —
//! including trivially true ones — is a standalone `Filter` node. That
//! gives the optimizer passes of [`crate::optimize`] something meaningful
//! to do (predicate pushdown, dead-bind elimination, index-aware seed
//! selection), and gives the equivalence test suite a genuinely
//! *unoptimized* baseline to compare each pass against.
//!
//! Every scan node carries the selectivity estimate the planner ordered
//! by ([`crate::compile::estimate_candidates`], threaded through
//! [`crate::compile::build_plans_est`]); the seed-selection pass refines
//! these when it finds a cheaper candidate source.
//!
//! Structural invariants of the IR are specified and enforced by
//! [`crate::verify::verify_ir`]; the instruction encoding the IR compiles
//! into lives in [`crate::vm`]. The full node set, invariants and a worked
//! lowering example are documented in `docs/plan-ir.md`.

use crate::compile::{Compiled, ComponentPlan, Step};
use whyq_graph::Value;
use whyq_query::{QEid, QVid};

/// Where a seed scan draws its candidate vertices from.
///
/// All four sources enumerate candidates in ascending [`whyq_graph::VertexId`]
/// order: index buckets are built by an ascending arena scan, and unions
/// and intersections of ascending lists are kept ascending. Seed-source
/// choice therefore never perturbs result order — only how many
/// candidates the scan has to reject.
#[derive(Debug, Clone, PartialEq)]
pub enum SeedSpec {
    /// Scan the whole vertex arena.
    FullScan,
    /// Stream one bucket of the `index`-th attached attribute index
    /// (the bucket keyed by `key`).
    Bucket {
        /// Position of the index in the matcher's attached-index list.
        index: usize,
        /// The probe value selecting the bucket.
        key: Value,
    },
    /// The sorted, deduplicated union of several buckets of one index —
    /// a multi-value disjunction (`OneOf`) on the indexed attribute.
    Union {
        /// Position of the index in the matcher's attached-index list.
        index: usize,
        /// The disjunction's probe values.
        keys: Vec<Value>,
    },
    /// The intersection of two or more point-probe buckets, possibly on
    /// different indexes — every candidate must appear in all of them.
    /// Produced only by the seed-selection pass when several indexed
    /// equality predicates constrain one seed vertex; never wider than
    /// the smallest probe's bucket.
    Intersect {
        /// `(index position, probe value)` pairs, smallest bucket first.
        probes: Vec<(usize, Value)>,
    },
}

/// One predicate test applied to the current scan candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterTest {
    /// All compiled predicates of a query vertex against the candidate
    /// vertex.
    VertexPreds(QVid),
    /// The compiled type disjunction of a query edge against the candidate
    /// edge's type (only emitted for typed edges scanned untyped — the
    /// pushdown pass turns it into per-type CSR run selection instead).
    EdgeType(QEid),
    /// The compiled attribute predicates of a query edge against the
    /// candidate edge's attributes.
    EdgeAttrs(QEid),
}

/// What a [`IrNode::Bind`] node commits to the register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindTarget {
    /// The seed vertex of the component.
    Seed {
        /// Query vertex bound by the seed scan.
        vertex: QVid,
    },
    /// An expansion's edge and newly reached vertex.
    Expansion {
        /// Query edge bound by the expansion.
        edge: QEid,
        /// Query vertex the expansion reaches.
        to: QVid,
    },
    /// A closing edge (both endpoints already bound).
    Closure {
        /// Query edge bound by the close.
        edge: QEid,
    },
}

/// One node of a component's lowered plan.
#[derive(Debug, Clone, PartialEq)]
pub enum IrNode {
    /// Produce seed candidates for the component's first vertex.
    SeedScan {
        /// Query vertex the scan produces candidates for.
        vertex: QVid,
        /// Candidate source.
        spec: SeedSpec,
        /// Planner selectivity estimate for `vertex`.
        est: u64,
        /// Filters fused into the scan loop (pushdown pass), applied in
        /// order before the candidate is accepted.
        filters: Vec<FilterTest>,
        /// When true the scan binds accepted candidates itself (dead-bind
        /// pass); otherwise a separate [`IrNode::Bind`] follows.
        bind: bool,
    },
    /// Traverse a query edge from the bound `from` endpoint, producing
    /// `(edge, to)` candidate pairs.
    ExpandRun {
        /// Query edge being traversed.
        edge: QEid,
        /// Already-bound endpoint the traversal leaves.
        from: QVid,
        /// Endpoint the traversal reaches.
        to: QVid,
        /// When true, the scan walks only the CSR per-type runs admitted
        /// by the compiled type disjunction (pushdown pass); when false it
        /// walks the full adjacency and relies on an
        /// [`FilterTest::EdgeType`] filter.
        typed: bool,
        /// Planner selectivity estimate for `to`.
        est: u64,
        /// Filters fused into the scan loop, applied in order.
        filters: Vec<FilterTest>,
        /// When true the scan binds accepted candidates itself.
        bind: bool,
    },
    /// Bind a query edge whose endpoints are both already bound,
    /// producing candidate edges between the two mapped data vertices.
    CloseRun {
        /// Query edge being closed.
        edge: QEid,
        /// Per-type CSR runs (pushdown) vs. full adjacency + type filter.
        typed: bool,
        /// Filters fused into the scan loop, applied in order.
        filters: Vec<FilterTest>,
        /// When true the scan binds accepted candidates itself.
        bind: bool,
    },
    /// Test the current scan candidate; on failure the owning scan
    /// advances to its next candidate.
    Filter {
        /// The predicate test to apply.
        test: FilterTest,
    },
    /// Commit the current scan candidate to the register file (checking
    /// occupancy first in injective mode).
    Bind {
        /// What to bind.
        target: BindTarget,
    },
    /// Yield the complete component assignment. Always the last node.
    Emit,
}

/// The lowered plan of one weakly connected query component.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentIr {
    /// Nodes in execution order; the first is always a
    /// [`IrNode::SeedScan`], the last an [`IrNode::Emit`].
    pub nodes: Vec<IrNode>,
    /// The component's seed vertex (copied out of the first node for
    /// cheap access).
    pub seed_vertex: QVid,
}

/// The lowered plan of a whole query: one [`ComponentIr`] per weakly
/// connected component, in plan order. Empty exactly when the query is
/// unsatisfiable or has no vertices.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanIr {
    /// Per-component lowered plans.
    pub components: Vec<ComponentIr>,
}

/// Lower `plans` into the naive (unoptimized) IR.
///
/// Each [`Step`] becomes one scan node followed by its standalone filter
/// and bind nodes, in the engine's canonical test order (edge type, edge
/// attributes, vertex predicates); `est` are the planner's selectivity
/// estimates from [`crate::compile::build_plans_est`], indexed by `QVid`
/// slot. The result always passes [`crate::verify::verify_ir`].
pub fn lower(compiled: &Compiled, plans: &[ComponentPlan], est: &[u64]) -> PlanIr {
    let est_of = |v: QVid| est.get(v.0 as usize).copied().unwrap_or(0);
    let mut components = Vec::with_capacity(plans.len());
    for plan in plans {
        let mut nodes = Vec::new();
        for step in &plan.steps {
            match *step {
                Step::Seed { vertex } => {
                    nodes.push(IrNode::SeedScan {
                        vertex,
                        spec: SeedSpec::FullScan,
                        est: est_of(vertex),
                        filters: Vec::new(),
                        bind: false,
                    });
                    nodes.push(IrNode::Filter {
                        test: FilterTest::VertexPreds(vertex),
                    });
                    nodes.push(IrNode::Bind {
                        target: BindTarget::Seed { vertex },
                    });
                }
                Step::ExpandNew { edge, from, to } => {
                    nodes.push(IrNode::ExpandRun {
                        edge,
                        from,
                        to,
                        typed: false,
                        est: est_of(to),
                        filters: Vec::new(),
                        bind: false,
                    });
                    if compiled.edge(edge).types.is_some() {
                        nodes.push(IrNode::Filter {
                            test: FilterTest::EdgeType(edge),
                        });
                    }
                    nodes.push(IrNode::Filter {
                        test: FilterTest::EdgeAttrs(edge),
                    });
                    nodes.push(IrNode::Filter {
                        test: FilterTest::VertexPreds(to),
                    });
                    nodes.push(IrNode::Bind {
                        target: BindTarget::Expansion { edge, to },
                    });
                }
                Step::Close { edge } => {
                    nodes.push(IrNode::CloseRun {
                        edge,
                        typed: false,
                        filters: Vec::new(),
                        bind: false,
                    });
                    if compiled.edge(edge).types.is_some() {
                        nodes.push(IrNode::Filter {
                            test: FilterTest::EdgeType(edge),
                        });
                    }
                    nodes.push(IrNode::Filter {
                        test: FilterTest::EdgeAttrs(edge),
                    });
                    nodes.push(IrNode::Bind {
                        target: BindTarget::Closure { edge },
                    });
                }
            }
        }
        nodes.push(IrNode::Emit);
        components.push(ComponentIr {
            nodes,
            seed_vertex: plan.seed_vertex(),
        });
    }
    PlanIr { components }
}

impl IrNode {
    /// True for the three candidate-producing nodes.
    pub fn is_scan(&self) -> bool {
        matches!(
            self,
            IrNode::SeedScan { .. } | IrNode::ExpandRun { .. } | IrNode::CloseRun { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{build_plans_est, Compiled};
    use whyq_graph::{PropertyGraph, Value};
    use whyq_query::{Predicate, QueryBuilder};

    fn graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person"))]);
        let b = g.add_vertex([("type", Value::str("person"))]);
        let c = g.add_vertex([("type", Value::str("city"))]);
        g.add_edge(a, b, "knows", []);
        g.add_edge(a, c, "livesIn", []);
        g.seal();
        g
    }

    #[test]
    fn lowering_is_literal_and_verified() {
        let g = graph();
        let q = QueryBuilder::new("q")
            .vertex("p1", [Predicate::eq("type", "person")])
            .vertex("p2", [Predicate::eq("type", "person")])
            .edge("p1", "p2", "knows")
            .build();
        let compiled = Compiled::new(&g, &q);
        let (plans, est) = build_plans_est(&g, &q, &compiled, &[]);
        let ir = lower(&compiled, &plans, &est);
        assert_eq!(ir.components.len(), 1);
        let nodes = &ir.components[0].nodes;
        // Seed + VertexPreds + Bind, Expand + EdgeType + EdgeAttrs +
        // VertexPreds + Bind, Emit
        assert!(matches!(
            nodes[0],
            IrNode::SeedScan {
                spec: SeedSpec::FullScan,
                bind: false,
                ..
            }
        ));
        assert!(matches!(nodes.last(), Some(IrNode::Emit)));
        let filters = nodes
            .iter()
            .filter(|n| matches!(n, IrNode::Filter { .. }))
            .count();
        assert_eq!(filters, 4);
        crate::verify::verify_ir(&q, &compiled, &ir, 0).unwrap();
    }

    #[test]
    fn untyped_edges_get_no_type_filter() {
        let g = graph();
        let mut q = whyq_query::PatternQuery::new();
        let x = q.add_vertex(whyq_query::QueryVertex::any());
        let y = q.add_vertex(whyq_query::QueryVertex::any());
        let mut e = whyq_query::QueryEdge::typed(x, y, "knows");
        e.types.clear(); // any type
        q.add_edge(e);
        let compiled = Compiled::new(&g, &q);
        let (plans, est) = build_plans_est(&g, &q, &compiled, &[]);
        let ir = lower(&compiled, &plans, &est);
        assert!(!ir.components[0].nodes.iter().any(|n| matches!(
            n,
            IrNode::Filter {
                test: FilterTest::EdgeType(_)
            }
        )));
    }
}
