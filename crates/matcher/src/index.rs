//! Equality index over one vertex attribute.
//!
//! Pattern queries in the thesis workloads almost always pin a `type`
//! attribute per query vertex; seeding the backtracking search from an index
//! lookup instead of a full vertex scan removes the dominant scan cost.
//!
//! The buckets are keyed by a fixed-width `IndexKey`, not by the value
//! itself: dictionary-encoded strings key by their `u32` symbol and numbers
//! by their canonical `f64` bit pattern, so building and probing the index
//! hashes a machine word instead of walking heap strings. Probes resolve
//! query-side string constants through the graph's value dictionary first —
//! a constant the dictionary has never seen hits the empty bucket without
//! hashing a single byte of it.

use std::collections::HashMap;
use whyq_graph::{PropertyGraph, Symbol, Value, VertexId};

/// Fixed-width bucket key. Numeric family members share a key through the
/// canonical bit pattern their `Value` equality/hash is defined by
/// (`i as f64` for integers, `-0.0` normalized), strings through their
/// dictionary symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum IndexKey {
    /// Canonical `f64` bits of a numeric-family value.
    Num(u64),
    /// Value-dictionary symbol of an encoded string.
    Sym(u32),
    /// Boolean value.
    Bool(bool),
}

fn canonical_num_bits(f: f64) -> u64 {
    (if f == 0.0 { 0.0f64 } else { f }).to_bits()
}

/// Hash index from values of one attribute to the vertices carrying them.
#[derive(Debug, Clone)]
pub struct AttrIndex {
    attr: Symbol,
    buckets: HashMap<IndexKey, Vec<VertexId>>,
    /// Defensive fallback for stored strings that escaped the dictionary
    /// (impossible through the graph API; kept so the index never silently
    /// loses data). Probed by `&str` — no allocation on lookup.
    str_buckets: HashMap<String, Vec<VertexId>>,
}

impl AttrIndex {
    /// Build an index over `attr`; `None` if no element carries it.
    pub fn build(g: &PropertyGraph, attr: &str) -> Option<AttrIndex> {
        let sym = g.attr_symbol(attr)?;
        let mut buckets: HashMap<IndexKey, Vec<VertexId>> = HashMap::new();
        let mut str_buckets: HashMap<String, Vec<VertexId>> = HashMap::new();
        for v in g.vertex_ids() {
            if let Some(val) = g.vertex_attr(v, sym) {
                match Self::stored_key(val) {
                    Some(key) => buckets.entry(key).or_default().push(v),
                    None => str_buckets
                        .entry(val.as_str().expect("only strings lack a key").to_string())
                        .or_default()
                        .push(v),
                }
            }
        }
        Some(AttrIndex {
            attr: sym,
            buckets,
            str_buckets,
        })
    }

    /// Key of a *stored* value; `None` only for un-encoded strings, which
    /// go to the fallback map.
    fn stored_key(v: &Value) -> Option<IndexKey> {
        match v {
            Value::Sym(s) => Some(IndexKey::Sym(s.sym().0)),
            Value::Str(_) => None,
            Value::Bool(b) => Some(IndexKey::Bool(*b)),
            num => Some(IndexKey::Num(canonical_num_bits(
                num.as_f64().expect("numeric family"),
            ))),
        }
    }

    /// The indexed attribute symbol.
    pub fn attr(&self) -> Symbol {
        self.attr
    }

    /// Vertices whose indexed attribute equals `value`.
    ///
    /// String probes — plain or encoded by a *different* graph's
    /// dictionary — resolve through `g`'s value dictionary; an encoded
    /// string of `g` itself probes by symbol directly. Either way no
    /// string is hashed or allocated.
    pub fn lookup(&self, g: &PropertyGraph, value: &Value) -> &[VertexId] {
        let key = match value {
            Value::Sym(s) if s.dict_id() == g.values().dict_id() => Some(IndexKey::Sym(s.sym().0)),
            Value::Sym(_) | Value::Str(_) => {
                let text = value.as_str().expect("string family");
                match g.value_symbol(text) {
                    Some(sym) => Some(IndexKey::Sym(sym.0)),
                    // the dictionary has never seen this string: no
                    // encoded bucket can hold it; fall through to the
                    // (normally empty) un-encoded fallback
                    None => {
                        return self.str_buckets.get(text).map_or(&[], Vec::as_slice);
                    }
                }
            }
            Value::Bool(b) => Some(IndexKey::Bool(*b)),
            num => num.as_f64().map(|f| IndexKey::Num(canonical_num_bits(f))),
        };
        key.and_then(|k| self.buckets.get(&k))
            .map_or(&[], Vec::as_slice)
    }

    /// Number of distinct indexed values.
    pub fn num_values(&self) -> usize {
        self.buckets.len() + self.str_buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person"))]);
        let b = g.add_vertex([("type", Value::str("person"))]);
        let c = g.add_vertex([("type", Value::str("city"))]);
        g.add_vertex([]);
        let idx = AttrIndex::build(&g, "type").unwrap();
        assert_eq!(idx.lookup(&g, &Value::str("person")), &[a, b]);
        assert_eq!(idx.lookup(&g, &Value::str("city")), &[c]);
        assert!(idx.lookup(&g, &Value::str("robot")).is_empty());
        assert_eq!(idx.num_values(), 2);
    }

    #[test]
    fn missing_attribute_yields_none() {
        let g = PropertyGraph::new();
        assert!(AttrIndex::build(&g, "type").is_none());
    }

    #[test]
    fn numeric_family_members_share_buckets() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("year", Value::Int(2005))]);
        let b = g.add_vertex([("year", Value::Float(2005.0))]);
        let z = g.add_vertex([("year", Value::Float(-0.0))]);
        let idx = AttrIndex::build(&g, "year").unwrap();
        assert_eq!(idx.lookup(&g, &Value::Int(2005)), &[a, b]);
        assert_eq!(idx.lookup(&g, &Value::Float(2005.0)), &[a, b]);
        assert_eq!(idx.lookup(&g, &Value::Int(0)), &[z]);
        assert_eq!(idx.lookup(&g, &Value::Float(0.0)), &[z]);
    }

    #[test]
    fn encoded_probe_uses_symbol_and_foreign_probe_redecodes() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person"))]);
        let ty = g.attr_symbol("type").unwrap();
        let native = g.vertex_attr(a, ty).unwrap().clone();
        // a second graph assigns "person" a different symbol
        let mut other = PropertyGraph::new();
        other.add_vertex([("type", Value::str("padding"))]);
        let o = other.add_vertex([("type", Value::str("person"))]);
        let oty = other.attr_symbol("type").unwrap();
        let foreign = other.vertex_attr(o, oty).unwrap().clone();
        let idx = AttrIndex::build(&g, "type").unwrap();
        assert_eq!(idx.lookup(&g, &native), &[a]);
        assert_eq!(idx.lookup(&g, &foreign), &[a]);
    }

    #[test]
    fn bool_buckets() {
        let mut g = PropertyGraph::new();
        let t = g.add_vertex([("ok", Value::Bool(true))]);
        let f = g.add_vertex([("ok", Value::Bool(false))]);
        let idx = AttrIndex::build(&g, "ok").unwrap();
        assert_eq!(idx.lookup(&g, &Value::Bool(true)), &[t]);
        assert_eq!(idx.lookup(&g, &Value::Bool(false)), &[f]);
    }
}
