//! Equality index over one vertex attribute.
//!
//! Pattern queries in the thesis workloads almost always pin a `type`
//! attribute per query vertex; seeding the backtracking search from an index
//! lookup instead of a full vertex scan removes the dominant scan cost.

use std::collections::HashMap;
use whyq_graph::{PropertyGraph, Symbol, Value, VertexId};

/// Hash index from values of one attribute to the vertices carrying them.
#[derive(Debug, Clone)]
pub struct AttrIndex {
    attr: Symbol,
    buckets: HashMap<Value, Vec<VertexId>>,
}

impl AttrIndex {
    /// Build an index over `attr`; `None` if no element carries it.
    pub fn build(g: &PropertyGraph, attr: &str) -> Option<AttrIndex> {
        let sym = g.attr_symbol(attr)?;
        let mut buckets: HashMap<Value, Vec<VertexId>> = HashMap::new();
        for v in g.vertex_ids() {
            if let Some(val) = g.vertex_attr(v, sym) {
                buckets.entry(val.clone()).or_default().push(v);
            }
        }
        Some(AttrIndex { attr: sym, buckets })
    }

    /// The indexed attribute symbol.
    pub fn attr(&self) -> Symbol {
        self.attr
    }

    /// Vertices whose indexed attribute equals `value`.
    pub fn lookup(&self, value: &Value) -> &[VertexId] {
        self.buckets.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct indexed values.
    pub fn num_values(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person"))]);
        let b = g.add_vertex([("type", Value::str("person"))]);
        let c = g.add_vertex([("type", Value::str("city"))]);
        g.add_vertex([]);
        let idx = AttrIndex::build(&g, "type").unwrap();
        assert_eq!(idx.lookup(&Value::str("person")), &[a, b]);
        assert_eq!(idx.lookup(&Value::str("city")), &[c]);
        assert!(idx.lookup(&Value::str("robot")).is_empty());
        assert_eq!(idx.num_values(), 2);
    }

    #[test]
    fn missing_attribute_yields_none() {
        let g = PropertyGraph::new();
        assert!(AttrIndex::build(&g, "type").is_none());
    }
}
