//! The retired recursive-plan interpreter, kept as a second oracle.
//!
//! Until the bytecode VM ([`crate::vm`]) became the default execution
//! path, the engine evaluated [`ComponentPlan`]s directly by recursive
//! depth-first search over the plan's step list. This module preserves
//! that interpreter verbatim behind the `legacy-interp` feature so the
//! equivalence suite can cross-check *three* independent evaluators —
//! the VM, this interpreter and the brute-force
//! [`crate::reference`] — and so the benchmark harness can quantify the
//! VM's win (`vm-vs-interp` in `BENCH_matcher.json`).
//!
//! Semantics are identical to the VM by construction: same binding
//! order, same filter order (occupancy → edge attributes → vertex
//! predicates), same budget tick cadence, same fault-injection points.
//! Nothing in the crate calls this module; it exists only for tests and
//! benches, and carries no cache or streaming integration.

use crate::budget::{Budget, CHECK_INTERVAL};
use crate::compile::{Compiled, ComponentPlan, Step};
use crate::engine::{seed_source, union_seeds, MatchOptions, Matcher, Scratch, SeedSource};
use crate::result::ResultGraph;
use crate::work::SeedList;
use whyq_graph::{AdjSlice, VertexId};
use whyq_query::{PatternQuery, QVid};

/// Loop-invariant inputs of one component search, bundled so the DFS
/// helpers don't thread the same parameters through every level.
struct SearchCtx<'a> {
    q: &'a PatternQuery,
    compiled: &'a Compiled,
    steps: &'a [Step],
    injective: bool,
    budget: &'a Budget,
}

/// Per-`ExpandNew`-step constants: the query edge being bound, the query
/// vertex it binds, and their compiled forms.
struct ExpandBinding<'a> {
    edge: whyq_query::QEid,
    to: QVid,
    ce: &'a crate::compile::CompiledEdge,
    cv_to: &'a crate::compile::CompiledVertex,
}

impl<'g> Matcher<'g> {
    /// [`Matcher::find_compiled`] evaluated by the legacy recursive
    /// interpreter over raw [`ComponentPlan`]s instead of bytecode.
    /// `compiled`/`plans` must come from [`Matcher::compile`] on a query
    /// with the same signature over the same graph.
    pub fn find_compiled_interp(
        &self,
        q: &PatternQuery,
        compiled: &Compiled,
        plans: &[ComponentPlan],
        opts: MatchOptions,
    ) -> Vec<ResultGraph> {
        if q.num_vertices() == 0 || plans.is_empty() {
            return Vec::new();
        }
        if opts.budget.poll().is_err() {
            return Vec::new();
        }
        let cap = opts.limit.unwrap_or(usize::MAX);
        let mut st = self.scratch.borrow_mut();
        st.prepare(self.g, q);
        let mut per_component: Vec<Vec<ResultGraph>> = Vec::with_capacity(plans.len());
        for plan in plans {
            let mut results = Vec::new();
            self.eval_component(q, compiled, plan, &opts, &mut st, &mut |s| {
                results.push(s.to_result());
                results.len() < cap
            });
            if results.is_empty() {
                return Vec::new();
            }
            per_component.push(results);
        }
        crate::combine::combine_components(per_component, cap)
    }

    /// [`Matcher::count_compiled`] evaluated by the legacy recursive
    /// interpreter — see [`Matcher::find_compiled_interp`].
    pub fn count_compiled_interp(
        &self,
        q: &PatternQuery,
        compiled: &Compiled,
        plans: &[ComponentPlan],
        opts: MatchOptions,
    ) -> u64 {
        if q.num_vertices() == 0 || plans.is_empty() {
            return 0;
        }
        if opts.budget.poll().is_err() {
            return 0;
        }
        let limit = opts.limit.map(|l| l as u64);
        let mut st = self.scratch.borrow_mut();
        st.prepare(self.g, q);
        let mut counts: Vec<u64> = Vec::with_capacity(plans.len());
        for plan in plans {
            let mut c: u64 = 0;
            self.eval_component(q, compiled, plan, &opts, &mut st, &mut |_| {
                c += 1;
                limit.is_none_or(|l| c < l)
            });
            if c == 0 {
                return 0;
            }
            counts.push(c);
        }
        let total = counts.into_iter().fold(1u64, u64::saturating_mul);
        match limit {
            Some(l) => total.min(l),
            None => total,
        }
    }

    /// [`Matcher::find_unit`] evaluated by the legacy interpreter: the
    /// same component × seed-subrange work-unit contract, over plans.
    #[allow(clippy::too_many_arguments)]
    pub fn find_unit_interp(
        &self,
        q: &PatternQuery,
        compiled: &Compiled,
        plans: &[ComponentPlan],
        component: usize,
        seeds: &SeedList,
        range: std::ops::Range<usize>,
        opts: MatchOptions,
    ) -> Vec<ResultGraph> {
        let cap = opts.limit.unwrap_or(usize::MAX);
        if cap == 0 || opts.budget.poll().is_err() {
            return Vec::new();
        }
        let mut st = self.scratch.borrow_mut();
        st.prepare(self.g, q);
        let mut results = Vec::new();
        self.eval_unit(
            q,
            compiled,
            &plans[component],
            &opts,
            seeds,
            range,
            &mut st,
            &mut |s| {
                results.push(s.to_result());
                results.len() < cap
            },
        );
        results
    }
    /// DFS over one component plan with an explicit seed slice: like
    /// [`Matcher::eval_component`] but the `Seed` step draws candidates
    /// from `seeds[range]` instead of resolving a seed source itself.
    #[allow(clippy::too_many_arguments)]
    fn eval_unit(
        &self,
        q: &PatternQuery,
        compiled: &Compiled,
        plan: &ComponentPlan,
        opts: &MatchOptions,
        seeds: &SeedList,
        range: std::ops::Range<usize>,
        st: &mut Scratch,
        emit: &mut dyn FnMut(&Scratch) -> bool,
    ) {
        let Some(&Step::Seed { vertex }) = plan.steps.first() else {
            return;
        };
        let cx = SearchCtx {
            q,
            compiled,
            steps: &plan.steps,
            injective: opts.injective,
            budget: &opts.budget,
        };
        let cv = compiled.vertex(vertex);
        for i in range {
            if i >= seeds.len() {
                break;
            }
            let dv = seeds.get(i);
            if !cv.accepts(self.g, dv) {
                continue;
            }
            if !self.bind_seed(&cx, 0, st, emit, vertex, dv) {
                return;
            }
        }
    }

    /// DFS over one component plan; `emit` returns `false` to stop. The
    /// scratch arena must be prepared and is left clean (all slots unbound)
    /// on return, including on early termination.
    fn eval_component(
        &self,
        q: &PatternQuery,
        compiled: &Compiled,
        plan: &ComponentPlan,
        opts: &MatchOptions,
        st: &mut Scratch,
        emit: &mut dyn FnMut(&Scratch) -> bool,
    ) {
        let cx = SearchCtx {
            q,
            compiled,
            steps: &plan.steps,
            injective: opts.injective,
            budget: &opts.budget,
        };
        self.step(&cx, 0, st, emit);
    }

    fn step(
        &self,
        cx: &SearchCtx<'_>,
        i: usize,
        st: &mut Scratch,
        emit: &mut dyn FnMut(&Scratch) -> bool,
    ) -> bool {
        // coarse tick-counted budget check: one charge per CHECK_INTERVAL
        // DFS transitions keeps `Instant::now` off the per-step hot path
        // while bounding how far past a deadline the search can run
        st.ticks += 1;
        if st.ticks.is_multiple_of(CHECK_INTERVAL as u64)
            && cx.budget.charge(CHECK_INTERVAL as u64).is_err()
        {
            return false;
        }
        if i == cx.steps.len() {
            return emit(st);
        }
        match cx.steps[i] {
            Step::Seed { vertex } => self.seed(cx, i, st, emit, vertex),
            Step::ExpandNew { edge, from, to } => {
                let qe = cx.q.edge(edge).expect("live");
                let bound = st.vslots[from.0 as usize].expect("plan binds from first");
                let ex = ExpandBinding {
                    edge,
                    to,
                    ce: cx.compiled.edge(edge),
                    cv_to: cx.compiled.vertex(to),
                };
                // whether the traversal leaves `bound` along its out-edges
                // (and binds the data edge's dst) or its in-edges: identical
                // booleans, merged into ExpandBinding consumers as `along`
                let from_is_src = from == qe.src;
                if qe.directions.forward {
                    // data edge μ(src) → μ(dst)
                    if !self.expand_direction(cx, i, st, emit, &ex, bound, from_is_src, false) {
                        return false;
                    }
                }
                if qe.directions.backward {
                    // data edge μ(dst) → μ(src): the mirror traversal. A
                    // self-loop at `bound` sits in both adjacency lists, so
                    // skip self-loops the forward pass already tried.
                    if !self.expand_direction(
                        cx,
                        i,
                        st,
                        emit,
                        &ex,
                        bound,
                        !from_is_src,
                        qe.directions.forward,
                    ) {
                        return false;
                    }
                }
                true
            }
            Step::Close { edge } => {
                let qe = cx.q.edge(edge).expect("live");
                let ms = st.vslots[qe.src.0 as usize].expect("bound");
                let mt = st.vslots[qe.dst.0 as usize].expect("bound");
                if qe.directions.forward && !self.close_direction(cx, i, st, emit, edge, (ms, mt)) {
                    return false;
                }
                // when both endpoints map to one data vertex the forward
                // pass already enumerated every self-loop there
                if qe.directions.backward
                    && !(qe.directions.forward && ms == mt)
                    && !self.close_direction(cx, i, st, emit, edge, (mt, ms))
                {
                    return false;
                }
                true
            }
        }
    }

    /// Execute a `Seed` step by *streaming* candidates — from the index
    /// bucket when an equality-shaped predicate pins the indexed attribute,
    /// from a full vertex scan otherwise — so a search under a small
    /// `limit` stops without ever touching the rest of the candidate
    /// space. Only a multi-value disjunction buffers (to deduplicate
    /// repeated values' buckets).
    fn seed(
        &self,
        cx: &SearchCtx<'_>,
        i: usize,
        st: &mut Scratch,
        emit: &mut dyn FnMut(&Scratch) -> bool,
        vertex: QVid,
    ) -> bool {
        let cv = cx.compiled.vertex(vertex);
        match seed_source(self.g, &self.indexes, cx.q, vertex) {
            SeedSource::Scan => {
                for dv in self.g.vertex_ids() {
                    if !cv.accepts(self.g, dv) {
                        continue;
                    }
                    if !self.bind_seed(cx, i, st, emit, vertex, dv) {
                        return false;
                    }
                }
                true
            }
            SeedSource::Bucket(bucket) => {
                for &dv in bucket {
                    if !cv.accepts(self.g, dv) {
                        continue;
                    }
                    if !self.bind_seed(cx, i, st, emit, vertex, dv) {
                        return false;
                    }
                }
                true
            }
            SeedSource::Union(idx, vals) => {
                // the buffer is detached from the arena while the search
                // below mutates it, and reattached (keeping its allocation)
                // before returning
                let mut seeds = std::mem::take(&mut st.seeds);
                union_seeds(self.g, idx, vals, &mut seeds);
                let mut live = true;
                for &dv in &seeds {
                    if !cv.accepts(self.g, dv) {
                        continue;
                    }
                    if !self.bind_seed(cx, i, st, emit, vertex, dv) {
                        live = false;
                        break;
                    }
                }
                seeds.clear();
                st.seeds = seeds;
                live
            }
        }
    }

    /// Bind one seed candidate, recurse, unbind.
    fn bind_seed(
        &self,
        cx: &SearchCtx<'_>,
        i: usize,
        st: &mut Scratch,
        emit: &mut dyn FnMut(&Scratch) -> bool,
        vertex: QVid,
        dv: VertexId,
    ) -> bool {
        #[cfg(feature = "fault-inject")]
        crate::fault::on_seed_bound();
        // the seed is the first binding of its component; earlier
        // components' bindings are irrelevant (injectivity is
        // per-component), so no occupancy check is needed here
        let slot = vertex.0 as usize;
        st.vslots[slot] = Some(dv);
        if cx.injective {
            st.set_vertex_used(dv, true);
        }
        let cont = self.step(cx, i + 1, st, emit);
        st.vslots[slot] = None;
        if cx.injective {
            st.set_vertex_used(dv, false);
        }
        cont
    }

    /// One expansion direction: enumerate the candidate edges leaving
    /// `bound`, restricted to the admissible edge types via the CSR's
    /// per-type runs, and try to bind each. `along_src` is true when
    /// `bound` plays the data edge's source role in this direction (the
    /// out arena is scanned and the edge's dst becomes the new binding);
    /// `skip_self_loops` drops self-loops the opposite pass already tried.
    #[allow(clippy::too_many_arguments)]
    fn expand_direction(
        &self,
        cx: &SearchCtx<'_>,
        i: usize,
        st: &mut Scratch,
        emit: &mut dyn FnMut(&Scratch) -> bool,
        ex: &ExpandBinding<'_>,
        bound: VertexId,
        along_src: bool,
        skip_self_loops: bool,
    ) -> bool {
        match &ex.ce.types {
            Some(tys) => {
                for &t in tys {
                    let list = if along_src {
                        self.topo.out_entries_of(bound, t)
                    } else {
                        self.topo.in_entries_of(bound, t)
                    };
                    if !self.expand_list(cx, i, st, emit, ex, list, bound, skip_self_loops) {
                        return false;
                    }
                }
                true
            }
            None => {
                let list = if along_src {
                    self.topo.out_entries(bound)
                } else {
                    self.topo.in_entries(bound)
                };
                self.expand_list(cx, i, st, emit, ex, list, bound, skip_self_loops)
            }
        }
    }

    /// Try every candidate of one CSR slice. The slice's `others` column
    /// already holds the endpoint the expansion would bind, so the scan
    /// needs no `EdgeData` at all: an entry is a self-loop exactly when
    /// its opposite endpoint is `bound` itself (the scanned vertex).
    #[allow(clippy::too_many_arguments)]
    fn expand_list(
        &self,
        cx: &SearchCtx<'_>,
        i: usize,
        st: &mut Scratch,
        emit: &mut dyn FnMut(&Scratch) -> bool,
        ex: &ExpandBinding<'_>,
        list: AdjSlice<'g>,
        bound: VertexId,
        skip_self_loops: bool,
    ) -> bool {
        for (de, dv) in list.iter() {
            if skip_self_loops && dv == bound {
                continue;
            }
            if !self.try_bind(cx, i, st, emit, ex, de, dv) {
                return false;
            }
        }
        true
    }

    /// One closing direction: bind data edges running `ends.0 → ends.1`,
    /// restricted to admissible types and scanning whichever adjacency
    /// slice of the two endpoints is shorter.
    fn close_direction(
        &self,
        cx: &SearchCtx<'_>,
        i: usize,
        st: &mut Scratch,
        emit: &mut dyn FnMut(&Scratch) -> bool,
        edge: whyq_query::QEid,
        ends: (VertexId, VertexId),
    ) -> bool {
        let ce = cx.compiled.edge(edge);
        match &ce.types {
            Some(tys) => {
                for &t in tys {
                    let lists = (
                        self.topo.out_entries_of(ends.0, t),
                        self.topo.in_entries_of(ends.1, t),
                    );
                    if !self.close_pass(cx, i, st, emit, edge, ends, lists) {
                        return false;
                    }
                }
                true
            }
            None => {
                let lists = (self.topo.out_entries(ends.0), self.topo.in_entries(ends.1));
                self.close_pass(cx, i, st, emit, edge, ends, lists)
            }
        }
    }

    /// Scan one pair of candidate slices for edges running `ends.0 →
    /// ends.1`, using whichever of the two is shorter. The endpoint test
    /// reads the CSR `others` column; `EdgeData` is loaded only for edges
    /// that survive it *and* carry attribute predicates.
    #[allow(clippy::too_many_arguments)]
    fn close_pass(
        &self,
        cx: &SearchCtx<'_>,
        i: usize,
        st: &mut Scratch,
        emit: &mut dyn FnMut(&Scratch) -> bool,
        edge: whyq_query::QEid,
        ends: (VertexId, VertexId),
        lists: (AdjSlice<'g>, AdjSlice<'g>),
    ) -> bool {
        let ce = cx.compiled.edge(edge);
        let scan_out = lists.0.len() <= lists.1.len();
        // scanning the out arena of `ends.0`, the entry's opposite endpoint
        // is its dst and must equal `ends.1`; scanning the in arena of
        // `ends.1`, it is the src and must equal `ends.0`
        let (list, want) = if scan_out {
            (lists.0, ends.1)
        } else {
            (lists.1, ends.0)
        };
        for (de, other) in list.iter() {
            if other != want {
                continue;
            }
            if cx.injective && st.edge_used(de) {
                continue;
            }
            if ce.needs_edge_data() && !ce.accepts_attrs(&self.g.edge(de).attrs) {
                continue;
            }
            let slot = edge.0 as usize;
            st.eslots[slot] = Some(de);
            if cx.injective {
                st.set_edge_used(de, true);
            }
            let cont = self.step(cx, i + 1, st, emit);
            st.eslots[slot] = None;
            if cx.injective {
                st.set_edge_used(de, false);
            }
            if !cont {
                return false;
            }
        }
        true
    }

    /// Try one expansion candidate: filter, bind edge + new vertex in
    /// place, recurse, unbind. Returns `false` to abort the whole search.
    /// The O(1) occupancy checks run before the predicate checks — a stamp
    /// compare is far cheaper than attribute lookups and value equality —
    /// and the edge payload is only fetched when edge predicates exist
    /// (its type is already implied by the CSR run the candidate came
    /// from, or unconstrained).
    #[allow(clippy::too_many_arguments)]
    fn try_bind(
        &self,
        cx: &SearchCtx<'_>,
        i: usize,
        st: &mut Scratch,
        emit: &mut dyn FnMut(&Scratch) -> bool,
        ex: &ExpandBinding<'_>,
        de: whyq_graph::EdgeId,
        dv: VertexId,
    ) -> bool {
        if cx.injective && (st.vertex_used(dv) || st.edge_used(de)) {
            return true;
        }
        if ex.ce.needs_edge_data() && !ex.ce.accepts_attrs(&self.g.edge(de).attrs) {
            return true;
        }
        if !ex.cv_to.accepts(self.g, dv) {
            return true;
        }
        let vslot = ex.to.0 as usize;
        let eslot = ex.edge.0 as usize;
        st.vslots[vslot] = Some(dv);
        st.eslots[eslot] = Some(de);
        if cx.injective {
            st.set_vertex_used(dv, true);
            st.set_edge_used(de, true);
        }
        let cont = self.step(cx, i + 1, st, emit);
        st.vslots[vslot] = None;
        st.eslots[eslot] = None;
        if cx.injective {
            st.set_vertex_used(dv, false);
            st.set_edge_used(de, false);
        }
        cont
    }
}
