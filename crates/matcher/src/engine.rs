//! The backtracking matching engine.
//!
//! Evaluates the compiled plan of every weakly connected query component by
//! depth-first search over candidate assignments and combines component
//! results as a cartesian product (§4.3.3). Counting supports early
//! termination — the why-query engine only ever needs to know whether a
//! candidate query crosses a cardinality threshold, not the exact count
//! beyond it.
//!
//! ## Zero-allocation search
//!
//! The DFS never clones partial results. Bindings live in dense *slot
//! arrays* indexed by query vertex/edge slot (`Vec<Option<VertexId>>` /
//! `Vec<Option<EdgeId>>`), bound and unbound in O(1) as the search descends
//! and backtracks. Injectivity is checked through generation-stamped
//! inverse occupancy arrays over the data graph (O(1) check, O(1) whole-set
//! reset) instead of linear scans of the partial assignment. Candidate
//! edges are streamed straight off the graph's sealed CSR topology
//! ([`whyq_graph::CsrTopology`]): each expansion scans contiguous
//! `(edge, endpoint)` column pairs of one per-type run, so the filter loop
//! touches no [`whyq_graph::EdgeData`] unless the query edge carries
//! attribute predicates — a self-loop skip rule replaces the sort+dedup
//! buffer the previous engine allocated per step. A [`ResultGraph`] is
//! materialized only when a complete match is emitted, and counting skips
//! even that. All per-search storage lives in one reusable scratch arena
//! owned by the [`Matcher`], so a matcher that is kept around — as the
//! why-query relaxation loop does — performs no per-call setup allocations
//! beyond query compilation.

use crate::budget::Budget;
use crate::compile::{build_plans, Compiled, ComponentPlan};
use crate::index::AttrIndex;
use crate::optimize::PassSet;
use crate::result::ResultGraph;
use crate::vm::QueryProgram;
use crate::work::{SeedList, WorkUnit};
use std::cell::RefCell;
use std::sync::Arc;
use whyq_graph::{CsrTopology, PropertyGraph, Value, VertexId};
use whyq_query::{Interval, PatternQuery, QVid};

/// Options controlling match semantics.
///
/// `Clone` (not `Copy`): the [`Budget`] is a shared handle, and cloning
/// options deliberately shares it — every evaluation run under clones of
/// one `MatchOptions` draws on the *same* deadline/step/cancel limits.
#[derive(Debug, Clone)]
pub struct MatchOptions {
    /// Injective mapping of vertices and edges within a component
    /// (subgraph-isomorphism style). `false` = homomorphic matching.
    pub injective: bool,
    /// Stop after this many result graphs.
    pub limit: Option<usize>,
    /// Resource governance: deadline, step budget, cooperative cancel.
    /// Checked every [`crate::budget::CHECK_INTERVAL`] VM transitions;
    /// when it trips,
    /// the search stops early and the budget records the cause — inspect
    /// [`Budget::termination`] after the run to distinguish a complete
    /// answer from a partial prefix. Unlimited by default.
    pub budget: Budget,
}

impl Default for MatchOptions {
    fn default() -> Self {
        MatchOptions {
            injective: true,
            limit: None,
            budget: Budget::unlimited(),
        }
    }
}

impl MatchOptions {
    /// Default options with a result cap.
    pub fn limited(limit: usize) -> Self {
        MatchOptions {
            limit: Some(limit),
            ..Self::default()
        }
    }

    /// Injective options with an optional `u64` cardinality cap — the shape
    /// every counting call site in the why-query engine uses.
    pub fn counting(limit: Option<u64>) -> Self {
        MatchOptions {
            injective: true,
            limit: limit.map(|l| usize::try_from(l).unwrap_or(usize::MAX)),
            ..Self::default()
        }
    }

    /// Default options governed by `budget` (builder style — combine with
    /// struct update syntax for limits).
    pub fn governed(budget: Budget) -> Self {
        MatchOptions {
            budget,
            ..Self::default()
        }
    }

    /// Replace the budget (builder style).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }
}

/// A query compiled all the way to executable bytecode: the per-element
/// predicate programs and dictionary resolutions ([`Compiled`]) plus the
/// per-component bytecode programs ([`QueryProgram`]). Produced by
/// [`Matcher::compile_full`] / [`Matcher::compile_with_passes`]; this is
/// the artifact the `whyq-session` plan cache stores per query signature.
///
/// An unsatisfiable query compiles to an empty program
/// ([`QueryProgram::is_empty`]) — executing it yields no matches without
/// touching the graph.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// Dictionary-resolved predicate programs for every query element.
    pub compiled: Compiled,
    /// One bytecode program per weakly connected query component.
    pub program: QueryProgram,
}

/// Reusable per-matcher search storage: binding slots, occupancy stamps
/// and the seed candidate buffer. Allocated lazily on first use and grown,
/// never shrunk, across searches. Also used by the suspendable streaming
/// DFS ([`crate::stream::MatchStream`]), which owns a private arena so a
/// live stream never contends with the matcher's own searches.
#[derive(Debug, Clone, Default)]
pub(crate) struct Scratch {
    /// Data vertex bound to each query vertex slot.
    pub(crate) vslots: Vec<Option<VertexId>>,
    /// Data edge bound to each query edge slot.
    pub(crate) eslots: Vec<Option<whyq_graph::EdgeId>>,
    /// Inverse occupancy, generation-stamped: a data vertex is used by the
    /// current partial assignment iff its stamp equals [`Scratch::gen`].
    /// Stamping (instead of a bitmap) makes the per-search reset O(1) —
    /// bumping the generation invalidates every stale entry at once.
    /// Maintained only in injective mode.
    v_stamp: Vec<u32>,
    /// Inverse occupancy stamps for data edges.
    e_stamp: Vec<u32>,
    /// The stamp value marking "used in the current search". Starts at 1 so
    /// freshly zeroed stamp entries are never considered used.
    gen: u32,
    /// Seed candidates of the component currently being evaluated.
    pub(crate) seeds: Vec<VertexId>,
    /// VM transitions since the search started; every
    /// [`crate::budget::CHECK_INTERVAL`]-th transition charges the budget.
    /// Reset per search so block boundaries are deterministic.
    pub(crate) ticks: u64,
}

impl Scratch {
    /// Size (and reset) the arena for a search of `q` over `g`.
    pub(crate) fn prepare(&mut self, g: &PropertyGraph, q: &PatternQuery) {
        self.ticks = 0;
        self.vslots.clear();
        self.vslots.resize(q.vertex_slots(), None);
        self.eslots.clear();
        self.eslots.resize(q.edge_slots(), None);
        if self.v_stamp.len() < g.num_vertices() {
            self.v_stamp.resize(g.num_vertices(), 0);
        }
        if self.e_stamp.len() < g.num_edges() {
            self.e_stamp.resize(g.num_edges(), 0);
        }
        if self.gen == u32::MAX {
            self.v_stamp.fill(0);
            self.e_stamp.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
    }

    #[inline]
    pub(crate) fn vertex_used(&self, dv: VertexId) -> bool {
        self.v_stamp[dv.0 as usize] == self.gen
    }

    #[inline]
    pub(crate) fn edge_used(&self, de: whyq_graph::EdgeId) -> bool {
        self.e_stamp[de.0 as usize] == self.gen
    }

    #[inline]
    pub(crate) fn set_vertex_used(&mut self, dv: VertexId, used: bool) {
        self.v_stamp[dv.0 as usize] = if used { self.gen } else { 0 };
    }

    #[inline]
    pub(crate) fn set_edge_used(&mut self, de: whyq_graph::EdgeId, used: bool) {
        self.e_stamp[de.0 as usize] = if used { self.gen } else { 0 };
    }

    /// Materialize the current complete assignment (bindings are pushed in
    /// ascending slot order, so every insert lands at the end).
    pub(crate) fn to_result(&self) -> ResultGraph {
        let mut r = ResultGraph::new();
        for (slot, dv) in self.vslots.iter().enumerate() {
            if let Some(dv) = dv {
                r.bind_vertex(QVid(slot as u32), *dv);
            }
        }
        for (slot, de) in self.eslots.iter().enumerate() {
            if let Some(de) = de {
                r.bind_edge(whyq_query::QEid(slot as u32), *de);
            }
        }
        r
    }
}

/// Where a `Seed` step draws its candidates from. On the default path
/// the optimizer's `seed_select` pass has taken over this role (it also
/// considers probe intersections); this greedy resolver survives for the
/// `legacy-interp` oracle.
#[cfg_attr(not(feature = "legacy-interp"), allow(dead_code))]
pub(crate) enum SeedSource<'a> {
    /// Full scan of the vertex arena.
    Scan,
    /// One index bucket, streamed directly.
    Bucket(&'a [VertexId]),
    /// Several buckets of one index (multi-value disjunction) — needs
    /// buffering to deduplicate repeated values.
    Union(&'a AttrIndex, &'a [Value]),
}

/// Where the candidates of a `Seed` step come from: the bucket of an
/// equality-shaped predicate on an indexed attribute (an explicit `OneOf`
/// or a degenerate point `Range` with `lo == hi`, both inclusive — see
/// `Interval::point_value`), or a full vertex scan. Index probes resolve
/// string constants through the value dictionary, so a point probe is a
/// symbol lookup, not a string hash. With several indexed predicates the
/// *smallest* candidate set wins — the same signal `estimate_candidates`
/// feeds the planner, so the seed the planner chose for its low estimate
/// is actually drawn from that small bucket. Kept for the `legacy-interp`
/// oracle; the VM path resolves seeds from the program's `SeedSpec`.
#[cfg_attr(not(feature = "legacy-interp"), allow(dead_code))]
pub(crate) fn seed_source<'m>(
    g: &PropertyGraph,
    indexes: &'m [Arc<AttrIndex>],
    q: &'m PatternQuery,
    vertex: QVid,
) -> SeedSource<'m> {
    let Some(qv) = q.vertex(vertex) else {
        return SeedSource::Scan;
    };
    let mut best: Option<(usize, SeedSource<'m>)> = None;
    let mut consider = |size: usize, src: SeedSource<'m>| {
        if best.as_ref().is_none_or(|(s, _)| size < *s) {
            best = Some((size, src));
        }
    };
    for p in &qv.predicates {
        let Some(attr) = g.attr_symbol(&p.attr) else {
            continue;
        };
        let Some(idx) = indexes.iter().find(|i| i.attr() == attr) else {
            continue;
        };
        if let Interval::OneOf(vals) = &p.interval {
            if vals.len() == 1 {
                let bucket = idx.lookup(g, &vals[0]);
                consider(bucket.len(), SeedSource::Bucket(bucket));
            } else {
                // upper bound: repeated values double-count, which only
                // makes the union look worse than it is
                let size = vals.iter().map(|v| idx.lookup(g, v).len()).sum();
                consider(size, SeedSource::Union(idx, vals));
            }
        } else if let Some(pv) = p.interval.point_value() {
            // point equality: `Value` equates (and the index buckets)
            // numeric family members, so one canonical probe covers both
            // Int and Float encodings
            let bucket = idx.lookup(g, &pv);
            consider(bucket.len(), SeedSource::Bucket(bucket));
        }
    }
    match best {
        Some((_, src)) => src,
        None => SeedSource::Scan,
    }
}

/// Materialize the union of a multi-value disjunction's index buckets
/// into `out` (cleared first), sorted and deduplicated — repeated
/// disjunction values would repeat their buckets. The single definition
/// keeps the VM, the streaming evaluator and the parallel work model
/// ([`Matcher::seed_list_for`]) drawing identical seed candidates in
/// identical order.
pub(crate) fn union_seeds(
    g: &PropertyGraph,
    idx: &AttrIndex,
    vals: &[Value],
    out: &mut Vec<VertexId>,
) {
    out.clear();
    for v in vals {
        out.extend_from_slice(idx.lookup(g, v));
    }
    out.sort_unstable();
    out.dedup();
}

/// A reusable matcher bound to one data graph, optionally with vertex
/// attribute indexes for seeding and selectivity estimation.
///
/// Sessions of the `whyq-session` facade each own one matcher: the scratch
/// arena inside is the per-worker state, while the attribute indexes are
/// shared (`Arc`) with every other session of the same database.
#[derive(Debug, Clone)]
pub struct Matcher<'g> {
    pub(crate) g: &'g PropertyGraph,
    /// The graph's sealed CSR adjacency — resolved once at construction so
    /// every candidate scan is a plain slice walk (building it here also
    /// warms the graph's topology cache for unsealed graphs).
    pub(crate) topo: &'g CsrTopology,
    pub(crate) indexes: Vec<Arc<AttrIndex>>,
    pub(crate) scratch: RefCell<Scratch>,
}

impl<'g> Matcher<'g> {
    /// Matcher without an index.
    pub fn new(g: &'g PropertyGraph) -> Self {
        Matcher {
            g,
            topo: g.topology(),
            indexes: Vec::new(),
            scratch: RefCell::new(Scratch::default()),
        }
    }

    /// Matcher sharing prebuilt attribute indexes (the `whyq-session`
    /// facade builds the configured indexes once per database and hands
    /// each session a matcher constructed this way).
    pub fn with_shared_indexes(g: &'g PropertyGraph, indexes: Vec<Arc<AttrIndex>>) -> Self {
        Matcher {
            g,
            topo: g.topology(),
            indexes,
            scratch: RefCell::new(Scratch::default()),
        }
    }

    /// Attach an equality index over `attr` (no-op if absent from graph).
    #[deprecated(
        since = "0.2.0",
        note = "configure indexes at open instead: `Database::open_with(g, DatabaseConfig::with_indexes([attr]))` — sessions share the database's prebuilt indexes; see docs/migration.md"
    )]
    pub fn with_index(mut self, attr: &str) -> Self {
        if let Some(idx) = AttrIndex::build(self.g, attr) {
            self.indexes.push(Arc::new(idx));
        }
        self
    }

    /// Append a prebuilt shared index.
    pub fn attach_index(&mut self, idx: Arc<AttrIndex>) {
        self.indexes.push(idx);
    }

    /// The attached shared indexes.
    pub fn indexes(&self) -> &[Arc<AttrIndex>] {
        &self.indexes
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g PropertyGraph {
        self.g
    }

    /// Compile `q` and build its per-component plans against this
    /// matcher's graph and indexes. An unsatisfiable query gets no plans —
    /// executing it answers "no matches" without any scan. The
    /// `whyq-session` facade calls this once per distinct query signature
    /// and memoizes the result.
    pub fn compile(&self, q: &PatternQuery) -> (Compiled, Vec<ComponentPlan>) {
        let compiled = Compiled::new(self.g, q);
        // compile-time pruning: an unknown attribute/type or a string
        // constant absent from the value dictionary proves some element
        // unmatchable — no plan needed
        if compiled.unsatisfiable() {
            return (compiled, Vec::new());
        }
        let plans = build_plans(self.g, q, &compiled, &self.indexes);
        // debug-mode plan verifier: every test and debug build checks the
        // planner's structural invariants; release builds pay nothing
        #[cfg(debug_assertions)]
        if let Err(violation) = crate::verify::verify_plans(q, &compiled, &plans) {
            panic!("compiled plan violates invariants: {violation}");
        }
        (compiled, plans)
    }

    /// Compile `q` all the way to executable bytecode with the default
    /// (full) optimizer pipeline — lower the greedy plans to the IR,
    /// optimize, encode. The `whyq-session` facade calls this once per
    /// distinct query signature and memoizes the [`CompiledQuery`].
    pub fn compile_full(&self, q: &PatternQuery) -> CompiledQuery {
        self.compile_with_passes(q, crate::optimize::PassSet::default())
    }

    /// [`Matcher::compile_full`] with an explicit optimizer [`PassSet`] —
    /// the hook the pass power-set equivalence suite drives. Every pass
    /// combination yields a program enumerating the same matches; in
    /// debug builds the plans and the IR (after every enabled pass) are
    /// re-verified.
    pub fn compile_with_passes(&self, q: &PatternQuery, passes: PassSet) -> CompiledQuery {
        let compiled = Compiled::new(self.g, q);
        // compile-time pruning: an unknown attribute/type or a string
        // constant absent from the value dictionary proves some element
        // unmatchable — no program needed
        if compiled.unsatisfiable() {
            return CompiledQuery {
                compiled,
                program: QueryProgram::default(),
            };
        }
        let (plans, est) = crate::compile::build_plans_est(self.g, q, &compiled, &self.indexes);
        #[cfg(debug_assertions)]
        if let Err(violation) = crate::verify::verify_plans(q, &compiled, &plans) {
            panic!("compiled plan violates invariants: {violation}");
        }
        let mut ir = crate::plan_ir::lower(&compiled, &plans, &est);
        #[cfg(debug_assertions)]
        if let Err(violation) = crate::verify::verify_ir(q, &compiled, &ir, self.indexes.len()) {
            panic!("lowered IR violates invariants: {violation}");
        }
        // the optimizer re-verifies after each enabled pass (debug builds)
        crate::optimize::optimize(&mut ir, self.g, q, &compiled, &self.indexes, passes);
        CompiledQuery {
            compiled,
            program: QueryProgram::from_ir(&ir),
        }
    }

    /// Enumerate result graphs.
    pub fn find(&self, q: &PatternQuery, opts: MatchOptions) -> Vec<ResultGraph> {
        let cq = self.compile_full(q);
        self.find_compiled(q, &cq.compiled, &cq.program, opts)
    }

    /// [`Matcher::find`] with a precompiled query — the prepared-query
    /// fast path: no name resolution, no selectivity estimation, no
    /// planning, no lowering. `compiled`/`program` must come from
    /// [`Matcher::compile_full`] (or [`Matcher::compile_with_passes`]) on
    /// a query with the same signature over the same graph and indexes
    /// (the plan cache of `whyq-session` guarantees this).
    pub fn find_compiled(
        &self,
        q: &PatternQuery,
        compiled: &Compiled,
        program: &QueryProgram,
        opts: MatchOptions,
    ) -> Vec<ResultGraph> {
        if q.num_vertices() == 0 || program.is_empty() {
            return Vec::new();
        }
        // an already-tripped (or zero) budget refuses the search up front —
        // the tick check inside the VM only fires after a full block
        if opts.budget.poll().is_err() {
            return Vec::new();
        }
        let cap = opts.limit.unwrap_or(usize::MAX);
        let mut st = self.scratch.borrow_mut();
        st.prepare(self.g, q);

        // evaluate each component's program independently
        let mut per_component: Vec<Vec<ResultGraph>> =
            Vec::with_capacity(program.components().len());
        for prog in program.components() {
            let mut results = Vec::new();
            self.run_component(q, compiled, prog, &opts, &mut st, &mut |s| {
                results.push(s.to_result());
                results.len() < cap
            });
            if results.is_empty() {
                return Vec::new();
            }
            per_component.push(results);
        }

        // cartesian combination, capped
        crate::combine::combine_components(per_component, cap)
    }

    /// Count result graphs under `opts`, stopping early at `opts.limit`
    /// (the returned value is `min(C(Q), limit)`). Unlike [`Matcher::find`]
    /// no result graph is ever materialized.
    pub fn count(&self, q: &PatternQuery, opts: MatchOptions) -> u64 {
        let cq = self.compile_full(q);
        self.count_compiled(q, &cq.compiled, &cq.program, opts)
    }

    /// [`Matcher::count`] with a precompiled query — see
    /// [`Matcher::find_compiled`] for the contract.
    pub fn count_compiled(
        &self,
        q: &PatternQuery,
        compiled: &Compiled,
        program: &QueryProgram,
        opts: MatchOptions,
    ) -> u64 {
        if q.num_vertices() == 0 || program.is_empty() {
            return 0;
        }
        if opts.budget.poll().is_err() {
            return 0;
        }
        let limit = opts.limit.map(|l| l as u64);
        let mut st = self.scratch.borrow_mut();
        st.prepare(self.g, q);
        let mut counts: Vec<u64> = Vec::with_capacity(program.components().len());
        for prog in program.components() {
            let mut c: u64 = 0;
            self.run_component(q, compiled, prog, &opts, &mut st, &mut |_| {
                c += 1;
                limit.is_none_or(|l| c < l)
            });
            if c == 0 {
                return 0;
            }
            counts.push(c);
        }
        let total = counts.into_iter().fold(1u64, u64::saturating_mul);
        match limit {
            Some(l) => total.min(l),
            None => total,
        }
    }

    /// Run one component program to completion (or until `emit` declines
    /// or the budget trips), resolving the program's seed source against
    /// this matcher's graph and indexes. The scratch arena is left clean.
    fn run_component(
        &self,
        q: &PatternQuery,
        compiled: &Compiled,
        prog: &crate::vm::Program,
        opts: &MatchOptions,
        st: &mut Scratch,
        emit: &mut dyn FnMut(&Scratch) -> bool,
    ) {
        // union/intersection seeds materialize into the scratch seed
        // buffer, detached while the program runs and reattached after
        let mut buf = std::mem::take(&mut st.seeds);
        let seeds = self.resolve_seeds(prog, &mut buf);
        let cx = crate::vm::VmCtx {
            g: self.g,
            topo: self.topo,
            q,
            compiled,
            prog,
            injective: opts.injective,
            budget: &opts.budget,
            seeds,
        };
        let mut vs = crate::vm::VmState::default();
        crate::vm::run_to_end(&cx, st, &mut vs, emit);
        // release any registers an early stop left bound
        crate::vm::unwind(&cx, st, &mut vs);
        buf.clear();
        st.seeds = buf;
    }

    /// Resolve a program's [`SeedSpec`] into a concrete candidate source:
    /// the dense arena range for a full scan, a borrowed index bucket for
    /// a point probe, or `buf` filled with the materialized union /
    /// intersection.
    fn resolve_seeds<'a>(
        &'a self,
        prog: &crate::vm::Program,
        buf: &'a mut Vec<VertexId>,
    ) -> crate::vm::SeedSrc<'a> {
        use crate::plan_ir::SeedSpec;
        match prog.seed() {
            SeedSpec::FullScan => crate::vm::SeedSrc::Range {
                start: 0,
                end: self.g.num_vertices() as u32,
            },
            SeedSpec::Bucket { index, key } => {
                crate::vm::SeedSrc::Slice(self.indexes[*index].lookup(self.g, key))
            }
            SeedSpec::Union { index, keys } => {
                union_seeds(self.g, &self.indexes[*index], keys, buf);
                crate::vm::SeedSrc::Slice(buf)
            }
            SeedSpec::Intersect { probes } => {
                intersect_seeds(self.g, &self.indexes, probes, buf);
                crate::vm::SeedSrc::Slice(buf)
            }
        }
    }

    /// Materialize the seed candidate space of one component program in
    /// engine order: the dense arena for a full scan, a copy of the index
    /// bucket / union / intersection the optimizer selected — exactly the
    /// candidates (and order) the serial [`Matcher::find_compiled`] search
    /// would draw for that component. Any subrange of the list is an
    /// independently executable [`WorkUnit`].
    pub fn seed_list_for(&self, prog: &crate::vm::Program) -> SeedList {
        use crate::plan_ir::SeedSpec;
        match prog.seed() {
            SeedSpec::FullScan => SeedList::All(self.g.num_vertices()),
            SeedSpec::Bucket { index, key } => {
                SeedList::List(self.indexes[*index].lookup(self.g, key).to_vec())
            }
            SeedSpec::Union { index, keys } => {
                let mut seeds = Vec::new();
                union_seeds(self.g, &self.indexes[*index], keys, &mut seeds);
                SeedList::List(seeds)
            }
            SeedSpec::Intersect { probes } => {
                let mut seeds = Vec::new();
                intersect_seeds(self.g, &self.indexes, probes, &mut seeds);
                SeedList::List(seeds)
            }
        }
    }

    /// Clamp `unit.range` onto `seeds` and view it as a VM seed source.
    fn seed_src_for_unit<'a>(seeds: &'a SeedList, unit: &WorkUnit) -> crate::vm::SeedSrc<'a> {
        match seeds {
            SeedList::All(n) => crate::vm::SeedSrc::Range {
                start: unit.range.start.min(*n) as u32,
                end: unit.range.end.min(*n) as u32,
            },
            SeedList::List(v) => {
                let end = unit.range.end.min(v.len());
                let start = unit.range.start.min(end);
                crate::vm::SeedSrc::Slice(&v[start..end])
            }
        }
    }

    /// Execute one [`WorkUnit`]: enumerate the partial bindings of
    /// component `unit.component` whose seed lies in `unit.range` of
    /// `seeds`, capped at `opts.limit`. `seeds` must come from
    /// [`Matcher::seed_list_for`] on that component's program (over the
    /// same graph and indexes) and `compiled`/`program` from
    /// [`Matcher::compile_full`]. Units of one component partition its
    /// serial result list: concatenating their outputs in range order
    /// equals the serial enumeration.
    pub fn find_unit(
        &self,
        q: &PatternQuery,
        compiled: &Compiled,
        program: &QueryProgram,
        unit: &WorkUnit,
        seeds: &SeedList,
        opts: MatchOptions,
    ) -> Vec<ResultGraph> {
        let cap = opts.limit.unwrap_or(usize::MAX);
        if cap == 0 || opts.budget.poll().is_err() {
            return Vec::new();
        }
        let mut st = self.scratch.borrow_mut();
        st.prepare(self.g, q);
        let mut results = Vec::new();
        self.run_unit(
            q,
            compiled,
            program,
            unit,
            seeds,
            &opts,
            &mut st,
            &mut |s| {
                results.push(s.to_result());
                results.len() < cap
            },
        );
        results
    }

    /// Count the partial bindings of one [`WorkUnit`] without
    /// materializing them, stopping early at `opts.limit` — the counting
    /// twin of [`Matcher::find_unit`].
    pub fn count_unit(
        &self,
        q: &PatternQuery,
        compiled: &Compiled,
        program: &QueryProgram,
        unit: &WorkUnit,
        seeds: &SeedList,
        opts: MatchOptions,
    ) -> u64 {
        if opts.budget.poll().is_err() {
            return 0;
        }
        let limit = opts.limit.map(|l| l as u64);
        let mut st = self.scratch.borrow_mut();
        st.prepare(self.g, q);
        let mut c: u64 = 0;
        self.run_unit(
            q,
            compiled,
            program,
            unit,
            seeds,
            &opts,
            &mut st,
            &mut |_| {
                c += 1;
                limit.is_none_or(|l| c < l)
            },
        );
        match limit {
            Some(l) => c.min(l),
            None => c,
        }
    }

    /// Shared [`WorkUnit`] runner: one component program over one clamped
    /// seed subrange, on this matcher's scratch arena.
    #[allow(clippy::too_many_arguments)] // internal plumbing, not API
    fn run_unit(
        &self,
        q: &PatternQuery,
        compiled: &Compiled,
        program: &QueryProgram,
        unit: &WorkUnit,
        seeds: &SeedList,
        opts: &MatchOptions,
        st: &mut Scratch,
        emit: &mut dyn FnMut(&Scratch) -> bool,
    ) {
        let prog = &program.components()[unit.component];
        let cx = crate::vm::VmCtx {
            g: self.g,
            topo: self.topo,
            q,
            compiled,
            prog,
            injective: opts.injective,
            budget: &opts.budget,
            seeds: Self::seed_src_for_unit(seeds, unit),
        };
        let mut vs = crate::vm::VmState::default();
        crate::vm::run_to_end(&cx, st, &mut vs, emit);
        crate::vm::unwind(&cx, st, &mut vs);
    }
}

/// Intersect the buckets of several point probes into `out`, preserving
/// ascending [`VertexId`] order. `probes` must be non-empty; starting from
/// the (optimizer-sorted) smallest bucket, each further bucket is applied
/// as a binary-search membership filter — buckets are built by ascending
/// arena scan, so they are sorted.
pub(crate) fn intersect_seeds(
    g: &PropertyGraph,
    indexes: &[Arc<AttrIndex>],
    probes: &[(usize, Value)],
    out: &mut Vec<VertexId>,
) {
    out.clear();
    let (first_idx, first_key) = &probes[0];
    out.extend_from_slice(indexes[*first_idx].lookup(g, first_key));
    for (idx, key) in &probes[1..] {
        let bucket = indexes[*idx].lookup(g, key);
        out.retain(|v| bucket.binary_search(v).is_ok());
    }
}

/// Enumerate the result graphs of `q` over `g` (convenience wrapper).
///
/// Thin compatibility shim over the same engine the `whyq-session` facade
/// drives: it compiles and plans `q` on every call and cannot use attribute
/// indexes or the plan cache. Open a `whyq_session::Database`, take a
/// `Session` and use `session.prepare(&q)?.find()` instead.
#[deprecated(
    since = "0.2.0",
    note = "use `Database::open(g)?` + `session.prepare(&q)?.find()` (or `.stream_opts(MatchOptions::limited(n))` for a limit); this shim recompiles the query on every call and bypasses indexes and the plan cache — see docs/migration.md"
)]
pub fn find_matches(g: &PropertyGraph, q: &PatternQuery, limit: Option<usize>) -> Vec<ResultGraph> {
    Matcher::new(g).find(
        q,
        MatchOptions {
            injective: true,
            limit,
            ..Default::default()
        },
    )
}

/// Count the result graphs of `q` over `g` injectively, stopping early at
/// `limit`.
///
/// Thin compatibility shim — see [`find_matches`]; prefer
/// `session.prepare(&q)?.count()` through the `whyq-session` facade.
#[deprecated(
    since = "0.2.0",
    note = "use `Database::open(g)?` + `session.prepare(&q)?.count_opts(MatchOptions::counting(cap))`; this shim recompiles the query on every call and bypasses indexes and the plan cache — see docs/migration.md"
)]
pub fn count_matches(g: &PropertyGraph, q: &PatternQuery, limit: Option<u64>) -> u64 {
    Matcher::new(g).count(q, MatchOptions::counting(limit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use whyq_graph::Value;
    use whyq_query::{DirectionSet, Predicate, QueryBuilder};

    /// Injective count through a throwaway matcher (what the deprecated
    /// `count_matches` shim wraps).
    fn count_matches(g: &PropertyGraph, q: &PatternQuery, limit: Option<u64>) -> u64 {
        Matcher::new(g).count(q, MatchOptions::counting(limit))
    }

    /// Injective find through a throwaway matcher (what the deprecated
    /// `find_matches` shim wraps).
    fn find_matches(g: &PropertyGraph, q: &PatternQuery, limit: Option<usize>) -> Vec<ResultGraph> {
        Matcher::new(g).find(
            q,
            MatchOptions {
                injective: true,
                limit,
                ..Default::default()
            },
        )
    }

    /// Matcher with a freshly built index over `attr` (the non-deprecated
    /// spelling of `with_index`).
    fn indexed<'g>(g: &'g PropertyGraph, attr: &str) -> Matcher<'g> {
        let mut m = Matcher::new(g);
        if let Some(idx) = AttrIndex::build(g, attr) {
            m.attach_index(Arc::new(idx));
        }
        m
    }

    /// Two persons living in one city, knowing each other; a third person in
    /// another city.
    fn social() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person")), ("name", Value::str("Anna"))]);
        let b = g.add_vertex([("type", Value::str("person")), ("name", Value::str("Bert"))]);
        let c = g.add_vertex([("type", Value::str("person")), ("name", Value::str("Cleo"))]);
        let berlin = g.add_vertex([("type", Value::str("city")), ("name", Value::str("Berlin"))]);
        let rome = g.add_vertex([("type", Value::str("city")), ("name", Value::str("Rome"))]);
        g.add_edge(a, b, "knows", [("since", Value::Int(2003))]);
        g.add_edge(b, c, "knows", [("since", Value::Int(2010))]);
        g.add_edge(a, berlin, "livesIn", []);
        g.add_edge(b, berlin, "livesIn", []);
        g.add_edge(c, rome, "livesIn", []);
        g
    }

    fn co_located_friends() -> PatternQuery {
        QueryBuilder::new("colocated")
            .vertex("p1", [Predicate::eq("type", "person")])
            .vertex("p2", [Predicate::eq("type", "person")])
            .vertex("city", [Predicate::eq("type", "city")])
            .edge("p1", "p2", "knows")
            .edge("p1", "city", "livesIn")
            .edge("p2", "city", "livesIn")
            .build()
    }

    #[test]
    fn finds_triangle_match() {
        let g = social();
        let q = co_located_friends();
        let res = find_matches(&g, &q, None);
        assert_eq!(res.len(), 1);
        assert_eq!(count_matches(&g, &q, None), 1);
    }

    #[test]
    fn edge_predicates_filter() {
        let g = social();
        let q = QueryBuilder::new("old-friends")
            .vertex("p1", [Predicate::eq("type", "person")])
            .vertex("p2", [Predicate::eq("type", "person")])
            .edge_full(
                "p1",
                "p2",
                "knows",
                DirectionSet::FORWARD,
                [Predicate::at_most("since", 2005.0)],
            )
            .build();
        assert_eq!(count_matches(&g, &q, None), 1);
    }

    #[test]
    fn direction_semantics() {
        let g = social();
        // Anna -knows-> Bert exists; backward-only must match Bert->Anna side
        let q_fwd = QueryBuilder::new("f")
            .vertex("a", [Predicate::eq("name", "Anna")])
            .vertex("b", [Predicate::eq("name", "Bert")])
            .edge("a", "b", "knows")
            .build();
        assert_eq!(count_matches(&g, &q_fwd, None), 1);
        let q_bwd = QueryBuilder::new("b")
            .vertex("a", [Predicate::eq("name", "Anna")])
            .vertex("b", [Predicate::eq("name", "Bert")])
            .edge_full("b", "a", "knows", DirectionSet::BACKWARD, [])
            .build();
        assert_eq!(count_matches(&g, &q_bwd, None), 1);
        let q_wrong = QueryBuilder::new("w")
            .vertex("a", [Predicate::eq("name", "Anna")])
            .vertex("b", [Predicate::eq("name", "Bert")])
            .edge("b", "a", "knows")
            .build();
        assert_eq!(count_matches(&g, &q_wrong, None), 0);
        let q_both = QueryBuilder::new("bt")
            .vertex("a", [Predicate::eq("name", "Anna")])
            .vertex("b", [Predicate::eq("name", "Bert")])
            .edge_full("b", "a", "knows", DirectionSet::BOTH, [])
            .build();
        assert_eq!(count_matches(&g, &q_both, None), 1);
    }

    #[test]
    fn injectivity_prevents_vertex_reuse() {
        let g = social();
        // p1 knows p2 — both persons; without injectivity a self-match on a
        // reflexive edge could appear; here count distinct ordered pairs
        let q = QueryBuilder::new("pairs")
            .vertex("p1", [Predicate::eq("type", "person")])
            .vertex("p2", [Predicate::eq("type", "person")])
            .edge("p1", "p2", "knows")
            .build();
        assert_eq!(count_matches(&g, &q, None), 2); // (a,b), (b,c)
    }

    #[test]
    fn unconnected_components_multiply() {
        let g = social();
        let q = QueryBuilder::new("pair")
            .vertex("p", [Predicate::eq("type", "person")])
            .vertex("c", [Predicate::eq("type", "city")])
            .build();
        // 3 persons × 2 cities
        assert_eq!(count_matches(&g, &q, None), 6);
        let res = find_matches(&g, &q, None);
        assert_eq!(res.len(), 6);
    }

    #[test]
    fn limits_stop_early() {
        let g = social();
        let q = QueryBuilder::new("p")
            .vertex("p", [Predicate::eq("type", "person")])
            .build();
        assert_eq!(count_matches(&g, &q, Some(2)), 2);
        assert_eq!(find_matches(&g, &q, Some(2)).len(), 2);
        assert_eq!(count_matches(&g, &q, None), 3);
    }

    #[test]
    fn zero_limit_with_multiple_components_finds_nothing() {
        let g = social();
        let q = QueryBuilder::new("pair")
            .vertex("p", [Predicate::eq("type", "person")])
            .vertex("c", [Predicate::eq("type", "city")])
            .build();
        let m = Matcher::new(&g);
        assert!(m.find(&q, MatchOptions::limited(0)).is_empty());
        assert_eq!(m.count(&q, MatchOptions::counting(Some(0))), 0);
    }

    #[test]
    fn empty_query_has_no_matches() {
        let g = social();
        let q = PatternQuery::new();
        assert_eq!(count_matches(&g, &q, None), 0);
        assert!(find_matches(&g, &q, None).is_empty());
    }

    #[test]
    fn indexed_matcher_agrees_with_scan() {
        let g = social();
        let q = co_located_friends();
        let plain = Matcher::new(&g).count(&q, MatchOptions::default());
        let with_idx = indexed(&g, "type").count(&q, MatchOptions::default());
        assert_eq!(plain, with_idx);
    }

    #[test]
    fn point_range_predicate_hits_index() {
        let mut g = PropertyGraph::new();
        let mut last = None;
        for year in 2000..2010 {
            let v = g.add_vertex([("year", Value::Int(year))]);
            last = Some(v);
        }
        g.add_vertex([("year", Value::Float(2005.0))]);
        let _ = last;
        let q = QueryBuilder::new("y")
            .vertex("v", [Predicate::between("year", 2005.0, 2005.0)])
            .build();
        let plain = Matcher::new(&g).count(&q, MatchOptions::default());
        let with_idx = indexed(&g, "year").count(&q, MatchOptions::default());
        // both the Int(2005) and the Float(2005.0) vertex match
        assert_eq!(plain, 2);
        assert_eq!(with_idx, 2);
    }

    #[test]
    fn count_respects_homomorphic_options() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person"))]);
        let b = g.add_vertex([("type", Value::str("person"))]);
        g.add_edge(a, b, "knows", []);
        g.add_edge(b, a, "knows", []);
        let q = QueryBuilder::new("path")
            .vertex("p1", [])
            .vertex("p2", [])
            .vertex("p3", [])
            .edge("p1", "p2", "knows")
            .edge("p2", "p3", "knows")
            .build();
        let m = Matcher::new(&g);
        assert_eq!(m.count(&q, MatchOptions::default()), 0);
        let hom = MatchOptions {
            injective: false,
            limit: None,
            ..Default::default()
        };
        assert_eq!(m.count(&q, hom.clone()), 2);
        assert_eq!(m.find(&q, hom.clone()).len() as u64, m.count(&q, hom));
    }

    #[test]
    fn homomorphic_mode_allows_reuse() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person"))]);
        let b = g.add_vertex([("type", Value::str("person"))]);
        g.add_edge(a, b, "knows", []);
        g.add_edge(b, a, "knows", []);
        // path p1 -> p2 -> p3 homomorphically maps p1=p3=a
        let q = QueryBuilder::new("path")
            .vertex("p1", [])
            .vertex("p2", [])
            .vertex("p3", [])
            .edge("p1", "p2", "knows")
            .edge("p2", "p3", "knows")
            .build();
        assert_eq!(count_matches(&g, &q, None), 0); // injective: needs 3 distinct
        let hom = Matcher::new(&g).find(
            &q,
            MatchOptions {
                injective: false,
                limit: None,
                ..Default::default()
            },
        );
        assert_eq!(hom.len(), 2); // a->b->a and b->a->b
    }

    #[test]
    fn parallel_edges_yield_distinct_matches() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([]);
        let b = g.add_vertex([]);
        g.add_edge(a, b, "t", []);
        g.add_edge(a, b, "t", []);
        let q = QueryBuilder::new("e")
            .vertex("x", [])
            .vertex("y", [])
            .edge("x", "y", "t")
            .build();
        assert_eq!(count_matches(&g, &q, None), 2);
    }

    #[test]
    fn self_loops_with_both_directions_not_double_counted() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([]);
        let b = g.add_vertex([]);
        g.add_edge(a, a, "t", []);
        g.add_edge(a, b, "t", []);
        // x -t- y in both directions: the self-loop must not produce two
        // bindings for the same (edge, vertex) pair
        let q = QueryBuilder::new("b")
            .vertex("x", [])
            .vertex("y", [])
            .edge_full("x", "y", "t", DirectionSet::BOTH, [])
            .build();
        // injective matches: (a,b) via forward, (b,a) via backward
        assert_eq!(count_matches(&g, &q, None), 2);
        let hom = Matcher::new(&g).find(
            &q,
            MatchOptions {
                injective: false,
                limit: None,
                ..Default::default()
            },
        );
        // homomorphic adds (a,a) once — not twice
        assert_eq!(hom.len(), 3);
    }

    #[test]
    fn duplicate_edge_types_not_double_counted() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([]);
        let b = g.add_vertex([]);
        g.add_edge(a, b, "knows", []);
        let mut q = PatternQuery::new();
        let x = q.add_vertex(whyq_query::QueryVertex::any());
        let y = q.add_vertex(whyq_query::QueryVertex::any());
        let mut e = whyq_query::QueryEdge::typed(x, y, "knows");
        e.types.push("knows".into());
        q.add_edge(e);
        // the type disjunction admits "knows" twice; the edge must still
        // bind once
        assert_eq!(count_matches(&g, &q, None), 1);
        assert_eq!(find_matches(&g, &q, None).len(), 1);
    }

    #[test]
    fn scratch_is_reused_across_calls() {
        let g = social();
        let q = co_located_friends();
        let m = indexed(&g, "type");
        for _ in 0..3 {
            assert_eq!(m.count(&q, MatchOptions::default()), 1);
            assert_eq!(m.find(&q, MatchOptions::default()).len(), 1);
        }
    }

    #[test]
    fn work_units_partition_the_serial_enumeration() {
        let g = social();
        let q = co_located_friends();
        let m = indexed(&g, "type");
        let cq = m.compile_full(&q);
        assert_eq!(cq.program.components().len(), 1);
        let seeds = m.seed_list_for(&cq.program.components()[0]);
        let serial = m.find_compiled(&q, &cq.compiled, &cq.program, MatchOptions::default());
        // concatenating the units of every split reproduces serial order
        for chunks in [1usize, 2, 3, 16] {
            let mut merged = Vec::new();
            let mut counted = 0u64;
            for range in crate::work::split_ranges(seeds.len(), chunks) {
                let unit = WorkUnit {
                    component: 0,
                    range,
                };
                merged.extend(m.find_unit(
                    &q,
                    &cq.compiled,
                    &cq.program,
                    &unit,
                    &seeds,
                    MatchOptions::default(),
                ));
                counted += m.count_unit(
                    &q,
                    &cq.compiled,
                    &cq.program,
                    &unit,
                    &seeds,
                    MatchOptions::default(),
                );
            }
            assert_eq!(merged, serial, "chunks={chunks}");
            assert_eq!(counted, serial.len() as u64);
        }
    }

    #[test]
    fn unit_limits_cap_each_unit() {
        let g = social();
        let q = QueryBuilder::new("p")
            .vertex("p", [Predicate::eq("type", "person")])
            .build();
        let m = Matcher::new(&g);
        let cq = m.compile_full(&q);
        let seeds = m.seed_list_for(&cq.program.components()[0]);
        let unit = WorkUnit::whole(0, &seeds);
        let opts = MatchOptions::counting(Some(2));
        assert_eq!(
            m.count_unit(&q, &cq.compiled, &cq.program, &unit, &seeds, opts),
            2
        );
        assert_eq!(
            m.find_unit(
                &q,
                &cq.compiled,
                &cq.program,
                &unit,
                &seeds,
                MatchOptions::limited(2)
            )
            .len(),
            2
        );
        // an empty range is a valid unit that finds nothing
        let empty = WorkUnit {
            component: 0,
            range: 0..0,
        };
        assert_eq!(
            m.count_unit(
                &q,
                &cq.compiled,
                &cq.program,
                &empty,
                &seeds,
                MatchOptions::default()
            ),
            0
        );
    }
}

#[cfg(test)]
#[allow(deprecated)] // this module *is* the deprecation test: the shims
                     // must keep working until they are removed
mod deprecated_shim_tests {
    use super::*;
    use whyq_graph::Value;
    use whyq_query::{Predicate, QueryBuilder};

    #[test]
    fn shims_agree_with_the_matcher_they_wrap() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person"))]);
        let b = g.add_vertex([("type", Value::str("person"))]);
        g.add_edge(a, b, "knows", []);
        let q = QueryBuilder::new("pair")
            .vertex("p1", [Predicate::eq("type", "person")])
            .vertex("p2", [Predicate::eq("type", "person")])
            .edge("p1", "p2", "knows")
            .build();
        let m = Matcher::new(&g);
        assert_eq!(
            count_matches(&g, &q, None),
            m.count(&q, MatchOptions::default())
        );
        assert_eq!(
            find_matches(&g, &q, Some(1)).len(),
            m.find(&q, MatchOptions::limited(1)).len()
        );
        // with_index still builds and uses an index
        let idx = Matcher::new(&g).with_index("type");
        assert_eq!(
            idx.count(&q, MatchOptions::default()),
            m.count(&q, MatchOptions::default())
        );
        // unknown attribute: no-op, not a panic
        let none = Matcher::new(&g).with_index("nonexistent");
        assert!(none.indexes().is_empty());
    }
}
