//! The backtracking matching engine.
//!
//! Evaluates the compiled plan of every weakly connected query component by
//! depth-first search over candidate assignments and combines component
//! results as a cartesian product (§4.3.3). Counting supports early
//! termination — the why-query engine only ever needs to know whether a
//! candidate query crosses a cardinality threshold, not the exact count
//! beyond it.

use crate::compile::{build_plans, Compiled, ComponentPlan, Step};
use crate::index::AttrIndex;
use crate::result::ResultGraph;
use whyq_graph::{EdgeId, PropertyGraph, VertexId};
use whyq_query::{Interval, PatternQuery, QVid};

/// Options controlling match semantics.
#[derive(Debug, Clone, Copy)]
pub struct MatchOptions {
    /// Injective mapping of vertices and edges within a component
    /// (subgraph-isomorphism style). `false` = homomorphic matching.
    pub injective: bool,
    /// Stop after this many result graphs.
    pub limit: Option<usize>,
}

impl Default for MatchOptions {
    fn default() -> Self {
        MatchOptions {
            injective: true,
            limit: None,
        }
    }
}

impl MatchOptions {
    /// Default options with a result cap.
    pub fn limited(limit: usize) -> Self {
        MatchOptions {
            limit: Some(limit),
            ..Self::default()
        }
    }
}

/// A reusable matcher bound to one data graph, optionally with a vertex
/// attribute index for seeding.
#[derive(Debug, Clone)]
pub struct Matcher<'g> {
    g: &'g PropertyGraph,
    index: Option<AttrIndex>,
}

impl<'g> Matcher<'g> {
    /// Matcher without an index.
    pub fn new(g: &'g PropertyGraph) -> Self {
        Matcher { g, index: None }
    }

    /// Attach an equality index over `attr` (no-op if absent from graph).
    pub fn with_index(mut self, attr: &str) -> Self {
        self.index = AttrIndex::build(self.g, attr);
        self
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g PropertyGraph {
        self.g
    }

    /// Enumerate result graphs.
    pub fn find(&self, q: &PatternQuery, opts: MatchOptions) -> Vec<ResultGraph> {
        if q.num_vertices() == 0 {
            return Vec::new();
        }
        let compiled = Compiled::new(self.g, q);
        let plans = build_plans(self.g, q, &compiled);
        let cap = opts.limit.unwrap_or(usize::MAX);

        // evaluate each component independently
        let mut per_component: Vec<Vec<ResultGraph>> = Vec::with_capacity(plans.len());
        for plan in &plans {
            let mut results = Vec::new();
            self.eval_component(q, &compiled, plan, opts.injective, &mut |r| {
                results.push(r.clone());
                results.len() < cap
            });
            if results.is_empty() {
                return Vec::new();
            }
            per_component.push(results);
        }

        // cartesian combination, capped
        let mut combined = per_component.remove(0);
        for comp in per_component {
            let mut next = Vec::new();
            'outer: for base in &combined {
                for extra in &comp {
                    next.push(base.merged(extra));
                    if next.len() >= cap {
                        break 'outer;
                    }
                }
            }
            combined = next;
        }
        combined.truncate(cap);
        combined
    }

    /// Count result graphs, stopping early at `limit` (the returned value is
    /// `min(C(Q), limit)`).
    pub fn count(&self, q: &PatternQuery, limit: Option<u64>) -> u64 {
        if q.num_vertices() == 0 {
            return 0;
        }
        let compiled = Compiled::new(self.g, q);
        let plans = build_plans(self.g, q, &compiled);
        let mut counts: Vec<u64> = Vec::with_capacity(plans.len());
        for plan in &plans {
            let mut c: u64 = 0;
            self.eval_component(q, &compiled, plan, true, &mut |_| {
                c += 1;
                limit.is_none_or(|l| c < l)
            });
            if c == 0 {
                return 0;
            }
            counts.push(c);
        }
        let total = counts
            .into_iter()
            .fold(1u64, |acc, c| acc.saturating_mul(c));
        match limit {
            Some(l) => total.min(l),
            None => total,
        }
    }

    /// DFS over one component plan; `emit` returns `false` to stop.
    fn eval_component(
        &self,
        q: &PatternQuery,
        compiled: &Compiled,
        plan: &ComponentPlan,
        injective: bool,
        emit: &mut dyn FnMut(&ResultGraph) -> bool,
    ) {
        let mut partial = ResultGraph::new();
        self.step(q, compiled, &plan.steps, 0, injective, &mut partial, emit);
    }

    #[allow(clippy::too_many_arguments)]
    fn step(
        &self,
        q: &PatternQuery,
        compiled: &Compiled,
        steps: &[Step],
        i: usize,
        injective: bool,
        partial: &mut ResultGraph,
        emit: &mut dyn FnMut(&ResultGraph) -> bool,
    ) -> bool {
        if i == steps.len() {
            return emit(partial);
        }
        match steps[i] {
            Step::Seed { vertex } => {
                let cv = compiled.vertex(vertex);
                let from_index = self.seed_candidates(q, vertex);
                match from_index {
                    Some(cands) => {
                        for dv in cands {
                            if !cv.accepts(self.g, dv) {
                                continue;
                            }
                            if injective && partial.uses_data_vertex(dv) {
                                continue;
                            }
                            let mut next = partial.clone();
                            next.bind_vertex(vertex, dv);
                            if !self.step(q, compiled, steps, i + 1, injective, &mut next, emit) {
                                return false;
                            }
                        }
                    }
                    None => {
                        for dv in self.g.vertex_ids() {
                            if !cv.accepts(self.g, dv) {
                                continue;
                            }
                            if injective && partial.uses_data_vertex(dv) {
                                continue;
                            }
                            let mut next = partial.clone();
                            next.bind_vertex(vertex, dv);
                            if !self.step(q, compiled, steps, i + 1, injective, &mut next, emit) {
                                return false;
                            }
                        }
                    }
                }
                true
            }
            Step::ExpandNew { edge, from, to } => {
                let qe = q.edge(edge).expect("live");
                let ce = compiled.edge(edge);
                let cv_to = compiled.vertex(to);
                let bound = partial.vertex(from).expect("plan binds from first");
                let mut cands: Vec<(EdgeId, VertexId)> = Vec::new();
                let from_is_src = from == qe.src;
                if qe.directions.forward {
                    // data edge μ(src) → μ(dst)
                    if from_is_src {
                        for &de in self.g.out_edges(bound) {
                            cands.push((de, self.g.edge(de).dst));
                        }
                    } else {
                        for &de in self.g.in_edges(bound) {
                            cands.push((de, self.g.edge(de).src));
                        }
                    }
                }
                if qe.directions.backward {
                    // data edge μ(dst) → μ(src)
                    if from_is_src {
                        for &de in self.g.in_edges(bound) {
                            cands.push((de, self.g.edge(de).src));
                        }
                    } else {
                        for &de in self.g.out_edges(bound) {
                            cands.push((de, self.g.edge(de).dst));
                        }
                    }
                }
                cands.sort();
                cands.dedup();
                for (de, dv) in cands {
                    if !ce.accepts(self.g.edge(de)) || !cv_to.accepts(self.g, dv) {
                        continue;
                    }
                    if injective
                        && (partial.uses_data_vertex(dv) || partial.uses_data_edge(de))
                    {
                        continue;
                    }
                    let mut next = partial.clone();
                    next.bind_vertex(to, dv);
                    next.bind_edge(edge, de);
                    if !self.step(q, compiled, steps, i + 1, injective, &mut next, emit) {
                        return false;
                    }
                }
                true
            }
            Step::Close { edge } => {
                let qe = q.edge(edge).expect("live");
                let ce = compiled.edge(edge);
                let ms = partial.vertex(qe.src).expect("bound");
                let mt = partial.vertex(qe.dst).expect("bound");
                let mut cands: Vec<EdgeId> = Vec::new();
                if qe.directions.forward {
                    for &de in self.g.out_edges(ms) {
                        if self.g.edge(de).dst == mt {
                            cands.push(de);
                        }
                    }
                }
                if qe.directions.backward {
                    for &de in self.g.out_edges(mt) {
                        if self.g.edge(de).dst == ms {
                            cands.push(de);
                        }
                    }
                }
                cands.sort();
                cands.dedup();
                for de in cands {
                    if !ce.accepts(self.g.edge(de)) {
                        continue;
                    }
                    if injective && partial.uses_data_edge(de) {
                        continue;
                    }
                    let mut next = partial.clone();
                    next.bind_edge(edge, de);
                    if !self.step(q, compiled, steps, i + 1, injective, &mut next, emit) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Candidate list from the index if the seed vertex pins the indexed
    /// attribute with a `OneOf` interval.
    fn seed_candidates(&self, q: &PatternQuery, vertex: QVid) -> Option<Vec<VertexId>> {
        let idx = self.index.as_ref()?;
        let qv = q.vertex(vertex)?;
        for p in &qv.predicates {
            if self.g.attr_symbol(&p.attr) == Some(idx.attr()) {
                if let Interval::OneOf(vals) = &p.interval {
                    let mut out = Vec::new();
                    for v in vals {
                        out.extend_from_slice(idx.lookup(v));
                    }
                    out.sort();
                    out.dedup();
                    return Some(out);
                }
            }
        }
        None
    }
}

/// Enumerate the result graphs of `q` over `g` (convenience wrapper).
pub fn find_matches(g: &PropertyGraph, q: &PatternQuery, limit: Option<usize>) -> Vec<ResultGraph> {
    Matcher::new(g).find(
        q,
        MatchOptions {
            injective: true,
            limit,
        },
    )
}

/// Count the result graphs of `q` over `g`, stopping early at `limit`.
pub fn count_matches(g: &PropertyGraph, q: &PatternQuery, limit: Option<u64>) -> u64 {
    Matcher::new(g).count(q, limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_graph::Value;
    use whyq_query::{DirectionSet, Predicate, QueryBuilder};

    /// Two persons living in one city, knowing each other; a third person in
    /// another city.
    fn social() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person")), ("name", Value::str("Anna"))]);
        let b = g.add_vertex([("type", Value::str("person")), ("name", Value::str("Bert"))]);
        let c = g.add_vertex([("type", Value::str("person")), ("name", Value::str("Cleo"))]);
        let berlin = g.add_vertex([("type", Value::str("city")), ("name", Value::str("Berlin"))]);
        let rome = g.add_vertex([("type", Value::str("city")), ("name", Value::str("Rome"))]);
        g.add_edge(a, b, "knows", [("since", Value::Int(2003))]);
        g.add_edge(b, c, "knows", [("since", Value::Int(2010))]);
        g.add_edge(a, berlin, "livesIn", []);
        g.add_edge(b, berlin, "livesIn", []);
        g.add_edge(c, rome, "livesIn", []);
        g
    }

    fn co_located_friends() -> PatternQuery {
        QueryBuilder::new("colocated")
            .vertex("p1", [Predicate::eq("type", "person")])
            .vertex("p2", [Predicate::eq("type", "person")])
            .vertex("city", [Predicate::eq("type", "city")])
            .edge("p1", "p2", "knows")
            .edge("p1", "city", "livesIn")
            .edge("p2", "city", "livesIn")
            .build()
    }

    #[test]
    fn finds_triangle_match() {
        let g = social();
        let q = co_located_friends();
        let res = find_matches(&g, &q, None);
        assert_eq!(res.len(), 1);
        assert_eq!(count_matches(&g, &q, None), 1);
    }

    #[test]
    fn edge_predicates_filter() {
        let g = social();
        let q = QueryBuilder::new("old-friends")
            .vertex("p1", [Predicate::eq("type", "person")])
            .vertex("p2", [Predicate::eq("type", "person")])
            .edge_full(
                "p1",
                "p2",
                "knows",
                DirectionSet::FORWARD,
                [Predicate::at_most("since", 2005.0)],
            )
            .build();
        assert_eq!(count_matches(&g, &q, None), 1);
    }

    #[test]
    fn direction_semantics() {
        let g = social();
        // Anna -knows-> Bert exists; backward-only must match Bert->Anna side
        let q_fwd = QueryBuilder::new("f")
            .vertex("a", [Predicate::eq("name", "Anna")])
            .vertex("b", [Predicate::eq("name", "Bert")])
            .edge("a", "b", "knows")
            .build();
        assert_eq!(count_matches(&g, &q_fwd, None), 1);
        let q_bwd = QueryBuilder::new("b")
            .vertex("a", [Predicate::eq("name", "Anna")])
            .vertex("b", [Predicate::eq("name", "Bert")])
            .edge_full("b", "a", "knows", DirectionSet::BACKWARD, [])
            .build();
        assert_eq!(count_matches(&g, &q_bwd, None), 1);
        let q_wrong = QueryBuilder::new("w")
            .vertex("a", [Predicate::eq("name", "Anna")])
            .vertex("b", [Predicate::eq("name", "Bert")])
            .edge("b", "a", "knows")
            .build();
        assert_eq!(count_matches(&g, &q_wrong, None), 0);
        let q_both = QueryBuilder::new("bt")
            .vertex("a", [Predicate::eq("name", "Anna")])
            .vertex("b", [Predicate::eq("name", "Bert")])
            .edge_full("b", "a", "knows", DirectionSet::BOTH, [])
            .build();
        assert_eq!(count_matches(&g, &q_both, None), 1);
    }

    #[test]
    fn injectivity_prevents_vertex_reuse() {
        let g = social();
        // p1 knows p2 — both persons; without injectivity a self-match on a
        // reflexive edge could appear; here count distinct ordered pairs
        let q = QueryBuilder::new("pairs")
            .vertex("p1", [Predicate::eq("type", "person")])
            .vertex("p2", [Predicate::eq("type", "person")])
            .edge("p1", "p2", "knows")
            .build();
        assert_eq!(count_matches(&g, &q, None), 2); // (a,b), (b,c)
    }

    #[test]
    fn unconnected_components_multiply() {
        let g = social();
        let q = QueryBuilder::new("pair")
            .vertex("p", [Predicate::eq("type", "person")])
            .vertex("c", [Predicate::eq("type", "city")])
            .build();
        // 3 persons × 2 cities
        assert_eq!(count_matches(&g, &q, None), 6);
        let res = find_matches(&g, &q, None);
        assert_eq!(res.len(), 6);
    }

    #[test]
    fn limits_stop_early() {
        let g = social();
        let q = QueryBuilder::new("p").vertex("p", [Predicate::eq("type", "person")]).build();
        assert_eq!(count_matches(&g, &q, Some(2)), 2);
        assert_eq!(find_matches(&g, &q, Some(2)).len(), 2);
        assert_eq!(count_matches(&g, &q, None), 3);
    }

    #[test]
    fn empty_query_has_no_matches() {
        let g = social();
        let q = PatternQuery::new();
        assert_eq!(count_matches(&g, &q, None), 0);
        assert!(find_matches(&g, &q, None).is_empty());
    }

    #[test]
    fn indexed_matcher_agrees_with_scan() {
        let g = social();
        let q = co_located_friends();
        let plain = Matcher::new(&g).count(&q, None);
        let indexed = Matcher::new(&g).with_index("type").count(&q, None);
        assert_eq!(plain, indexed);
    }

    #[test]
    fn homomorphic_mode_allows_reuse() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person"))]);
        let b = g.add_vertex([("type", Value::str("person"))]);
        g.add_edge(a, b, "knows", []);
        g.add_edge(b, a, "knows", []);
        // path p1 -> p2 -> p3 homomorphically maps p1=p3=a
        let q = QueryBuilder::new("path")
            .vertex("p1", [])
            .vertex("p2", [])
            .vertex("p3", [])
            .edge("p1", "p2", "knows")
            .edge("p2", "p3", "knows")
            .build();
        assert_eq!(count_matches(&g, &q, None), 0); // injective: needs 3 distinct
        let hom = Matcher::new(&g).find(
            &q,
            MatchOptions {
                injective: false,
                limit: None,
            },
        );
        assert_eq!(hom.len(), 2); // a->b->a and b->a->b
    }

    #[test]
    fn parallel_edges_yield_distinct_matches() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([]);
        let b = g.add_vertex([]);
        g.add_edge(a, b, "t", []);
        g.add_edge(a, b, "t", []);
        let q = QueryBuilder::new("e")
            .vertex("x", [])
            .vertex("y", [])
            .edge("x", "y", "t")
            .build();
        assert_eq!(count_matches(&g, &q, None), 2);
    }
}
