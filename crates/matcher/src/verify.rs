//! Debug-mode plan verifier: structural invariants of compiled plans.
//!
//! The planner ([`crate::compile::build_plans`]) is greedy and heuristic;
//! its *ordering* choices are free, but a handful of structural invariants
//! must hold for the engine's DFS to be sound:
//!
//! * one plan per weakly connected component of the live query (or no
//!   plans at all, exactly when the query is unsatisfiable or empty);
//! * every plan starts with a single [`Step::Seed`] whose vertex belongs
//!   to the component the plan covers;
//! * [`Step::ExpandNew`] traverses from a bound endpoint to an unbound one
//!   and both are the compiled edge's endpoints;
//! * [`Step::Close`] fires only when both endpoints are already bound;
//! * every component edge is bound exactly once, every component vertex
//!   exactly once;
//! * every live query element has a compiled slot.
//!
//! [`verify_plans`] checks all of this in `O(plan size)`. It runs
//! automatically inside [`crate::Matcher::compile`] under
//! `cfg(debug_assertions)` — i.e. in every test and debug build, at zero
//! release-mode cost — and the CI static-analysis lane drives it over the
//! whole test corpus.
//!
//! [`verify_ir`] extends the same discipline to the lowered plan IR
//! ([`crate::plan_ir`]): in addition to the plan-level binding-order
//! invariants it checks that filters only test elements whose scan is
//! still pending, that every scan's candidate eventually gets bound by
//! exactly one (inline or standalone) bind, and that seed specs reference
//! attached indexes only. The optimizer re-runs it after every enabled
//! pass (`debug_assertions`), and the pass power-set property suite
//! (`tests/optimizer_props.rs`) asserts it on every pass combination.

use crate::compile::{Compiled, ComponentPlan, Step};
use crate::plan_ir::{BindTarget, FilterTest, IrNode, PlanIr, SeedSpec};
use whyq_query::{PatternQuery, QEid, QVid};

/// Check the structural invariants of `plans` for `q` compiled as
/// `compiled`. Returns `Err` with a description of the first violation.
pub fn verify_plans(
    q: &PatternQuery,
    compiled: &Compiled,
    plans: &[ComponentPlan],
) -> Result<(), String> {
    // every live element must have a compiled slot
    for v in q.vertex_ids() {
        if compiled
            .vertices
            .get(v.0 as usize)
            .is_none_or(Option::is_none)
        {
            return Err(format!("live query vertex {v} has no compiled slot"));
        }
    }
    for e in q.edge_ids() {
        if compiled.edges.get(e.0 as usize).is_none_or(Option::is_none) {
            return Err(format!("live query edge {e} has no compiled slot"));
        }
    }

    let components = q.weakly_connected_components();
    if plans.is_empty() {
        // legal exactly for unsatisfiable or vertex-less queries — the
        // engine short-circuits those to "no matches"
        if compiled.unsatisfiable() || q.num_vertices() == 0 {
            return Ok(());
        }
        return Err("satisfiable non-empty query compiled to zero plans".into());
    }
    if plans.len() != components.len() {
        return Err(format!(
            "{} plans for {} weakly connected components",
            plans.len(),
            components.len()
        ));
    }

    let mut covered_vertices: Vec<QVid> = Vec::new();
    let mut covered_edges: Vec<QEid> = Vec::new();
    for plan in plans {
        verify_component_plan(
            q,
            plan,
            &components,
            &mut covered_vertices,
            &mut covered_edges,
        )?;
    }

    // global coverage: each vertex and edge bound by exactly one plan
    for v in q.vertex_ids() {
        match covered_vertices.iter().filter(|&&x| x == v).count() {
            1 => {}
            0 => return Err(format!("query vertex {v} is never bound by any plan")),
            n => return Err(format!("query vertex {v} is bound {n} times")),
        }
    }
    for e in q.edge_ids() {
        match covered_edges.iter().filter(|&&x| x == e).count() {
            1 => {}
            0 => return Err(format!("query edge {e} is never bound by any plan")),
            n => return Err(format!("query edge {e} is bound {n} times")),
        }
    }
    Ok(())
}

fn verify_component_plan(
    q: &PatternQuery,
    plan: &ComponentPlan,
    components: &[Vec<QVid>],
    covered_vertices: &mut Vec<QVid>,
    covered_edges: &mut Vec<QEid>,
) -> Result<(), String> {
    let Some(&Step::Seed { vertex: seed }) = plan.steps.first() else {
        return Err(format!(
            "plan does not start with a Seed step: {:?}",
            plan.steps.first()
        ));
    };
    let Some(comp) = components.iter().find(|c| c.contains(&seed)) else {
        return Err(format!("seed vertex {seed} is not a live query vertex"));
    };

    let mut bound: Vec<QVid> = Vec::with_capacity(comp.len());
    for (i, step) in plan.steps.iter().enumerate() {
        match *step {
            Step::Seed { vertex } => {
                if i != 0 {
                    return Err(format!("Seed step for {vertex} at position {i} (> 0)"));
                }
                bound.push(vertex);
            }
            Step::ExpandNew { edge, from, to } => {
                let Some(qe) = q.edge(edge) else {
                    return Err(format!("ExpandNew binds dead query edge {edge}"));
                };
                if !(qe.src == from && qe.dst == to || qe.src == to && qe.dst == from) {
                    return Err(format!(
                        "ExpandNew {edge} claims endpoints {from}->{to}, edge has {}->{}",
                        qe.src, qe.dst
                    ));
                }
                if !bound.contains(&from) {
                    return Err(format!(
                        "ExpandNew {edge} traverses from unbound vertex {from}"
                    ));
                }
                if bound.contains(&to) {
                    return Err(format!(
                        "ExpandNew {edge} rebinds already-bound vertex {to} (should be Close)"
                    ));
                }
                bound.push(to);
                if covered_edges.contains(&edge) {
                    return Err(format!("query edge {edge} bound twice"));
                }
                covered_edges.push(edge);
            }
            Step::Close { edge } => {
                let Some(qe) = q.edge(edge) else {
                    return Err(format!("Close binds dead query edge {edge}"));
                };
                if !bound.contains(&qe.src) || !bound.contains(&qe.dst) {
                    return Err(format!(
                        "Close {edge} fires before both endpoints are bound"
                    ));
                }
                if covered_edges.contains(&edge) {
                    return Err(format!("query edge {edge} bound twice"));
                }
                covered_edges.push(edge);
            }
        }
    }

    // the plan must bind its whole component, nothing more
    for &v in comp {
        if !bound.contains(&v) {
            return Err(format!(
                "plan seeded at {seed} never binds component vertex {v}"
            ));
        }
    }
    for &v in &bound {
        if !comp.contains(&v) {
            return Err(format!(
                "plan seeded at {seed} binds vertex {v} outside its component"
            ));
        }
    }
    covered_vertices.extend(bound);
    Ok(())
}

/// What the most recent scan node produced, until its bind resolves.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Pending {
    Seed { vertex: QVid },
    Expansion { edge: QEid, to: QVid },
    Closure { edge: QEid },
}

impl Pending {
    /// Is `test` a test of this scan's candidate elements?
    fn admits(self, test: FilterTest) -> bool {
        match (self, test) {
            (Pending::Seed { vertex }, FilterTest::VertexPreds(v)) => v == vertex,
            (Pending::Expansion { to, .. }, FilterTest::VertexPreds(v)) => v == to,
            (
                Pending::Expansion { edge, .. } | Pending::Closure { edge },
                FilterTest::EdgeType(e) | FilterTest::EdgeAttrs(e),
            ) => e == edge,
            _ => false,
        }
    }
}

/// Check the structural invariants of the lowered IR `ir` for `q`
/// compiled as `compiled`, with `num_indexes` attribute indexes attached.
/// Returns `Err` with a description of the first violation.
///
/// On top of the [`verify_plans`] invariants (seed-first, bound-to-unbound
/// expansion, both-bound closes, exactly-once coverage, one component per
/// plan), the IR level adds:
///
/// * the first node of a component is its only [`IrNode::SeedScan`] and
///   the last its only [`IrNode::Emit`];
/// * between a scan and its bind only [`IrNode::Filter`] nodes testing
///   *that scan's* candidate elements may appear, and the bind target
///   must match the scan (no scan's candidate is left unbound, none is
///   bound twice);
/// * inline scan filters likewise test only the scan's own elements;
/// * `typed` scans and `EdgeType` filters only appear on edges whose
///   compiled form has a type disjunction;
/// * seed specs are well-formed: index positions within `num_indexes`,
///   unions non-empty, intersections of at least two probes.
///
/// Enforced over the pass power set by `tests/optimizer_props.rs` and on
/// every compile in debug builds.
pub fn verify_ir(
    q: &PatternQuery,
    compiled: &Compiled,
    ir: &PlanIr,
    num_indexes: usize,
) -> Result<(), String> {
    // compiled slot coverage, shared with verify_plans
    for v in q.vertex_ids() {
        if compiled
            .vertices
            .get(v.0 as usize)
            .is_none_or(Option::is_none)
        {
            return Err(format!("live query vertex {v} has no compiled slot"));
        }
    }
    for e in q.edge_ids() {
        if compiled.edges.get(e.0 as usize).is_none_or(Option::is_none) {
            return Err(format!("live query edge {e} has no compiled slot"));
        }
    }

    let components = q.weakly_connected_components();
    if ir.components.is_empty() {
        if compiled.unsatisfiable() || q.num_vertices() == 0 {
            return Ok(());
        }
        return Err("satisfiable non-empty query lowered to zero components".into());
    }
    if ir.components.len() != components.len() {
        return Err(format!(
            "{} IR components for {} weakly connected components",
            ir.components.len(),
            components.len()
        ));
    }

    let mut covered_vertices: Vec<QVid> = Vec::new();
    let mut covered_edges: Vec<QEid> = Vec::new();
    for comp_ir in &ir.components {
        verify_component_ir(
            q,
            compiled,
            comp_ir,
            &components,
            num_indexes,
            &mut covered_vertices,
            &mut covered_edges,
        )?;
    }

    for v in q.vertex_ids() {
        match covered_vertices.iter().filter(|&&x| x == v).count() {
            1 => {}
            0 => return Err(format!("query vertex {v} is never bound by any component")),
            n => return Err(format!("query vertex {v} is bound {n} times")),
        }
    }
    for e in q.edge_ids() {
        match covered_edges.iter().filter(|&&x| x == e).count() {
            1 => {}
            0 => return Err(format!("query edge {e} is never bound by any component")),
            n => return Err(format!("query edge {e} is bound {n} times")),
        }
    }
    Ok(())
}

fn verify_seed_spec(spec: &SeedSpec, num_indexes: usize) -> Result<(), String> {
    let check_pos = |pos: usize| {
        if pos >= num_indexes {
            Err(format!(
                "seed spec references index {pos}, only {num_indexes} attached"
            ))
        } else {
            Ok(())
        }
    };
    match spec {
        SeedSpec::FullScan => Ok(()),
        SeedSpec::Bucket { index, .. } => check_pos(*index),
        SeedSpec::Union { index, keys } => {
            if keys.is_empty() {
                return Err("union seed spec with no keys".into());
            }
            check_pos(*index)
        }
        SeedSpec::Intersect { probes } => {
            if probes.len() < 2 {
                return Err(format!(
                    "intersect seed spec with {} probe(s), need at least 2",
                    probes.len()
                ));
            }
            probes.iter().try_for_each(|&(pos, _)| check_pos(pos))
        }
    }
}

fn verify_component_ir(
    q: &PatternQuery,
    compiled: &Compiled,
    comp_ir: &crate::plan_ir::ComponentIr,
    components: &[Vec<QVid>],
    num_indexes: usize,
    covered_vertices: &mut Vec<QVid>,
    covered_edges: &mut Vec<QEid>,
) -> Result<(), String> {
    let nodes = &comp_ir.nodes;
    let Some(IrNode::SeedScan { vertex: seed, .. }) = nodes.first() else {
        return Err(format!(
            "IR component does not start with a SeedScan: {:?}",
            nodes.first()
        ));
    };
    let seed = *seed;
    if seed != comp_ir.seed_vertex {
        return Err(format!(
            "component records seed {} but scans {seed}",
            comp_ir.seed_vertex
        ));
    }
    let Some(comp) = components.iter().find(|c| c.contains(&seed)) else {
        return Err(format!("seed vertex {seed} is not a live query vertex"));
    };
    if !matches!(nodes.last(), Some(IrNode::Emit)) {
        return Err("IR component does not end with Emit".into());
    }

    let edge_has_types = |e: QEid| -> Result<bool, String> {
        if q.edge(e).is_none() {
            return Err(format!("IR references dead query edge {e}"));
        }
        Ok(compiled.edge(e).types.is_some())
    };
    let check_filter = |test: FilterTest, pending: Pending| -> Result<(), String> {
        if !pending.admits(test) {
            return Err(format!(
                "filter {test:?} does not test the pending scan's candidate"
            ));
        }
        if let FilterTest::EdgeType(e) = test {
            if !edge_has_types(e)? {
                return Err(format!("EdgeType filter on untyped query edge {e}"));
            }
        }
        Ok(())
    };

    let mut bound: Vec<QVid> = Vec::with_capacity(comp.len());
    let mut pending: Option<Pending> = None;
    for (i, node) in nodes.iter().enumerate() {
        if node.is_scan() && i != 0 && pending.is_some() {
            return Err(format!(
                "scan at node {i} while the previous scan's bind is still pending"
            ));
        }
        match node {
            IrNode::SeedScan {
                vertex,
                spec,
                filters,
                bind,
                ..
            } => {
                if i != 0 {
                    return Err(format!("SeedScan for {vertex} at node {i} (> 0)"));
                }
                verify_seed_spec(spec, num_indexes)?;
                let p = Pending::Seed { vertex: *vertex };
                filters.iter().try_for_each(|&t| check_filter(t, p))?;
                if *bind {
                    bound.push(*vertex);
                } else {
                    pending = Some(p);
                }
            }
            IrNode::ExpandRun {
                edge,
                from,
                to,
                typed,
                filters,
                bind,
                ..
            } => {
                let Some(qe) = q.edge(*edge) else {
                    return Err(format!("ExpandRun binds dead query edge {edge}"));
                };
                if !(qe.src == *from && qe.dst == *to || qe.src == *to && qe.dst == *from) {
                    return Err(format!(
                        "ExpandRun {edge} claims endpoints {from}->{to}, edge has {}->{}",
                        qe.src, qe.dst
                    ));
                }
                if !bound.contains(from) {
                    return Err(format!(
                        "ExpandRun {edge} traverses from unbound vertex {from}"
                    ));
                }
                if bound.contains(to) {
                    return Err(format!(
                        "ExpandRun {edge} rebinds already-bound vertex {to} (should be CloseRun)"
                    ));
                }
                if *typed && !edge_has_types(*edge)? {
                    return Err(format!("typed ExpandRun on untyped query edge {edge}"));
                }
                let p = Pending::Expansion {
                    edge: *edge,
                    to: *to,
                };
                filters.iter().try_for_each(|&t| check_filter(t, p))?;
                if covered_edges.contains(edge) {
                    return Err(format!("query edge {edge} bound twice"));
                }
                covered_edges.push(*edge);
                if *bind {
                    bound.push(*to);
                } else {
                    pending = Some(p);
                }
            }
            IrNode::CloseRun {
                edge,
                typed,
                filters,
                bind,
            } => {
                let Some(qe) = q.edge(*edge) else {
                    return Err(format!("CloseRun binds dead query edge {edge}"));
                };
                if !bound.contains(&qe.src) || !bound.contains(&qe.dst) {
                    return Err(format!(
                        "CloseRun {edge} fires before both endpoints are bound"
                    ));
                }
                if *typed && !edge_has_types(*edge)? {
                    return Err(format!("typed CloseRun on untyped query edge {edge}"));
                }
                let p = Pending::Closure { edge: *edge };
                filters.iter().try_for_each(|&t| check_filter(t, p))?;
                if covered_edges.contains(edge) {
                    return Err(format!("query edge {edge} bound twice"));
                }
                covered_edges.push(*edge);
                if !*bind {
                    pending = Some(p);
                }
            }
            IrNode::Filter { test } => {
                let Some(p) = pending else {
                    return Err(format!(
                        "standalone filter {test:?} at node {i} with no pending scan"
                    ));
                };
                check_filter(*test, p)?;
            }
            IrNode::Bind { target } => {
                let Some(p) = pending else {
                    return Err(format!("Bind at node {i} with no pending scan"));
                };
                let matches = match (*target, p) {
                    (BindTarget::Seed { vertex }, Pending::Seed { vertex: pv }) => vertex == pv,
                    (
                        BindTarget::Expansion { edge, to },
                        Pending::Expansion { edge: pe, to: pt },
                    ) => edge == pe && to == pt,
                    (BindTarget::Closure { edge }, Pending::Closure { edge: pe }) => edge == pe,
                    _ => false,
                };
                if !matches {
                    return Err(format!(
                        "Bind target {target:?} does not match the pending scan"
                    ));
                }
                match *target {
                    BindTarget::Seed { vertex } => bound.push(vertex),
                    BindTarget::Expansion { to, .. } => bound.push(to),
                    BindTarget::Closure { .. } => {}
                }
                pending = None;
            }
            IrNode::Emit => {
                if i != nodes.len() - 1 {
                    return Err(format!("Emit at node {i}, not last"));
                }
                if pending.is_some() {
                    return Err("Emit while a scan's bind is still pending".into());
                }
            }
        }
    }

    // the component must bind its whole component, nothing more
    for &v in comp {
        if !bound.contains(&v) {
            return Err(format!(
                "IR component seeded at {seed} never binds component vertex {v}"
            ));
        }
    }
    for &v in &bound {
        if !comp.contains(&v) {
            return Err(format!(
                "IR component seeded at {seed} binds vertex {v} outside its component"
            ));
        }
    }
    covered_vertices.extend(bound);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::build_plans;
    use whyq_graph::{PropertyGraph, Value};
    use whyq_query::{Predicate, QueryBuilder};

    fn graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person"))]);
        let b = g.add_vertex([("type", Value::str("person"))]);
        let c = g.add_vertex([("type", Value::str("city"))]);
        g.add_edge(a, b, "knows", []);
        g.add_edge(a, c, "livesIn", []);
        g.seal();
        g
    }

    fn query() -> PatternQuery {
        QueryBuilder::new("q")
            .vertex("p1", [Predicate::eq("type", "person")])
            .vertex("p2", [Predicate::eq("type", "person")])
            .vertex("c", [Predicate::eq("type", "city")])
            .edge("p1", "p2", "knows")
            .edge("p1", "c", "livesIn")
            .build()
    }

    #[test]
    fn real_plans_verify() {
        let g = graph();
        let q = query();
        let compiled = Compiled::new(&g, &q);
        let plans = build_plans(&g, &q, &compiled, &[]);
        verify_plans(&q, &compiled, &plans).unwrap();
    }

    #[test]
    fn empty_plans_require_unsatisfiability() {
        let g = graph();
        let q = query();
        let compiled = Compiled::new(&g, &q);
        let err = verify_plans(&q, &compiled, &[]).unwrap_err();
        assert!(err.contains("zero plans"), "{err}");

        // unsatisfiable query: empty plans are the *expected* shape
        let unsat = QueryBuilder::new("u")
            .vertex("a", [Predicate::eq("type", "robot")])
            .build();
        let cu = Compiled::new(&g, &unsat);
        assert!(cu.unsatisfiable());
        verify_plans(&unsat, &cu, &[]).unwrap();
    }

    #[test]
    fn corrupted_plans_are_rejected() {
        let g = graph();
        let q = query();
        let compiled = Compiled::new(&g, &q);
        let good = build_plans(&g, &q, &compiled, &[]);

        // drop a step: component not fully bound
        let mut truncated = good.clone();
        truncated[0].steps.pop();
        assert!(verify_plans(&q, &compiled, &truncated).is_err());

        // duplicate the last step: edge bound twice
        let mut duped = good.clone();
        let last = *duped[0].steps.last().unwrap();
        duped[0].steps.push(last);
        assert!(verify_plans(&q, &compiled, &duped).is_err());

        // reverse the steps: seed not first / expand from unbound
        let mut reversed = good.clone();
        reversed[0].steps.reverse();
        assert!(verify_plans(&q, &compiled, &reversed).is_err());
    }

    #[test]
    fn lowered_ir_verifies_across_the_pass_power_set() {
        let g = graph();
        let q = query();
        let compiled = Compiled::new(&g, &q);
        let (plans, est) = crate::compile::build_plans_est(&g, &q, &compiled, &[]);
        for i in 0..8 {
            let mut ir = crate::plan_ir::lower(&compiled, &plans, &est);
            crate::optimize::optimize(
                &mut ir,
                &g,
                &q,
                &compiled,
                &[],
                crate::optimize::PassSet::subset(i),
            );
            verify_ir(&q, &compiled, &ir, 0).unwrap_or_else(|e| panic!("subset {i}: {e}"));
        }
    }

    #[test]
    fn corrupted_ir_is_rejected() {
        let g = graph();
        let q = query();
        let compiled = Compiled::new(&g, &q);
        let (plans, est) = crate::compile::build_plans_est(&g, &q, &compiled, &[]);
        let good = crate::plan_ir::lower(&compiled, &plans, &est);
        verify_ir(&q, &compiled, &good, 0).unwrap();

        // drop the trailing Emit
        let mut no_emit = good.clone();
        no_emit.components[0].nodes.pop();
        assert!(verify_ir(&q, &compiled, &no_emit, 0).is_err());

        // drop a Bind: the scan's candidate is never committed
        let mut no_bind = good.clone();
        let pos = no_bind.components[0]
            .nodes
            .iter()
            .position(|n| matches!(n, IrNode::Bind { .. }))
            .unwrap();
        no_bind.components[0].nodes.remove(pos);
        assert!(verify_ir(&q, &compiled, &no_bind, 0).is_err());

        // seed spec referencing an unattached index
        let mut bad_spec = good.clone();
        if let IrNode::SeedScan { spec, .. } = &mut bad_spec.components[0].nodes[0] {
            *spec = SeedSpec::Bucket {
                index: 3,
                key: whyq_graph::Value::Int(1),
            };
        }
        assert!(verify_ir(&q, &compiled, &bad_spec, 0).is_err());

        // an inline filter testing a vertex that is not the scan's target
        // (the already-bound `from` endpoint instead of `to`)
        let mut wrong_target = good.clone();
        if let Some(IrNode::ExpandRun { from, filters, .. }) = wrong_target.components[0]
            .nodes
            .iter_mut()
            .find(|n| matches!(n, IrNode::ExpandRun { .. }))
        {
            filters.push(FilterTest::VertexPreds(*from));
        }
        assert!(verify_ir(&q, &compiled, &wrong_target, 0).is_err());
    }
}
