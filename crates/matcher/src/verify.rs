//! Debug-mode plan verifier: structural invariants of compiled plans.
//!
//! The planner ([`crate::compile::build_plans`]) is greedy and heuristic;
//! its *ordering* choices are free, but a handful of structural invariants
//! must hold for the engine's DFS to be sound:
//!
//! * one plan per weakly connected component of the live query (or no
//!   plans at all, exactly when the query is unsatisfiable or empty);
//! * every plan starts with a single [`Step::Seed`] whose vertex belongs
//!   to the component the plan covers;
//! * [`Step::ExpandNew`] traverses from a bound endpoint to an unbound one
//!   and both are the compiled edge's endpoints;
//! * [`Step::Close`] fires only when both endpoints are already bound;
//! * every component edge is bound exactly once, every component vertex
//!   exactly once;
//! * every live query element has a compiled slot.
//!
//! [`verify_plans`] checks all of this in `O(plan size)`. It runs
//! automatically inside [`crate::Matcher::compile`] under
//! `cfg(debug_assertions)` — i.e. in every test and debug build, at zero
//! release-mode cost — and the CI static-analysis lane drives it over the
//! whole test corpus.

use crate::compile::{Compiled, ComponentPlan, Step};
use whyq_query::{PatternQuery, QEid, QVid};

/// Check the structural invariants of `plans` for `q` compiled as
/// `compiled`. Returns `Err` with a description of the first violation.
pub fn verify_plans(
    q: &PatternQuery,
    compiled: &Compiled,
    plans: &[ComponentPlan],
) -> Result<(), String> {
    // every live element must have a compiled slot
    for v in q.vertex_ids() {
        if compiled
            .vertices
            .get(v.0 as usize)
            .is_none_or(Option::is_none)
        {
            return Err(format!("live query vertex {v} has no compiled slot"));
        }
    }
    for e in q.edge_ids() {
        if compiled.edges.get(e.0 as usize).is_none_or(Option::is_none) {
            return Err(format!("live query edge {e} has no compiled slot"));
        }
    }

    let components = q.weakly_connected_components();
    if plans.is_empty() {
        // legal exactly for unsatisfiable or vertex-less queries — the
        // engine short-circuits those to "no matches"
        if compiled.unsatisfiable() || q.num_vertices() == 0 {
            return Ok(());
        }
        return Err("satisfiable non-empty query compiled to zero plans".into());
    }
    if plans.len() != components.len() {
        return Err(format!(
            "{} plans for {} weakly connected components",
            plans.len(),
            components.len()
        ));
    }

    let mut covered_vertices: Vec<QVid> = Vec::new();
    let mut covered_edges: Vec<QEid> = Vec::new();
    for plan in plans {
        verify_component_plan(
            q,
            plan,
            &components,
            &mut covered_vertices,
            &mut covered_edges,
        )?;
    }

    // global coverage: each vertex and edge bound by exactly one plan
    for v in q.vertex_ids() {
        match covered_vertices.iter().filter(|&&x| x == v).count() {
            1 => {}
            0 => return Err(format!("query vertex {v} is never bound by any plan")),
            n => return Err(format!("query vertex {v} is bound {n} times")),
        }
    }
    for e in q.edge_ids() {
        match covered_edges.iter().filter(|&&x| x == e).count() {
            1 => {}
            0 => return Err(format!("query edge {e} is never bound by any plan")),
            n => return Err(format!("query edge {e} is bound {n} times")),
        }
    }
    Ok(())
}

fn verify_component_plan(
    q: &PatternQuery,
    plan: &ComponentPlan,
    components: &[Vec<QVid>],
    covered_vertices: &mut Vec<QVid>,
    covered_edges: &mut Vec<QEid>,
) -> Result<(), String> {
    let Some(&Step::Seed { vertex: seed }) = plan.steps.first() else {
        return Err(format!(
            "plan does not start with a Seed step: {:?}",
            plan.steps.first()
        ));
    };
    let Some(comp) = components.iter().find(|c| c.contains(&seed)) else {
        return Err(format!("seed vertex {seed} is not a live query vertex"));
    };

    let mut bound: Vec<QVid> = Vec::with_capacity(comp.len());
    for (i, step) in plan.steps.iter().enumerate() {
        match *step {
            Step::Seed { vertex } => {
                if i != 0 {
                    return Err(format!("Seed step for {vertex} at position {i} (> 0)"));
                }
                bound.push(vertex);
            }
            Step::ExpandNew { edge, from, to } => {
                let Some(qe) = q.edge(edge) else {
                    return Err(format!("ExpandNew binds dead query edge {edge}"));
                };
                if !(qe.src == from && qe.dst == to || qe.src == to && qe.dst == from) {
                    return Err(format!(
                        "ExpandNew {edge} claims endpoints {from}->{to}, edge has {}->{}",
                        qe.src, qe.dst
                    ));
                }
                if !bound.contains(&from) {
                    return Err(format!(
                        "ExpandNew {edge} traverses from unbound vertex {from}"
                    ));
                }
                if bound.contains(&to) {
                    return Err(format!(
                        "ExpandNew {edge} rebinds already-bound vertex {to} (should be Close)"
                    ));
                }
                bound.push(to);
                if covered_edges.contains(&edge) {
                    return Err(format!("query edge {edge} bound twice"));
                }
                covered_edges.push(edge);
            }
            Step::Close { edge } => {
                let Some(qe) = q.edge(edge) else {
                    return Err(format!("Close binds dead query edge {edge}"));
                };
                if !bound.contains(&qe.src) || !bound.contains(&qe.dst) {
                    return Err(format!(
                        "Close {edge} fires before both endpoints are bound"
                    ));
                }
                if covered_edges.contains(&edge) {
                    return Err(format!("query edge {edge} bound twice"));
                }
                covered_edges.push(edge);
            }
        }
    }

    // the plan must bind its whole component, nothing more
    for &v in comp {
        if !bound.contains(&v) {
            return Err(format!(
                "plan seeded at {seed} never binds component vertex {v}"
            ));
        }
    }
    for &v in &bound {
        if !comp.contains(&v) {
            return Err(format!(
                "plan seeded at {seed} binds vertex {v} outside its component"
            ));
        }
    }
    covered_vertices.extend(bound);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::build_plans;
    use whyq_graph::{PropertyGraph, Value};
    use whyq_query::{Predicate, QueryBuilder};

    fn graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person"))]);
        let b = g.add_vertex([("type", Value::str("person"))]);
        let c = g.add_vertex([("type", Value::str("city"))]);
        g.add_edge(a, b, "knows", []);
        g.add_edge(a, c, "livesIn", []);
        g.seal();
        g
    }

    fn query() -> PatternQuery {
        QueryBuilder::new("q")
            .vertex("p1", [Predicate::eq("type", "person")])
            .vertex("p2", [Predicate::eq("type", "person")])
            .vertex("c", [Predicate::eq("type", "city")])
            .edge("p1", "p2", "knows")
            .edge("p1", "c", "livesIn")
            .build()
    }

    #[test]
    fn real_plans_verify() {
        let g = graph();
        let q = query();
        let compiled = Compiled::new(&g, &q);
        let plans = build_plans(&g, &q, &compiled, &[]);
        verify_plans(&q, &compiled, &plans).unwrap();
    }

    #[test]
    fn empty_plans_require_unsatisfiability() {
        let g = graph();
        let q = query();
        let compiled = Compiled::new(&g, &q);
        let err = verify_plans(&q, &compiled, &[]).unwrap_err();
        assert!(err.contains("zero plans"), "{err}");

        // unsatisfiable query: empty plans are the *expected* shape
        let unsat = QueryBuilder::new("u")
            .vertex("a", [Predicate::eq("type", "robot")])
            .build();
        let cu = Compiled::new(&g, &unsat);
        assert!(cu.unsatisfiable());
        verify_plans(&unsat, &cu, &[]).unwrap();
    }

    #[test]
    fn corrupted_plans_are_rejected() {
        let g = graph();
        let q = query();
        let compiled = Compiled::new(&g, &q);
        let good = build_plans(&g, &q, &compiled, &[]);

        // drop a step: component not fully bound
        let mut truncated = good.clone();
        truncated[0].steps.pop();
        assert!(verify_plans(&q, &compiled, &truncated).is_err());

        // duplicate the last step: edge bound twice
        let mut duped = good.clone();
        let last = *duped[0].steps.last().unwrap();
        duped[0].steps.push(last);
        assert!(verify_plans(&q, &compiled, &duped).is_err());

        // reverse the steps: seed not first / expand from unbound
        let mut reversed = good.clone();
        reversed[0].steps.reverse();
        assert!(verify_plans(&q, &compiled, &reversed).is_err());
    }
}
