//! Sibling-plan derivation: patch a compiled parent plan for a child
//! query that differs in exactly one predicate interval.
//!
//! The relax loop (§6.3.1) and the server batcher both produce streams of
//! queries that are structurally identical and differ only in one
//! constraint's interval — `whyq_query::DeltaKind::SingleInterval`. For
//! those, a full recompile (analyze → plan → optimize → encode) does no
//! new work: the instruction stream tests predicates *by reference* into
//! the [`Compiled`] table at run time, so swapping the changed element's
//! resolved predicates and, when necessary, rebuilding the seed source of
//! the one affected component yields a plan that is result-equivalent to
//! a fresh compile.
//!
//! Soundness rests on two invariants of the PR 8 pipeline:
//!
//! - **Filters are never elided by seed selection.** Every program runs
//!   the full predicate chain for every element it binds, so a seed
//!   source that *over*-approximates the changed interval's candidates
//!   (up to `FullScan`) changes cost, never results.
//! - **Derivation is refused when the parent plan might not test the
//!   changed attribute.** The parent's compiled element must carry a
//!   resolved predicate on the changed attribute; the analyzer only ever
//!   *merges or drops* predicates it proves redundant, so a present
//!   predicate guarantees the program emits the element's filter.
//!
//! Row *order* of a derived program can differ from a fresh compile of
//! the same query (the optimizer might have chosen a different seed); the
//! session layer keys cached row lists by [`crate::vm::Program::fingerprint`]
//! to keep replay order-exact.

use crate::compile::{Compiled, CompiledEdge, CompiledVertex};
use crate::index::AttrIndex;
use crate::plan_ir::SeedSpec;
use crate::vm::{Program, QueryProgram};
use std::sync::Arc;
use whyq_graph::{PropertyGraph, Symbol, Value};
use whyq_query::{Interval, PatternQuery, QVid, Target};

/// Derive a compiled plan for `child` from its parent's plan, given that
/// the two differ only in the interval of the single predicate named by
/// (`target`, `attr`) — the caller is responsible for having classified
/// the pair via `whyq_query::QueryDelta::between`.
///
/// Returns `None` when the patch cannot be proven sound (unknown
/// attribute, untested predicate, unsatisfiable patched element,
/// component mismatch); the caller then falls back to a full compile.
pub fn derive_sibling(
    g: &PropertyGraph,
    indexes: &[Arc<AttrIndex>],
    parent_compiled: &Compiled,
    parent_program: &QueryProgram,
    child: &PatternQuery,
    target: Target,
    attr: &str,
) -> Option<(Compiled, QueryProgram)> {
    // The changed attribute must resolve in this graph, otherwise the
    // child predicate is unsatisfiable and the full pipeline's pruning
    // (analyzer + compile) is the right path.
    let sym = g.attr_symbol(attr)?;

    let components = child.weakly_connected_components();
    if parent_program.components().len() != components.len() {
        return None;
    }

    let mut compiled = parent_compiled.clone();
    match target {
        Target::Vertex(v) => {
            let slot = compiled.vertices.get_mut(v.0 as usize)?.as_mut()?;
            // Refuse unless the parent plan provably tests this attribute.
            if !slot.preds.iter().any(|p| p.attr_symbol() == Some(sym)) {
                return None;
            }
            let patched = CompiledVertex::compile(g, child.vertex(v)?);
            if patched.unsatisfiable() {
                return None;
            }
            *slot = patched;
            // Only the changed vertex's component can need a new seed
            // source, and only when that vertex seeds it.
            let comp_idx = components.iter().position(|c| c.contains(&v))?;
            let prog = &parent_program.components()[comp_idx];
            let new_prog = if prog.seed_vertex() == v {
                reseed(indexes, prog, child, v, sym, attr)?
            } else {
                prog.clone()
            };
            let mut progs: Vec<Program> = parent_program.components().to_vec();
            progs[comp_idx] = new_prog;
            Some((compiled, QueryProgram::from_components(progs)))
        }
        Target::Edge(e) => {
            let slot = compiled.edges.get_mut(e.0 as usize)?.as_mut()?;
            if !slot.preds.iter().any(|p| p.attr_symbol() == Some(sym)) {
                return None;
            }
            let patched = CompiledEdge::compile(g, child.edge(e)?);
            if patched.unsatisfiable() {
                return None;
            }
            *slot = patched;
            // Edge predicates never feed seed selection; the programs
            // carry over verbatim and read the patched table at run time.
            Some((compiled, parent_program.clone()))
        }
    }
}

/// Rebuild the seed source of `prog` for the changed predicate on the
/// seed vertex itself. Every rewrite here yields a source that *covers*
/// the child interval's candidates (superset is fine — the filter chain
/// still runs), so correctness never depends on the interval's shape.
fn reseed(
    indexes: &[Arc<AttrIndex>],
    prog: &Program,
    child: &PatternQuery,
    v: QVid,
    sym: Symbol,
    attr: &str,
) -> Option<Program> {
    let on_changed_attr =
        |pos: usize| -> bool { indexes.get(pos).is_some_and(|i| i.attr() == sym) };
    let child_interval = || -> Option<&Interval> {
        child
            .vertex(v)?
            .predicates
            .iter()
            .find(|p| p.attr == attr)
            .map(|p| &p.interval)
    };
    // The keys an index probe may use for the child interval: every
    // `OneOf` constant, or a degenerate point range. `None` = the
    // interval is not enumerable (a real range) — fall back to coverage
    // by scan.
    let probe_keys = |i: &Interval| -> Option<Vec<Value>> {
        match i {
            Interval::OneOf(vals) => {
                let mut keys: Vec<Value> = Vec::with_capacity(vals.len());
                for val in vals {
                    if !keys.contains(val) {
                        keys.push(val.clone());
                    }
                }
                (!keys.is_empty()).then_some(keys)
            }
            _ => i.point_value().map(|pv| vec![pv]),
        }
    };
    let spec = match prog.seed() {
        SeedSpec::FullScan => SeedSpec::FullScan,
        SeedSpec::Bucket { index, key } if !on_changed_attr(*index) => SeedSpec::Bucket {
            index: *index,
            key: key.clone(),
        },
        SeedSpec::Union { index, keys } if !on_changed_attr(*index) => SeedSpec::Union {
            index: *index,
            keys: keys.clone(),
        },
        SeedSpec::Bucket { index, .. } | SeedSpec::Union { index, .. } => {
            match probe_keys(child_interval()?) {
                Some(mut keys) if keys.len() == 1 => SeedSpec::Bucket {
                    index: *index,
                    key: keys.pop().expect("one key"),
                },
                Some(keys) => SeedSpec::Union {
                    index: *index,
                    keys,
                },
                None => SeedSpec::FullScan,
            }
        }
        SeedSpec::Intersect { probes } => {
            let mut kept: Vec<(usize, Value)> = probes
                .iter()
                .filter(|(pos, _)| !on_changed_attr(*pos))
                .cloned()
                .collect();
            // Re-probe the changed attribute only when the new interval
            // is a single point; otherwise dropping its probe leaves a
            // sound superset.
            if let Some(pos) = probes.iter().map(|(p, _)| *p).find(|&p| on_changed_attr(p)) {
                if let Some(pv) = child_interval()?.point_value() {
                    kept.push((pos, pv));
                }
            }
            match kept.len() {
                0 => SeedSpec::FullScan,
                1 => {
                    let (index, key) = kept.pop().expect("one probe");
                    SeedSpec::Bucket { index, key }
                }
                _ => SeedSpec::Intersect { probes: kept },
            }
        }
    };
    Some(prog.with_seed(spec))
}
