//! Deterministic fault injection (compiled only under the
//! `fault-inject` cargo feature).
//!
//! Robustness claims — "a panicking worker cannot take the database
//! down", "a cancelled search returns in bounded time" — are only
//! testable if faults can be produced *on demand, deterministically*.
//! This registry provides process-global injection points that the
//! execution stack consults at well-defined places:
//!
//! * **panic-at-unit-N** — the session executor panics the worker that
//!   pulls work unit `N` of a batch (exercises `catch_unwind` isolation
//!   and `WhyqError::WorkerPanicked` surfacing);
//! * **delay-at-seed-K** — the matcher sleeps before binding the `K`-th
//!   seed vertex bound process-wide since arming (widens race windows so
//!   cancellation can be requested mid-search);
//! * **exhaust-after-charges-K** — every governed [`crate::Budget`]
//!   reports [`crate::Termination::BudgetExhausted`] after `K` charges
//!   (forces the graceful-degradation paths without huge workloads).
//!
//! Plans are armed with [`arm`], which returns a [`FaultGuard`]: the
//! guard holds a process-wide test lock (so concurrently running `#[test]`
//! functions cannot observe each other's faults) and disarms the plan on
//! drop — including when the test itself unwinds from an injected panic.
//!
//! None of this code exists without the feature; the hooks in the matcher
//! and the executor compile to nothing, so production builds carry zero
//! overhead and zero new failure modes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// A deterministic fault plan. `Default` injects nothing.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Panic the worker that pulls this executor work-unit index.
    pub panic_at_unit: Option<usize>,
    /// Sleep for the given duration before binding the n-th seed vertex
    /// (0-based, counted process-wide since the plan was armed).
    pub delay_at_seed: Option<(u64, Duration)>,
    /// Force every governed budget to report exhaustion after this many
    /// charges (0 = the very first charge trips).
    pub exhaust_after_charges: Option<u64>,
}

static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
/// Serializes tests that arm plans (held by [`FaultGuard`]).
static TEST_LOCK: Mutex<()> = Mutex::new(());
static SEEDS_BOUND: AtomicU64 = AtomicU64::new(0);
static CHARGES: AtomicU64 = AtomicU64::new(0);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // An injected panic may unwind a thread while a *caller* of this
    // module holds no lock, but never while these locks are held; recover
    // from poison regardless so one failing test cannot wedge the rest.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn current_plan() -> Option<FaultPlan> {
    lock(&PLAN).clone()
}

/// Arms `plan` for the whole process until the returned guard drops.
/// Also takes (and holds) the fault test lock, serializing tests that
/// inject faults, and resets the injection counters.
pub fn arm(plan: FaultPlan) -> FaultGuard {
    let serial = lock(&TEST_LOCK);
    SEEDS_BOUND.store(0, Ordering::SeqCst);
    CHARGES.store(0, Ordering::SeqCst);
    *lock(&PLAN) = Some(plan);
    FaultGuard { _serial: serial }
}

/// Disarms the active [`FaultPlan`] (and releases the test lock) on drop.
pub struct FaultGuard {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        *lock(&PLAN) = None;
    }
}

/// Executor hook: called with each work-unit index before the unit runs.
pub fn maybe_panic_at_unit(unit: usize) {
    if let Some(plan) = current_plan() {
        if plan.panic_at_unit == Some(unit) {
            panic!("fault-inject: forced panic at work unit {unit}");
        }
    }
}

/// Matcher hook: called each time a seed vertex is bound.
pub fn on_seed_bound() {
    if let Some(plan) = current_plan() {
        if let Some((k, delay)) = plan.delay_at_seed {
            if SEEDS_BOUND.fetch_add(1, Ordering::SeqCst) == k {
                std::thread::sleep(delay);
            }
        }
    }
}

/// Budget hook: true when forced exhaustion should trip this charge.
pub fn charge_exhausted() -> bool {
    match current_plan() {
        Some(FaultPlan {
            exhaust_after_charges: Some(k),
            ..
        }) => CHARGES.fetch_add(1, Ordering::SeqCst) >= k,
        _ => false,
    }
}
