//! Lazy result enumeration — the suspendable twin of the eager engine.
//!
//! [`MatchStream`] yields [`ResultGraph`]s one at a time from the same
//! bytecode programs [`Matcher::find`] executes, without ever
//! materializing the result set: the VM already runs on an explicit frame
//! stack (one frame per scan instruction, each remembering its candidate
//! cursor — see [`crate::vm`]), so the search *suspends* after every
//! emitted match and resumes exactly where it stopped on the next
//! [`Iterator::next`] call. A caller that stops after ten results pays
//! for ten results — the contract prepared queries of the `whyq-session`
//! facade expose as `PreparedQuery::stream()`.
//!
//! Multi-component queries combine component results as a cartesian
//! product (§4.3.3). The product itself — where the blow-up lives — is
//! enumerated lazily with an odometer over the non-first components'
//! (capped) result lists; only those factor lists are materialized, once,
//! on the first `next()` call. Connected queries, the common case,
//! materialize nothing.
//!
//! The stream owns its scratch arena and VM state, so any number of
//! streams can be in-flight concurrently with each other and with
//! `find`/`count` calls on the matcher they came from.

use crate::budget::{Budget, Termination};
use crate::combine::FactorOdometer;
use crate::compile::Compiled;
use crate::engine::{intersect_seeds, union_seeds, MatchOptions, Matcher, Scratch};
use crate::index::AttrIndex;
use crate::plan_ir::SeedSpec;
use crate::result::ResultGraph;
use crate::vm::{self, QueryProgram, SeedSrc, VmCtx, VmState};
use std::sync::Arc;
use whyq_graph::{CsrTopology, PropertyGraph, VertexId};
use whyq_query::PatternQuery;

/// The seed source of the component currently being advanced, in owned
/// form (the stream cannot borrow an index bucket across `next()` calls
/// without freezing `self`, so bucket / union / intersection candidates
/// are copied into [`MatchStream::seed_buf`] when the component starts).
enum OwnedSeeds {
    /// Full scan of the (dense) vertex arena `0..n`.
    Range(u32),
    /// Materialized candidates live in `seed_buf`.
    Buf,
}

/// Lazy iterator over the result graphs of one compiled query.
///
/// Created by [`Matcher::stream`] or directly via [`MatchStream::over`]
/// with a cached compilation. Yields exactly the multiset
/// [`Matcher::find`] would return (in the same order), honoring the
/// injectivity and limit of its [`MatchOptions`].
pub struct MatchStream<'g> {
    g: &'g PropertyGraph,
    topo: &'g CsrTopology,
    indexes: Vec<Arc<AttrIndex>>,
    q: Arc<PatternQuery>,
    compiled: Arc<Compiled>,
    program: Arc<QueryProgram>,
    injective: bool,
    /// Resource governance shared with the caller (see
    /// [`MatchOptions::budget`]); on a trip the stream ends early and
    /// [`MatchStream::termination`] reports the cause.
    budget: Budget,
    /// Results still allowed out (from `MatchOptions::limit`).
    remaining: usize,
    started: bool,
    done: bool,
    /// Lazy cartesian enumerator over the materialized results of
    /// components `1..n` (program order, each factor capped at the stream
    /// limit; no factors for connected queries). Shared with `find`'s
    /// eager combination, so product order is identical by construction.
    odo: FactorOdometer,
    /// Current match of component 0, combined with every factor
    /// combination before the VM advances.
    cur0: Option<ResultGraph>,
    scratch: Scratch,
    /// Suspended VM frame stack of the component currently advancing.
    vs: VmState,
    /// Seed source of that component, resolved by
    /// [`MatchStream::resolve_seeds_for`].
    cur_seeds: OwnedSeeds,
    /// Backing storage for [`OwnedSeeds::Buf`].
    seed_buf: Vec<VertexId>,
}

impl<'g> MatchStream<'g> {
    /// Stream over a precompiled query. `compiled`/`program` must come
    /// from [`Matcher::compile_full`] (or
    /// [`Matcher::compile_with_passes`]) on a query with the same
    /// signature over the same graph and indexes — the contract the
    /// `whyq-session` plan cache maintains.
    pub fn over(
        g: &'g PropertyGraph,
        indexes: Vec<Arc<AttrIndex>>,
        q: Arc<PatternQuery>,
        compiled: Arc<Compiled>,
        program: Arc<QueryProgram>,
        opts: MatchOptions,
    ) -> Self {
        MatchStream {
            g,
            topo: g.topology(),
            indexes,
            q,
            compiled,
            program,
            injective: opts.injective,
            budget: opts.budget.clone(),
            remaining: opts.limit.unwrap_or(usize::MAX),
            started: false,
            done: false,
            odo: FactorOdometer::default(),
            cur0: None,
            scratch: Scratch::default(),
            vs: VmState::default(),
            cur_seeds: OwnedSeeds::Range(0),
            seed_buf: Vec::new(),
        }
    }

    /// How the stream's governed execution has ended so far:
    /// [`Termination::Complete`] while no budget limit has tripped. When a
    /// limit trips mid-stream, iteration stops early and this reports why
    /// — the results already yielded are a prefix of the full enumeration.
    pub fn termination(&self) -> Termination {
        self.budget.termination()
    }

    /// First-call setup: size the arena, materialize the factor lists of
    /// components `1..n` and park the component-0 VM at its seed scan.
    fn start(&mut self) {
        self.started = true;
        if self.q.num_vertices() == 0 || self.program.is_empty() || self.remaining == 0 {
            self.done = true;
            return;
        }
        // refuse an already-tripped (or zero) budget before any setup work
        if self.budget.poll().is_err() {
            self.done = true;
            return;
        }
        self.scratch.prepare(self.g, &self.q);
        let cap = self.remaining;
        let mut factors = Vec::new();
        for comp in 1..self.program.components().len() {
            let factor = self.run_component_to_vec(comp, cap);
            if factor.is_empty() {
                // an empty component zeroes the cartesian product
                self.done = true;
                return;
            }
            factors.push(factor);
        }
        self.odo = FactorOdometer::new(factors);
        self.vs.reset();
        self.resolve_seeds_for(0);
    }

    /// Run one component's program to completion, collecting at most
    /// `cap` results, and leave the scratch arena clean.
    fn run_component_to_vec(&mut self, comp: usize, cap: usize) -> Vec<ResultGraph> {
        self.vs.reset();
        self.resolve_seeds_for(comp);
        let mut out = Vec::new();
        while let Some(r) = self.next_component_match(comp) {
            out.push(r);
            if out.len() >= cap {
                break;
            }
        }
        self.unwind(comp);
        out
    }

    /// Resolve component `comp`'s seed source into owned form: full scans
    /// stay a range; bucket / union / intersection candidates are copied
    /// into the reusable seed buffer.
    fn resolve_seeds_for(&mut self, comp: usize) {
        let program = Arc::clone(&self.program);
        self.cur_seeds = match program.components()[comp].seed() {
            SeedSpec::FullScan => OwnedSeeds::Range(self.g.num_vertices() as u32),
            SeedSpec::Bucket { index, key } => {
                self.seed_buf.clear();
                self.seed_buf
                    .extend_from_slice(self.indexes[*index].lookup(self.g, key));
                OwnedSeeds::Buf
            }
            SeedSpec::Union { index, keys } => {
                // the shared materializers keep the stream's candidate
                // order identical to the eager engine's by construction
                union_seeds(self.g, &self.indexes[*index], keys, &mut self.seed_buf);
                OwnedSeeds::Buf
            }
            SeedSpec::Intersect { probes } => {
                intersect_seeds(self.g, &self.indexes, probes, &mut self.seed_buf);
                OwnedSeeds::Buf
            }
        };
    }

    /// Resume component `comp`'s VM until it emits the next full
    /// assignment (returned as a materialized [`ResultGraph`]) or
    /// exhausts / trips its budget.
    fn next_component_match(&mut self, comp: usize) -> Option<ResultGraph> {
        let program = Arc::clone(&self.program);
        let q = Arc::clone(&self.q);
        let compiled = Arc::clone(&self.compiled);
        let cx = VmCtx {
            g: self.g,
            topo: self.topo,
            q: &q,
            compiled: &compiled,
            prog: &program.components()[comp],
            injective: self.injective,
            budget: &self.budget,
            seeds: match self.cur_seeds {
                OwnedSeeds::Range(n) => SeedSrc::Range { start: 0, end: n },
                OwnedSeeds::Buf => SeedSrc::Slice(&self.seed_buf),
            },
        };
        if vm::next_match(&cx, &mut self.scratch, &mut self.vs) {
            Some(self.scratch.to_result())
        } else {
            None
        }
    }

    /// Abandon component `comp`'s suspended run, unbinding whatever its
    /// frames still hold — used when a component run stops before natural
    /// exhaustion.
    fn unwind(&mut self, comp: usize) {
        let program = Arc::clone(&self.program);
        let q = Arc::clone(&self.q);
        let compiled = Arc::clone(&self.compiled);
        let cx = VmCtx {
            g: self.g,
            topo: self.topo,
            q: &q,
            compiled: &compiled,
            prog: &program.components()[comp],
            injective: self.injective,
            budget: &self.budget,
            seeds: match self.cur_seeds {
                OwnedSeeds::Range(n) => SeedSrc::Range { start: 0, end: n },
                OwnedSeeds::Buf => SeedSrc::Slice(&self.seed_buf),
            },
        };
        vm::unwind(&cx, &mut self.scratch, &mut self.vs);
    }
}

impl Iterator for MatchStream<'_> {
    type Item = ResultGraph;

    fn next(&mut self) -> Option<ResultGraph> {
        if !self.started {
            self.start();
        }
        if self.done || self.remaining == 0 {
            self.done = true;
            return None;
        }
        if self.cur0.is_none() {
            match self.next_component_match(0) {
                Some(r) => {
                    self.cur0 = Some(r);
                    self.odo.reset();
                }
                None => {
                    self.done = true;
                    return None;
                }
            }
        }
        if self.odo.num_factors() == 0 {
            self.remaining -= 1;
            return self.cur0.take();
        }
        let r = self.odo.combine(self.cur0.as_ref().expect("set above"));
        // odometer overflow moves the outer VM to its next component-0
        // match
        if !self.odo.advance() {
            self.cur0 = None;
        }
        self.remaining -= 1;
        Some(r)
    }
}

impl<'g> Matcher<'g> {
    /// Stream the result graphs of `q` lazily — compile to bytecode and
    /// return a suspended search. Equivalent to [`Matcher::find`]
    /// result-for-result but pays only for the matches actually pulled
    /// from the iterator.
    pub fn stream(&self, q: &PatternQuery, opts: MatchOptions) -> MatchStream<'g> {
        let cq = self.compile_full(q);
        MatchStream::over(
            self.graph(),
            self.indexes().to_vec(),
            Arc::new(q.clone()),
            Arc::new(cq.compiled),
            Arc::new(cq.program),
            opts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MatchOptions;
    use std::collections::BTreeMap;
    use whyq_graph::Value;
    use whyq_query::{DirectionSet, Predicate, QueryBuilder};

    fn social() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person")), ("name", Value::str("Anna"))]);
        let b = g.add_vertex([("type", Value::str("person")), ("name", Value::str("Bert"))]);
        let c = g.add_vertex([("type", Value::str("person")), ("name", Value::str("Cleo"))]);
        let berlin = g.add_vertex([("type", Value::str("city")), ("name", Value::str("Berlin"))]);
        let rome = g.add_vertex([("type", Value::str("city")), ("name", Value::str("Rome"))]);
        g.add_edge(a, b, "knows", [("since", Value::Int(2003))]);
        g.add_edge(b, c, "knows", [("since", Value::Int(2010))]);
        g.add_edge(a, berlin, "livesIn", []);
        g.add_edge(b, berlin, "livesIn", []);
        g.add_edge(c, rome, "livesIn", []);
        g.add_edge(a, a, "knows", []);
        g
    }

    fn multiset(results: Vec<ResultGraph>) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for r in results {
            *m.entry(format!("{r:?}")).or_insert(0) += 1;
        }
        m
    }

    fn assert_stream_matches_find(g: &PropertyGraph, q: &PatternQuery, opts: MatchOptions) {
        let m = Matcher::new(g);
        let found = m.find(q, opts.clone());
        let streamed: Vec<ResultGraph> = m.stream(q, opts).collect();
        assert_eq!(multiset(found), multiset(streamed));
    }

    #[test]
    fn stream_equals_find_on_triangle() {
        let g = social();
        let q = QueryBuilder::new("colocated")
            .vertex("p1", [Predicate::eq("type", "person")])
            .vertex("p2", [Predicate::eq("type", "person")])
            .vertex("city", [Predicate::eq("type", "city")])
            .edge("p1", "p2", "knows")
            .edge("p1", "city", "livesIn")
            .edge("p2", "city", "livesIn")
            .build();
        assert_stream_matches_find(&g, &q, MatchOptions::default());
    }

    #[test]
    fn stream_handles_directions_and_self_loops() {
        let g = social();
        let q = QueryBuilder::new("both")
            .vertex("x", [])
            .vertex("y", [])
            .edge_full("x", "y", "knows", DirectionSet::BOTH, [])
            .build();
        assert_stream_matches_find(&g, &q, MatchOptions::default());
        let hom = MatchOptions {
            injective: false,
            limit: None,
            ..Default::default()
        };
        assert_stream_matches_find(&g, &q, hom);
    }

    #[test]
    fn stream_is_lazy_under_limit() {
        let g = social();
        let q = QueryBuilder::new("p")
            .vertex("p", [Predicate::eq("type", "person")])
            .build();
        let m = Matcher::new(&g);
        let mut s = m.stream(&q, MatchOptions::default());
        assert!(s.next().is_some());
        drop(s); // a dropped stream must not disturb the matcher
        assert_eq!(m.count(&q, MatchOptions::default()), 3);
        assert_stream_matches_find(&g, &q, MatchOptions::limited(2));
    }

    #[test]
    fn stream_combines_components_like_find() {
        let g = social();
        let q = QueryBuilder::new("pair")
            .vertex("p", [Predicate::eq("type", "person")])
            .vertex("c", [Predicate::eq("type", "city")])
            .build();
        assert_stream_matches_find(&g, &q, MatchOptions::default());
        assert_stream_matches_find(&g, &q, MatchOptions::limited(3));
    }

    #[test]
    fn stream_of_unsatisfiable_query_is_empty() {
        let g = social();
        let q = QueryBuilder::new("robot")
            .vertex("r", [Predicate::eq("type", "robot")])
            .build();
        let m = Matcher::new(&g);
        assert_eq!(m.stream(&q, MatchOptions::default()).count(), 0);
        let empty = PatternQuery::new();
        assert_eq!(m.stream(&empty, MatchOptions::default()).count(), 0);
    }

    #[test]
    fn interleaved_streams_do_not_interfere() {
        let g = social();
        let q = QueryBuilder::new("p")
            .vertex("p", [Predicate::eq("type", "person")])
            .build();
        let m = Matcher::new(&g);
        let mut s1 = m.stream(&q, MatchOptions::default());
        let mut s2 = m.stream(&q, MatchOptions::default());
        let a1 = s1.next();
        let b1 = s2.next();
        let a2 = s1.next();
        let b2 = s2.next();
        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
        assert_eq!(s1.count(), 1);
        assert_eq!(s2.count(), 1);
    }
}
