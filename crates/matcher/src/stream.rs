//! Lazy result enumeration — the suspendable twin of the recursive engine.
//!
//! [`MatchStream`] yields [`ResultGraph`]s one at a time from the same
//! backtracking search [`Matcher::find`] runs, without ever materializing
//! the result set: the DFS runs on an explicit frame stack (one frame per
//! plan step, each remembering its candidate cursor), so the search
//! *suspends* after every emitted match and resumes exactly where it
//! stopped on the next [`Iterator::next`] call. A caller that stops after
//! ten results pays for ten results — the contract prepared queries of the
//! `whyq-session` facade expose as `PreparedQuery::stream()`.
//!
//! Multi-component queries combine component results as a cartesian
//! product (§4.3.3). The product itself — where the blow-up lives — is
//! enumerated lazily with an odometer over the non-first components'
//! (capped) result lists; only those factor lists are materialized, once,
//! on the first `next()` call. Connected queries, the common case,
//! materialize nothing.
//!
//! The stream owns its scratch arena, so any number of streams can be
//! in-flight concurrently with each other and with `find`/`count` calls
//! on the matcher they came from.

use crate::budget::{Budget, Termination, CHECK_INTERVAL};
use crate::combine::FactorOdometer;
use crate::compile::{Compiled, ComponentPlan, Step};
use crate::engine::{seed_source, MatchOptions, Matcher, Scratch, SeedSource};
use crate::index::AttrIndex;
use crate::result::ResultGraph;
use std::sync::Arc;
use whyq_graph::{CsrTopology, PropertyGraph, VertexId};
use whyq_query::{PatternQuery, QEid, QVid};

/// Candidate cursor of a `Seed` frame.
enum SeedCursor {
    /// Full scan of the (dense) vertex arena; `next` is the next raw id.
    Scan { next: u32 },
    /// An owned candidate list: a copied index bucket or the deduplicated
    /// union of several buckets (multi-value disjunction).
    Fixed { seeds: Vec<VertexId>, pos: usize },
}

/// One suspended step of the DFS: which candidate to try next when the
/// search resumes at this depth. Adjacency slices are re-resolved from
/// `(phase, ty)` on resume — a CSR run lookup is two array reads, cheaper
/// than making the frame borrow the topology.
enum Frame {
    Seed {
        vertex: QVid,
        cursor: SeedCursor,
    },
    Expand {
        edge: QEid,
        from: QVid,
        to: QVid,
        /// Data vertex the expansion leaves, fixed when the frame is
        /// entered (its `from` endpoint is already bound then).
        bound: VertexId,
        /// 0 = forward direction pass, 1 = backward pass.
        phase: u8,
        /// Position in the compiled type disjunction (0 when untyped).
        ty: usize,
        /// Position within the current adjacency slice.
        pos: usize,
    },
    Close {
        edge: QEid,
        phase: u8,
        ty: usize,
        pos: usize,
    },
}

/// Lazy iterator over the result graphs of one compiled query.
///
/// Created by [`Matcher::stream`] or directly via [`MatchStream::over`]
/// with a cached compilation. Yields exactly the multiset
/// [`Matcher::find`] would return (in the same order), honoring the
/// injectivity and limit of its [`MatchOptions`].
pub struct MatchStream<'g> {
    g: &'g PropertyGraph,
    topo: &'g CsrTopology,
    indexes: Vec<Arc<AttrIndex>>,
    q: Arc<PatternQuery>,
    compiled: Arc<Compiled>,
    plans: Arc<Vec<ComponentPlan>>,
    injective: bool,
    /// Resource governance shared with the caller (see
    /// [`MatchOptions::budget`]); on a trip the stream ends early and
    /// [`MatchStream::termination`] reports the cause.
    budget: Budget,
    /// Results still allowed out (from `MatchOptions::limit`).
    remaining: usize,
    started: bool,
    done: bool,
    /// Lazy cartesian enumerator over the materialized results of
    /// components `1..n` (plan order, each factor capped at the stream
    /// limit; no factors for connected queries). Shared with `find`'s
    /// eager combination, so product order is identical by construction.
    odo: FactorOdometer,
    /// Current match of component 0, combined with every factor
    /// combination before the DFS advances.
    cur0: Option<ResultGraph>,
    scratch: Scratch,
    stack: Vec<Frame>,
}

impl<'g> MatchStream<'g> {
    /// Stream over a precompiled query. `compiled`/`plans` must come from
    /// [`Matcher::compile`] on a query with the same signature over the
    /// same graph — the contract the `whyq-session` plan cache maintains.
    pub fn over(
        g: &'g PropertyGraph,
        indexes: Vec<Arc<AttrIndex>>,
        q: Arc<PatternQuery>,
        compiled: Arc<Compiled>,
        plans: Arc<Vec<ComponentPlan>>,
        opts: MatchOptions,
    ) -> Self {
        MatchStream {
            g,
            topo: g.topology(),
            indexes,
            q,
            compiled,
            plans,
            injective: opts.injective,
            budget: opts.budget.clone(),
            remaining: opts.limit.unwrap_or(usize::MAX),
            started: false,
            done: false,
            odo: FactorOdometer::default(),
            cur0: None,
            scratch: Scratch::default(),
            stack: Vec::new(),
        }
    }

    /// How the stream's governed execution has ended so far:
    /// [`Termination::Complete`] while no budget limit has tripped. When a
    /// limit trips mid-stream, iteration stops early and this reports why
    /// — the results already yielded are a prefix of the full enumeration.
    pub fn termination(&self) -> Termination {
        self.budget.termination()
    }

    /// First-call setup: size the arena, materialize the factor lists of
    /// components `1..n` and park the component-0 DFS at its seed step.
    fn start(&mut self) {
        self.started = true;
        if self.q.num_vertices() == 0 || self.plans.is_empty() || self.remaining == 0 {
            self.done = true;
            return;
        }
        // refuse an already-tripped (or zero) budget before any setup work
        if self.budget.poll().is_err() {
            self.done = true;
            return;
        }
        self.scratch.prepare(self.g, &self.q);
        let cap = self.remaining;
        let mut factors = Vec::new();
        for comp in 1..self.plans.len() {
            let factor = self.run_component_to_vec(comp, cap);
            if factor.is_empty() {
                // an empty component zeroes the cartesian product
                self.done = true;
                return;
            }
            factors.push(factor);
        }
        self.odo = FactorOdometer::new(factors);
        self.stack.clear();
        self.push_frame(0, 0);
    }

    /// Run one component's DFS to completion, collecting at most `cap`
    /// results, and leave the scratch arena clean.
    fn run_component_to_vec(&mut self, comp: usize, cap: usize) -> Vec<ResultGraph> {
        self.stack.clear();
        self.push_frame(comp, 0);
        let mut out = Vec::new();
        while let Some(r) = self.next_component_match(comp) {
            out.push(r);
            if out.len() >= cap {
                break;
            }
        }
        self.unwind();
        out
    }

    /// Pop every live frame, unbinding whatever it bound — used when a
    /// component run stops before natural exhaustion.
    fn unwind(&mut self) {
        while let Some(frame) = self.stack.pop() {
            unbind_frame(&mut self.scratch, self.injective, &frame);
        }
    }

    /// Push the frame for step `i` of component `comp`'s plan.
    fn push_frame(&mut self, comp: usize, i: usize) {
        let frame = match self.plans[comp].steps[i] {
            Step::Seed { vertex } => {
                let cursor = match seed_source(self.g, &self.indexes, &self.q, vertex) {
                    SeedSource::Scan => SeedCursor::Scan { next: 0 },
                    SeedSource::Bucket(bucket) => SeedCursor::Fixed {
                        seeds: bucket.to_vec(),
                        pos: 0,
                    },
                    SeedSource::Union(idx, vals) => {
                        let mut seeds = Vec::new();
                        // one shared materializer — the stream's candidate
                        // order matches the engine's by construction
                        crate::engine::union_seeds(self.g, idx, vals, &mut seeds);
                        SeedCursor::Fixed { seeds, pos: 0 }
                    }
                };
                Frame::Seed { vertex, cursor }
            }
            Step::ExpandNew { edge, from, to } => Frame::Expand {
                edge,
                from,
                to,
                bound: self.scratch.vslots[from.0 as usize].expect("plan binds from first"),
                phase: 0,
                ty: 0,
                pos: 0,
            },
            Step::Close { edge } => Frame::Close {
                edge,
                phase: 0,
                ty: 0,
                pos: 0,
            },
        };
        self.stack.push(frame);
    }

    /// Resume the DFS of component `comp`: advance the top frame to its
    /// next acceptable candidate, descending on success and backtracking
    /// on exhaustion, until a full assignment of the component is bound
    /// (returned as a materialized [`ResultGraph`]) or the stack empties.
    fn next_component_match(&mut self, comp: usize) -> Option<ResultGraph> {
        let plans = Arc::clone(&self.plans);
        let steps = &plans[comp].steps;
        let q = Arc::clone(&self.q);
        let compiled = Arc::clone(&self.compiled);
        while !self.stack.is_empty() {
            // same tick-counted governance as the recursive engine: one
            // budget charge per CHECK_INTERVAL frame advances
            self.scratch.ticks += 1;
            if self.scratch.ticks.is_multiple_of(CHECK_INTERVAL as u64)
                && self.budget.charge(CHECK_INTERVAL as u64).is_err()
            {
                return None;
            }
            let advanced = {
                let frame = self.stack.last_mut().expect("non-empty");
                advance_frame(
                    self.g,
                    self.topo,
                    &q,
                    &compiled,
                    self.injective,
                    &mut self.scratch,
                    frame,
                )
            };
            if advanced {
                if self.stack.len() == steps.len() {
                    return Some(self.scratch.to_result());
                }
                self.push_frame(comp, self.stack.len());
            } else {
                // exhausted: the frame already unbound its last candidate
                self.stack.pop();
            }
        }
        None
    }
}

impl Iterator for MatchStream<'_> {
    type Item = ResultGraph;

    fn next(&mut self) -> Option<ResultGraph> {
        if !self.started {
            self.start();
        }
        if self.done || self.remaining == 0 {
            self.done = true;
            return None;
        }
        if self.cur0.is_none() {
            match self.next_component_match(0) {
                Some(r) => {
                    self.cur0 = Some(r);
                    self.odo.reset();
                }
                None => {
                    self.done = true;
                    return None;
                }
            }
        }
        if self.odo.num_factors() == 0 {
            self.remaining -= 1;
            return self.cur0.take();
        }
        let r = self.odo.combine(self.cur0.as_ref().expect("set above"));
        // odometer overflow moves the outer DFS to its next component-0
        // match
        if !self.odo.advance() {
            self.cur0 = None;
        }
        self.remaining -= 1;
        Some(r)
    }
}

impl<'g> Matcher<'g> {
    /// Stream the result graphs of `q` lazily — compile, plan and return a
    /// suspended search. Equivalent to [`Matcher::find`] result-for-result
    /// but pays only for the matches actually pulled from the iterator.
    pub fn stream(&self, q: &PatternQuery, opts: MatchOptions) -> MatchStream<'g> {
        let (compiled, plans) = self.compile(q);
        MatchStream::over(
            self.graph(),
            self.indexes().to_vec(),
            Arc::new(q.clone()),
            Arc::new(compiled),
            Arc::new(plans),
            opts,
        )
    }
}

/// Unbind whatever `frame` currently has bound (nothing if it never bound
/// or already unbound its candidate).
fn unbind_frame(st: &mut Scratch, injective: bool, frame: &Frame) {
    match frame {
        Frame::Seed { vertex, .. } => {
            if let Some(dv) = st.vslots[vertex.0 as usize].take() {
                if injective {
                    st.set_vertex_used(dv, false);
                }
            }
        }
        Frame::Expand { edge, to, .. } => {
            if let Some(de) = st.eslots[edge.0 as usize].take() {
                if injective {
                    st.set_edge_used(de, false);
                }
            }
            if let Some(dv) = st.vslots[to.0 as usize].take() {
                if injective {
                    st.set_vertex_used(dv, false);
                }
            }
        }
        Frame::Close { edge, .. } => {
            if let Some(de) = st.eslots[edge.0 as usize].take() {
                if injective {
                    st.set_edge_used(de, false);
                }
            }
        }
    }
}

/// Advance one frame to its next acceptable candidate: unbind the previous
/// candidate, scan forward, bind the next one. Returns `false` when the
/// frame is exhausted (left unbound). The candidate order and the filter
/// sequence mirror the recursive engine exactly — occupancy stamps before
/// predicate checks, `EdgeData` loaded only when edge predicates exist,
/// the self-loop and duplicate-direction skip rules included — so the
/// stream's multiset of results is identical to `find`'s.
#[allow(clippy::too_many_arguments)]
fn advance_frame(
    g: &PropertyGraph,
    topo: &CsrTopology,
    q: &PatternQuery,
    compiled: &Compiled,
    injective: bool,
    st: &mut Scratch,
    frame: &mut Frame,
) -> bool {
    unbind_frame(st, injective, frame);
    match frame {
        Frame::Seed { vertex, cursor } => {
            let cv = compiled.vertex(*vertex);
            loop {
                let dv = match cursor {
                    SeedCursor::Scan { next } => {
                        if *next as usize >= g.num_vertices() {
                            return false;
                        }
                        let dv = VertexId(*next);
                        *next += 1;
                        dv
                    }
                    SeedCursor::Fixed { seeds, pos } => {
                        if *pos >= seeds.len() {
                            return false;
                        }
                        let dv = seeds[*pos];
                        *pos += 1;
                        dv
                    }
                };
                if !cv.accepts(g, dv) {
                    continue;
                }
                // the seed is the first binding of its component, so no
                // occupancy check is needed (injectivity is per-component)
                st.vslots[vertex.0 as usize] = Some(dv);
                if injective {
                    st.set_vertex_used(dv, true);
                }
                return true;
            }
        }
        Frame::Expand {
            edge,
            from,
            to,
            bound,
            phase,
            ty,
            pos,
        } => {
            let qe = q.edge(*edge).expect("live");
            let ce = compiled.edge(*edge);
            let cv_to = compiled.vertex(*to);
            let from_is_src = *from == qe.src;
            loop {
                if *phase > 1 {
                    return false;
                }
                let dir_on = if *phase == 0 {
                    qe.directions.forward
                } else {
                    qe.directions.backward
                };
                if !dir_on {
                    *phase += 1;
                    *ty = 0;
                    *pos = 0;
                    continue;
                }
                // forward pass: `bound` plays the data edge's source role
                // iff it is the query edge's source; backward mirrors it
                let along_src = (*phase == 0) == from_is_src;
                // a self-loop at `bound` sits in both adjacency lists —
                // the backward pass skips the ones forward already tried
                let skip_self_loops = *phase == 1 && qe.directions.forward;
                let list = match &ce.types {
                    Some(tys) => {
                        if *ty >= tys.len() {
                            *phase += 1;
                            *ty = 0;
                            *pos = 0;
                            continue;
                        }
                        let t = tys[*ty];
                        if along_src {
                            topo.out_entries_of(*bound, t)
                        } else {
                            topo.in_entries_of(*bound, t)
                        }
                    }
                    None => {
                        if *ty >= 1 {
                            *phase += 1;
                            *ty = 0;
                            *pos = 0;
                            continue;
                        }
                        if along_src {
                            topo.out_entries(*bound)
                        } else {
                            topo.in_entries(*bound)
                        }
                    }
                };
                while *pos < list.len() {
                    let (de, dv) = list.get(*pos);
                    *pos += 1;
                    if skip_self_loops && dv == *bound {
                        continue;
                    }
                    if injective && (st.vertex_used(dv) || st.edge_used(de)) {
                        continue;
                    }
                    if ce.needs_edge_data() && !ce.accepts_attrs(&g.edge(de).attrs) {
                        continue;
                    }
                    if !cv_to.accepts(g, dv) {
                        continue;
                    }
                    st.vslots[to.0 as usize] = Some(dv);
                    st.eslots[edge.0 as usize] = Some(de);
                    if injective {
                        st.set_vertex_used(dv, true);
                        st.set_edge_used(de, true);
                    }
                    return true;
                }
                *ty += 1;
                *pos = 0;
            }
        }
        Frame::Close {
            edge,
            phase,
            ty,
            pos,
        } => {
            let qe = q.edge(*edge).expect("live");
            let ce = compiled.edge(*edge);
            let ms = st.vslots[qe.src.0 as usize].expect("bound");
            let mt = st.vslots[qe.dst.0 as usize].expect("bound");
            loop {
                if *phase > 1 {
                    return false;
                }
                let dir_on = if *phase == 0 {
                    qe.directions.forward
                } else {
                    // when both endpoints map to one data vertex the
                    // forward pass already enumerated every self-loop
                    qe.directions.backward && !(qe.directions.forward && ms == mt)
                };
                if !dir_on {
                    *phase += 1;
                    *ty = 0;
                    *pos = 0;
                    continue;
                }
                let ends = if *phase == 0 { (ms, mt) } else { (mt, ms) };
                let lists = match &ce.types {
                    Some(tys) => {
                        if *ty >= tys.len() {
                            *phase += 1;
                            *ty = 0;
                            *pos = 0;
                            continue;
                        }
                        let t = tys[*ty];
                        (
                            topo.out_entries_of(ends.0, t),
                            topo.in_entries_of(ends.1, t),
                        )
                    }
                    None => {
                        if *ty >= 1 {
                            *phase += 1;
                            *ty = 0;
                            *pos = 0;
                            continue;
                        }
                        (topo.out_entries(ends.0), topo.in_entries(ends.1))
                    }
                };
                // scan whichever slice of the two endpoints is shorter;
                // the deterministic choice keeps resumption stable
                let scan_out = lists.0.len() <= lists.1.len();
                let (list, want) = if scan_out {
                    (lists.0, ends.1)
                } else {
                    (lists.1, ends.0)
                };
                while *pos < list.len() {
                    let (de, other) = list.get(*pos);
                    *pos += 1;
                    if other != want {
                        continue;
                    }
                    if injective && st.edge_used(de) {
                        continue;
                    }
                    if ce.needs_edge_data() && !ce.accepts_attrs(&g.edge(de).attrs) {
                        continue;
                    }
                    st.eslots[edge.0 as usize] = Some(de);
                    if injective {
                        st.set_edge_used(de, true);
                    }
                    return true;
                }
                *ty += 1;
                *pos = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MatchOptions;
    use std::collections::BTreeMap;
    use whyq_graph::Value;
    use whyq_query::{DirectionSet, Predicate, QueryBuilder};

    fn social() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person")), ("name", Value::str("Anna"))]);
        let b = g.add_vertex([("type", Value::str("person")), ("name", Value::str("Bert"))]);
        let c = g.add_vertex([("type", Value::str("person")), ("name", Value::str("Cleo"))]);
        let berlin = g.add_vertex([("type", Value::str("city")), ("name", Value::str("Berlin"))]);
        let rome = g.add_vertex([("type", Value::str("city")), ("name", Value::str("Rome"))]);
        g.add_edge(a, b, "knows", [("since", Value::Int(2003))]);
        g.add_edge(b, c, "knows", [("since", Value::Int(2010))]);
        g.add_edge(a, berlin, "livesIn", []);
        g.add_edge(b, berlin, "livesIn", []);
        g.add_edge(c, rome, "livesIn", []);
        g.add_edge(a, a, "knows", []);
        g
    }

    fn multiset(results: Vec<ResultGraph>) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for r in results {
            *m.entry(format!("{r:?}")).or_insert(0) += 1;
        }
        m
    }

    fn assert_stream_matches_find(g: &PropertyGraph, q: &PatternQuery, opts: MatchOptions) {
        let m = Matcher::new(g);
        let found = m.find(q, opts.clone());
        let streamed: Vec<ResultGraph> = m.stream(q, opts).collect();
        assert_eq!(multiset(found), multiset(streamed));
    }

    #[test]
    fn stream_equals_find_on_triangle() {
        let g = social();
        let q = QueryBuilder::new("colocated")
            .vertex("p1", [Predicate::eq("type", "person")])
            .vertex("p2", [Predicate::eq("type", "person")])
            .vertex("city", [Predicate::eq("type", "city")])
            .edge("p1", "p2", "knows")
            .edge("p1", "city", "livesIn")
            .edge("p2", "city", "livesIn")
            .build();
        assert_stream_matches_find(&g, &q, MatchOptions::default());
    }

    #[test]
    fn stream_handles_directions_and_self_loops() {
        let g = social();
        let q = QueryBuilder::new("both")
            .vertex("x", [])
            .vertex("y", [])
            .edge_full("x", "y", "knows", DirectionSet::BOTH, [])
            .build();
        assert_stream_matches_find(&g, &q, MatchOptions::default());
        let hom = MatchOptions {
            injective: false,
            limit: None,
            ..Default::default()
        };
        assert_stream_matches_find(&g, &q, hom);
    }

    #[test]
    fn stream_is_lazy_under_limit() {
        let g = social();
        let q = QueryBuilder::new("p")
            .vertex("p", [Predicate::eq("type", "person")])
            .build();
        let m = Matcher::new(&g);
        let mut s = m.stream(&q, MatchOptions::default());
        assert!(s.next().is_some());
        drop(s); // a dropped stream must not disturb the matcher
        assert_eq!(m.count(&q, MatchOptions::default()), 3);
        assert_stream_matches_find(&g, &q, MatchOptions::limited(2));
    }

    #[test]
    fn stream_combines_components_like_find() {
        let g = social();
        let q = QueryBuilder::new("pair")
            .vertex("p", [Predicate::eq("type", "person")])
            .vertex("c", [Predicate::eq("type", "city")])
            .build();
        assert_stream_matches_find(&g, &q, MatchOptions::default());
        assert_stream_matches_find(&g, &q, MatchOptions::limited(3));
    }

    #[test]
    fn stream_of_unsatisfiable_query_is_empty() {
        let g = social();
        let q = QueryBuilder::new("robot")
            .vertex("r", [Predicate::eq("type", "robot")])
            .build();
        let m = Matcher::new(&g);
        assert_eq!(m.stream(&q, MatchOptions::default()).count(), 0);
        let empty = PatternQuery::new();
        assert_eq!(m.stream(&empty, MatchOptions::default()).count(), 0);
    }

    #[test]
    fn interleaved_streams_do_not_interfere() {
        let g = social();
        let q = QueryBuilder::new("p")
            .vertex("p", [Predicate::eq("type", "person")])
            .build();
        let m = Matcher::new(&g);
        let mut s1 = m.stream(&q, MatchOptions::default());
        let mut s2 = m.stream(&q, MatchOptions::default());
        let a1 = s1.next();
        let b1 = s2.next();
        let a2 = s1.next();
        let b2 = s2.next();
        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
        assert_eq!(s1.count(), 1);
        assert_eq!(s2.count(), 1);
    }
}
