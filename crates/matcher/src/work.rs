//! The parallel work model: component × seed-subrange work units.
//!
//! The matcher evaluates each weakly connected query component by seeding
//! its plan's first vertex and expanding. Those seed candidates are
//! *independent*: the DFS below one seed never reads state bound under
//! another, so any contiguous subrange of a component's seed list is an
//! independently executable unit of work producing per-component partial
//! bindings. A [`WorkUnit`] names such a slice — `(component, seed
//! range)` — and [`Matcher::find_unit`](crate::Matcher::find_unit) /
//! [`Matcher::count_unit`](crate::Matcher::count_unit) execute one against
//! a caller-owned scratch arena. The `whyq-session` executor shards a
//! query into units, runs them across worker sessions and merges the
//! per-component outputs with [`crate::combine::combine_components`].
//!
//! Unit execution is deterministic: seeds are drawn in slice order from a
//! [`SeedList`] resolved once per component (the same source order the
//! serial engine and the streaming DFS use), so concatenating the outputs
//! of a component's units in range order reproduces the serial result
//! order exactly. Parallelism changes *scheduling*, never the multiset.

use std::ops::Range;
use whyq_graph::VertexId;

/// The materialized seed candidate space of one component's `Seed` step.
///
/// A full vertex scan is kept symbolic (`All`) so sharding a large arena
/// never copies vertex ids; index-backed seed sources (`Bucket`/`Union`)
/// own their candidate list in engine order.
#[derive(Debug, Clone)]
pub enum SeedList {
    /// Full scan over the dense vertex arena `0..n`.
    All(usize),
    /// An explicit candidate list (an index bucket copy, or the
    /// deduplicated union of a multi-value disjunction's buckets).
    List(Vec<VertexId>),
}

impl SeedList {
    /// Number of seed candidates.
    pub fn len(&self) -> usize {
        match self {
            SeedList::All(n) => *n,
            SeedList::List(v) => v.len(),
        }
    }

    /// True when the component has no seed candidates at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Candidate at position `i` (must be `< len`).
    #[inline]
    pub fn get(&self, i: usize) -> VertexId {
        match self {
            SeedList::All(_) => VertexId(i as u32),
            SeedList::List(v) => v[i],
        }
    }
}

/// One independently executable slice of a query: a component index (into
/// the plan list) and a subrange of that component's [`SeedList`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkUnit {
    /// Index into the query's `Vec<ComponentPlan>`.
    pub component: usize,
    /// Seed positions this unit owns (`range.end <= seed_list.len()`).
    pub range: Range<usize>,
}

impl WorkUnit {
    /// A unit covering one component's whole seed list.
    pub fn whole(component: usize, seeds: &SeedList) -> Self {
        WorkUnit {
            component,
            range: 0..seeds.len(),
        }
    }
}

/// Split `0..len` into at most `chunks` contiguous, non-empty, disjoint
/// ranges covering it exactly, with sizes differing by at most one.
/// `len == 0` yields a single empty range (a unit that finds nothing),
/// `chunks == 0` is treated as 1.
pub fn split_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    let chunks = chunks.max(1);
    if len == 0 {
        // one empty unit, so a zero-seed component still reports a result
        return std::iter::once(0..0).collect();
    }
    let chunks = chunks.min(len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_exactly_without_gaps() {
        for len in [0usize, 1, 2, 7, 64, 65] {
            for chunks in [1usize, 2, 3, 8, 100] {
                let ranges = split_ranges(len, chunks);
                assert!(!ranges.is_empty());
                let mut pos = 0;
                for r in &ranges {
                    assert_eq!(r.start, pos, "len={len} chunks={chunks}");
                    assert!(r.end >= r.start);
                    pos = r.end;
                }
                assert_eq!(pos, len);
                if len > 0 {
                    assert!(ranges.len() <= chunks.max(1));
                    assert!(ranges.iter().all(|r| !r.is_empty()));
                    let sizes: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
                    let min = *sizes.iter().min().unwrap();
                    let max = *sizes.iter().max().unwrap();
                    assert!(max - min <= 1, "balanced split");
                }
            }
        }
    }

    #[test]
    fn zero_chunks_means_one() {
        assert_eq!(split_ranges(5, 0), vec![0..5]);
    }

    #[test]
    fn seed_list_indexing() {
        let all = SeedList::All(3);
        assert_eq!(all.len(), 3);
        assert_eq!(all.get(2), VertexId(2));
        let list = SeedList::List(vec![VertexId(7), VertexId(9)]);
        assert_eq!(list.len(), 2);
        assert!(!list.is_empty());
        assert_eq!(list.get(1), VertexId(9));
        assert!(SeedList::List(Vec::new()).is_empty());
        assert_eq!(WorkUnit::whole(1, &list).range, 0..2);
    }
}
