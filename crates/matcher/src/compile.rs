//! Query compilation: resolve attribute/type names against a graph's
//! interners and build a per-component evaluation plan.
//!
//! A query predicate names attributes by string; the graph stores interned
//! symbols. Compilation resolves each name once so the inner matching loops
//! compare integers. A predicate over an attribute the graph has never seen
//! can match nothing and marks its element as unsatisfiable.

use crate::index::AttrIndex;
use whyq_graph::{EdgeData, PropertyGraph, Symbol, Value, VertexId};
use whyq_query::{Interval, PatternQuery, Predicate, QEid, QVid};

/// A predicate with its attribute resolved to a graph symbol.
#[derive(Debug, Clone)]
pub struct ResolvedPredicate {
    /// `None` when the graph has no such attribute anywhere — the predicate
    /// is unsatisfiable.
    pub sym: Option<Symbol>,
    /// The predicate itself (cloned out of the query for lifetime freedom).
    pub pred: Predicate,
}

impl ResolvedPredicate {
    /// Check the predicate against an attribute map.
    pub fn matches(&self, attrs: &whyq_graph::AttrMap) -> bool {
        match self.sym {
            Some(s) => self.pred.matches(attrs.get(s)),
            None => false,
        }
    }
}

/// Compiled form of one query vertex.
#[derive(Debug, Clone, Default)]
pub struct CompiledVertex {
    /// Resolved predicates; all must hold.
    pub preds: Vec<ResolvedPredicate>,
}

impl CompiledVertex {
    /// Does data vertex `v` satisfy the vertex constraints?
    pub fn accepts(&self, g: &PropertyGraph, v: VertexId) -> bool {
        let attrs = &g.vertex(v).attrs;
        self.preds.iter().all(|p| p.matches(attrs))
    }
}

/// Compiled form of one query edge.
#[derive(Debug, Clone)]
pub struct CompiledEdge {
    /// Resolved admissible types. `None` = any type; `Some` with an empty
    /// vector = unsatisfiable (every named type is absent from the graph).
    pub types: Option<Vec<Symbol>>,
    /// Resolved predicates; all must hold.
    pub preds: Vec<ResolvedPredicate>,
}

impl CompiledEdge {
    /// Does the data edge satisfy type and attribute constraints
    /// (direction is checked by the traversal, not here)?
    pub fn accepts(&self, ed: &EdgeData) -> bool {
        if let Some(tys) = &self.types {
            if !tys.contains(&ed.ty) {
                return false;
            }
        }
        self.preds.iter().all(|p| p.matches(&ed.attrs))
    }

    /// Attribute-predicate check alone, for scans that already know the
    /// edge type is admissible (the CSR engine iterates per-type runs, so
    /// the type test is implied by the slice being scanned).
    pub fn accepts_attrs(&self, attrs: &whyq_graph::AttrMap) -> bool {
        self.preds.iter().all(|p| p.matches(attrs))
    }

    /// True when matching an edge from an admissible-type adjacency run
    /// requires loading its [`EdgeData`] at all (only attribute predicates
    /// do — endpoints and type come straight from the CSR columns).
    pub fn needs_edge_data(&self) -> bool {
        !self.preds.is_empty()
    }
}

/// Fully compiled query: one slot per query vertex/edge id.
#[derive(Debug, Clone, Default)]
pub struct Compiled {
    /// Compiled vertices, indexed by `QVid` slot.
    pub vertices: Vec<Option<CompiledVertex>>,
    /// Compiled edges, indexed by `QEid` slot.
    pub edges: Vec<Option<CompiledEdge>>,
}

impl Compiled {
    /// Compile `q` against `g`.
    pub fn new(g: &PropertyGraph, q: &PatternQuery) -> Self {
        let mut vertices = vec![None; q.vertex_slots()];
        for v in q.vertex_ids() {
            let qv = q.vertex(v).expect("live");
            vertices[v.0 as usize] = Some(CompiledVertex {
                preds: resolve(g, &qv.predicates),
            });
        }
        let mut edges = vec![None; q.edge_slots()];
        for e in q.edge_ids() {
            let qe = q.edge(e).expect("live");
            let types = if qe.types.is_empty() {
                None
            } else {
                // dedup: the engine scans one adjacency slice per admitted
                // type, so a repeated type name must not repeat its edges
                let mut tys = qe
                    .types
                    .iter()
                    .filter_map(|t| g.type_symbol(t))
                    .collect::<Vec<_>>();
                tys.sort_unstable();
                tys.dedup();
                Some(tys)
            };
            edges[e.0 as usize] = Some(CompiledEdge {
                types,
                preds: resolve(g, &qe.predicates),
            });
        }
        Compiled { vertices, edges }
    }

    /// Compiled vertex by id.
    pub fn vertex(&self, v: QVid) -> &CompiledVertex {
        self.vertices[v.0 as usize].as_ref().expect("compiled")
    }

    /// Compiled edge by id.
    pub fn edge(&self, e: QEid) -> &CompiledEdge {
        self.edges[e.0 as usize].as_ref().expect("compiled")
    }
}

fn resolve(g: &PropertyGraph, preds: &[Predicate]) -> Vec<ResolvedPredicate> {
    preds
        .iter()
        .map(|p| ResolvedPredicate {
            sym: g.attr_symbol(&p.attr),
            pred: p.clone(),
        })
        .collect()
}

/// One step of a component evaluation plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Bind the first vertex of the component by scanning candidates.
    Seed {
        /// The query vertex to bind.
        vertex: QVid,
    },
    /// Traverse a query edge from a bound endpoint to an unbound one.
    ExpandNew {
        /// Query edge to bind.
        edge: QEid,
        /// Already-bound endpoint.
        from: QVid,
        /// Endpoint bound by this step.
        to: QVid,
    },
    /// Bind a query edge whose endpoints are both already bound.
    Close {
        /// Query edge to bind.
        edge: QEid,
    },
}

/// Evaluation plan for one weakly connected query component.
#[derive(Debug, Clone)]
pub struct ComponentPlan {
    /// Steps in execution order; the first is always [`Step::Seed`].
    pub steps: Vec<Step>,
}

/// Build greedy, selectivity-ordered plans for every weakly connected
/// component of `q`.
///
/// The seed of each component is the vertex with the fewest *estimated*
/// candidate data vertices (see [`estimate_candidates`]); expansion prefers
/// *closing* edges (both endpoints bound — cheap existence checks) and
/// otherwise picks the edge whose new endpoint has the lowest estimate.
pub fn build_plans(
    g: &PropertyGraph,
    q: &PatternQuery,
    compiled: &Compiled,
    index: Option<&AttrIndex>,
) -> Vec<ComponentPlan> {
    let est = estimate_candidates(g, q, compiled, index);
    q.weakly_connected_components()
        .into_iter()
        .map(|comp| plan_component(q, &comp, &est))
        .collect()
}

/// How many vertices of the arena to test per query vertex when no index
/// bucket count is available. Graphs up to this size get exact counts;
/// larger ones an evenly spaced sample extrapolated to the full vertex
/// set. Deliberately small: planning runs on every `find`/`count` call, so
/// its cost must stay negligible next to the search itself.
const ESTIMATE_SAMPLE: usize = 64;

/// Estimate per-query-vertex candidate counts, indexed by `QVid` slot.
///
/// This is planning input, not a correctness bound: the matcher works with
/// any ordering, the estimates only decide which one. Three sources, from
/// strongest to weakest:
///
/// * an equality-shaped predicate (`OneOf` or degenerate point `Range`) on
///   the indexed attribute — the sum of its index bucket sizes is an exact
///   count for that predicate and an upper bound overall;
/// * an evenly spaced sample of the vertex arena filtered through the
///   compiled predicates, extrapolated by `|V| / sample` (exact when the
///   graph has at most [`ESTIMATE_SAMPLE`] vertices);
/// * the total vertex count as the trivial fallback for an unconstrained
///   vertex.
pub fn estimate_candidates(
    g: &PropertyGraph,
    q: &PatternQuery,
    compiled: &Compiled,
    index: Option<&AttrIndex>,
) -> Vec<u64> {
    let n = g.num_vertices();
    let stride = n.div_ceil(ESTIMATE_SAMPLE).max(1);
    let mut est: Vec<u64> = vec![0; q.vertex_slots()];
    for v in q.vertex_ids() {
        let cv = compiled.vertex(v);
        let qv = q.vertex(v).expect("live");
        let mut e = n as u64;
        if cv.preds.is_empty() {
            est[v.0 as usize] = e;
            continue;
        }
        // exact bucket counts for equality predicates on the indexed attr
        if let Some(idx) = index {
            for p in &qv.predicates {
                if g.attr_symbol(&p.attr) != Some(idx.attr()) {
                    continue;
                }
                match &p.interval {
                    Interval::OneOf(vals) => {
                        let bucket_sum: u64 = vals.iter().map(|v| idx.lookup(v).len() as u64).sum();
                        e = e.min(bucket_sum);
                    }
                    Interval::Range {
                        lo: Some(lo),
                        hi: Some(hi),
                        lo_incl: true,
                        hi_incl: true,
                    } if lo == hi => {
                        // one probe covers Int and Float encodings: `Value`
                        // equates numeric family members
                        e = e.min(idx.lookup(&Value::Float(*lo)).len() as u64);
                    }
                    _ => {}
                }
            }
        }
        // sampled (or exact, for small graphs) selectivity across *all*
        // predicates — the bucket count above only sees the indexed one, so
        // take the minimum of both signals
        let mut sampled = 0usize;
        let mut hits = 0u64;
        for dv in g.vertex_ids().step_by(stride) {
            sampled += 1;
            if cv.accepts(g, dv) {
                hits += 1;
            }
        }
        if sampled > 0 {
            e = e.min(hits.saturating_mul(n as u64) / sampled as u64);
        }
        // structurally unsatisfiable predicates match nothing at all
        if cv.preds.iter().any(|p| p.sym.is_none())
            || qv
                .predicates
                .iter()
                .any(|p| matches!(&p.interval, Interval::OneOf(vs) if vs.is_empty()))
        {
            e = 0;
        }
        est[v.0 as usize] = e;
    }
    est
}

fn plan_component(q: &PatternQuery, comp: &[QVid], cand_count: &[u64]) -> ComponentPlan {
    let seed = *comp
        .iter()
        .min_by_key(|v| cand_count[v.0 as usize])
        .expect("non-empty component");
    let mut steps = vec![Step::Seed { vertex: seed }];
    let mut bound: Vec<QVid> = vec![seed];
    let mut remaining: Vec<QEid> = comp
        .iter()
        .flat_map(|&v| q.incident_edges(v))
        .collect::<Vec<_>>();
    remaining.sort();
    remaining.dedup();

    while !remaining.is_empty() {
        // prefer closing edges
        if let Some(pos) = remaining.iter().position(|&e| {
            let ed = q.edge(e).expect("live");
            bound.contains(&ed.src) && bound.contains(&ed.dst)
        }) {
            let e = remaining.remove(pos);
            steps.push(Step::Close { edge: e });
            continue;
        }
        // otherwise the frontier edge with the cheapest new endpoint
        let (pos, from, to) = remaining
            .iter()
            .enumerate()
            .filter_map(|(i, &e)| {
                let ed = q.edge(e).expect("live");
                if bound.contains(&ed.src) {
                    Some((i, ed.src, ed.dst))
                } else if bound.contains(&ed.dst) {
                    Some((i, ed.dst, ed.src))
                } else {
                    None
                }
            })
            .min_by_key(|&(_, _, to)| cand_count[to.0 as usize])
            .expect("component is connected");
        let e = remaining.remove(pos);
        steps.push(Step::ExpandNew { edge: e, from, to });
        bound.push(to);
    }
    ComponentPlan { steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_graph::Value;
    use whyq_query::{QueryBuilder, QueryEdge, QueryVertex};

    fn small_graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let p1 = g.add_vertex([("type", Value::str("person"))]);
        let p2 = g.add_vertex([("type", Value::str("person"))]);
        let c = g.add_vertex([("type", Value::str("city"))]);
        g.add_edge(p1, p2, "knows", []);
        g.add_edge(p1, c, "livesIn", []);
        g
    }

    #[test]
    fn unknown_attribute_is_unsatisfiable() {
        let g = small_graph();
        let q = QueryBuilder::new("q")
            .vertex("a", [whyq_query::Predicate::eq("nonexistent", 1)])
            .build();
        let c = Compiled::new(&g, &q);
        assert!(!c.vertex(QVid(0)).accepts(&g, VertexId(0)));
    }

    #[test]
    fn unknown_type_is_unsatisfiable() {
        let g = small_graph();
        let mut q = PatternQuery::new();
        let a = q.add_vertex(QueryVertex::any());
        let b = q.add_vertex(QueryVertex::any());
        q.add_edge(QueryEdge::typed(a, b, "teleportsTo"));
        let c = Compiled::new(&g, &q);
        assert_eq!(c.edge(QEid(0)).types.as_deref(), Some(&[][..]));
        assert!(!c.edge(QEid(0)).accepts(g.edge(whyq_graph::EdgeId(0))));
    }

    #[test]
    fn plan_seeds_most_selective_vertex() {
        let g = small_graph();
        let q = QueryBuilder::new("q")
            .vertex("p", [whyq_query::Predicate::eq("type", "person")])
            .vertex("c", [whyq_query::Predicate::eq("type", "city")])
            .edge("p", "c", "livesIn")
            .build();
        let compiled = Compiled::new(&g, &q);
        let plans = build_plans(&g, &q, &compiled, None);
        assert_eq!(plans.len(), 1);
        // the city vertex (1 candidate) beats the person vertex (2)
        assert_eq!(plans[0].steps[0], Step::Seed { vertex: QVid(1) });
        assert_eq!(plans[0].steps.len(), 2);
    }

    #[test]
    fn plan_emits_close_for_cycles() {
        let g = small_graph();
        let q = QueryBuilder::new("tri")
            .vertex("a", [])
            .vertex("b", [])
            .vertex("c", [])
            .edge("a", "b", "knows")
            .edge("b", "c", "knows")
            .edge("a", "c", "knows")
            .build();
        let compiled = Compiled::new(&g, &q);
        let plans = build_plans(&g, &q, &compiled, None);
        let closes = plans[0]
            .steps
            .iter()
            .filter(|s| matches!(s, Step::Close { .. }))
            .count();
        assert_eq!(closes, 1);
    }

    #[test]
    fn isolated_vertices_get_seed_only_plans() {
        let g = small_graph();
        let q = QueryBuilder::new("iso")
            .vertex("x", [])
            .vertex("y", [])
            .build();
        let compiled = Compiled::new(&g, &q);
        let plans = build_plans(&g, &q, &compiled, None);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].steps.len(), 1);
    }
}
