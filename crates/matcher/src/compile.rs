//! Query compilation: resolve attribute/type names *and string predicate
//! constants* against a graph's interners and build a per-component
//! evaluation plan.
//!
//! A query predicate names attributes by string and carries string
//! constants; the graph stores interned symbols on both axes (attribute
//! names since PR 1, attribute *values* since the value dictionary).
//! Compilation resolves each name and each string constant once, so the
//! inner matching loops compare integers only:
//!
//! * an attribute name resolves to its `Symbol` — absent from the graph
//!   means the predicate can match nothing;
//! * every string constant of a `OneOf` interval resolves through the
//!   graph's value dictionary — a constant the dictionary has never seen
//!   cannot equal any stored (always-encoded) string and is dropped from
//!   the disjunction at compile time. A disjunction that loses *all* its
//!   constants this way proves the predicate **unsatisfiable**, which
//!   [`Compiled::unsatisfiable`] surfaces so the engine can answer
//!   "no matches" before any scan starts.
//!
//! The result: the candidate loop of the engine evaluates a string
//! equality like `type = "person"` as one `u32` comparison against the
//! symbol carried by the stored [`whyq_graph::Value::Sym`] — no heap
//! string is ever touched.

use crate::index::AttrIndex;
use std::sync::Arc;
use whyq_graph::{AttrMap, EdgeData, PropertyGraph, Symbol, Value, VertexId};
use whyq_query::{Interval, PatternQuery, Predicate, QEid, QVid, QueryEdge, QueryVertex};

/// A predicate interval with its string constants resolved against the
/// graph's value dictionary.
#[derive(Debug, Clone)]
pub enum CompiledInterval {
    /// Explicit disjunction, split by family: interned string constants
    /// (compared by symbol) and non-string constants (compared by value).
    /// String constants absent from the dictionary were dropped — they can
    /// equal no stored string.
    OneOf {
        /// Resolved string constants; the `Arc<str>` is kept only for the
        /// defensive un-encoded-string fallback and for display.
        syms: Vec<(Symbol, Arc<str>)>,
        /// Non-string constants (numbers, booleans).
        other: Vec<Value>,
    },
    /// Numeric range, kept as the query interval itself: range evaluation
    /// never touches the dictionary, and delegating to
    /// [`Interval::matches`] keeps the engine's bounds/NaN semantics in
    /// lockstep with the oracle's by construction.
    Range(Interval),
}

impl CompiledInterval {
    /// Resolve the string constants of `interval` against `g`'s value
    /// dictionary.
    pub fn resolve(g: &PropertyGraph, interval: &Interval) -> Self {
        match interval {
            Interval::OneOf(vals) => {
                let mut syms: Vec<(Symbol, Arc<str>)> = Vec::new();
                let mut other = Vec::new();
                let mut push_sym = |sym: Symbol, text: Arc<str>| {
                    if !syms.iter().any(|(s, _)| *s == sym) {
                        syms.push((sym, text));
                    }
                };
                for v in vals {
                    match v {
                        // a constant already encoded by *this* graph's
                        // dictionary — the why-engine's relax loop builds
                        // its candidate intervals from domain values
                        // cloned out of the graph, so this arm makes
                        // recompiling hundreds of relaxed queries skip
                        // even the dictionary hash probe
                        Value::Sym(sv) if sv.dict_id() == g.values().dict_id() => {
                            push_sym(sv.sym(), Arc::clone(sv.text_arc()));
                        }
                        v => match v.as_str() {
                            Some(text) => {
                                if let Some(sym) = g.value_symbol(text) {
                                    push_sym(sym, Arc::clone(g.values().resolve_arc(sym)));
                                }
                                // absent from the dictionary: unmatchable, drop
                            }
                            None => other.push(v.clone()),
                        },
                    }
                }
                CompiledInterval::OneOf { syms, other }
            }
            range @ Interval::Range { .. } => CompiledInterval::Range(range.clone()),
        }
    }

    /// Does a *stored* attribute value satisfy the interval? Stored string
    /// values are dictionary-encoded (the graph interns on insertion), so
    /// the string case is a scan over a few `u32`s; the `Str` arm is a
    /// defensive fallback that never fires on graph-API-built data.
    pub fn matches_stored(&self, v: &Value) -> bool {
        match self {
            CompiledInterval::OneOf { syms, other } => match v {
                Value::Sym(sv) => {
                    let s = sv.sym();
                    syms.iter().any(|(c, _)| *c == s)
                }
                Value::Str(s) => syms.iter().any(|(_, t)| **t == **s),
                v => other.iter().any(|c| c == v),
            },
            CompiledInterval::Range(iv) => iv.matches(v),
        }
    }

    /// True when no stored value can satisfy the interval: an exhausted
    /// disjunction (empty to begin with, or every string constant pruned
    /// by the dictionary), or an empty/NaN-bounded range (a NaN bound
    /// admits nothing — see the pinned NaN semantics in
    /// `whyq_graph::value`).
    pub fn is_unsatisfiable(&self) -> bool {
        match self {
            CompiledInterval::OneOf { syms, other } => syms.is_empty() && other.is_empty(),
            CompiledInterval::Range(iv) => {
                if let Interval::Range { lo, hi, .. } = iv {
                    if lo.is_some_and(f64::is_nan) || hi.is_some_and(f64::is_nan) {
                        return true;
                    }
                }
                iv.is_empty()
            }
        }
    }
}

/// A predicate with its attribute name and string constants resolved to
/// graph symbols.
#[derive(Debug, Clone)]
pub struct ResolvedPredicate {
    /// `None` when the graph has no such attribute anywhere — the predicate
    /// is unsatisfiable.
    sym: Option<Symbol>,
    /// The interval, with string constants dictionary-resolved.
    interval: CompiledInterval,
}

impl ResolvedPredicate {
    /// Resolve `p` against `g`'s name and value dictionaries.
    pub fn resolve(g: &PropertyGraph, p: &Predicate) -> Self {
        ResolvedPredicate {
            sym: g.attr_symbol(&p.attr),
            interval: CompiledInterval::resolve(g, &p.interval),
        }
    }

    /// Check the predicate against an attribute map.
    #[inline]
    pub fn matches(&self, attrs: &AttrMap) -> bool {
        match self.sym {
            Some(s) => match attrs.get(s) {
                Some(v) => self.interval.matches_stored(v),
                None => false,
            },
            None => false,
        }
    }

    /// True when the predicate can match nothing in this graph: unknown
    /// attribute, or an interval with no reachable value.
    pub fn is_unsatisfiable(&self) -> bool {
        self.sym.is_none() || self.interval.is_unsatisfiable()
    }

    /// The resolved attribute symbol, if the graph knows the attribute.
    pub fn attr_symbol(&self) -> Option<Symbol> {
        self.sym
    }

    /// The compiled interval.
    pub fn interval(&self) -> &CompiledInterval {
        &self.interval
    }
}

/// Compiled form of one query vertex.
#[derive(Debug, Clone, Default)]
pub struct CompiledVertex {
    /// Resolved predicates; all must hold.
    pub preds: Vec<ResolvedPredicate>,
}

impl CompiledVertex {
    /// Compile the predicates of `qv` against `g`.
    pub fn compile(g: &PropertyGraph, qv: &QueryVertex) -> Self {
        CompiledVertex {
            preds: resolve(g, &qv.predicates),
        }
    }

    /// Does data vertex `v` satisfy the vertex constraints?
    pub fn accepts(&self, g: &PropertyGraph, v: VertexId) -> bool {
        let attrs = &g.vertex(v).attrs;
        self.preds.iter().all(|p| p.matches(attrs))
    }

    /// True when no data vertex can satisfy this query vertex.
    pub fn unsatisfiable(&self) -> bool {
        self.preds.iter().any(ResolvedPredicate::is_unsatisfiable)
    }
}

/// Compiled form of one query edge.
#[derive(Debug, Clone)]
pub struct CompiledEdge {
    /// Resolved admissible types. `None` = any type; `Some` with an empty
    /// vector = unsatisfiable (every named type is absent from the graph).
    pub types: Option<Vec<Symbol>>,
    /// Resolved predicates; all must hold.
    pub preds: Vec<ResolvedPredicate>,
}

impl CompiledEdge {
    /// Compile the type disjunction and predicates of `qe` against `g`.
    pub fn compile(g: &PropertyGraph, qe: &QueryEdge) -> Self {
        let types = if qe.types.is_empty() {
            None
        } else {
            // dedup: the engine scans one adjacency slice per admitted
            // type, so a repeated type name must not repeat its edges
            let mut tys = qe
                .types
                .iter()
                .filter_map(|t| g.type_symbol(t))
                .collect::<Vec<_>>();
            tys.sort_unstable();
            tys.dedup();
            Some(tys)
        };
        CompiledEdge {
            types,
            preds: resolve(g, &qe.predicates),
        }
    }

    /// Does the data edge satisfy type and attribute constraints
    /// (direction is checked by the traversal, not here)?
    pub fn accepts(&self, ed: &EdgeData) -> bool {
        if let Some(tys) = &self.types {
            if !tys.contains(&ed.ty) {
                return false;
            }
        }
        self.preds.iter().all(|p| p.matches(&ed.attrs))
    }

    /// Attribute-predicate check alone, for scans that already know the
    /// edge type is admissible (the CSR engine iterates per-type runs, so
    /// the type test is implied by the slice being scanned).
    pub fn accepts_attrs(&self, attrs: &AttrMap) -> bool {
        self.preds.iter().all(|p| p.matches(attrs))
    }

    /// True when matching an edge from an admissible-type adjacency run
    /// requires loading its [`EdgeData`] at all (only attribute predicates
    /// do — endpoints and type come straight from the CSR columns).
    pub fn needs_edge_data(&self) -> bool {
        !self.preds.is_empty()
    }

    /// True when no data edge can satisfy this query edge.
    pub fn unsatisfiable(&self) -> bool {
        self.types.as_ref().is_some_and(Vec::is_empty)
            || self.preds.iter().any(ResolvedPredicate::is_unsatisfiable)
    }
}

/// Fully compiled query: one slot per query vertex/edge id.
#[derive(Debug, Clone, Default)]
pub struct Compiled {
    /// Compiled vertices, indexed by `QVid` slot.
    pub vertices: Vec<Option<CompiledVertex>>,
    /// Compiled edges, indexed by `QEid` slot.
    pub edges: Vec<Option<CompiledEdge>>,
}

impl Compiled {
    /// Compile `q` against `g`.
    pub fn new(g: &PropertyGraph, q: &PatternQuery) -> Self {
        let mut vertices = vec![None; q.vertex_slots()];
        for v in q.vertex_ids() {
            let qv = q.vertex(v).expect("live");
            vertices[v.0 as usize] = Some(CompiledVertex::compile(g, qv));
        }
        let mut edges = vec![None; q.edge_slots()];
        for e in q.edge_ids() {
            let qe = q.edge(e).expect("live");
            edges[e.0 as usize] = Some(CompiledEdge::compile(g, qe));
        }
        Compiled { vertices, edges }
    }

    /// Compiled vertex by id.
    pub fn vertex(&self, v: QVid) -> &CompiledVertex {
        self.vertices[v.0 as usize].as_ref().expect("compiled")
    }

    /// Compiled edge by id.
    pub fn edge(&self, e: QEid) -> &CompiledEdge {
        self.edges[e.0 as usize].as_ref().expect("compiled")
    }

    /// True when some query element can match nothing in this graph — an
    /// unknown attribute or edge type, an empty interval, or a string
    /// constant the value dictionary has never seen. Since every component
    /// must match for the query to match (empty components zero the
    /// cartesian product), the whole search can be skipped.
    pub fn unsatisfiable(&self) -> bool {
        self.vertices
            .iter()
            .flatten()
            .any(CompiledVertex::unsatisfiable)
            || self.edges.iter().flatten().any(CompiledEdge::unsatisfiable)
    }
}

fn resolve(g: &PropertyGraph, preds: &[Predicate]) -> Vec<ResolvedPredicate> {
    preds
        .iter()
        .map(|p| ResolvedPredicate::resolve(g, p))
        .collect()
}

/// One step of a component evaluation plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Bind the first vertex of the component by scanning candidates.
    Seed {
        /// The query vertex to bind.
        vertex: QVid,
    },
    /// Traverse a query edge from a bound endpoint to an unbound one.
    ExpandNew {
        /// Query edge to bind.
        edge: QEid,
        /// Already-bound endpoint.
        from: QVid,
        /// Endpoint bound by this step.
        to: QVid,
    },
    /// Bind a query edge whose endpoints are both already bound.
    Close {
        /// Query edge to bind.
        edge: QEid,
    },
}

/// Evaluation plan for one weakly connected query component.
#[derive(Debug, Clone)]
pub struct ComponentPlan {
    /// Steps in execution order; the first is always [`Step::Seed`].
    pub steps: Vec<Step>,
}

impl ComponentPlan {
    /// The query vertex the component's search is seeded from — the
    /// vertex whose candidate space parallel execution shards into
    /// [`crate::work::WorkUnit`]s.
    pub fn seed_vertex(&self) -> QVid {
        match self.steps.first() {
            Some(&Step::Seed { vertex }) => vertex,
            _ => unreachable!("plans start with a Seed step"),
        }
    }
}

/// Build greedy, selectivity-ordered plans for every weakly connected
/// component of `q`.
///
/// The seed of each component is the vertex with the fewest *estimated*
/// candidate data vertices (see [`estimate_candidates`]); expansion prefers
/// *closing* edges (both endpoints bound — cheap existence checks) and
/// otherwise picks the edge whose new endpoint has the lowest estimate.
pub fn build_plans(
    g: &PropertyGraph,
    q: &PatternQuery,
    compiled: &Compiled,
    indexes: &[Arc<AttrIndex>],
) -> Vec<ComponentPlan> {
    build_plans_est(g, q, compiled, indexes).0
}

/// [`build_plans`], also returning the per-vertex selectivity estimates it
/// planned with (indexed by `QVid` slot). The IR lowering
/// ([`crate::plan_ir::lower`]) annotates its scan nodes with exactly these
/// estimates, so the optimizer passes reason from the same signal the
/// planner ordered by — without re-sampling the graph.
pub fn build_plans_est(
    g: &PropertyGraph,
    q: &PatternQuery,
    compiled: &Compiled,
    indexes: &[Arc<AttrIndex>],
) -> (Vec<ComponentPlan>, Vec<u64>) {
    let est = estimate_candidates(g, q, compiled, indexes);
    let plans = q
        .weakly_connected_components()
        .into_iter()
        .map(|comp| plan_component(q, &comp, &est))
        .collect();
    (plans, est)
}

/// How many vertices of the arena to test per query vertex when no index
/// bucket count is available. Graphs up to this size get exact counts;
/// larger ones an evenly spaced sample extrapolated to the full vertex
/// set. Deliberately small: planning runs on every `find`/`count` call, so
/// its cost must stay negligible next to the search itself.
const ESTIMATE_SAMPLE: usize = 64;

/// Estimate per-query-vertex candidate counts, indexed by `QVid` slot.
///
/// This is planning input, not a correctness bound: the matcher works with
/// any ordering, the estimates only decide which one. Three sources, from
/// strongest to weakest:
///
/// * an equality-shaped predicate (`OneOf` or degenerate point `Range`) on
///   the indexed attribute — the sum of its index bucket sizes is an exact
///   count for that predicate and an upper bound overall;
/// * an evenly spaced sample of the vertex arena filtered through the
///   compiled predicates, extrapolated by `|V| / sample` (exact when the
///   graph has at most `ESTIMATE_SAMPLE` (64) vertices);
/// * the total vertex count as the trivial fallback for an unconstrained
///   vertex.
///
/// A vertex with an unsatisfiable compiled predicate — including a string
/// equality whose constant the value dictionary has never seen — estimates
/// to zero outright.
pub fn estimate_candidates(
    g: &PropertyGraph,
    q: &PatternQuery,
    compiled: &Compiled,
    indexes: &[Arc<AttrIndex>],
) -> Vec<u64> {
    let n = g.num_vertices();
    let stride = n.div_ceil(ESTIMATE_SAMPLE).max(1);
    let mut est: Vec<u64> = vec![0; q.vertex_slots()];
    for v in q.vertex_ids() {
        let cv = compiled.vertex(v);
        let qv = q.vertex(v).expect("live");
        let mut e = n as u64;
        if cv.preds.is_empty() {
            est[v.0 as usize] = e;
            continue;
        }
        // structurally unsatisfiable predicates match nothing at all
        if cv.unsatisfiable() {
            est[v.0 as usize] = 0;
            continue;
        }
        // exact bucket counts for equality predicates on indexed attrs —
        // every configured index contributes its own upper bound
        for p in &qv.predicates {
            let Some(attr) = g.attr_symbol(&p.attr) else {
                continue;
            };
            let Some(idx) = indexes.iter().find(|i| i.attr() == attr) else {
                continue;
            };
            if let Interval::OneOf(vals) = &p.interval {
                let bucket_sum: u64 = vals.iter().map(|v| idx.lookup(g, v).len() as u64).sum();
                e = e.min(bucket_sum);
            } else if let Some(pv) = p.interval.point_value() {
                // one probe covers Int and Float encodings: `Value`
                // equates (and the index buckets) numeric family members
                e = e.min(idx.lookup(g, &pv).len() as u64);
            }
        }
        // sampled (or exact, for small graphs) selectivity across *all*
        // predicates — the bucket count above only sees the indexed one, so
        // take the minimum of both signals
        let mut sampled = 0usize;
        let mut hits = 0u64;
        for dv in g.vertex_ids().step_by(stride) {
            sampled += 1;
            if cv.accepts(g, dv) {
                hits += 1;
            }
        }
        if sampled > 0 {
            e = e.min(hits.saturating_mul(n as u64) / sampled as u64);
        }
        est[v.0 as usize] = e;
    }
    est
}

fn plan_component(q: &PatternQuery, comp: &[QVid], cand_count: &[u64]) -> ComponentPlan {
    let seed = *comp
        .iter()
        .min_by_key(|v| cand_count[v.0 as usize])
        .expect("non-empty component");
    let mut steps = vec![Step::Seed { vertex: seed }];
    let mut bound: Vec<QVid> = vec![seed];
    let mut remaining: Vec<QEid> = comp
        .iter()
        .flat_map(|&v| q.incident_edges(v))
        .collect::<Vec<_>>();
    remaining.sort();
    remaining.dedup();

    while !remaining.is_empty() {
        // prefer closing edges
        if let Some(pos) = remaining.iter().position(|&e| {
            let ed = q.edge(e).expect("live");
            bound.contains(&ed.src) && bound.contains(&ed.dst)
        }) {
            let e = remaining.remove(pos);
            steps.push(Step::Close { edge: e });
            continue;
        }
        // otherwise the frontier edge with the cheapest new endpoint
        let (pos, from, to) = remaining
            .iter()
            .enumerate()
            .filter_map(|(i, &e)| {
                let ed = q.edge(e).expect("live");
                if bound.contains(&ed.src) {
                    Some((i, ed.src, ed.dst))
                } else if bound.contains(&ed.dst) {
                    Some((i, ed.dst, ed.src))
                } else {
                    None
                }
            })
            .min_by_key(|&(_, _, to)| cand_count[to.0 as usize])
            .expect("component is connected");
        let e = remaining.remove(pos);
        steps.push(Step::ExpandNew { edge: e, from, to });
        bound.push(to);
    }
    ComponentPlan { steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_graph::Value;
    use whyq_query::{QueryBuilder, QueryVertex};

    fn small_graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let p1 = g.add_vertex([("type", Value::str("person"))]);
        let p2 = g.add_vertex([("type", Value::str("person"))]);
        let c = g.add_vertex([("type", Value::str("city"))]);
        g.add_edge(p1, p2, "knows", []);
        g.add_edge(p1, c, "livesIn", []);
        g
    }

    #[test]
    fn unknown_attribute_is_unsatisfiable() {
        let g = small_graph();
        let q = QueryBuilder::new("q")
            .vertex("a", [whyq_query::Predicate::eq("nonexistent", 1)])
            .build();
        let c = Compiled::new(&g, &q);
        assert!(!c.vertex(QVid(0)).accepts(&g, VertexId(0)));
        assert!(c.vertex(QVid(0)).unsatisfiable());
        assert!(c.unsatisfiable());
    }

    #[test]
    fn unknown_type_is_unsatisfiable() {
        let g = small_graph();
        let mut q = PatternQuery::new();
        let a = q.add_vertex(QueryVertex::any());
        let b = q.add_vertex(QueryVertex::any());
        q.add_edge(QueryEdge::typed(a, b, "teleportsTo"));
        let c = Compiled::new(&g, &q);
        assert_eq!(c.edge(QEid(0)).types.as_deref(), Some(&[][..]));
        assert!(!c.edge(QEid(0)).accepts(g.edge(whyq_graph::EdgeId(0))));
        assert!(c.unsatisfiable());
    }

    #[test]
    fn string_constants_resolve_to_dictionary_symbols() {
        let g = small_graph();
        let q = QueryBuilder::new("q")
            .vertex("a", [whyq_query::Predicate::eq("type", "person")])
            .build();
        let c = Compiled::new(&g, &q);
        let p = &c.vertex(QVid(0)).preds[0];
        assert!(!p.is_unsatisfiable());
        let CompiledInterval::OneOf { syms, other } = p.interval() else {
            panic!("expected OneOf");
        };
        assert_eq!(other.len(), 0);
        assert_eq!(syms.len(), 1);
        assert_eq!(syms[0].0, g.value_symbol("person").unwrap());
        // the symbol check accepts exactly the person vertices
        assert!(c.vertex(QVid(0)).accepts(&g, VertexId(0)));
        assert!(c.vertex(QVid(0)).accepts(&g, VertexId(1)));
        assert!(!c.vertex(QVid(0)).accepts(&g, VertexId(2)));
    }

    #[test]
    fn unknown_string_constant_prunes_to_unsatisfiable() {
        let g = small_graph();
        // "robot" is not in the value dictionary: the graph stores no such
        // string anywhere, so the predicate can match nothing
        let q = QueryBuilder::new("q")
            .vertex("a", [whyq_query::Predicate::eq("type", "robot")])
            .build();
        let c = Compiled::new(&g, &q);
        assert!(c.vertex(QVid(0)).unsatisfiable());
        assert!(c.unsatisfiable());
        let est = estimate_candidates(&g, &q, &c, &[]);
        assert_eq!(est, vec![0]);
        // a mixed disjunction with one known constant survives
        let q2 = QueryBuilder::new("q2")
            .vertex(
                "a",
                [whyq_query::Predicate::one_of("type", ["robot", "city"])],
            )
            .build();
        let c2 = Compiled::new(&g, &q2);
        assert!(!c2.unsatisfiable());
        assert!(c2.vertex(QVid(0)).accepts(&g, VertexId(2)));
        assert!(!c2.vertex(QVid(0)).accepts(&g, VertexId(0)));
    }

    #[test]
    fn non_string_constants_still_match() {
        let mut g = PropertyGraph::new();
        let v = g.add_vertex([("age", Value::Int(30)), ("ok", Value::Bool(true))]);
        let q = QueryBuilder::new("q")
            .vertex(
                "a",
                [
                    whyq_query::Predicate::eq("age", 30),
                    whyq_query::Predicate::eq("ok", true),
                ],
            )
            .build();
        let c = Compiled::new(&g, &q);
        assert!(!c.unsatisfiable());
        assert!(c.vertex(QVid(0)).accepts(&g, v));
    }

    #[test]
    fn plan_seeds_most_selective_vertex() {
        let g = small_graph();
        let q = QueryBuilder::new("q")
            .vertex("p", [whyq_query::Predicate::eq("type", "person")])
            .vertex("c", [whyq_query::Predicate::eq("type", "city")])
            .edge("p", "c", "livesIn")
            .build();
        let compiled = Compiled::new(&g, &q);
        let plans = build_plans(&g, &q, &compiled, &[]);
        assert_eq!(plans.len(), 1);
        // the city vertex (1 candidate) beats the person vertex (2)
        assert_eq!(plans[0].steps[0], Step::Seed { vertex: QVid(1) });
        assert_eq!(plans[0].steps.len(), 2);
    }

    #[test]
    fn plan_emits_close_for_cycles() {
        let g = small_graph();
        let q = QueryBuilder::new("tri")
            .vertex("a", [])
            .vertex("b", [])
            .vertex("c", [])
            .edge("a", "b", "knows")
            .edge("b", "c", "knows")
            .edge("a", "c", "knows")
            .build();
        let compiled = Compiled::new(&g, &q);
        let plans = build_plans(&g, &q, &compiled, &[]);
        let closes = plans[0]
            .steps
            .iter()
            .filter(|s| matches!(s, Step::Close { .. }))
            .count();
        assert_eq!(closes, 1);
    }

    #[test]
    fn isolated_vertices_get_seed_only_plans() {
        let g = small_graph();
        let q = QueryBuilder::new("iso")
            .vertex("x", [])
            .vertex("y", [])
            .build();
        let compiled = Compiled::new(&g, &q);
        let plans = build_plans(&g, &q, &compiled, &[]);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].steps.len(), 1);
    }
}
