//! Property-based equivalence of the slot-based engine and the naive
//! reference engine: on random small graphs and queries the two must return
//! the same match sets and the same counts — injectively, homomorphically,
//! with and without result limits, and with or without an attribute index.

// the deprecated `with_index` shim is part of the surface under test
#![allow(deprecated)]

use proptest::prelude::*;
use whyq_graph::{PropertyGraph, Value};
use whyq_matcher::{count_matches_naive, find_matches_naive, MatchOptions, Matcher, ResultGraph};
use whyq_query::{DirectionSet, PatternQuery, Predicate, QVid, QueryEdge, QueryVertex};

fn build_graph(n: usize, types: &[u8], pairs: &[(u8, u8, bool)]) -> PropertyGraph {
    let names = ["red", "green", "blue"];
    let mut g = PropertyGraph::new();
    let vs: Vec<_> = (0..n)
        .map(|i| {
            g.add_vertex([(
                "type",
                Value::str(names[types[i % types.len()] as usize % 3]),
            )])
        })
        .collect();
    for &(a, b, t) in pairs {
        g.add_edge(
            vs[a as usize % n],
            vs[b as usize % n],
            if t { "link" } else { "flow" },
            [],
        );
    }
    g
}

fn build_query(len: usize, types: &[u8], etypes: &[bool], undirected: bool) -> PatternQuery {
    let names = ["red", "green", "blue"];
    let mut q = PatternQuery::new();
    let mut prev: Option<QVid> = None;
    for i in 0..len {
        let v = q.add_vertex(QueryVertex::with([Predicate::eq(
            "type",
            names[types[i % types.len()] as usize % 3],
        )]));
        if let Some(p) = prev {
            let mut e = QueryEdge::typed(
                p,
                v,
                if etypes[i % etypes.len()] {
                    "link"
                } else {
                    "flow"
                },
            );
            if undirected {
                e.directions = DirectionSet::BOTH;
            }
            q.add_edge(e);
        }
        prev = Some(v);
    }
    q
}

/// One match in canonical form: (vertex bindings, edge bindings) as raw ids.
type CanonicalMatch = (Vec<(u32, u32)>, Vec<(u32, u32)>);

/// Canonical form of a match set: sorted binding lists, sorted overall.
fn canonical(results: &[ResultGraph]) -> Vec<CanonicalMatch> {
    let mut out: Vec<_> = results
        .iter()
        .map(|r| {
            (
                r.vertex_bindings()
                    .iter()
                    .map(|&(q, d)| (q.0, d.0))
                    .collect::<Vec<_>>(),
                r.edge_bindings()
                    .iter()
                    .map(|&(q, d)| (q.0, d.0))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Injective and homomorphic counts and match sets agree with the naive
    /// reference, with and without the attribute index.
    #[test]
    fn slot_engine_equals_naive_reference(
        n in 2usize..6,
        vtypes in prop::collection::vec(0u8..3, 6),
        pairs in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..10),
        qlen in 1usize..4,
        qtypes in prop::collection::vec(0u8..3, 4),
        qetypes in prop::collection::vec(any::<bool>(), 4),
        undirected in any::<bool>(),
        injective in any::<bool>(),
    ) {
        let g = build_graph(n, &vtypes, &pairs);
        let q = build_query(qlen, &qtypes, &qetypes, undirected);
        let opts = MatchOptions { injective, limit: None, ..Default::default() };

        let naive_count = count_matches_naive(&g, &q, opts.clone());
        let naive_set = canonical(&find_matches_naive(&g, &q, opts.clone()));

        let plain = Matcher::new(&g);
        prop_assert_eq!(plain.count(&q, opts.clone()), naive_count);
        prop_assert_eq!(canonical(&plain.find(&q, opts.clone())), naive_set.clone());

        let indexed = Matcher::new(&g).with_index("type");
        prop_assert_eq!(indexed.count(&q, opts.clone()), naive_count);
        prop_assert_eq!(canonical(&indexed.find(&q, opts.clone())), naive_set);
    }

    /// Limits clamp identically: `min(total, limit)` results/counts.
    #[test]
    fn limits_clamp_like_naive_reference(
        n in 2usize..6,
        vtypes in prop::collection::vec(0u8..3, 6),
        pairs in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..10),
        qlen in 1usize..4,
        qtypes in prop::collection::vec(0u8..3, 4),
        qetypes in prop::collection::vec(any::<bool>(), 4),
        limit in 1usize..5,
        injective in any::<bool>(),
    ) {
        let g = build_graph(n, &vtypes, &pairs);
        let q = build_query(qlen, &qtypes, &qetypes, false);
        let total = count_matches_naive(
            &g,
            &q,
            MatchOptions { injective, limit: None, ..Default::default() },
        );
        let opts = MatchOptions { injective, limit: Some(limit), ..Default::default() };
        let expect = total.min(limit as u64);

        let m = Matcher::new(&g);
        prop_assert_eq!(m.count(&q, opts.clone()), expect);
        prop_assert_eq!(m.find(&q, opts.clone()).len() as u64, expect);
        prop_assert_eq!(count_matches_naive(&g, &q, opts.clone()), expect);
        prop_assert_eq!(find_matches_naive(&g, &q, opts.clone()).len() as u64, expect);
    }

    /// String-predicate queries — including `OneOf` disjunctions carrying
    /// constants the graph has never stored, which the optimized engine
    /// prunes through the value dictionary at compile time — agree with
    /// the oracle's decoded-string evaluation. Vertices carry a second
    /// string attribute so multi-predicate conjunctions are exercised too.
    #[test]
    fn string_predicate_queries_agree_with_oracle(
        n in 2usize..6,
        vtypes in prop::collection::vec(0u8..3, 6),
        vlabels in prop::collection::vec(0u8..4, 6),
        pairs in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..10),
        qlen in 1usize..4,
        // 0..3 are stored type names, 3.. are strings absent from every
        // graph (dictionary-pruned); each query vertex gets a disjunction
        qdisj in prop::collection::vec(prop::collection::vec(0u8..5, 1..3), 4),
        qlabel in prop::collection::vec(0u8..6, 4),
        injective in any::<bool>(),
    ) {
        let names = ["red", "green", "blue", "ultraviolet", "infrared"];
        let labels = ["ok", "warn", "err", "mute", "ghost", "wraith"];
        let mut g = PropertyGraph::new();
        let vs: Vec<_> = (0..n)
            .map(|i| {
                g.add_vertex([
                    ("type", Value::str(names[vtypes[i % vtypes.len()] as usize % 3])),
                    ("label", Value::str(labels[vlabels[i % vlabels.len()] as usize % 4])),
                ])
            })
            .collect();
        for &(a, b, t) in &pairs {
            g.add_edge(
                vs[a as usize % n],
                vs[b as usize % n],
                if t { "link" } else { "flow" },
                [],
            );
        }
        let mut q = PatternQuery::new();
        let mut prev: Option<QVid> = None;
        for i in 0..qlen {
            let disj: Vec<&str> = qdisj[i % qdisj.len()]
                .iter()
                .map(|&d| names[d as usize % names.len()])
                .collect();
            let v = q.add_vertex(QueryVertex::with([
                Predicate::one_of("type", disj),
                Predicate::eq("label", labels[qlabel[i % qlabel.len()] as usize % labels.len()]),
            ]));
            if let Some(p) = prev {
                q.add_edge(QueryEdge::typed(p, v, "link"));
            }
            prev = Some(v);
        }
        let opts = MatchOptions { injective, limit: None, ..Default::default() };

        let naive_count = count_matches_naive(&g, &q, opts.clone());
        let naive_set = canonical(&find_matches_naive(&g, &q, opts.clone()));

        let plain = Matcher::new(&g);
        prop_assert_eq!(plain.count(&q, opts.clone()), naive_count);
        prop_assert_eq!(canonical(&plain.find(&q, opts.clone())), naive_set.clone());

        let indexed = Matcher::new(&g).with_index("type");
        prop_assert_eq!(indexed.count(&q, opts.clone()), naive_count);
        prop_assert_eq!(canonical(&indexed.find(&q, opts.clone())), naive_set);
    }

    /// Multi-component queries (isolated vertices) multiply identically.
    #[test]
    fn disconnected_components_agree(
        n in 2usize..5,
        vtypes in prop::collection::vec(0u8..3, 6),
        pairs in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..6),
        parts in prop::collection::vec(0u8..3, 1..4),
    ) {
        let g = build_graph(n, &vtypes, &pairs);
        let names = ["red", "green", "blue"];
        let mut q = PatternQuery::new();
        for &t in &parts {
            q.add_vertex(QueryVertex::with([Predicate::eq(
                "type",
                names[t as usize % 3],
            )]));
        }
        let opts = MatchOptions::default();
        let m = Matcher::new(&g);
        prop_assert_eq!(
            m.count(&q, opts.clone()),
            count_matches_naive(&g, &q, opts.clone())
        );
        prop_assert_eq!(
            canonical(&m.find(&q, opts.clone())),
            canonical(&find_matches_naive(&g, &q, opts.clone()))
        );
    }
}
