//! Pass-matrix equivalence: every subset of the optimizer pass pipeline,
//! executed through every execution mode, must enumerate exactly the
//! matches the brute-force reference accepts.
//!
//! For each randomized graph/query pair and each of the 8 [`PassSet`]
//! subsets (`PassSet::subset(0..8)`) the suite checks:
//!
//! - the lowered IR passes [`verify_ir`] after the subset's passes ran;
//! - serial `find`/`count` on the compiled program equal the naive
//!   reference (canonical multiset comparison);
//! - the streamed enumeration yields the identical result *list*;
//! - a step-budgeted (governed) run yields a prefix of the serial list;
//! - concatenating [`WorkUnit`] executions over every seed split equals
//!   the serial list (the substrate of `find_par`/`count_par`);
//! - with `--features legacy-interp`, the retired recursive interpreter
//!   agrees as a third, independently-implemented oracle.

use proptest::prelude::*;
use std::sync::Arc;
use whyq_graph::{PropertyGraph, Value};
use whyq_matcher::budget::Budget;
use whyq_matcher::compile::{build_plans_est, Compiled};
use whyq_matcher::{
    count_matches_naive, find_matches_naive, lower, optimize, verify_ir, AttrIndex, MatchOptions,
    MatchStream, Matcher, PassSet, QueryProgram, ResultGraph, WorkUnit,
};
use whyq_query::{DirectionSet, PatternQuery, Predicate, QVid, QueryEdge, QueryVertex};

fn build_graph(n: usize, types: &[u8], pairs: &[(u8, u8, bool)]) -> PropertyGraph {
    let names = ["red", "green", "blue"];
    let mut g = PropertyGraph::new();
    let vs: Vec<_> = (0..n)
        .map(|i| {
            g.add_vertex([
                (
                    "type",
                    Value::str(names[types[i % types.len()] as usize % 3]),
                ),
                // a second indexed attribute so seed_select can find
                // point-probe intersections to rewrite
                ("rank", Value::Int((i % 2) as i64)),
            ])
        })
        .collect();
    for &(a, b, t) in pairs {
        g.add_edge(
            vs[a as usize % n],
            vs[b as usize % n],
            if t { "link" } else { "flow" },
            [],
        );
    }
    g
}

fn build_query(
    len: usize,
    types: &[u8],
    etypes: &[bool],
    undirected: bool,
    rank_pred: bool,
) -> PatternQuery {
    let names = ["red", "green", "blue"];
    let mut q = PatternQuery::new();
    let mut prev: Option<QVid> = None;
    for i in 0..len {
        let mut preds = vec![Predicate::eq(
            "type",
            names[types[i % types.len()] as usize % 3],
        )];
        if rank_pred && i == 0 {
            // two equality predicates on the same vertex exercise the
            // intersection seed source
            preds.push(Predicate::eq("rank", 0));
        }
        let v = q.add_vertex(QueryVertex::with(preds));
        if let Some(p) = prev {
            let mut e = QueryEdge::typed(
                p,
                v,
                if etypes[i % etypes.len()] {
                    "link"
                } else {
                    "flow"
                },
            );
            if undirected {
                e.directions = DirectionSet::BOTH;
            }
            q.add_edge(e);
        }
        prev = Some(v);
    }
    q
}

/// One match in canonical form: (vertex bindings, edge bindings).
type CanonicalMatch = (Vec<(u32, u32)>, Vec<(u32, u32)>);

fn canonical(results: &[ResultGraph]) -> Vec<CanonicalMatch> {
    let mut out: Vec<_> = results
        .iter()
        .map(|r| {
            (
                r.vertex_bindings()
                    .iter()
                    .map(|&(qv, d)| (qv.0, d.0))
                    .collect::<Vec<_>>(),
                r.edge_bindings()
                    .iter()
                    .map(|&(qe, d)| (qe.0, d.0))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    out.sort();
    out
}

fn indexes_for(g: &PropertyGraph) -> Vec<Arc<AttrIndex>> {
    ["type", "rank"]
        .iter()
        .filter_map(|a| AttrIndex::build(g, a).map(Arc::new))
        .collect()
}

/// Concatenate every work unit of every component under a `chunks`-way
/// seed split — must reproduce the serial enumeration exactly.
fn run_units(
    m: &Matcher<'_>,
    q: &PatternQuery,
    compiled: &Compiled,
    program: &QueryProgram,
    chunks: usize,
) -> Vec<ResultGraph> {
    let mut per_component = Vec::new();
    for (component, prog) in program.components().iter().enumerate() {
        let seeds = m.seed_list_for(prog);
        let mut merged = Vec::new();
        for range in whyq_matcher::split_ranges(seeds.len(), chunks) {
            let unit = WorkUnit { component, range };
            merged.extend(m.find_unit(
                q,
                compiled,
                program,
                &unit,
                &seeds,
                MatchOptions::default(),
            ));
        }
        if merged.is_empty() {
            return Vec::new();
        }
        per_component.push(merged);
    }
    whyq_matcher::combine_components(per_component, usize::MAX)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full pass power set, each subset verified and result-equivalent
    /// to the reference across serial, streamed, governed and unit modes.
    #[test]
    fn pass_power_set_is_result_equivalent(
        n in 2usize..6,
        vtypes in prop::collection::vec(0u8..3, 6),
        pairs in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..10),
        qlen in 1usize..4,
        qtypes in prop::collection::vec(0u8..3, 4),
        qetypes in prop::collection::vec(any::<bool>(), 4),
        undirected in any::<bool>(),
        rank_pred in any::<bool>(),
    ) {
        let g = build_graph(n, &vtypes, &pairs);
        let q = build_query(qlen, &qtypes, &qetypes, undirected, rank_pred);
        let indexes = indexes_for(&g);

        let naive_count = count_matches_naive(&g, &q, MatchOptions::default());
        let naive_set = canonical(&find_matches_naive(&g, &q, MatchOptions::default()));

        let mut m = Matcher::new(&g);
        for idx in &indexes {
            m.attach_index(Arc::clone(idx));
        }

        for subset in 0u8..8 {
            let passes = PassSet::subset(subset);

            // the IR stays verifiable after this subset's passes
            let compiled = Compiled::new(&g, &q);
            if !compiled.unsatisfiable() {
                let (plans, est) = build_plans_est(&g, &q, &compiled, &indexes);
                let mut ir = lower(&compiled, &plans, &est);
                optimize(&mut ir, &g, &q, &compiled, &indexes, passes);
                prop_assert!(
                    verify_ir(&q, &compiled, &ir, indexes.len()).is_ok(),
                    "verify_ir failed for subset {subset}"
                );
            }

            let cq = m.compile_with_passes(&q, passes);

            // serial vs reference
            let serial = m.find_compiled(&q, &cq.compiled, &cq.program, MatchOptions::default());
            prop_assert_eq!(canonical(&serial), naive_set.clone(), "subset {}", subset);
            prop_assert_eq!(
                m.count_compiled(&q, &cq.compiled, &cq.program, MatchOptions::default()),
                naive_count,
                "subset {}", subset
            );

            // streamed: identical list, not just multiset
            let streamed: Vec<ResultGraph> = MatchStream::over(
                &g,
                indexes.clone(),
                Arc::new(q.clone()),
                Arc::new(cq.compiled.clone()),
                Arc::new(cq.program.clone()),
                MatchOptions::default(),
            )
            .collect();
            prop_assert_eq!(&streamed, &serial, "stream diverged for subset {}", subset);

            // governed: a small step budget yields a prefix of the serial
            // list (sticky trip ⇒ no holes)
            let governed = m.find_compiled(
                &q,
                &cq.compiled,
                &cq.program,
                MatchOptions::governed(Budget::steps(2048)),
            );
            prop_assert!(
                governed.len() <= serial.len()
                    && governed.as_slice() == &serial[..governed.len()],
                "governed run is not a serial prefix for subset {subset}"
            );

            // unit protocol: every split concatenates to the serial list
            for chunks in [1usize, 3] {
                let merged = run_units(&m, &q, &cq.compiled, &cq.program, chunks);
                prop_assert_eq!(&merged, &serial, "units diverged for subset {}", subset);
            }

            // the retired interpreter as a third oracle
            #[cfg(feature = "legacy-interp")]
            {
                let (compiled, plans) = m.compile(&q);
                let interp =
                    m.find_compiled_interp(&q, &compiled, &plans, MatchOptions::default());
                prop_assert_eq!(
                    canonical(&interp),
                    naive_set.clone(),
                    "legacy interpreter diverged"
                );
            }
        }
    }

    /// Limits behave identically across pass subsets: `min(C(Q), limit)`
    /// counts and capped find sizes.
    #[test]
    fn limits_are_pass_independent(
        n in 2usize..5,
        vtypes in prop::collection::vec(0u8..3, 6),
        pairs in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..8),
        qlen in 1usize..3,
        qtypes in prop::collection::vec(0u8..3, 4),
        limit in 1usize..4,
    ) {
        let g = build_graph(n, &vtypes, &pairs);
        let q = build_query(qlen, &qtypes, &[true], false, false);
        let indexes = indexes_for(&g);
        let mut m = Matcher::new(&g);
        for idx in &indexes {
            m.attach_index(Arc::clone(idx));
        }
        let full = m.count(&q, MatchOptions::default());
        for subset in 0u8..8 {
            let cq = m.compile_with_passes(&q, PassSet::subset(subset));
            let capped = m.count_compiled(&q, &cq.compiled, &cq.program,
                MatchOptions::counting(Some(limit as u64)));
            prop_assert_eq!(capped, full.min(limit as u64));
            let found = m.find_compiled(&q, &cq.compiled, &cq.program,
                MatchOptions::limited(limit));
            prop_assert_eq!(found.len() as u64, full.min(limit as u64));
        }
    }
}
