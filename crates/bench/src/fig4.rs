//! §4.5 — evaluation of the subgraph-based explanation algorithms.
//!
//! * `fig4.disc.ldbc` / `fig4.disc.dbp` — DISCOVERMCS on why-empty queries:
//!   runtime, traversal work and MCS size versus query size (§4.5.1);
//! * `fig4.opt` — the ablation of the §4.3 optimizations (exhaustive vs
//!   single traversal path, with and without WCC decomposition);
//! * `fig4.bnd` — BOUNDEDMCS for too-many / too-few thresholds (§4.5.2).

use crate::cells;
use crate::util::count;
use crate::util::{timed, Table, CARDINALITY_FACTORS};
use whyq_core::problem::CardinalityGoal;
use whyq_core::stats::Statistics;
use whyq_core::subgraph::traversal::{selectivity_path, user_centric_path};
use whyq_core::subgraph::{BoundedMcs, DiscoverMcs, McsConfig, PathStrategy};
use whyq_core::user::UserPreferences;
use whyq_datagen::{dbpedia_failing_queries, ldbc_failing_queries, ldbc_path_query, ldbc_queries};
use whyq_query::{PatternQuery, Predicate, QueryVertex};
use whyq_session::Database;

/// DISCOVERMCS on LDBC why-empty queries + a query-size sweep.
pub fn disc_ldbc(db: &Database, tsv: bool) {
    let mut t = Table::new(
        "Fig 4 (LDBC) — DISCOVERMCS on why-empty queries",
        &[
            "query",
            "|Vq|",
            "|Eq|",
            "mcs edges",
            "mcs C",
            "crossing",
            "paths",
            "extends",
            "ms",
        ],
    );
    let mut queries = ldbc_failing_queries();
    for hops in 1..=4 {
        queries.push(ldbc_path_query(hops, true));
    }
    for q in &queries {
        let (expl, ms) = timed(|| DiscoverMcs::new(db).run(q).expect("discover"));
        t.row(cells![
            q.name.clone().unwrap_or_default(),
            q.num_vertices(),
            q.num_edges(),
            expl.mcs.num_edges(),
            expl.mcs_cardinality,
            expl.crossing_edge
                .map_or_else(|| "-".into(), |e| e.to_string()),
            expl.paths_tried,
            expl.extensions,
            format!("{ms:.1}"),
        ]);
    }
    t.print();
    if tsv {
        let _ = t.write_tsv();
    }
    println!("  shape check: work (extends, ms) grows with |Eq|; MCS = |Eq| - failing part.");
}

/// DISCOVERMCS on DBpedia why-empty queries.
pub fn disc_dbp(db: &Database, tsv: bool) {
    let mut t = Table::new(
        "Fig 4 (DBPEDIA) — DISCOVERMCS on why-empty queries",
        &[
            "query",
            "|Vq|",
            "|Eq|",
            "mcs edges",
            "mcs C",
            "crossing",
            "paths",
            "extends",
            "ms",
        ],
    );
    for q in dbpedia_failing_queries() {
        let (expl, ms) = timed(|| DiscoverMcs::new(db).run(&q).expect("discover"));
        t.row(cells![
            q.name.clone().unwrap_or_default(),
            q.num_vertices(),
            q.num_edges(),
            expl.mcs.num_edges(),
            expl.mcs_cardinality,
            expl.crossing_edge
                .map_or_else(|| "-".into(), |e| e.to_string()),
            expl.paths_tried,
            expl.extensions,
            format!("{ms:.1}"),
        ]);
    }
    t.print();
    if tsv {
        let _ = t.write_tsv();
    }
}

/// A failing LDBC query with an extra unconnected component, used to make
/// the WCC decomposition observable.
fn disconnected_variant(base: &PatternQuery) -> PatternQuery {
    let mut q = base.clone();
    q.add_vertex(QueryVertex::with([
        Predicate::eq("type", "tag"),
        Predicate::eq("name", "databases"),
    ]));
    if let Some(name) = &mut q.name {
        name.push_str(" +component");
    }
    q
}

/// The §4.3 optimization ablation.
pub fn optimizations(db: &Database, tsv: bool) {
    let mut t = Table::new(
        "Fig 4 (ablation) — traversal-path strategy x WCC decomposition",
        &[
            "query",
            "strategy",
            "decompose",
            "mcs edges",
            "paths",
            "extends",
            "ms",
        ],
    );
    let mut queries = ldbc_failing_queries();
    queries = queries
        .into_iter()
        .map(|q| disconnected_variant(&q))
        .collect();
    for q in &queries {
        for (strategy, sname) in [
            (PathStrategy::Exhaustive, "exhaustive"),
            (PathStrategy::SingleSelectivity, "single-path"),
        ] {
            for decompose in [false, true] {
                let config = McsConfig {
                    strategy: strategy.clone(),
                    decompose,
                    ..McsConfig::default()
                };
                let (expl, ms) = timed(|| {
                    DiscoverMcs::new(db)
                        .with_config(config)
                        .run(q)
                        .expect("discover")
                });
                t.row(cells![
                    q.name.clone().unwrap_or_default(),
                    sname,
                    decompose,
                    expl.mcs.num_edges(),
                    expl.paths_tried,
                    expl.extensions,
                    format!("{ms:.1}"),
                ]);
            }
        }
    }
    t.print();
    if tsv {
        let _ = t.write_tsv();
    }
    println!("  shape check: single-path and decomposition each cut paths/extends; MCS quality is preserved on these workloads.");
}

/// BOUNDEDMCS under too-many and too-few thresholds (§4.5.2).
pub fn bounded(db: &Database, tsv: bool) {
    let mut t = Table::new(
        "Fig 4 (BOUNDEDMCS) — bounded MCS per cardinality factor",
        &[
            "query",
            "C1",
            "factor",
            "goal",
            "mcs edges",
            "mcs C",
            "crossing",
            "extends",
            "ms",
        ],
    );
    for q in ldbc_queries() {
        let c1 = count(db, &q, None);
        for &factor in &CARDINALITY_FACTORS {
            let c_thr = ((c1 as f64) * factor).round().max(1.0) as u64;
            let goal = if factor < 1.0 {
                CardinalityGoal::AtMost(c_thr)
            } else {
                CardinalityGoal::AtLeast(c_thr)
            };
            let (expl, ms) = timed(|| BoundedMcs::new(db).run(&q, goal).expect("bounded"));
            t.row(cells![
                q.name.clone().unwrap_or_default(),
                c1,
                factor,
                format!("{goal:?}"),
                expl.mcs.num_edges(),
                expl.mcs_cardinality,
                expl.crossing_edge
                    .map_or_else(|| "-".into(), |e| e.to_string()),
                expl.extensions,
                format!("{ms:.1}"),
            ]);
        }
    }
    t.print();
    if tsv {
        let _ = t.write_tsv();
    }
    println!("  shape check: tighter AtMost bounds shrink the bounded MCS; looser AtLeast bounds grow it.");
}

/// §4.4 — user-centric traversal: does the path strategy examine the
/// elements the user cares about first?
pub fn user_paths(db: &Database, tsv: bool) {
    let mut t = Table::new(
        "Fig 4 (user paths) — position of the user's edge of interest in the traversal",
        &[
            "query",
            "interesting edge",
            "pos selectivity-path",
            "pos user-centric",
            "rank sel",
            "rank user",
        ],
    );
    let stats = Statistics::new(db);
    for q in ldbc_queries() {
        let component: Vec<whyq_query::QVid> = q.vertex_ids().collect();
        // the user cares about the *last* edge of the query (worst case for
        // a selectivity-ordered traversal)
        let interesting = q.edge_ids().last().expect("has edges");
        let mut prefs = UserPreferences::new();
        prefs.set_edge(interesting, 1.0);
        let sel = selectivity_path(&q, &component, &stats);
        let user = user_centric_path(&q, &component, &prefs, &stats);
        let pos = |edges: &[whyq_query::QEid]| {
            edges
                .iter()
                .position(|&e| e == interesting)
                .map_or(0, |p| p + 1)
        };
        t.row(cells![
            q.name.clone().unwrap_or_default(),
            interesting.to_string(),
            pos(&sel.edges),
            pos(&user.edges),
            format!("{:.2}", prefs.path_rank(&sel.edges)),
            format!("{:.2}", prefs.path_rank(&user.edges)),
        ]);
    }
    t.print();
    if tsv {
        let _ = t.write_tsv();
    }
    println!(
        "  shape check: the user-centric path moves the interesting edge to the front (rank up)."
    );
}
