//! # whyq-bench — the evaluation harness
//!
//! One module per figure/table family of the thesis evaluation; the
//! `repro` binary dispatches experiment ids (see `DESIGN.md` §5 for the
//! index). Each experiment prints the same series the paper plots and
//! optionally writes TSV files for external plotting.

// The whole workspace is unsafe-free (audited 2026-08): lock it in.
#![forbid(unsafe_code)]

pub mod appendix;
pub mod compare;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
mod smoke;
pub mod tables;
pub mod util;
