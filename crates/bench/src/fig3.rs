//! §3.2.5 — evaluation of the comparison metrics (Figs. 3.7–3.10).
//!
//! For each LDBC query and each cardinality factor `{0.2, 0.5, 2, 5}` a
//! seeded pool of random explanations (≤ 3 modification levels) is
//! generated; every explanation is executed and its syntactic, result and
//! cardinality distances to the original query are measured. The thesis
//! plots the ordered distance curves; we print quartile summaries of the
//! ordered series (identical information, terminal-friendly) plus the
//! structural observations the thesis makes — monotonicity, saturation and
//! plateaus.

use crate::cells;
use crate::util::{count, find};
use crate::util::{series_summary, Table, CARDINALITY_FACTORS};
use whyq_core::domains::AttributeDomains;
use whyq_datagen::{ldbc_queries, random_explanations, MutationConfig};
use whyq_matcher::ResultGraph;
use whyq_metrics::{result_set_distance, syntactic_distance};
use whyq_query::PatternQuery;
use whyq_session::Database;

/// Cap on enumerated result graphs per query when computing the result
/// distance (the assignment is O(n³)).
const RESULT_SAMPLE: usize = 50;
/// Explanations per (query, factor) combination.
const POOL: usize = 120;

struct Pool {
    query: PatternQuery,
    original_c: u64,
    original_results: Vec<ResultGraph>,
    explanations: Vec<(PatternQuery, u64, f64)>, // (query, cardinality, syntactic)
}

fn build_pools(db: &Database, seed: u64) -> Vec<Pool> {
    let domains = AttributeDomains::build(db.graph(), 128);
    ldbc_queries()
        .into_iter()
        .map(|q| {
            let original_c = count(db, &q, None);
            let original_results = find(db, &q, Some(RESULT_SAMPLE));
            let pool = random_explanations(
                &q,
                &domains,
                MutationConfig {
                    count: POOL,
                    max_ops: 3,
                    seed,
                },
            );
            let explanations = pool
                .into_iter()
                .map(|(eq, _)| {
                    let c = count(db, &eq, Some(100_000));
                    let syn = syntactic_distance(&q, &eq);
                    (eq, c, syn)
                })
                .collect();
            Pool {
                query: q,
                original_c,
                original_results,
                explanations,
            }
        })
        .collect()
}

/// Fig. 3.7 — ordered syntactic distances.
pub fn fig3_7(db: &Database, tsv: bool) {
    let pools = build_pools(db, 1234);
    let mut t = Table::new(
        "Fig 3.7 — syntactic distances of random explanations (quartiles of the ordered series)",
        &[
            "query",
            "C1",
            "pool",
            "min",
            "q25",
            "median",
            "q75",
            "max",
            "distinct-steps",
        ],
    );
    for p in &pools {
        let mut series: Vec<f64> = p.explanations.iter().map(|(_, _, s)| *s).collect();
        // the thesis observes a stepped monotone curve: count plateaus
        let mut sorted = series.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut steps = 1;
        for w in sorted.windows(2) {
            if (w[1] - w[0]).abs() > 1e-9 {
                steps += 1;
            }
        }
        let (min, q25, med, q75, max) = series_summary(&mut series);
        t.row(cells![
            p.query.name.clone().unwrap_or_default(),
            p.original_c,
            p.explanations.len(),
            format!("{min:.3}"),
            format!("{q25:.3}"),
            format!("{med:.3}"),
            format!("{q75:.3}"),
            format!("{max:.3}"),
            steps,
        ]);
    }
    t.print();
    if tsv {
        let _ = t.write_tsv();
    }
    println!("  shape check: distances are in (0,1], stepped (plateaus = equal change sets).");
}

/// Fig. 3.8 — ordered result distances per cardinality factor.
pub fn fig3_8(db: &Database, tsv: bool) {
    let mut t = Table::new(
        "Fig 3.8 — result distances of random explanations",
        &[
            "query", "factor", "C_thr", "min", "q25", "median", "q75", "max", "frac@1.0",
        ],
    );
    for (fi, &factor) in CARDINALITY_FACTORS.iter().enumerate() {
        // a fresh pool per factor, like the thesis's per-subfigure pools
        let pools = build_pools(db, 1000 + fi as u64 * 37);
        for p in &pools {
            let c_thr = ((p.original_c as f64) * factor).round().max(1.0) as u64;
            let mut series: Vec<f64> = p
                .explanations
                .iter()
                .map(|(eq, _, _)| {
                    let results = find(db, eq, Some(RESULT_SAMPLE));
                    result_set_distance(&p.original_results, &results)
                })
                .collect();
            let saturated =
                series.iter().filter(|&&d| d >= 0.999).count() as f64 / series.len().max(1) as f64;
            let (min, q25, med, q75, max) = series_summary(&mut series);
            t.row(cells![
                p.query.name.clone().unwrap_or_default(),
                factor,
                c_thr,
                format!("{min:.3}"),
                format!("{q25:.3}"),
                format!("{med:.3}"),
                format!("{q75:.3}"),
                format!("{max:.3}"),
                format!("{saturated:.2}"),
            ]);
        }
    }
    t.print();
    if tsv {
        let _ = t.write_tsv();
    }
    println!("  shape check: a large fraction saturates at 1.0 (lost originals / empty rewrites).");
}

/// Fig. 3.9 — ordered cardinality distances per cardinality factor.
pub fn fig3_9(db: &Database, tsv: bool) {
    let mut t = Table::new(
        "Fig 3.9 — cardinality deviations |C_thr - C| of random explanations",
        &[
            "query", "factor", "C_thr", "min", "q25", "median", "q75", "max", "plateaus",
        ],
    );
    for (fi, &factor) in CARDINALITY_FACTORS.iter().enumerate() {
        let pools = build_pools(db, 1000 + fi as u64 * 37);
        for p in &pools {
            let c_thr = ((p.original_c as f64) * factor).round().max(1.0) as u64;
            let mut series: Vec<f64> = p
                .explanations
                .iter()
                .map(|(_, c, _)| c_thr.abs_diff(*c) as f64)
                .collect();
            let mut sorted = series.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let distinct = {
                let mut d = 1;
                for w in sorted.windows(2) {
                    if (w[1] - w[0]).abs() > 1e-9 {
                        d += 1;
                    }
                }
                d
            };
            let plateaus = series.len().saturating_sub(distinct);
            let (min, q25, med, q75, max) = series_summary(&mut series);
            t.row(cells![
                p.query.name.clone().unwrap_or_default(),
                factor,
                c_thr,
                min,
                q25,
                med,
                q75,
                max,
                plateaus,
            ]);
        }
    }
    t.print();
    if tsv {
        let _ = t.write_tsv();
    }
    println!("  shape check: many explanations share a deviation (dependent query elements).");
}

/// Fig. 3.10 — average result distance vs. syntactic-distance interval.
pub fn fig3_10(db: &Database, tsv: bool) {
    let pools = build_pools(db, 1234);
    let mut t = Table::new(
        "Fig 3.10 — avg result distance per syntactic-distance bin",
        &["query", "bin", "explanations", "avg result distance"],
    );
    for p in &pools {
        // bins of width 0.1 over the syntactic range
        let mut bins: Vec<(usize, f64)> = vec![(0, 0.0); 10];
        for (eq, _, syn) in &p.explanations {
            let results = find(db, eq, Some(RESULT_SAMPLE));
            let rd = result_set_distance(&p.original_results, &results);
            let b = ((syn * 10.0) as usize).min(9);
            bins[b].0 += 1;
            bins[b].1 += rd;
        }
        for (b, (count, sum)) in bins.into_iter().enumerate() {
            if count == 0 {
                continue;
            }
            t.row(cells![
                p.query.name.clone().unwrap_or_default(),
                format!("[{:.1};{:.1})", b as f64 / 10.0, (b + 1) as f64 / 10.0),
                count,
                format!("{:.3}", sum / count as f64),
            ]);
        }
    }
    t.print();
    if tsv {
        let _ = t.write_tsv();
    }
    println!("  shape check: result distance grows (on average) with syntactic distance.");
}
