//! §6.4 — evaluation of fine-grained cardinality-driven modification.
//!
//! * `fig6.base` — TRAVERSESEARCHTREE against the §6.4.1 baselines
//!   (random walk, exhaustive BFS): executed candidates until the goal is
//!   met and best deviation under a fixed budget;
//! * `fig6.topo` — topology consideration (§6.4.3): the searcher with and
//!   without topology modifications.

use crate::cells;
use crate::util::count;
use crate::util::{timed, Table, CARDINALITY_FACTORS};
use whyq_core::domains::AttributeDomains;
use whyq_core::fine::baselines::{exhaustive_bfs, random_walk};
use whyq_core::fine::{FineConfig, TraverseSearchTree};
use whyq_core::problem::CardinalityGoal;
use whyq_core::Budget;
use whyq_datagen::ldbc_queries;
use whyq_session::Database;

const BUDGET: usize = 500;

fn goals_for(c1: u64) -> Vec<(f64, CardinalityGoal)> {
    CARDINALITY_FACTORS
        .iter()
        .map(|&f| {
            let thr = ((c1 as f64) * f).round().max(1.0) as u64;
            let goal = if f < 1.0 {
                CardinalityGoal::AtMost(thr)
            } else {
                CardinalityGoal::AtLeast(thr)
            };
            (f, goal)
        })
        .collect()
}

/// §6.4.2 — baseline comparison.
pub fn baselines(db: &Database, tsv: bool) {
    let mut t = Table::new(
        "Fig 6 (baselines) — executed candidates until the goal is met",
        &[
            "query", "factor", "goal", "method", "executed", "found", "best dev", "ms",
        ],
    );
    let domains = AttributeDomains::build(db.graph(), 256);
    for q in ldbc_queries() {
        let c1 = count(db, &q, None);
        for (factor, goal) in goals_for(c1) {
            // TRAVERSESEARCHTREE
            let tst = TraverseSearchTree::new(db).with_config(FineConfig {
                max_executed: BUDGET,
                ..FineConfig::default()
            });
            let (out, ms) = timed(|| tst.run(&q, goal));
            t.row(cells![
                q.name.clone().unwrap_or_default(),
                factor,
                format!("{goal:?}"),
                "traverse-search-tree",
                out.executed,
                out.explanation.is_some(),
                out.best_deviation,
                format!("{ms:.1}"),
            ]);
            // random walk
            let (rw, ms) = timed(|| {
                random_walk(
                    db,
                    &q,
                    goal,
                    BUDGET,
                    11,
                    &domains,
                    50_000,
                    &Budget::unlimited(),
                )
            });
            t.row(cells![
                q.name.clone().unwrap_or_default(),
                factor,
                format!("{goal:?}"),
                "random-walk",
                rw.executed,
                rw.explanation.is_some(),
                rw.best_deviation,
                format!("{ms:.1}"),
            ]);
            // exhaustive BFS
            let (bfs, ms) = timed(|| {
                exhaustive_bfs(db, &q, goal, BUDGET, &domains, 50_000, &Budget::unlimited())
            });
            t.row(cells![
                q.name.clone().unwrap_or_default(),
                factor,
                format!("{goal:?}"),
                "exhaustive-bfs",
                bfs.executed,
                bfs.explanation.is_some(),
                bfs.best_deviation,
                format!("{ms:.1}"),
            ]);
        }
    }
    t.print();
    if tsv {
        let _ = t.write_tsv();
    }
    println!("  shape check: traverse-search-tree meets goals with the fewest executions.");
}

/// §6.4.3 — topology consideration ablation.
pub fn topology(db: &Database, tsv: bool) {
    let mut t = Table::new(
        "Fig 6 (topology) — fine-grained rewriting with and without topology ops",
        &[
            "query", "factor", "topology", "executed", "found", "best dev", "mods", "extends",
        ],
    );
    for q in ldbc_queries() {
        let c1 = count(db, &q, None);
        for (factor, goal) in goals_for(c1) {
            for allow in [true, false] {
                let out = TraverseSearchTree::new(db)
                    .with_config(FineConfig {
                        max_executed: BUDGET,
                        allow_topology: allow,
                        ..FineConfig::default()
                    })
                    .run(&q, goal);
                t.row(cells![
                    q.name.clone().unwrap_or_default(),
                    factor,
                    allow,
                    out.executed,
                    out.explanation.is_some(),
                    out.best_deviation,
                    out.explanation
                        .as_ref()
                        .map_or_else(|| "-".into(), |e| e.mods.len().to_string()),
                    out.extensions,
                ]);
            }
        }
    }
    t.print();
    if tsv {
        let _ = t.write_tsv();
    }
    println!("  shape check: topology ops unlock solutions the predicate-only search misses (or reach them sooner).");
}
