//! Smoke tests for the experiment harness: every experiment function runs
//! to completion on a reduced workload without panicking. Keeps `repro`
//! from rotting while the library evolves.

#[cfg(test)]
mod tests {
    use crate::{appendix, fig3, fig4, fig5, fig6, tables};
    use whyq_datagen::{dbpedia_graph, ldbc_graph, DbpediaConfig, LdbcConfig};
    use whyq_session::Database;

    fn small_ldbc() -> Database {
        Database::open(ldbc_graph(LdbcConfig {
            persons: 80,
            seed: 42,
        }))
        .expect("open")
    }

    fn small_dbp() -> Database {
        Database::open(dbpedia_graph(DbpediaConfig {
            entities: 400,
            seed: 7,
        }))
        .expect("open")
    }

    #[test]
    fn tables_run() {
        tables::tab_a1(&small_ldbc(), false);
        tables::tab_a2(&small_dbp(), false);
    }

    #[test]
    fn fig4_runs() {
        let g = small_ldbc();
        fig4::disc_ldbc(&g, false);
        fig4::disc_dbp(&small_dbp(), false);
        fig4::optimizations(&g, false);
        fig4::bounded(&g, false);
    }

    #[test]
    fn fig5_runs() {
        let g = small_ldbc();
        let d = small_dbp();
        fig5::convergence(&g, false);
        fig5::icc(&g, &d, false);
        fig5::user(&g, false);
    }

    #[test]
    fn fig6_runs() {
        let g = small_ldbc();
        fig6::topology(&g, false);
    }

    #[test]
    fn appendix_runs() {
        let g = small_ldbc();
        appendix::b1(&g, false);
        appendix::b2(&g, false);
    }

    #[test]
    fn fig3_runs() {
        // only the cheapest fig3 variant in the smoke suite
        fig3::fig3_7(&small_ldbc(), false);
    }
}
