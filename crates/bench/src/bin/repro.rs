//! `repro` — regenerate the thesis evaluation.
//!
//! ```text
//! repro <experiment-id> [--tsv]
//! repro all [--tsv]
//! repro list
//! ```
//!
//! Experiment ids match the index in `DESIGN.md` §5: `fig3.7`, `fig3.8`,
//! `fig3.9`, `fig3.10`, `fig4.disc.ldbc`, `fig4.disc.dbp`, `fig4.opt`,
//! `fig4.bnd`, `fig5.prio`, `fig5.conv`, `fig5.icc`, `fig5.user`,
//! `fig6.base`, `fig6.topo`, `tabA.1`, `tabA.2`, `appB.1`, `appB.2`.

use whyq_bench::{appendix, fig3, fig4, fig5, fig6, tables, util};

const EXPERIMENTS: [&str; 20] = [
    "tabA.1",
    "tabA.2",
    "fig3.7",
    "fig3.8",
    "fig3.9",
    "fig3.10",
    "fig4.disc.ldbc",
    "fig4.disc.dbp",
    "fig4.opt",
    "fig4.bnd",
    "fig4.user",
    "fig5.prio",
    "fig5.est",
    "fig5.conv",
    "fig5.icc",
    "fig5.user",
    "fig6.base",
    "fig6.topo",
    "appB.1",
    "appB.2",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tsv = args.iter().any(|a| a == "--tsv");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    match ids.first() {
        None | Some(&"list") => {
            println!("usage: repro <experiment-id>... [--tsv] | repro all [--tsv]");
            println!("experiments:");
            for e in EXPERIMENTS {
                println!("  {e}");
            }
        }
        Some(&"all") => {
            let (ldbc, dbp) = (util::ldbc_db(), util::dbpedia_db());
            for id in EXPERIMENTS {
                run(id, &ldbc, &dbp, tsv);
            }
        }
        _ => {
            let (ldbc, dbp) = (util::ldbc_db(), util::dbpedia_db());
            for id in ids {
                run(id, &ldbc, &dbp, tsv);
            }
        }
    }
}

fn run(id: &str, ldbc: &whyq_session::Database, dbp: &whyq_session::Database, tsv: bool) {
    let (_, ms) = util::timed(|| match id {
        "tabA.1" => tables::tab_a1(ldbc, tsv),
        "tabA.2" => tables::tab_a2(dbp, tsv),
        "fig3.7" => fig3::fig3_7(ldbc, tsv),
        "fig3.8" => fig3::fig3_8(ldbc, tsv),
        "fig3.9" => fig3::fig3_9(ldbc, tsv),
        "fig3.10" => fig3::fig3_10(ldbc, tsv),
        "fig4.disc.ldbc" => fig4::disc_ldbc(ldbc, tsv),
        "fig4.disc.dbp" => fig4::disc_dbp(dbp, tsv),
        "fig4.opt" => fig4::optimizations(ldbc, tsv),
        "fig4.bnd" => fig4::bounded(ldbc, tsv),
        "fig4.user" => fig4::user_paths(ldbc, tsv),
        "fig5.prio" => fig5::priorities(ldbc, dbp, tsv),
        "fig5.est" => fig5::estimates(ldbc, dbp, tsv),
        "fig5.conv" => fig5::convergence(ldbc, tsv),
        "fig5.icc" => fig5::icc(ldbc, dbp, tsv),
        "fig5.user" => fig5::user(ldbc, tsv),
        "fig6.base" => fig6::baselines(ldbc, tsv),
        "fig6.topo" => fig6::topology(ldbc, tsv),
        "appB.1" => appendix::b1(ldbc, tsv),
        "appB.2" => appendix::b2(ldbc, tsv),
        other => eprintln!("unknown experiment id {other:?} — try `repro list`"),
    });
    println!("[{id} finished in {ms:.0} ms]\n");
}
