//! Open-loop load generator for the `whyqd` serving layer.
//!
//! ```text
//! server_load [--clients N] [--requests N] [--rate-hz F] [--persons N]
//!             [--seed S] [--queue-depth N] [--batch-window-us U]
//!             [--max-rows N] [--threads N] [--slo CLASS] [--out FILE]
//! ```
//!
//! Starts an in-process [`whyq_server::Server`] over a seeded LDBC graph
//! and drives it from `--clients` concurrent TCP connections. Arrivals are
//! **open-loop**: each client's j-th request has a scheduled send time
//! `start + j/rate` fixed before the run, and its latency is measured from
//! that *scheduled* instant — a slow server makes later requests measure
//! the queueing delay they caused instead of silently slowing the arrival
//! process down (the coordinated-omission trap of closed-loop drivers).
//!
//! Clients round-robin a small mix of LDBC patterns, so same-signature
//! arrivals inside one batching window coalesce through a single compiled
//! plan. The run reports p50/p95/p99 latency plus shed and degraded
//! counts, and with `--out` writes them as a criterion-shim snapshot (the
//! committed `BENCH_server.json` baseline; CI gates fresh runs against it
//! with `bench_compare`).

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use whyq_datagen::{ldbc_graph, LdbcConfig};
use whyq_server::client::Client;
use whyq_server::protocol::TermTag;
use whyq_server::{Server, ServerConfig};
use whyq_session::Database;

/// The query mix clients cycle through, chosen so several signatures
/// recur within a batching window at realistic rates.
const PATTERNS: [&str; 4] = [
    "(p:person)-[:knows]->(q:person)",
    "(p:person)-[:isLocatedIn]->(c:city)-[:isPartOf]->(n:country)",
    "(p:person)-[:hasInterest]->(t:tag)",
    "(p:person)-[:knows]->(q:person)-[:isLocatedIn]->(c:city)",
];

struct Args {
    clients: usize,
    requests: usize,
    rate_hz: f64,
    persons: usize,
    seed: u64,
    queue_depth: usize,
    batch_window_us: u64,
    max_rows: usize,
    threads: usize,
    slo: String,
    out: Option<String>,
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    fn num<T: std::str::FromStr>(argv: &[String], name: &str, default: T) -> Result<T, String> {
        match flag_value(argv, name) {
            Some(s) => s.parse().map_err(|_| format!("invalid {name}: {s:?}")),
            None => Ok(default),
        }
    }
    Ok(Args {
        clients: num(argv, "--clients", 8)?,
        requests: num(argv, "--requests", 50)?,
        rate_hz: num(argv, "--rate-hz", 200.0)?,
        persons: num(argv, "--persons", 200)?,
        seed: num(argv, "--seed", 42)?,
        queue_depth: num(argv, "--queue-depth", 64)?,
        batch_window_us: num(argv, "--batch-window-us", 500)?,
        max_rows: num(argv, "--max-rows", 200)?,
        threads: num(argv, "--threads", 0)?,
        slo: flag_value(argv, "--slo").unwrap_or("standard").to_string(),
        out: flag_value(argv, "--out").map(String::from),
    })
}

/// One client's measurements.
#[derive(Default)]
struct ClientOutcome {
    /// Latency from *scheduled* arrival to reply, per request.
    latencies: Vec<Duration>,
    shed: u64,
    degraded: u64,
    errors: u64,
}

fn drive_client(
    addr: std::net::SocketAddr,
    id: usize,
    args: &Args,
    start: Instant,
) -> ClientOutcome {
    let mut outcome = ClientOutcome::default();
    let Ok(mut client) = Client::connect(addr) else {
        outcome.errors = args.requests as u64;
        return outcome;
    };
    let period = Duration::from_secs_f64(1.0 / args.rate_hz.max(1e-6));
    // stagger clients across one period so arrivals interleave instead of
    // stampeding in phase
    let stagger = period.mul_f64(id as f64 / args.clients.max(1) as f64);
    for j in 0..args.requests {
        let scheduled = start + stagger + period.mul_f64(j as f64);
        if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let pattern = PATTERNS[(id + j) % PATTERNS.len()];
        match client.query(pattern, Some(&args.slo)) {
            Ok(reply) => {
                outcome.latencies.push(scheduled.elapsed());
                match reply.termination {
                    TermTag::Shed => outcome.shed += 1,
                    TermTag::Complete => {}
                    _ => outcome.degraded += 1,
                }
            }
            Err(_) => outcome.errors += 1,
        }
    }
    outcome
}

/// Nearest-rank percentile of a sorted latency vector, in nanoseconds.
fn percentile(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1].as_nanos() as f64
}

/// Render records in the criterion-shim snapshot format `bench_compare`
/// consumes. Counts ride along as records too: their committed baselines
/// are 0, and the gate forces ratio 1.0 on a zero baseline, so they are
/// informational unless a snapshot is regenerated with nonzero counts.
fn render_snapshot(records: &[(&str, u64, f64)]) -> String {
    let mut out = String::from("[\n");
    for (i, (bench, samples, value)) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            "  {{\"group\": \"server\", \"bench\": \"{bench}\", \"samples\": {samples}, \
             \"iters_per_sample\": 1, \"median_ns\": {value:.1}, \"mean_ns\": {value:.1}, \
             \"min_ns\": {value:.1}}}{comma}\n"
        ));
    }
    out.push_str("]\n");
    out
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv)?;
    let graph = ldbc_graph(LdbcConfig {
        persons: args.persons,
        seed: args.seed,
    });
    eprintln!(
        "server_load: ldbc graph with {} vertices / {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    let db = Arc::new(Database::open(graph).map_err(|e| e.to_string())?);
    let config = ServerConfig {
        threads: args.threads,
        max_queue_depth: args.queue_depth,
        batch_window: Duration::from_micros(args.batch_window_us),
        max_rows: args.max_rows,
        ..ServerConfig::default()
    };
    let server = Server::start(db, config).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();

    // all clients share one epoch; each schedules its arrivals from it
    let start = Instant::now() + Duration::from_millis(50);
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let args = &args;
        // spawn everything before joining anything, or the run serializes
        let mut handles = Vec::with_capacity(args.clients);
        for id in 0..args.clients {
            handles.push(scope.spawn(move || drive_client(addr, id, args, start)));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut latencies: Vec<Duration> = Vec::new();
    let (mut shed, mut degraded, mut errors) = (0u64, 0u64, 0u64);
    for o in &outcomes {
        latencies.extend_from_slice(&o.latencies);
        shed += o.shed;
        degraded += o.degraded;
        errors += o.errors;
    }
    latencies.sort_unstable();
    let samples = latencies.len() as u64;
    let (p50, p95, p99) = (
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0),
    );
    let stats = server.stats();
    eprintln!(
        "server_load: {} replies ({} shed, {} degraded, {} errors), \
         server batched {} of {} admitted",
        samples, shed, degraded, errors, stats.batched, stats.admitted
    );
    println!("p50  {p50:>12.1} ns");
    println!("p95  {p95:>12.1} ns");
    println!("p99  {p99:>12.1} ns");
    if errors > 0 {
        return Err(format!("{errors} request(s) failed"));
    }

    if let Some(path) = &args.out {
        let snapshot = render_snapshot(&[
            ("query-latency/p50", samples, p50),
            ("query-latency/p95", samples, p95),
            ("query-latency/p99", samples, p99),
            ("shed-count", samples, shed as f64),
            ("degraded-count", samples, degraded as f64),
        ]);
        let mut file =
            std::fs::File::create(path).map_err(|e| format!("creating {path:?}: {e}"))?;
        file.write_all(snapshot.as_bytes())
            .map_err(|e| format!("writing {path:?}: {e}"))?;
        eprintln!("server_load: wrote snapshot to {path}");
    }
    server.shutdown();
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("server_load: {msg}");
            eprintln!(
                "usage: server_load [--clients N] [--requests N] [--rate-hz F] [--persons N]\n\
                 \x20                  [--seed S] [--queue-depth N] [--batch-window-us U]\n\
                 \x20                  [--max-rows N] [--threads N] [--slo CLASS] [--out FILE]"
            );
            ExitCode::FAILURE
        }
    }
}
