//! Bench-regression gate: compare a fresh criterion-shim snapshot against a
//! committed `BENCH_*.json` baseline and fail on regressions.
//!
//! ```text
//! # measure (any bench target; WHYQ_BENCH_JSON makes the shim write JSON)
//! WHYQ_BENCH_JSON=current.json cargo bench -p whyq-bench --bench matcher
//!
//! # gate (exit 1 on >25% median regression or a missing benchmark)
//! cargo run -p whyq-bench --bin bench_compare -- BENCH_matcher.json current.json
//! cargo run -p whyq-bench --bin bench_compare -- BENCH_matcher.json current.json --threshold 0.4
//! ```
//!
//! CI runs exactly this pair of commands (job `bench-compare`); the
//! threshold default of 25% absorbs runner noise while still catching the
//! step-function regressions a bad refactor causes.

use std::process::ExitCode;
use whyq_bench::compare::{compare, parse_snapshot};

fn usage() -> ! {
    eprintln!(
        "usage: bench_compare <baseline.json> <current.json> [--threshold FRACTION]\n\
         \n\
         Compares per-benchmark median_ns of two criterion-shim snapshots.\n\
         Exits 1 when any baseline benchmark is slower by more than the\n\
         threshold (default 0.25 = +25%) or missing from the current run."
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<&str> = Vec::new();
    let mut threshold = 0.25f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = args
                    .get(i)
                    .and_then(|t| t.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            f => files.push(f),
        }
        i += 1;
    }
    let [baseline_path, current_path] = files[..] else {
        usage();
    };

    let read = |path: &str| -> Vec<whyq_bench::compare::BenchRecord> {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_compare: cannot read {path}: {e}");
            std::process::exit(2);
        });
        parse_snapshot(&text).unwrap_or_else(|e| {
            eprintln!("bench_compare: {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(baseline_path);
    let current = read(current_path);

    let cmp = compare(&baseline, &current, threshold).with_sources(baseline_path, current_path);
    print!("{}", cmp.report(threshold));
    if cmp.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
