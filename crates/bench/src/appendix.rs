//! Appendix B — additional evaluation results.
//!
//! * `appB.1` — user integration in why-empty rewriting: per-round rating
//!   trajectories of the interactive session (App. B.1);
//! * `appB.2` — resource consumption of why-empty rewriting: cardinality
//!   cache and statistics-cache footprints (App. B.2).

use crate::cells;
use crate::util::Table;
use whyq_core::relax::{CoarseRewriter, RelaxConfig};
use whyq_core::user::{SimulatedUser, UserPreferences};
use whyq_datagen::{ldbc_failing_queries, ldbc_hard_failing_queries};
use whyq_query::{QVid, Target};
use whyq_session::Database;

/// App. B.1 — rating trajectories of rating-guided sessions.
pub fn b1(db: &Database, tsv: bool) {
    let mut t = Table::new(
        "App B.1 — per-round ratings of the interactive why-empty session",
        &["query", "round", "executed", "rating", "mods"],
    );
    let rewriter = CoarseRewriter::new(db);
    for q in ldbc_failing_queries() {
        let mut hidden = UserPreferences::new();
        // protect roughly half of the elements, deterministically
        for (i, v) in q.vertex_ids().enumerate() {
            if i % 2 == 0 {
                hidden.set_vertex(v, 1.0);
            }
        }
        let user = SimulatedUser::new(hidden);
        let config = RelaxConfig {
            lambda: 5.0,
            max_executed: 400,
            ..RelaxConfig::default()
        };
        let (session, model) = rewriter.session(&q, &config, &user, 0.7, 6);
        for (i, round) in session.rounds.iter().enumerate() {
            let mods: Vec<String> = round
                .explanation
                .mods
                .iter()
                .map(std::string::ToString::to_string)
                .collect();
            t.row(cells![
                q.name.clone().unwrap_or_default(),
                i + 1,
                round.executed,
                format!("{:.2}", round.rating),
                mods.join("; "),
            ]);
        }
        // show what the model learned about the first protected vertex
        let learned = model.weight(Target::Vertex(QVid(0)));
        println!(
            "  {}: learned modification tolerance of protected v1 = {:.2}",
            q.name.clone().unwrap_or_default(),
            learned
        );
    }
    t.print();
    if tsv {
        let _ = t.write_tsv();
    }
}

/// App. B.2 — cache resource consumption during rewriting.
pub fn b2(db: &Database, tsv: bool) {
    let mut t = Table::new(
        "App B.2 — resource consumption of why-empty rewriting (6-round session)",
        &[
            "query",
            "rounds",
            "cache entries",
            "lookups",
            "hits",
            "hit rate",
            "approx bytes",
            "stat lookups",
            "stat misses",
        ],
    );
    // hard (two-failure) queries force deeper searches, and the interactive
    // session re-enters the search per rejected proposal — the regime where
    // the cardinality cache earns its keep
    for q in ldbc_hard_failing_queries() {
        let rewriter = CoarseRewriter::new(db);
        let config = RelaxConfig {
            max_executed: 400,
            lambda: 5.0,
            ..RelaxConfig::default()
        };
        // a user that accepts nothing: every round is a fresh re-entry
        let user = SimulatedUser::protecting_vertices(&q.vertex_ids().collect::<Vec<_>>());
        let (session, _) = rewriter.session(&q, &config, &user, 0.99, 6);
        let cache = rewriter.cache_stats();
        let (lookups, misses) = rewriter.stats().counters();
        t.row(cells![
            q.name.clone().unwrap_or_default(),
            session.rounds.len(),
            cache.entries,
            cache.lookups,
            cache.hits,
            format!("{:.2}", cache.hits as f64 / cache.lookups.max(1) as f64),
            cache.approx_bytes,
            lookups,
            misses,
        ]);
    }
    t.print();
    if tsv {
        let _ = t.write_tsv();
    }
    println!(
        "  shape check: cross-round re-derivations hit the cache; statistics lookups >> misses."
    );
}
