//! Appendix A — data sets and queries (Tables A.1 / A.2).

use crate::cells;
use crate::util::count;
use crate::util::Table;
use whyq_datagen::{dbpedia_queries, ldbc_queries};
use whyq_graph::stats::{degree_summary, edge_type_histogram, vertex_attr_histogram};
use whyq_session::Database;

/// Cardinalities the thesis reports for LDBC QUERY 1–4 on SF1 (Table A.1);
/// printed next to our measured counts for the paper-vs-measured record.
const PAPER_C1: [u64; 4] = [21, 39, 188, 195];

/// Table A.1 — the LDBC data set and its queries.
pub fn tab_a1(db: &Database, tsv: bool) {
    let g = db.graph();
    let mut stats = Table::new(
        "Table A.1a — LDBC-like data set",
        &["entity/relationship", "count"],
    );
    for (ty, c) in vertex_attr_histogram(g, "type") {
        stats.row(cells![format!("vertex:{ty}"), c]);
    }
    for (ty, c) in edge_type_histogram(g) {
        stats.row(cells![format!("edge:{ty}"), c]);
    }
    let d = degree_summary(g);
    stats.row(cells!["total vertices", g.num_vertices()]);
    stats.row(cells!["total edges", g.num_edges()]);
    stats.row(cells![
        "degree min/mean/max",
        format!("{}/{:.1}/{}", d.min, d.mean, d.max)
    ]);
    stats.print();
    if tsv {
        let _ = stats.write_tsv();
    }

    let mut t = Table::new(
        "Table A.1b — LDBC queries",
        &[
            "query",
            "|Vq|",
            "|Eq|",
            "constraints",
            "C1 (measured)",
            "C1 (paper, SF1)",
        ],
    );
    for (i, q) in ldbc_queries().iter().enumerate() {
        t.row(cells![
            q.name.clone().unwrap_or_default(),
            q.num_vertices(),
            q.num_edges(),
            q.num_constraints(),
            count(db, q, None),
            PAPER_C1[i],
        ]);
    }
    t.print();
    if tsv {
        let _ = t.write_tsv();
    }
    println!("  note: absolute counts are scale-dependent; the evaluation applies the same");
    println!(
        "  cardinality *factors* (0.2/0.5/2/5) relative to the measured C1, as the thesis does."
    );
}

/// Table A.2 — the DBpedia data set and its queries.
pub fn tab_a2(db: &Database, tsv: bool) {
    let g = db.graph();
    let mut stats = Table::new(
        "Table A.2a — DBPEDIA-like data set",
        &["entity/relationship", "count"],
    );
    for (ty, c) in vertex_attr_histogram(g, "type") {
        stats.row(cells![format!("vertex:{ty}"), c]);
    }
    for (ty, c) in edge_type_histogram(g) {
        stats.row(cells![format!("edge:{ty}"), c]);
    }
    let d = degree_summary(g);
    stats.row(cells!["total vertices", g.num_vertices()]);
    stats.row(cells!["total edges", g.num_edges()]);
    stats.row(cells![
        "degree min/mean/max",
        format!("{}/{:.1}/{}", d.min, d.mean, d.max)
    ]);
    stats.print();
    if tsv {
        let _ = stats.write_tsv();
    }

    let mut t = Table::new(
        "Table A.2b — DBPEDIA queries",
        &["query", "|Vq|", "|Eq|", "constraints", "C1 (measured)"],
    );
    for q in dbpedia_queries() {
        t.row(cells![
            q.name.clone().unwrap_or_default(),
            q.num_vertices(),
            q.num_edges(),
            q.num_constraints(),
            count(db, &q, None),
        ]);
    }
    t.print();
    if tsv {
        let _ = t.write_tsv();
    }
}
