//! §5.5 — evaluation of coarse-grained why-empty rewriting.
//!
//! * `fig5.prio` — priority functions of the candidate selector (§5.5.1):
//!   executed candidates and runtime until the first non-empty rewrite;
//! * `fig5.conv` — runtime convergence of the search (§5.5.2);
//! * `fig5.icc` — average path(1) cardinality + induced cardinality
//!   changes (§5.5.3) against its components;
//! * `fig5.user` — non-intrusive user integration (§5.5.4).

use crate::cells;
use crate::util::{timed, Table};
use whyq_core::relax::priority::PriorityFn;
use whyq_core::relax::{CoarseRewriter, RelaxConfig};
use whyq_core::user::{SimulatedUser, UserPreferences};
use whyq_datagen::{dbpedia_failing_queries, ldbc_failing_queries, ldbc_hard_failing_queries};
use whyq_query::{QEid, QVid};
use whyq_session::Database;

const PRIORITIES: [PriorityFn; 7] = [
    PriorityFn::Random(99),
    PriorityFn::MinSyntactic,
    PriorityFn::EstimatedCardinality,
    PriorityFn::AvgPath1,
    PriorityFn::InducedChange,
    PriorityFn::Path1PlusInduced,
    PriorityFn::PathsN,
];

/// §5.5.1 — candidate-selector priority functions.
pub fn priorities(ldbc: &Database, dbp: &Database, tsv: bool) {
    let mut t = Table::new(
        "Fig 5 (priorities) — executed candidates until first non-empty rewrite",
        &[
            "data",
            "query",
            "priority",
            "executed",
            "generated",
            "found",
            "syn-dist",
            "ms",
        ],
    );
    let workloads: Vec<(&str, &Database, Vec<whyq_query::PatternQuery>)> = vec![
        ("LDBC", ldbc, ldbc_failing_queries()),
        ("LDBC", ldbc, ldbc_hard_failing_queries()),
        ("DBPEDIA", dbp, dbpedia_failing_queries()),
    ];
    for (dname, db, queries) in &workloads {
        let rewriter = CoarseRewriter::new(db);
        for q in queries {
            for p in PRIORITIES {
                let config = RelaxConfig {
                    priority: p,
                    max_executed: 400,
                    ..RelaxConfig::default()
                };
                let (out, ms) = timed(|| rewriter.rewrite(q, &config));
                t.row(cells![
                    *dname,
                    q.name.clone().unwrap_or_default(),
                    p.name(),
                    out.executed,
                    out.generated,
                    out.explanation.is_some(),
                    out.explanation
                        .as_ref()
                        .map_or_else(|| "-".into(), |e| format!("{:.3}", e.syntactic_distance)),
                    format!("{ms:.1}"),
                ]);
            }
        }
    }
    t.print();
    if tsv {
        let _ = t.write_tsv();
    }
    println!("  shape check: statistics-driven priorities execute fewer candidates than random.");
}

/// §5.5.2 — convergence: executed candidates vs. candidate cardinality.
pub fn convergence(db: &Database, tsv: bool) {
    let mut t = Table::new(
        "Fig 5 (convergence) — search trajectory on LDBC QUERY 1 (failing)",
        &["priority", "executed", "depth", "cardinality", "syntactic"],
    );
    let rewriter = CoarseRewriter::new(db);
    let hard = ldbc_hard_failing_queries();
    let q = &hard[0];
    for p in [
        PriorityFn::Random(99),
        PriorityFn::MinSyntactic,
        PriorityFn::Path1PlusInduced,
    ] {
        let config = RelaxConfig {
            priority: p,
            max_executed: 400,
            ..RelaxConfig::default()
        };
        let out = rewriter.rewrite(q, &config);
        for point in &out.trajectory {
            t.row(cells![
                p.name(),
                point.executed,
                point.depth,
                point.cardinality,
                format!("{:.3}", point.syntactic),
            ]);
        }
    }
    t.print();
    if tsv {
        let _ = t.write_tsv();
    }
    println!("  shape check: guided priorities hit a non-zero cardinality within few executions.");
}

/// §5.5.3 — the combined priority against its two components.
pub fn icc(ldbc: &Database, dbp: &Database, tsv: bool) {
    let mut t = Table::new(
        "Fig 5 (icc) — avg-path1 vs induced-change vs combination",
        &[
            "data",
            "query",
            "avg-path1",
            "induced-change",
            "path1+induced",
        ],
    );
    let workloads: Vec<(&str, &Database, Vec<whyq_query::PatternQuery>)> = vec![
        ("LDBC", ldbc, ldbc_hard_failing_queries()),
        ("DBPEDIA", dbp, dbpedia_failing_queries()),
    ];
    for (dname, db, queries) in &workloads {
        let rewriter = CoarseRewriter::new(db);
        for q in queries {
            let mut executed = Vec::new();
            for p in [
                PriorityFn::AvgPath1,
                PriorityFn::InducedChange,
                PriorityFn::Path1PlusInduced,
            ] {
                let config = RelaxConfig {
                    priority: p,
                    max_executed: 400,
                    ..RelaxConfig::default()
                };
                let out = rewriter.rewrite(q, &config);
                executed.push(if out.explanation.is_some() {
                    out.executed.to_string()
                } else {
                    format!(">{}", out.executed)
                });
            }
            t.row(cells![
                *dname,
                q.name.clone().unwrap_or_default(),
                executed[0].clone(),
                executed[1].clone(),
                executed[2].clone(),
            ]);
        }
    }
    t.print();
    if tsv {
        let _ = t.write_tsv();
    }
    println!("  shape check: the combination is at least as fast as its weaker component.");
}

/// §5.5.4 — user integration: preference model on/off.
pub fn user(db: &Database, tsv: bool) {
    let mut t = Table::new(
        "Fig 5 (user) — rating-guided rewriting (simulated user)",
        &[
            "query",
            "lambda",
            "rounds",
            "accepted",
            "first rating",
            "final rating",
        ],
    );
    let rewriter = CoarseRewriter::new(db);
    for q in ldbc_failing_queries() {
        // the simulated user protects the first edge and the first vertex
        let mut hidden = UserPreferences::new();
        hidden.set_edge(QEid(0), 1.0);
        hidden.set_vertex(QVid(0), 1.0);
        let user = SimulatedUser::new(hidden);
        for lambda in [0.0, 5.0] {
            let config = RelaxConfig {
                lambda,
                max_executed: 400,
                ..RelaxConfig::default()
            };
            let (session, _) = rewriter.session(&q, &config, &user, 0.6, 6);
            let first = session.rounds.first().map(|r| r.rating);
            let last = session.rounds.last().map(|r| r.rating);
            t.row(cells![
                q.name.clone().unwrap_or_default(),
                lambda,
                session.rounds.len(),
                session
                    .accepted
                    .map_or_else(|| "-".into(), |i| (i + 1).to_string()),
                first.map_or_else(|| "-".into(), |r| format!("{r:.2}")),
                last.map_or_else(|| "-".into(), |r| format!("{r:.2}")),
            ]);
        }
    }
    t.print();
    if tsv {
        let _ = t.write_tsv();
    }
    println!(
        "  shape check: the preference model (lambda>0) accepts in no more rounds than without."
    );
}

/// §5.2 — cardinality-estimation quality: the min-edge bound and the
/// `paths(n)` chain-join estimate against the true cardinality.
pub fn estimates(ldbc: &Database, dbp: &Database, tsv: bool) {
    use crate::util::count;
    use whyq_core::stats::Statistics;
    use whyq_datagen::{dbpedia_queries, ldbc_queries};

    let mut t = Table::new(
        "Fig 5 (estimates) — cardinality estimation quality (q-error)",
        &[
            "data",
            "query",
            "true C",
            "min-edge est",
            "paths(n) est",
            "qerr min-edge",
            "qerr paths(n)",
        ],
    );
    let qerr = |est: f64, truth: f64| -> f64 {
        if est <= 0.0 || truth <= 0.0 {
            f64::INFINITY
        } else {
            (est / truth).max(truth / est)
        }
    };
    let workloads: Vec<(&str, &Database, Vec<whyq_query::PatternQuery>)> = vec![
        ("LDBC", ldbc, ldbc_queries()),
        ("DBPEDIA", dbp, dbpedia_queries()),
    ];
    for (dname, db, queries) in &workloads {
        let stats = Statistics::new(db);
        for q in queries {
            let truth = count(db, q, None) as f64;
            let min_edge = stats.estimate(q) as f64;
            let paths = stats.estimate_paths(q);
            t.row(cells![
                *dname,
                q.name.clone().unwrap_or_default(),
                truth,
                format!("{min_edge:.0}"),
                format!("{paths:.1}"),
                format!("{:.2}", qerr(min_edge, truth)),
                format!("{:.2}", qerr(paths, truth)),
            ]);
        }
    }
    t.print();
    if tsv {
        let _ = t.write_tsv();
    }
    println!("  shape check: the paths(n) estimate has lower q-error on path/star-shaped queries.");
}
