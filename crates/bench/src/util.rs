//! Shared harness utilities: aligned table printing, TSV output, timing,
//! standard workload setups.

use std::fmt::Display;
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;
use whyq_datagen::{dbpedia_graph, ldbc_graph, DbpediaConfig, LdbcConfig};
use whyq_graph::PropertyGraph;
use whyq_matcher::{MatchOptions, ResultGraph};
use whyq_query::PatternQuery;
use whyq_session::Database;

/// Output directory for TSV dumps (`repro` with `--tsv`).
pub const OUT_DIR: &str = "EXPERIMENTS-output";

/// The standard LDBC-like workload graph (fixed seed).
pub fn ldbc() -> PropertyGraph {
    ldbc_graph(LdbcConfig::default())
}

/// The standard DBpedia-like workload graph (fixed seed).
pub fn dbpedia() -> PropertyGraph {
    dbpedia_graph(DbpediaConfig::default())
}

/// The standard LDBC workload opened as a database (default config:
/// `"type"` index + plan cache).
pub fn ldbc_db() -> Database {
    Database::open(ldbc()).expect("open LDBC database")
}

/// The standard DBpedia workload opened as a database.
pub fn dbpedia_db() -> Database {
    Database::open(dbpedia()).expect("open DBpedia database")
}

/// Count through a throwaway session of `db` (harness convenience; real
/// workloads keep a session and prepared queries alive).
pub fn count(db: &Database, q: &PatternQuery, limit: Option<u64>) -> u64 {
    db.session()
        .count_opts(q, MatchOptions::counting(limit))
        .expect("harness queries are valid")
}

/// Find through a throwaway session of `db` — see [`count`].
pub fn find(db: &Database, q: &PatternQuery, limit: Option<usize>) -> Vec<ResultGraph> {
    db.session()
        .find_opts(
            q,
            MatchOptions {
                injective: true,
                limit,
                ..Default::default()
            },
        )
        .expect("harness queries are valid")
}

/// The cardinality factors of the thesis evaluation (§3.2.5):
/// `< 1` models too-many-answers, `> 1` too-few-answers.
pub const CARDINALITY_FACTORS: [f64; 4] = [0.2, 0.5, 2.0, 5.0];

/// Milliseconds elapsed running `f`, alongside its result.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1000.0)
}

/// A simple aligned text table that can also dump itself as TSV.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (anything displayable).
    pub fn row(&mut self, cells: Vec<Box<dyn Display>>) {
        self.rows
            .push(cells.iter().map(std::string::ToString::to_string).collect());
    }

    /// Append a row of ready-made strings.
    pub fn row_strings(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Print aligned to stdout.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect();
            println!("  {}", parts.join("  "));
        };
        line(&self.headers);
        line(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<String>>(),
        );
        for row in &self.rows {
            line(row);
        }
    }

    /// Write as TSV under [`OUT_DIR`], named from the table title.
    pub fn write_tsv(&self) -> std::io::Result<PathBuf> {
        fs::create_dir_all(OUT_DIR)?;
        let name: String = self
            .title
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let path = PathBuf::from(OUT_DIR).join(format!("{name}.tsv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join("\t"))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join("\t"))?;
        }
        Ok(path)
    }
}

/// Convenience macro building `Vec<Box<dyn Display>>` rows.
#[macro_export]
macro_rules! cells {
    ($($x:expr),* $(,)?) => {
        vec![$(Box::new($x) as Box<dyn std::fmt::Display>),*]
    };
}

/// Summary statistics of a distance series (used by the Fig. 3.x plots,
/// which the thesis presents as ordered curves).
pub fn series_summary(values: &mut [f64]) -> (f64, f64, f64, f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0, 0.0, 0.0, 0.0);
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| values[(p * (values.len() - 1) as f64).round() as usize];
    (q(0.0), q(0.25), q(0.5), q(0.75), q(1.0))
}
