//! Bench-snapshot comparison — the regression gate behind the committed
//! `BENCH_*.json` files.
//!
//! The criterion shim (`crates/shims/criterion`) appends every measured
//! benchmark of a process to the file named by `WHYQ_BENCH_JSON` as a flat
//! JSON array of records. The workspace commits such snapshots as
//! performance evidence; this module parses two of them — a committed
//! baseline and a freshly measured run — and reports every benchmark whose
//! median regressed beyond a threshold. The `bench_compare` binary wraps it
//! for CI and local use:
//!
//! ```text
//! WHYQ_BENCH_JSON=current.json cargo bench -p whyq-bench --bench matcher
//! cargo run -p whyq-bench --bin bench_compare -- BENCH_matcher.json current.json
//! ```
//!
//! The parser is deliberately self-contained (the offline workspace has no
//! serde): it tokenizes the known flat shape — an array of one-level
//! objects with string and number fields — with proper string-escape
//! handling, and rejects anything else loudly rather than guessing.

use std::fmt::Write as _;

/// One benchmark record of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Criterion group (may be empty).
    pub group: String,
    /// Benchmark name within the group.
    pub bench: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
}

impl BenchRecord {
    /// `group/bench` — the key snapshots are matched on.
    pub fn key(&self) -> String {
        if self.group.is_empty() {
            self.bench.clone()
        } else {
            format!("{}/{}", self.group, self.bench)
        }
    }
}

/// Split the top-level `[...]` into one `&str` per `{...}` object,
/// respecting string literals (a brace inside a quoted name must not
/// split).
fn split_objects(text: &str) -> Result<Vec<&str>, String> {
    let body = text.trim();
    let body = body
        .strip_prefix('[')
        .and_then(|b| b.strip_suffix(']'))
        .ok_or("snapshot is not a JSON array")?;
    let mut objects = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if in_str {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.checked_sub(1).ok_or("unbalanced braces")?;
                if depth == 0 {
                    let s = start.take().ok_or("unbalanced braces")?;
                    objects.push(&body[s..=i]);
                }
            }
            _ => {}
        }
    }
    if depth != 0 || in_str {
        return Err("truncated snapshot".into());
    }
    Ok(objects)
}

/// Extract `"key": "value"` from a flat object, undoing the `\\` and `\"`
/// escapes the shim writes.
fn str_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let after = &obj[obj.find(&pat)? + pat.len()..];
    let after = after.trim_start().strip_prefix(':')?.trim_start();
    let mut out = String::new();
    let mut chars = after.strip_prefix('"')?.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            c => out.push(c),
        }
    }
    None
}

/// Extract `"key": <number>` from a flat object.
fn num_field(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let after = &obj[obj.find(&pat)? + pat.len()..];
    let after = after.trim_start().strip_prefix(':')?.trim_start();
    let end = after
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

/// Parse a snapshot file's contents.
pub fn parse_snapshot(text: &str) -> Result<Vec<BenchRecord>, String> {
    let mut out = Vec::new();
    for (i, obj) in split_objects(text)?.into_iter().enumerate() {
        let group = str_field(obj, "group").ok_or(format!("record {i}: missing group"))?;
        let bench = str_field(obj, "bench").ok_or(format!("record {i}: missing bench"))?;
        let median_ns =
            num_field(obj, "median_ns").ok_or(format!("record {i}: missing median_ns"))?;
        if !median_ns.is_finite() || median_ns < 0.0 {
            return Err(format!("record {i}: bad median_ns {median_ns}"));
        }
        out.push(BenchRecord {
            group,
            bench,
            median_ns,
        });
    }
    Ok(out)
}

/// One matched benchmark of a comparison.
#[derive(Debug, Clone)]
pub struct CompareRow {
    /// `group/bench` key.
    pub name: String,
    /// Committed baseline median (ns/iter).
    pub baseline_ns: f64,
    /// Freshly measured median (ns/iter).
    pub current_ns: f64,
    /// `current / baseline`; > 1 is slower.
    pub ratio: f64,
    /// Whether the slowdown exceeds the threshold.
    pub regressed: bool,
}

/// Result of comparing a fresh run against a committed baseline.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Matched benchmarks, in baseline order.
    pub rows: Vec<CompareRow>,
    /// Baseline benchmarks the fresh run did not produce — a gate failure
    /// (a renamed or deleted bench must update its snapshot).
    pub missing: Vec<String>,
    /// Fresh benchmarks absent from the baseline (fine: newly added).
    pub new_benches: Vec<String>,
    /// Snapshot file the baseline was read from, when known. Failing
    /// entries in the report cite it so a multi-snapshot CI gate
    /// (`BENCH_matcher.json`, `BENCH_server.json`, ...) says which
    /// committed file to look at.
    pub baseline_source: Option<String>,
    /// Snapshot file the fresh run was read from, when known.
    pub current_source: Option<String>,
}

impl Comparison {
    /// Record which snapshot files the two sides came from; the report
    /// then cites them on failing entries.
    #[must_use]
    pub fn with_sources(mut self, baseline: &str, current: &str) -> Self {
        self.baseline_source = Some(baseline.to_string());
        self.current_source = Some(current.to_string());
        self
    }

    /// All rows that regressed.
    pub fn regressions(&self) -> Vec<&CompareRow> {
        self.rows.iter().filter(|r| r.regressed).collect()
    }

    /// Gate verdict: regressions or missing benches fail.
    pub fn passed(&self) -> bool {
        self.missing.is_empty() && self.rows.iter().all(|r| !r.regressed)
    }

    /// Human-readable report table. With sources recorded (see
    /// [`Comparison::with_sources`]) the header names both snapshot files
    /// and every failing entry cites the file it came from.
    pub fn report(&self, threshold: f64) -> String {
        let mut out = String::new();
        if let (Some(b), Some(c)) = (&self.baseline_source, &self.current_source) {
            let _ = writeln!(out, "baseline: {b}\ncurrent:  {c}");
        }
        let width = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(8)
            .max(8);
        let _ = writeln!(
            out,
            "{:<width$}  {:>12}  {:>12}  {:>8}  verdict",
            "bench", "baseline ns", "current ns", "ratio"
        );
        let cite = |out: &mut String, source: &Option<String>| {
            if let Some(s) = source {
                let _ = write!(out, " [{s}]");
            }
            out.push('\n');
        };
        for r in &self.rows {
            let verdict = if r.regressed {
                "REGRESSED"
            } else if r.ratio < 1.0 {
                "faster"
            } else {
                "ok"
            };
            let _ = write!(
                out,
                "{:<width$}  {:>12.1}  {:>12.1}  {:>8.3}  {}",
                r.name, r.baseline_ns, r.current_ns, r.ratio, verdict
            );
            if r.regressed {
                cite(&mut out, &self.baseline_source);
            } else {
                out.push('\n');
            }
        }
        for m in &self.missing {
            let _ = write!(out, "{m}  MISSING from current run");
            cite(&mut out, &self.baseline_source);
        }
        for n in &self.new_benches {
            let _ = writeln!(out, "{n}  new (no baseline)");
        }
        let _ = writeln!(
            out,
            "gate: {} (threshold +{:.0}%)",
            if self.passed() { "PASS" } else { "FAIL" },
            threshold * 100.0
        );
        out
    }
}

/// Compare `current` against `baseline`: a benchmark regresses when its
/// median exceeds the baseline median by more than `threshold` (0.25 =
/// 25% slower).
pub fn compare(baseline: &[BenchRecord], current: &[BenchRecord], threshold: f64) -> Comparison {
    let mut cmp = Comparison::default();
    for b in baseline {
        let key = b.key();
        match current.iter().find(|c| c.key() == key) {
            Some(c) => {
                let ratio = if b.median_ns > 0.0 {
                    c.median_ns / b.median_ns
                } else {
                    1.0
                };
                cmp.rows.push(CompareRow {
                    name: key,
                    baseline_ns: b.median_ns,
                    current_ns: c.median_ns,
                    ratio,
                    regressed: ratio > 1.0 + threshold,
                });
            }
            None => cmp.missing.push(key),
        }
    }
    for c in current {
        let key = c.key();
        if !baseline.iter().any(|b| b.key() == key) {
            cmp.new_benches.push(key);
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAP: &str = r#"[
  {"group": "matcher", "bench": "count/Q1", "samples": 20, "iters_per_sample": 154, "median_ns": 100.0, "mean_ns": 101.0, "min_ns": 99.0},
  {"group": "", "bench": "lone", "samples": 2, "iters_per_sample": 1, "median_ns": 50.5, "mean_ns": 50.5, "min_ns": 50.0}
]
"#;

    #[test]
    fn parses_the_shim_format() {
        let recs = parse_snapshot(SNAP).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].group, "matcher");
        assert_eq!(recs[0].bench, "count/Q1");
        assert_eq!(recs[0].median_ns, 100.0);
        assert_eq!(recs[0].key(), "matcher/count/Q1");
        assert_eq!(recs[1].key(), "lone");
    }

    #[test]
    fn parses_escapes_and_braces_in_names() {
        let text = r#"[{"group": "g", "bench": "odd \"q\" {x}", "median_ns": 1.0}]"#;
        let recs = parse_snapshot(text).unwrap();
        assert_eq!(recs[0].bench, "odd \"q\" {x}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_snapshot("not json").is_err());
        assert!(parse_snapshot("[{\"group\": \"g\"}]").is_err());
        assert!(parse_snapshot("[{").is_err());
        // the parser accepts an empty array (no benches: nothing to gate)
        assert_eq!(parse_snapshot("[]").unwrap().len(), 0);
    }

    fn rec(bench: &str, ns: f64) -> BenchRecord {
        BenchRecord {
            group: "g".into(),
            bench: bench.into(),
            median_ns: ns,
        }
    }

    #[test]
    fn flags_only_regressions_beyond_threshold() {
        let base = vec![rec("a", 100.0), rec("b", 100.0), rec("c", 100.0)];
        let curr = vec![rec("a", 124.0), rec("b", 126.0), rec("c", 60.0)];
        let cmp = compare(&base, &curr, 0.25);
        assert!(!cmp.rows[0].regressed); // +24% — inside the budget
        assert!(cmp.rows[1].regressed); // +26% — over
        assert!(!cmp.rows[2].regressed); // faster
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions().len(), 1);
        let report = cmp.report(0.25);
        assert!(report.contains("REGRESSED"));
        assert!(report.contains("FAIL"));
    }

    #[test]
    fn failing_entries_cite_their_snapshot_file() {
        let base = vec![rec("slow", 100.0), rec("gone", 100.0)];
        let curr = vec![rec("slow", 200.0)];
        let cmp = compare(&base, &curr, 0.25).with_sources("BENCH_server.json", "current.json");
        let report = cmp.report(0.25);
        assert!(report.contains("baseline: BENCH_server.json"), "{report}");
        assert!(report.contains("current:  current.json"), "{report}");
        // both failure kinds point back at the committed baseline file
        assert!(report.contains("REGRESSED [BENCH_server.json]"), "{report}");
        assert!(
            report.contains("MISSING from current run [BENCH_server.json]"),
            "{report}"
        );
        // passing rows stay uncited
        let ok = compare(&base, &base, 0.25).with_sources("b.json", "c.json");
        assert!(!ok.report(0.25).contains("ok [b.json]"));
    }

    #[test]
    fn missing_benches_fail_new_benches_pass() {
        let base = vec![rec("a", 100.0), rec("gone", 100.0)];
        let curr = vec![rec("a", 100.0), rec("fresh", 10.0)];
        let cmp = compare(&base, &curr, 0.25);
        assert_eq!(cmp.missing, vec!["g/gone".to_string()]);
        assert_eq!(cmp.new_benches, vec!["g/fresh".to_string()]);
        assert!(!cmp.passed());
        let ok = compare(&[rec("a", 100.0)], &curr, 0.25);
        assert!(ok.passed());
    }

    #[test]
    fn round_trips_the_committed_matcher_snapshot() {
        // the committed snapshot must always stay parseable — the CI gate
        // depends on it
        let text = include_str!("../../../BENCH_matcher.json");
        let recs = parse_snapshot(text).unwrap();
        assert!(!recs.is_empty());
        let cmp = compare(&recs, &recs, 0.25);
        assert!(cmp.passed());
        assert!(cmp.rows.iter().all(|r| r.ratio == 1.0));
    }
}
