//! Micro-benchmarks of the rewriting engines (Chs. 5–6).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use whyq_core::fine::{FineConfig, TraverseSearchTree};
use whyq_core::problem::CardinalityGoal;
use whyq_core::relax::priority::PriorityFn;
use whyq_core::relax::{CoarseRewriter, RelaxConfig};
use whyq_datagen::{ldbc_failing_queries, ldbc_graph, ldbc_queries, LdbcConfig};
use whyq_session::Database;

fn bench_rewrite(c: &mut Criterion) {
    let db = Database::open(ldbc_graph(LdbcConfig::default())).expect("open");
    let failing = ldbc_failing_queries();
    let mut group = c.benchmark_group("rewrite");
    group.sample_size(10);

    group.bench_function("coarse/path1+induced/Q1", |b| {
        let rw = CoarseRewriter::new(&db);
        b.iter(|| black_box(rw.rewrite(&failing[0], &RelaxConfig::default())));
    });
    group.bench_function("coarse/random/Q1", |b| {
        let rw = CoarseRewriter::new(&db);
        let config = RelaxConfig {
            priority: PriorityFn::Random(99),
            ..RelaxConfig::default()
        };
        b.iter(|| black_box(rw.rewrite(&failing[0], &config)));
    });

    let q3 = &ldbc_queries()[2];
    let c1 = db.session().count(q3).expect("valid query");
    group.bench_function("fine/atmost-half/Q3", |b| {
        b.iter(|| black_box(TraverseSearchTree::new(&db).run(q3, CardinalityGoal::AtMost(c1 / 2))));
    });
    group.bench_function("fine/no-prefix-reuse/Q3", |b| {
        b.iter(|| {
            black_box(
                TraverseSearchTree::new(&db)
                    .with_config(FineConfig {
                        reuse_prefix: false,
                        ..FineConfig::default()
                    })
                    .run(q3, CardinalityGoal::AtMost(c1 / 2)),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_rewrite);
criterion_main!(benches);
