//! Micro-benchmarks of the comparison metrics (§3.2).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use whyq_core::domains::AttributeDomains;
use whyq_datagen::{ldbc_graph, ldbc_queries, random_explanations, LdbcConfig, MutationConfig};
use whyq_matcher::{MatchOptions, Matcher};
use whyq_metrics::{hungarian, result_set_distance, syntactic_distance};

fn bench_metrics(c: &mut Criterion) {
    let g = ldbc_graph(LdbcConfig::default());
    let q = &ldbc_queries()[2];
    let domains = AttributeDomains::build(&g, 128);
    let pool = random_explanations(
        q,
        &domains,
        MutationConfig {
            count: 20,
            max_ops: 3,
            seed: 5,
        },
    );
    let mut group = c.benchmark_group("metrics");
    group.sample_size(30);

    group.bench_function("syntactic/Q3-pool20", |b| {
        b.iter(|| {
            for (eq, _) in &pool {
                black_box(syntactic_distance(q, eq));
            }
        });
    });

    let m = Matcher::new(&g);
    let orig = m.find(q, MatchOptions::limited(40));
    let modified = m.find(&pool[0].0, MatchOptions::limited(40));
    group.bench_function("result-distance/40x40", |b| {
        b.iter(|| black_box(result_set_distance(&orig, &modified)));
    });

    // deterministic pseudo-random square matrix for the assignment kernel
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let cost: Vec<Vec<f64>> = (0..64).map(|_| (0..64).map(|_| next()).collect()).collect();
    group.bench_function("hungarian/64x64", |b| {
        b.iter(|| black_box(hungarian(&cost)));
    });
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
