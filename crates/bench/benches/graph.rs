//! Micro-benchmarks of the adjacency layout itself.
//!
//! The matcher's hot loop is a candidate scan: walk one vertex's adjacency
//! and read, for every edge, its opposite endpoint and type. These benches
//! isolate that access pattern on the LDBC graph and compare the two ways
//! of answering it:
//!
//! * `edgedata` — read edge ids off the adjacency and chase each into the
//!   [`whyq_graph::EdgeData`] arena (the pre-CSR engine's pattern);
//! * `csr-columns` — read the sealed CSR's SoA columns, where the opposite
//!   endpoint and type sit next to the edge id in contiguous memory.
//!
//! `seal` measures the one-time compaction cost, and `bfs` a whole-graph
//! traversal through the CSR. The committed `BENCH_graph.json` snapshot is
//! produced via the `WHYQ_BENCH_JSON` environment variable.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use whyq_datagen::{ldbc_graph, LdbcConfig};
use whyq_graph::algo::bfs_order;
use whyq_graph::VertexId;

fn bench_graph(c: &mut Criterion) {
    let g = ldbc_graph(LdbcConfig::default());
    let topo = g.topology();
    let knows = g.type_symbol("knows").expect("LDBC has knows edges");
    let mut group = c.benchmark_group("graph");
    group.sample_size(20);

    // full candidate scan: every vertex, every out-edge, read the dst
    group.bench_function("candidate-scan/edgedata", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in g.vertex_ids() {
                for &e in g.out_edges(v) {
                    acc += g.edge(e).dst.0 as u64;
                }
            }
            black_box(acc)
        });
    });
    group.bench_function("candidate-scan/csr-columns", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in g.vertex_ids() {
                for &dst in topo.out_entries(v).others {
                    acc += dst.0 as u64;
                }
            }
            black_box(acc)
        });
    });

    // type-restricted scan, the common shape inside the matcher
    group.bench_function("typed-scan/edgedata", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in g.vertex_ids() {
                for &e in g.out_edges_of(v, knows) {
                    acc += g.edge(e).dst.0 as u64;
                }
            }
            black_box(acc)
        });
    });
    group.bench_function("typed-scan/csr-columns", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in g.vertex_ids() {
                for &dst in topo.out_entries_of(v, knows).others {
                    acc += dst.0 as u64;
                }
            }
            black_box(acc)
        });
    });

    // undirected BFS over the whole graph (CSR incident scans)
    group.bench_function("bfs/whole-graph", |b| {
        b.iter(|| black_box(bfs_order(&g, VertexId(0)).len()));
    });

    // one-time compaction cost of sealing the LDBC graph (the clone of
    // the build-phase graph is part of the measured loop — the per-vertex
    // lists cannot be sealed twice)
    let mut melted = ldbc_graph(LdbcConfig::default());
    melted.add_vertex([]); // mutate once so the graph melts into build mode
    group.bench_function("clone+seal/ldbc-default", |b| {
        b.iter(|| {
            let mut fresh = melted.clone();
            fresh.seal();
            black_box(fresh.is_sealed())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
