//! Micro-benchmarks of the pattern-matching engine.
//!
//! Each LDBC query pattern is measured twice: through the optimized
//! slot-based engine and through the retained naive reference engine
//! (`clone`-per-binding, the pre-optimization behavior). The
//! `prepared-repeat` vs `compile-repeat` pair measures the plan cache of
//! the session facade: the same LDBC query executed 100× through one
//! prepared query against 100 per-call compilations over the same indexed
//! matcher — the repeat-query win the facade exists for. The committed
//! `BENCH_matcher.json` snapshot is produced from this bench via the
//! `WHYQ_BENCH_JSON` environment variable.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use whyq_core::relax::{CoarseRewriter, RelaxConfig};
use whyq_core::subgraph::DiscoverMcs;
use whyq_datagen::{ldbc_failing_queries, ldbc_graph, ldbc_queries, LdbcConfig};
use whyq_matcher::compile::build_plans_est;
use whyq_matcher::{
    count_matches_naive, find_matches_naive, lower, optimize, AttrIndex, Budget, CancelToken,
    MatchOptions, Matcher, PassSet, QueryProgram,
};
use whyq_query::{PatternQuery, Predicate, QueryBuilder};
use whyq_session::{Database, DatabaseConfig, Executor, ParallelOpts};

/// A string-equality-heavy persona scan over the LDBC person table: every
/// candidate check is a conjunction of four string equalities plus one on
/// the neighbor — the workload shape the value dictionary turns from four
/// heap-string comparisons per candidate into four `u32` compares.
fn persona_query() -> PatternQuery {
    QueryBuilder::new("PERSONA STRINGS")
        .vertex(
            "p",
            [
                Predicate::eq("type", "person"),
                Predicate::eq("gender", "female"),
                Predicate::eq("browserUsed", "Chrome"),
                Predicate::eq("nationality", "Germany"),
            ],
        )
        .vertex(
            "friend",
            [
                Predicate::eq("type", "person"),
                Predicate::eq("gender", "male"),
            ],
        )
        .edge("p", "friend", "knows")
        .build()
}

/// Executions per iteration of the repeat-query benches.
const REPEAT: usize = 100;

fn bench_matcher(c: &mut Criterion) {
    let g = ldbc_graph(LdbcConfig::default());
    let queries = ldbc_queries();
    let mut group = c.benchmark_group("matcher");
    group.sample_size(20);

    let plain = Matcher::new(&g);
    for q in &queries {
        let name = q.name.clone().unwrap_or_default();
        group.bench_function(format!("count/{name}"), |b| {
            b.iter(|| black_box(plain.count(q, MatchOptions::default())));
        });
        group.bench_function(format!("count-naive/{name}"), |b| {
            b.iter(|| black_box(count_matches_naive(&g, q, MatchOptions::default())));
        });
    }
    let persona = persona_query();
    group.bench_function("count/PERSONA STRINGS", |b| {
        b.iter(|| black_box(plain.count(&persona, MatchOptions::default())));
    });
    group.bench_function("count-naive/PERSONA STRINGS", |b| {
        b.iter(|| black_box(count_matches_naive(&g, &persona, MatchOptions::default())));
    });

    // governance overhead: the same count with a budget attached — a
    // generous deadline plus a cancel token, neither of which ever trips,
    // so the entire difference against `count/LDBC QUERY 3` is the cost
    // of the tick-counted checks at DFS backtrack points. The committed
    // snapshot pins this pair within a few percent of each other; a
    // refactor that makes the governed path slow (a check per transition
    // instead of per CHECK_INTERVAL, a lock on the hot path) trips the
    // bench_compare gate.
    let token = CancelToken::new();
    let governed_opts = MatchOptions::governed(
        Budget::deadline(std::time::Duration::from_secs(3600)).with_cancel(&token),
    );
    group.bench_function("deadline-overhead/LDBC QUERY 3", |b| {
        b.iter(|| black_box(plain.count(&queries[2], governed_opts.clone())));
    });

    let type_index = Arc::new(AttrIndex::build(&g, "type").expect("LDBC graphs carry type"));
    let indexed = Matcher::with_shared_indexes(&g, vec![Arc::clone(&type_index)]);
    let q1 = &queries[0];
    group.bench_function("count-indexed/LDBC QUERY 1", |b| {
        b.iter(|| black_box(indexed.count(q1, MatchOptions::default())));
    });

    // prepare-time cost of the static analyzer (satisfiability, predicate
    // merging, dictionary pruning) that now runs on every plan-cache miss:
    // it must stay negligible next to a single compile+plan, let alone a
    // search — the snapshot pins it so an expensive rewrite pass (e.g. an
    // accidental O(preds²) merge or a per-constant dictionary scan) trips
    // the bench_compare gate
    group.bench_function("analyze-overhead/LDBC QUERY 1", |b| {
        b.iter(|| black_box(whyq_query::analyze_against(q1, &g)));
    });

    // the plan-cache gate: one prepared query executed REPEAT times vs the
    // same indexed matcher compiling + planning on every call
    let db = Database::open(g.clone()).expect("open");
    let session = db.session();
    group.bench_function("prepared-repeat/LDBC QUERY 1", |b| {
        let prepared = session.prepare(q1).expect("valid query");
        b.iter(|| {
            let mut total = 0u64;
            for _ in 0..REPEAT {
                total += prepared
                    .count_opts(MatchOptions::default())
                    .expect("prepared");
            }
            black_box(total)
        });
    });
    // the pre-facade repeat path: what the deprecated `count_matches` shim
    // does per call — construct a matcher, compile, plan, search, discard
    group.bench_function("compile-repeat/LDBC QUERY 1", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for _ in 0..REPEAT {
                total += Matcher::new(&g).count(q1, MatchOptions::default());
            }
            black_box(total)
        });
    });
    // tighter comparison: per-call compile over a long-lived indexed
    // matcher (scratch + index amortized, compile/plan still per call)
    group.bench_function("compile-repeat-indexed/LDBC QUERY 1", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for _ in 0..REPEAT {
                total += indexed.count(q1, MatchOptions::default());
            }
            black_box(total)
        });
    });

    // intra-query parallelism: the co-location triangle (the most
    // expensive LDBC pattern) over a larger instance, serially vs sharded
    // into seed-range work units across 4 worker sessions. The `-ser`
    // twins re-run the serial path under the same prepared-query harness
    // so `find-par`/`count-par` divide cleanly against them; the larger
    // graph gives every work unit enough search to amortize worker
    // startup (on the 300-person default the whole count is ~70µs —
    // thread scheduling noise, not a measurement).
    let xl = Database::open(ldbc_graph(LdbcConfig {
        persons: 2000,
        seed: 42,
    }))
    .expect("open");
    let xl_session = xl.session();
    let q3 = &queries[2];
    let par4 = ParallelOpts::with_threads(4).min_seeds_per_split(1);
    let serial1 = ParallelOpts::serial();
    let prepared3 = xl_session.prepare(q3).expect("valid query");
    group.bench_function("find-ser/LDBC-XL QUERY 3", |b| {
        b.iter(|| {
            black_box(
                prepared3
                    .find_par_opts(MatchOptions::default(), &serial1)
                    .expect("find"),
            )
        });
    });
    group.bench_function("find-par/LDBC-XL QUERY 3", |b| {
        b.iter(|| {
            black_box(
                prepared3
                    .find_par_opts(MatchOptions::default(), &par4)
                    .expect("find"),
            )
        });
    });
    group.bench_function("count-ser/LDBC-XL QUERY 3", |b| {
        b.iter(|| {
            black_box(
                prepared3
                    .count_par_opts(MatchOptions::default(), &serial1)
                    .expect("count"),
            )
        });
    });
    group.bench_function("count-par/LDBC-XL QUERY 3", |b| {
        b.iter(|| {
            black_box(
                prepared3
                    .count_par_opts(MatchOptions::default(), &par4)
                    .expect("count"),
            )
        });
    });

    group.bench_function("find-limit100/LDBC QUERY 3", |b| {
        b.iter(|| black_box(plain.find(&queries[2], MatchOptions::limited(100))));
    });
    group.bench_function("find-limit100-naive/LDBC QUERY 3", |b| {
        b.iter(|| {
            black_box(find_matches_naive(
                &g,
                &queries[2],
                MatchOptions::limited(100),
            ))
        });
    });
    group.bench_function("stream-limit100/LDBC QUERY 3", |b| {
        b.iter(|| {
            black_box(
                plain
                    .stream(&queries[2], MatchOptions::limited(100))
                    .count(),
            )
        });
    });

    // the bytecode VM against the retired recursive interpreter (compiled
    // in via the matcher's `legacy-interp` feature) on identical inputs:
    // both sides get a precompiled artifact, so the pair isolates pure
    // execution cost. The committed snapshot pins the VM entry; a VM
    // dispatch regression (boxed instructions, a per-transition branch
    // miss) shows up directly against the interpreter twin.
    let cq3 = plain.compile_full(q3);
    group.bench_function("vm-vs-interp/vm/LDBC QUERY 3", |b| {
        b.iter(|| {
            black_box(plain.count_compiled(
                q3,
                &cq3.compiled,
                &cq3.program,
                MatchOptions::default(),
            ))
        });
    });
    let (compiled3, plans3) = plain.compile(q3);
    group.bench_function("vm-vs-interp/interp/LDBC QUERY 3", |b| {
        b.iter(|| {
            black_box(plain.count_compiled_interp(q3, &compiled3, &plans3, MatchOptions::default()))
        });
    });

    // the added compile-time stages of the VM backend — lower to plan IR,
    // run the full optimizer pipeline, encode to bytecode — measured in
    // isolation over precomputed compile/plan outputs. This is the exact
    // delta a plan-cache miss pays versus the retired plans-only pipeline;
    // it must stay negligible next to a single search (compare against
    // `count/LDBC QUERY 3`).
    let (plans3b, est3) = build_plans_est(&g, q3, &compiled3, &[]);
    group.bench_function("lower-optimize-overhead/LDBC QUERY 3", |b| {
        b.iter(|| {
            let mut ir = lower(&compiled3, &plans3b, &est3);
            optimize(&mut ir, &g, q3, &compiled3, &[], PassSet::default());
            black_box(QueryProgram::from_ir(&ir))
        });
    });
    group.finish();
}

/// Inter-query parallelism at the engine level: the why-empty relax loop
/// over a larger LDBC instance, with its sibling-candidate cardinality
/// probes executed serially vs batched through a 4-thread
/// `Executor::count_batch` vs serially over the sibling result cache. A
/// fresh rewriter per iteration — the cardinality cache is rewriter
/// state, and the sibling probes are exactly what this case measures.
///
/// `sibling-serial` and `sibling-batch` keep their historical meaning by
/// running on a database with the sibling cache disabled (every probe
/// re-executes); `sibling-incremental` runs the identical serial loop on
/// a default database, so every probe whose weakly-connected components
/// survived the relaxation replays their memoized counts and only the
/// delta-invalidated components re-execute.
fn bench_relax_siblings(c: &mut Criterion) {
    let ldbc = ldbc_graph(LdbcConfig {
        persons: 2000,
        seed: 42,
    });
    let cold = Database::open_with(
        ldbc.clone(),
        DatabaseConfig::default().sibling_cache_capacity(0),
    )
    .expect("open");
    let warm = Database::open(ldbc).expect("open");
    let q = &ldbc_failing_queries()[0];
    let mut group = c.benchmark_group("relax");
    group.sample_size(10);
    group.bench_function("sibling-serial", |b| {
        b.iter(|| {
            black_box(
                CoarseRewriter::new(&cold)
                    .with_executor(Executor::serial())
                    .rewrite(q, &RelaxConfig::default()),
            )
        });
    });
    group.bench_function("sibling-batch", |b| {
        b.iter(|| {
            black_box(
                CoarseRewriter::new(&cold)
                    .with_executor(Executor::new(ParallelOpts::with_threads(4)))
                    .rewrite(q, &RelaxConfig::default()),
            )
        });
    });
    group.bench_function("sibling-incremental", |b| {
        b.iter(|| {
            black_box(
                CoarseRewriter::new(&warm)
                    .with_executor(Executor::serial())
                    .rewrite(q, &RelaxConfig::default()),
            )
        });
    });
    group.finish();
}

/// The same incremental-reuse measurement for the MCS cardinality probes:
/// DISCOVERMCS grows prefixes whose probes are near-identical queries, so
/// on a sibling-cache-enabled database the unchanged components of each
/// probe replay instead of re-executing.
fn bench_mcs_incremental(c: &mut Criterion) {
    let db = Database::open(ldbc_graph(LdbcConfig::default())).expect("open");
    let q = &ldbc_failing_queries()[0];
    let mut group = c.benchmark_group("mcs");
    group.sample_size(10);
    group.bench_function("incremental-probe", |b| {
        b.iter(|| black_box(DiscoverMcs::new(&db).run(q).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matcher,
    bench_relax_siblings,
    bench_mcs_incremental
);
criterion_main!(benches);
