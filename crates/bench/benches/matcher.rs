//! Micro-benchmarks of the pattern-matching engine.
//!
//! Each LDBC query pattern is measured twice: through the optimized
//! slot-based engine and through the retained naive reference engine
//! (`clone`-per-binding, the pre-optimization behavior). The committed
//! `BENCH_matcher.json` snapshot is produced from this bench via the
//! `WHYQ_BENCH_JSON` environment variable.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use whyq_datagen::{ldbc_graph, ldbc_queries, LdbcConfig};
use whyq_matcher::{
    count_matches, count_matches_naive, find_matches, find_matches_naive, MatchOptions, Matcher,
};
use whyq_query::{PatternQuery, Predicate, QueryBuilder};

/// A string-equality-heavy persona scan over the LDBC person table: every
/// candidate check is a conjunction of four string equalities plus one on
/// the neighbor — the workload shape the value dictionary turns from four
/// heap-string comparisons per candidate into four `u32` compares.
fn persona_query() -> PatternQuery {
    QueryBuilder::new("PERSONA STRINGS")
        .vertex(
            "p",
            [
                Predicate::eq("type", "person"),
                Predicate::eq("gender", "female"),
                Predicate::eq("browserUsed", "Chrome"),
                Predicate::eq("nationality", "Germany"),
            ],
        )
        .vertex(
            "friend",
            [
                Predicate::eq("type", "person"),
                Predicate::eq("gender", "male"),
            ],
        )
        .edge("p", "friend", "knows")
        .build()
}

fn bench_matcher(c: &mut Criterion) {
    let g = ldbc_graph(LdbcConfig::default());
    let queries = ldbc_queries();
    let mut group = c.benchmark_group("matcher");
    group.sample_size(20);

    for q in &queries {
        let name = q.name.clone().unwrap_or_default();
        group.bench_function(format!("count/{name}"), |b| {
            b.iter(|| black_box(count_matches(&g, q, None)))
        });
        group.bench_function(format!("count-naive/{name}"), |b| {
            b.iter(|| black_box(count_matches_naive(&g, q, MatchOptions::default())))
        });
    }
    let persona = persona_query();
    group.bench_function("count/PERSONA STRINGS", |b| {
        b.iter(|| black_box(count_matches(&g, &persona, None)))
    });
    group.bench_function("count-naive/PERSONA STRINGS", |b| {
        b.iter(|| black_box(count_matches_naive(&g, &persona, MatchOptions::default())))
    });
    let q1 = &queries[0];
    group.bench_function("count-indexed/LDBC QUERY 1", |b| {
        let m = Matcher::new(&g).with_index("type");
        b.iter(|| black_box(m.count(q1, MatchOptions::default())))
    });
    group.bench_function("find-limit100/LDBC QUERY 3", |b| {
        b.iter(|| black_box(find_matches(&g, &queries[2], Some(100))))
    });
    group.bench_function("find-limit100-naive/LDBC QUERY 3", |b| {
        b.iter(|| {
            black_box(find_matches_naive(
                &g,
                &queries[2],
                MatchOptions::limited(100),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_matcher);
criterion_main!(benches);
