//! Micro-benchmarks of the subgraph-explanation algorithms (Ch. 4):
//! DISCOVERMCS path strategies and BOUNDEDMCS.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use whyq_core::problem::CardinalityGoal;
use whyq_core::subgraph::{BoundedMcs, DiscoverMcs, McsConfig, PathStrategy};
use whyq_datagen::{ldbc_failing_queries, ldbc_graph, ldbc_queries, LdbcConfig};
use whyq_session::Database;

fn bench_mcs(c: &mut Criterion) {
    let db = Database::open(ldbc_graph(LdbcConfig::default())).expect("open");
    let failing = ldbc_failing_queries();
    let mut group = c.benchmark_group("mcs");
    group.sample_size(10);

    group.bench_function("discover-exhaustive/Q1", |b| {
        b.iter(|| black_box(DiscoverMcs::new(&db).run(&failing[0]).unwrap()));
    });
    group.bench_function("discover-single-path/Q1", |b| {
        let d = DiscoverMcs::new(&db).with_config(McsConfig {
            strategy: PathStrategy::SingleSelectivity,
            ..McsConfig::default()
        });
        b.iter(|| black_box(d.run(&failing[0]).unwrap()));
    });
    group.bench_function("discover-exhaustive/Q2", |b| {
        b.iter(|| black_box(DiscoverMcs::new(&db).run(&failing[1]).unwrap()));
    });
    let q3 = &ldbc_queries()[2];
    group.bench_function("bounded-atmost/Q3", |b| {
        b.iter(|| {
            black_box(
                BoundedMcs::new(&db)
                    .run(q3, CardinalityGoal::AtMost(10))
                    .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_mcs);
criterion_main!(benches);
