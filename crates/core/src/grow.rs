//! Incremental match growth — the primitive under the why-query algorithms.
//!
//! DISCOVERMCS and BOUNDEDMCS (§4.2) traverse the *query* graph edge by edge
//! while maintaining the intermediate result sets of the already-traversed
//! subquery. This module provides exactly that primitive:
//!
//! * [`seed_matches`] — result graphs of a single query vertex,
//! * [`extend_matches`] — extend every partial result graph by one query
//!   edge (binding its unbound endpoint if necessary).
//!
//! The fine-grained rewriter's change-propagation machinery (§6.3.1) reuses
//! the same primitive to re-evaluate only the pipeline suffix behind a
//! modified operator.
//!
//! This module lives in `whyq-core` (not `whyq-matcher`) because the
//! edge-at-a-time growth order is dictated by the why-query algorithms
//! here, while the matcher owns whole-plan evaluation; only the per-element
//! predicate compilation ([`whyq_matcher::compile`]) is shared.

use whyq_graph::{EdgeId, PropertyGraph, VertexId};
use whyq_matcher::compile::{CompiledEdge, CompiledVertex};
use whyq_matcher::ResultGraph;
use whyq_query::{PatternQuery, QEid, QVid};

fn compile_vertex(g: &PropertyGraph, q: &PatternQuery, v: QVid) -> CompiledVertex {
    CompiledVertex::compile(g, q.vertex(v).expect("live query vertex"))
}

fn compile_edge(g: &PropertyGraph, q: &PatternQuery, e: QEid) -> CompiledEdge {
    CompiledEdge::compile(g, q.edge(e).expect("live query edge"))
}

/// Result graphs binding only query vertex `v`, capped at `cap`.
pub fn seed_matches(g: &PropertyGraph, q: &PatternQuery, v: QVid, cap: usize) -> Vec<ResultGraph> {
    let cv = compile_vertex(g, q, v);
    let mut out = Vec::new();
    for dv in g.vertex_ids() {
        if cv.accepts(g, dv) {
            let mut r = ResultGraph::new();
            r.bind_vertex(v, dv);
            out.push(r);
            if out.len() >= cap {
                break;
            }
        }
    }
    out
}

/// Extend each partial result graph in `partial` by query edge `e`.
///
/// Handles three situations per partial match:
/// * both endpoints bound — bind the edge if a matching unused data edge
///   connects them (*closing*),
/// * one endpoint bound — traverse the data adjacency to bind the other
///   endpoint and the edge (*expanding*),
/// * neither endpoint bound — scan all data edges (*disconnected growth*,
///   used when a traversal path must jump between query components,
///   §4.3.3).
///
/// The output is capped at `cap` result graphs; vertex/edge injectivity is
/// always enforced (the thesis matches subgraphs, not homomorphisms).
pub fn extend_matches(
    g: &PropertyGraph,
    q: &PatternQuery,
    partial: &[ResultGraph],
    e: QEid,
    cap: usize,
) -> Vec<ResultGraph> {
    let qe = q.edge(e).expect("live query edge");
    let ce = compile_edge(g, q, e);
    let cv_src = compile_vertex(g, q, qe.src);
    let cv_dst = compile_vertex(g, q, qe.dst);

    let topo = g.topology();
    let mut out: Vec<ResultGraph> = Vec::new();
    'partials: for r in partial {
        let bs = r.vertex(qe.src);
        let bt = r.vertex(qe.dst);
        // candidate (data edge, src binding, dst binding) triples, read
        // off the CSR columns — the opposite endpoint comes with the edge
        // id, so no `EdgeData` is touched while collecting
        let mut cands: Vec<(EdgeId, VertexId, VertexId)> = Vec::new();
        match (bs, bt) {
            (Some(ms), Some(mt)) => {
                if qe.directions.forward {
                    for (de, dst) in topo.out_entries(ms).iter() {
                        if dst == mt {
                            cands.push((de, ms, mt));
                        }
                    }
                }
                if qe.directions.backward {
                    for (de, dst) in topo.out_entries(mt).iter() {
                        if dst == ms {
                            cands.push((de, ms, mt));
                        }
                    }
                }
            }
            (Some(ms), None) => {
                if qe.directions.forward {
                    for (de, dst) in topo.out_entries(ms).iter() {
                        cands.push((de, ms, dst));
                    }
                }
                if qe.directions.backward {
                    for (de, src) in topo.in_entries(ms).iter() {
                        cands.push((de, ms, src));
                    }
                }
            }
            (None, Some(mt)) => {
                if qe.directions.forward {
                    for (de, src) in topo.in_entries(mt).iter() {
                        cands.push((de, src, mt));
                    }
                }
                if qe.directions.backward {
                    for (de, dst) in topo.out_entries(mt).iter() {
                        cands.push((de, dst, mt));
                    }
                }
            }
            (None, None) => {
                for de in g.edge_ids() {
                    let ed = g.edge(de);
                    if qe.directions.forward {
                        cands.push((de, ed.src, ed.dst));
                    }
                    if qe.directions.backward {
                        cands.push((de, ed.dst, ed.src));
                    }
                }
            }
        }
        cands.sort();
        cands.dedup();

        for (de, ms, mt) in cands {
            if !ce.accepts(g.edge(de)) || r.uses_data_edge(de) {
                continue;
            }
            // self-loop query edges bind one vertex twice — only allow when
            // the data edge is a self-loop too
            if qe.src == qe.dst && ms != mt {
                continue;
            }
            let mut next = r.clone();
            // bind src endpoint if new
            if bs.is_none() {
                if !cv_src.accepts(g, ms) || next.uses_data_vertex(ms) {
                    continue;
                }
                next.bind_vertex(qe.src, ms);
            } else if bs != Some(ms) {
                continue;
            }
            if qe.src != qe.dst {
                if bt.is_none() {
                    if !cv_dst.accepts(g, mt) || next.uses_data_vertex(mt) {
                        continue;
                    }
                    next.bind_vertex(qe.dst, mt);
                } else if bt != Some(mt) {
                    continue;
                }
            }
            next.bind_edge(e, de);
            out.push(next);
            if out.len() >= cap {
                break 'partials;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_graph::Value;
    use whyq_matcher::{MatchOptions, Matcher};
    use whyq_query::{Predicate, QueryBuilder};

    fn social() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person"))]);
        let b = g.add_vertex([("type", Value::str("person"))]);
        let c = g.add_vertex([("type", Value::str("person"))]);
        let city = g.add_vertex([("type", Value::str("city"))]);
        g.add_edge(a, b, "knows", []);
        g.add_edge(b, c, "knows", []);
        g.add_edge(a, city, "livesIn", []);
        g.add_edge(b, city, "livesIn", []);
        g
    }

    #[test]
    fn seed_then_extend_equals_whole_query_eval() {
        let g = social();
        let q = QueryBuilder::new("tri")
            .vertex("p1", [Predicate::eq("type", "person")])
            .vertex("p2", [Predicate::eq("type", "person")])
            .vertex("c", [Predicate::eq("type", "city")])
            .edge("p1", "p2", "knows")
            .edge("p1", "c", "livesIn")
            .edge("p2", "c", "livesIn")
            .build();
        let seeds = seed_matches(&g, &q, whyq_query::QVid(0), usize::MAX);
        assert_eq!(seeds.len(), 3);
        let after_knows = extend_matches(&g, &q, &seeds, whyq_query::QEid(0), usize::MAX);
        assert_eq!(after_knows.len(), 2); // a->b, b->c
        let after_lives = extend_matches(&g, &q, &after_knows, whyq_query::QEid(1), usize::MAX);
        assert_eq!(after_lives.len(), 2); // a and b live in the city
        let full = extend_matches(&g, &q, &after_lives, whyq_query::QEid(2), usize::MAX);
        let whole = Matcher::new(&g).count(&q, MatchOptions::default());
        assert_eq!(full.len() as u64, whole);
        assert_eq!(full.len(), 1);
    }

    #[test]
    fn extend_closing_edge() {
        let g = social();
        let q = QueryBuilder::new("pair")
            .vertex("p1", [Predicate::eq("type", "person")])
            .vertex("p2", [Predicate::eq("type", "person")])
            .edge("p1", "p2", "knows")
            .build();
        // bind both endpoints first via seeds of separate vertices
        let s1 = seed_matches(&g, &q, whyq_query::QVid(0), usize::MAX);
        // extend with the edge binding p2 on the fly
        let full = extend_matches(&g, &q, &s1, whyq_query::QEid(0), usize::MAX);
        assert_eq!(full.len(), 2);
    }

    #[test]
    fn disconnected_growth_scans_edges() {
        let g = social();
        let q = QueryBuilder::new("pair")
            .vertex("p1", [Predicate::eq("type", "person")])
            .vertex("p2", [Predicate::eq("type", "person")])
            .edge("p1", "p2", "knows")
            .build();
        let empty_partial = vec![ResultGraph::new()];
        let full = extend_matches(&g, &q, &empty_partial, whyq_query::QEid(0), usize::MAX);
        assert_eq!(full.len(), 2);
    }

    #[test]
    fn caps_respected() {
        let g = social();
        let q = QueryBuilder::new("p")
            .vertex("p1", [Predicate::eq("type", "person")])
            .build();
        assert_eq!(seed_matches(&g, &q, whyq_query::QVid(0), 2).len(), 2);
    }

    #[test]
    fn self_loop_requires_data_self_loop() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([]);
        let b = g.add_vertex([]);
        g.add_edge(a, b, "t", []);
        g.add_edge(b, b, "t", []);
        let mut q = PatternQuery::new();
        let v = q.add_vertex(whyq_query::QueryVertex::any());
        let e = q.add_edge(whyq_query::QueryEdge::typed(v, v, "t"));
        let seeds = seed_matches(&g, &q, v, usize::MAX);
        let full = extend_matches(&g, &q, &seeds, e, usize::MAX);
        assert_eq!(full.len(), 1);
        assert_eq!(full[0].vertex(v), Some(b));
    }
}
