//! # whyq-core — the why-query engine
//!
//! The primary contribution of *"Why-Query Support in Graph Databases"*
//! (Vasilyeva, 2016): debugging support for pattern-matching queries that
//! deliver **no**, **too few**, or **too many** answers over property
//! graphs. Two explanation families are produced:
//!
//! * **Subgraph-based explanations** (Ch. 4) — *why did the query fail?*
//!   The query graph is traversed while intermediate result sets are
//!   maintained; the largest succeeding subquery (the maximum common
//!   connected subgraph between query and data) is detected by
//!   [`subgraph::discover::DiscoverMcs`] (why-empty) and
//!   [`subgraph::bounded::BoundedMcs`] (why-so-few / why-so-many), and the
//!   *differential graph* — the failed query part — is returned. The
//!   optimizations of §4.3 (weakly-connected-component decomposition,
//!   single-traversal-path selection) and the user-centric traversal of
//!   §4.4 are implemented in [`subgraph::traversal`] and [`user`].
//!
//! * **Modification-based explanations** — *how should the query change?*
//!   [`relax::CoarseRewriter`] (Ch. 5) relaxes why-empty queries by
//!   discarding predicates and topology, driven by query-dependent
//!   statistics ([`stats::Statistics`]), candidate priority functions
//!   ([`relax::priority`]) and a query cache ([`relax::cache`]).
//!   [`fine::TraverseSearchTree`] (Ch. 6) performs fine-grained,
//!   cardinality-driven modification on the predicate-value level with a
//!   modification tree, change propagation and discarding of
//!   non-contributing branches.
//!
//! [`engine::WhyEngine`] ties everything together and provides the holistic
//! dispatch of §3.1.3: given a cardinality goal it decides which why-query
//! to run and lets the search oscillate around the threshold (Fig. 3.1).
//!
//! ## Entry point: the `Database` facade
//!
//! Everything in this crate is driven through the `whyq-session` facade
//! (re-exported here): open a [`Database`] over an owned
//! [`whyq_graph::PropertyGraph`] — that seals the topology and builds the
//! configured attribute indexes — then construct the engine from it. All
//! engine entry points return `Result<_, `[`WhyqError`]`>`, and every
//! cardinality measurement (the engine's, the rewriters', the statistics
//! provider's) flows through the database's shared plan cache, so the
//! relax loop's hundreds of sibling candidates compile once per distinct
//! query signature.
//!
//! ```
//! use whyq_core::{CardinalityGoal, WhyEngine};
//! use whyq_graph::{PropertyGraph, Value};
//! use whyq_query::{Predicate, QueryBuilder};
//! use whyq_session::Database;
//!
//! let mut g = PropertyGraph::new();
//! let p = g.add_vertex([("type", Value::str("person"))]);
//! let c = g.add_vertex([("type", Value::str("city")), ("name", Value::str("Dresden"))]);
//! g.add_edge(p, c, "livesIn", []);
//!
//! let db = Database::open(g)?;
//! let engine = WhyEngine::new(&db);
//! let q = QueryBuilder::new("berlin")
//!     .vertex("p", [Predicate::eq("type", "person")])
//!     .vertex("c", [Predicate::eq("type", "city"), Predicate::eq("name", "Berlin")])
//!     .edge("p", "c", "livesIn")
//!     .build();
//! let diagnosis = engine.diagnose(&q, CardinalityGoal::NonEmpty)?;
//! assert_eq!(diagnosis.cardinality, 0);
//! # Ok::<(), whyq_session::WhyqError>(())
//! ```

// The whole workspace is unsafe-free (audited 2026-08): lock it in.
#![forbid(unsafe_code)]

pub mod domains;
pub mod engine;
pub mod explanation;
pub mod fine;
pub mod grow;
pub mod problem;
pub mod relax;
pub mod stats;
pub mod subgraph;
pub mod user;

pub use domains::AttributeDomains;
pub use engine::WhyEngine;
pub use explanation::{DifferentialGraph, ModificationExplanation, SubgraphExplanation};
pub use problem::{CardinalityGoal, WhyProblem};
pub use whyq_session::{
    Budget, CacheStats, CancelToken, Database, DatabaseConfig, Governed, PreparedQuery, Session,
    Termination, WhyqError,
};
