//! Query-dependent statistics (§5.2).
//!
//! The coarse-grained rewriter estimates candidate cardinalities instead of
//! executing every candidate. Statistics are computed against the data graph
//! *for the elements of the original query* (they are query-dependent, not
//! global histograms):
//!
//! * `vertex_card(v)` — how many data vertices satisfy query vertex `v`'s
//!   predicates (§5.2.2);
//! * `edge_card(e)` — the `path(1)` cardinality: how many data edges, with
//!   their endpoints, satisfy query edge `e` including its endpoint
//!   predicates (§5.2.2);
//! * `path_card(edges)` — the `paths(n)` cardinality of a connected chain
//!   of query edges (§5.2.3).
//!
//! Every statistic is a (small) pattern-match count, memoized by canonical
//! query signature — re-querying statistics for unchanged query parts is
//! free, which is what makes the §5.3 candidate selection cheap.

use std::cell::RefCell;
use std::collections::HashMap;
use whyq_matcher::MatchOptions;
use whyq_query::{signature::signature, PatternQuery, QEid, QVid};
use whyq_session::{Database, Session};

/// Memoizing statistics provider bound to one database.
pub struct Statistics<'g> {
    session: Session<'g>,
    cache: RefCell<HashMap<String, u64>>,
    lookups: RefCell<u64>,
    misses: RefCell<u64>,
}

impl<'g> Statistics<'g> {
    /// New provider over `db` (counting runs through an own session, so
    /// statistics measurement shares the database's indexes and plan
    /// cache with every other consumer).
    pub fn new(db: &'g Database) -> Self {
        Statistics {
            session: db.session(),
            cache: RefCell::new(HashMap::new()),
            lookups: RefCell::new(0),
            misses: RefCell::new(0),
        }
    }

    /// Cardinality of a single query vertex: matching data vertices.
    pub fn vertex_card(&self, q: &PatternQuery, v: QVid) -> u64 {
        let sub = q.induced_subquery(&[v]);
        self.cached_count(&sub)
    }

    /// `path(1)` cardinality of a query edge including endpoint predicates.
    pub fn edge_card(&self, q: &PatternQuery, e: QEid) -> u64 {
        let sub = q.edge_subquery(&[e]);
        self.cached_count(&sub)
    }

    /// `paths(n)` cardinality of a chain of query edges.
    pub fn path_card(&self, q: &PatternQuery, edges: &[QEid]) -> u64 {
        let sub = q.edge_subquery(edges);
        self.cached_count(&sub)
    }

    /// Average `path(1)` cardinality over all live edges of `q` — the
    /// aggregate driving the §5.5.3 priority function. Vertex-only queries
    /// fall back to the average vertex cardinality.
    pub fn avg_path1(&self, q: &PatternQuery) -> f64 {
        let edges: Vec<QEid> = q.edge_ids().collect();
        if edges.is_empty() {
            let verts: Vec<QVid> = q.vertex_ids().collect();
            if verts.is_empty() {
                return 0.0;
            }
            let sum: u64 = verts.iter().map(|&v| self.vertex_card(q, v)).sum();
            return sum as f64 / verts.len() as f64;
        }
        let sum: u64 = edges.iter().map(|&e| self.edge_card(q, e)).sum();
        sum as f64 / edges.len() as f64
    }

    /// A cheap cardinality estimate for a whole candidate query: the
    /// minimum `path(1)` cardinality over its edges (the most selective
    /// edge bounds how many embeddings can survive), or the minimum vertex
    /// cardinality for vertex-only queries. Zero whenever any element is
    /// unsatisfiable — exactly the signal relaxation needs.
    pub fn estimate(&self, q: &PatternQuery) -> u64 {
        let edges: Vec<QEid> = q.edge_ids().collect();
        if edges.is_empty() {
            return q
                .vertex_ids()
                .map(|v| self.vertex_card(q, v))
                .min()
                .unwrap_or(0);
        }
        edges
            .iter()
            .map(|&e| self.edge_card(q, e))
            .min()
            .unwrap_or(0)
    }

    /// Induced cardinality change of a candidate relative to its parent
    /// (§5.3.2): `estimate(candidate) − estimate(parent)`.
    pub fn induced_change(&self, parent: &PatternQuery, candidate: &PatternQuery) -> i64 {
        self.estimate(candidate) as i64 - self.estimate(parent) as i64
    }

    /// `paths(n)`-based estimate (§5.2.3): decompose the query into
    /// 2-edge chains along a BFS spanning order and combine their measured
    /// `paths(2)` cardinalities under an independence assumption:
    ///
    /// ```text
    /// est = Π paths2(eᵢ, eᵢ₊₁) / Π path1(shared interior edges)
    /// ```
    ///
    /// This is the classic chain-join estimator lifted to graph patterns —
    /// more accurate than the min-edge bound on path-shaped queries because
    /// it observes *join* selectivity between consecutive edges, at the
    /// cost of measuring each consecutive pair once (memoized).
    pub fn estimate_paths(&self, q: &PatternQuery) -> f64 {
        // BFS edge order (pairs share an endpoint whenever possible)
        let edges: Vec<QEid> = bfs_edge_order(q);
        match edges.len() {
            0 => q
                .vertex_ids()
                .map(|v| self.vertex_card(q, v))
                .min()
                .unwrap_or(0) as f64,
            1 => self.edge_card(q, edges[0]) as f64,
            _ => {
                let mut est = self.path_card(q, &edges[0..2]) as f64;
                for w in edges.windows(2).skip(1) {
                    let pair = self.path_card(q, w) as f64;
                    let shared = self.edge_card(q, w[0]) as f64;
                    if shared == 0.0 {
                        return 0.0;
                    }
                    est *= pair / shared;
                }
                est
            }
        }
    }

    /// `(lookups, misses)` counters — Appendix B.2 reports these.
    pub fn counters(&self) -> (u64, u64) {
        (*self.lookups.borrow(), *self.misses.borrow())
    }

    /// Number of memoized statistic entries.
    pub fn cache_size(&self) -> usize {
        self.cache.borrow().len()
    }

    /// `(lookups, misses)` — see [`Statistics::counters`].
    fn cached_count(&self, sub: &PatternQuery) -> u64 {
        *self.lookups.borrow_mut() += 1;
        let key = signature(sub);
        if let Some(&c) = self.cache.borrow().get(&key) {
            return c;
        }
        *self.misses.borrow_mut() += 1;
        let c = self
            .session
            .count_opts(sub, MatchOptions::counting(None))
            .expect("statistics subqueries derive from validated queries");
        self.cache.borrow_mut().insert(key, c);
        c
    }
}

/// Edge order where consecutive edges share an endpoint whenever the query
/// permits (BFS over edges from the smallest vertex id; jumps across
/// unconnected parts).
fn bfs_edge_order(q: &PatternQuery) -> Vec<QEid> {
    let Some(start) = q.vertex_ids().next() else {
        return Vec::new();
    };
    let mut bound = vec![start];
    let mut remaining: Vec<QEid> = q.edge_ids().collect();
    let mut order = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let pos = remaining
            .iter()
            .position(|&e| {
                let ed = q.edge(e).expect("live");
                bound.contains(&ed.src) || bound.contains(&ed.dst)
            })
            .unwrap_or(0);
        let e = remaining.remove(pos);
        let ed = q.edge(e).expect("live");
        for v in [ed.src, ed.dst] {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
        order.push(e);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_graph::{PropertyGraph, Value};
    use whyq_query::{Predicate, QueryBuilder};

    fn social() -> Database {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person"))]);
        let b = g.add_vertex([("type", Value::str("person"))]);
        let c = g.add_vertex([("type", Value::str("person"))]);
        let city = g.add_vertex([("type", Value::str("city"))]);
        g.add_edge(a, b, "knows", []);
        g.add_edge(b, c, "knows", []);
        g.add_edge(a, city, "livesIn", []);
        g.add_edge(b, city, "livesIn", []);
        Database::open(g).expect("open")
    }

    fn path_query() -> PatternQuery {
        QueryBuilder::new("p")
            .vertex("p1", [Predicate::eq("type", "person")])
            .vertex("p2", [Predicate::eq("type", "person")])
            .vertex("c", [Predicate::eq("type", "city")])
            .edge("p1", "p2", "knows")
            .edge("p2", "c", "livesIn")
            .build()
    }

    #[test]
    fn vertex_and_edge_cardinalities() {
        let db = social();
        let s = Statistics::new(&db);
        let q = path_query();
        assert_eq!(s.vertex_card(&q, QVid(0)), 3);
        assert_eq!(s.vertex_card(&q, QVid(2)), 1);
        assert_eq!(s.edge_card(&q, QEid(0)), 2); // two knows edges
        assert_eq!(s.edge_card(&q, QEid(1)), 2); // two livesIn edges
    }

    #[test]
    fn path_cardinalities() {
        let db = social();
        let s = Statistics::new(&db);
        let q = path_query();
        // p1-knows->p2-livesIn->city: (a,b,city) and (b,c,?) — c has no city
        assert_eq!(s.path_card(&q, &[QEid(0), QEid(1)]), 1);
    }

    #[test]
    fn memoization_counts() {
        let db = social();
        let s = Statistics::new(&db);
        let q = path_query();
        let _ = s.edge_card(&q, QEid(0));
        let _ = s.edge_card(&q, QEid(0));
        let (lookups, misses) = s.counters();
        assert_eq!(lookups, 2);
        assert_eq!(misses, 1);
        assert_eq!(s.cache_size(), 1);
    }

    #[test]
    fn estimates_and_induced_change() {
        let db = social();
        let s = Statistics::new(&db);
        let q = path_query();
        assert_eq!(s.estimate(&q), 2); // min(2, 2)
                                       // relaxing the whole livesIn edge away raises the estimate? both
                                       // edges have card 2 — removing one leaves min = 2; removing a
                                       // *failing* constraint would raise it. Add a failing predicate:
        let mut bad = q.clone();
        bad.vertex_mut(QVid(2))
            .unwrap()
            .predicates
            .push(Predicate::eq("name", "Atlantis"));
        assert_eq!(s.estimate(&bad), 0);
        assert!(s.induced_change(&bad, &q) > 0);
    }

    #[test]
    fn paths_estimate_is_exact_on_chains() {
        let db = social();
        let s = Statistics::new(&db);
        let q = path_query();
        // on a pure 2-edge chain the paths(2) estimate *is* the true count
        let est = s.estimate_paths(&q);
        assert!((est - 1.0).abs() < 1e-9, "est = {est}");
        // single-edge and vertex-only queries fall back gracefully
        let e1 = q.edge_subquery(&[QEid(0)]);
        assert!((s.estimate_paths(&e1) - 2.0).abs() < 1e-9);
        let v = q.induced_subquery(&[QVid(0)]);
        assert!((s.estimate_paths(&v) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn paths_estimate_zero_on_failing_queries() {
        let db = social();
        let s = Statistics::new(&db);
        let mut q = path_query();
        q.vertex_mut(QVid(2))
            .unwrap()
            .predicates
            .push(Predicate::eq("name", "Atlantis"));
        assert_eq!(s.estimate_paths(&q), 0.0);
    }

    #[test]
    fn avg_path1() {
        let db = social();
        let s = Statistics::new(&db);
        let q = path_query();
        assert!((s.avg_path1(&q) - 2.0).abs() < 1e-12);
        // vertex-only query
        let vq = QueryBuilder::new("v")
            .vertex("p", [Predicate::eq("type", "person")])
            .build();
        assert!((s.avg_path1(&vq) - 3.0).abs() < 1e-12);
    }
}
