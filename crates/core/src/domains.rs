//! Attribute domains of a data graph.
//!
//! Modification-based explanation generators need to know *which values
//! exist* before they can extend a predicate interval with a neighboring
//! value (§6.2.2) or insert a new predicate (concretization). The domain
//! catalog summarizes, per attribute: the distinct values (capped and
//! sorted) and, for numeric attributes, the observed range; plus the edge
//! types occurring in the graph.
//!
//! The catalog clones values straight out of the graph, so string entries
//! stay **dictionary-encoded** (`Value::Sym` — the clone is an `Arc`
//! refcount bump, not a string copy). That matters downstream: every
//! relaxed query the why-engine builds from these values carries constants
//! the matcher's compiler recognizes as symbols of the same graph, keeping
//! the whole relax loop's predicate evaluation on the integer fast path.

use std::collections::HashMap;
use whyq_graph::{PropertyGraph, Value};

/// Per-attribute domain information.
#[derive(Debug, Clone, Default)]
pub struct AttrDomain {
    /// Distinct values in sorted order (capped at construction).
    pub values: Vec<Value>,
    /// Whether the cap truncated the value list.
    pub truncated: bool,
    /// Observed numeric minimum (numeric family values only).
    pub min: Option<f64>,
    /// Observed numeric maximum.
    pub max: Option<f64>,
}

impl AttrDomain {
    /// Neighboring values of `v` in the sorted domain: the nearest smaller
    /// and larger distinct values — the candidates a `OneOf` interval is
    /// extended with during relaxation.
    pub fn neighbors(&self, v: &Value) -> Vec<&Value> {
        match self.values.binary_search_by(|x| {
            x.partial_cmp(v)
                .unwrap_or_else(|| x.type_name().cmp(v.type_name()))
        }) {
            Ok(pos) => {
                let mut out = Vec::new();
                if pos > 0 {
                    out.push(&self.values[pos - 1]);
                }
                if pos + 1 < self.values.len() {
                    out.push(&self.values[pos + 1]);
                }
                out
            }
            Err(pos) => {
                let mut out = Vec::new();
                if pos > 0 {
                    out.push(&self.values[pos - 1]);
                }
                if pos < self.values.len() {
                    out.push(&self.values[pos]);
                }
                out
            }
        }
    }

    /// A widening step for numeric ranges: 5% of the observed spread,
    /// at least 1.0.
    pub fn range_step(&self) -> f64 {
        match (self.min, self.max) {
            (Some(lo), Some(hi)) if hi > lo => ((hi - lo) / 20.0).max(1.0),
            _ => 1.0,
        }
    }
}

/// Domain catalog of a data graph.
#[derive(Debug, Clone, Default)]
pub struct AttributeDomains {
    vertex_attrs: HashMap<String, AttrDomain>,
    edge_attrs: HashMap<String, AttrDomain>,
    edge_types: Vec<String>,
}

impl AttributeDomains {
    /// Build the catalog, keeping at most `cap` distinct values per
    /// attribute (larger domains record only the numeric range).
    pub fn build(g: &PropertyGraph, cap: usize) -> Self {
        let mut vertex_attrs: HashMap<String, Vec<Value>> = HashMap::new();
        for v in g.vertex_ids() {
            for (sym, val) in g.vertex(v).attrs.iter() {
                let name = g.attr_names().resolve(sym);
                vertex_attrs
                    .entry(name.to_string())
                    .or_default()
                    .push(val.clone());
            }
        }
        let mut edge_attrs: HashMap<String, Vec<Value>> = HashMap::new();
        for e in g.edge_ids() {
            for (sym, val) in g.edge(e).attrs.iter() {
                let name = g.attr_names().resolve(sym);
                edge_attrs
                    .entry(name.to_string())
                    .or_default()
                    .push(val.clone());
            }
        }
        let mut edge_types: Vec<String> =
            g.edge_types().iter().map(|(_, n)| n.to_string()).collect();
        edge_types.sort();
        AttributeDomains {
            vertex_attrs: vertex_attrs
                .into_iter()
                .map(|(k, vals)| (k, summarize(vals, cap)))
                .collect(),
            edge_attrs: edge_attrs
                .into_iter()
                .map(|(k, vals)| (k, summarize(vals, cap)))
                .collect(),
            edge_types,
        }
    }

    /// Domain of a vertex attribute.
    pub fn vertex_attr(&self, attr: &str) -> Option<&AttrDomain> {
        self.vertex_attrs.get(attr)
    }

    /// Domain of an edge attribute.
    pub fn edge_attr(&self, attr: &str) -> Option<&AttrDomain> {
        self.edge_attrs.get(attr)
    }

    /// All edge types of the graph, sorted.
    pub fn edge_types(&self) -> &[String] {
        &self.edge_types
    }

    /// Names of all vertex attributes, sorted.
    pub fn vertex_attr_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.vertex_attrs.keys().map(String::as_str).collect();
        names.sort();
        names
    }

    /// Names of all edge attributes, sorted.
    pub fn edge_attr_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.edge_attrs.keys().map(String::as_str).collect();
        names.sort();
        names
    }
}

fn summarize(mut vals: Vec<Value>, cap: usize) -> AttrDomain {
    vals.sort_by(|a, b| {
        a.partial_cmp(b)
            .unwrap_or_else(|| a.type_name().cmp(b.type_name()))
    });
    vals.dedup();
    let numeric: Vec<f64> = vals.iter().filter_map(Value::as_f64).collect();
    let min = numeric.iter().copied().reduce(f64::min);
    let max = numeric.iter().copied().reduce(f64::max);
    let truncated = vals.len() > cap;
    if truncated {
        vals.truncate(cap);
    }
    AttrDomain {
        values: vals,
        truncated,
        min,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person")), ("age", Value::Int(30))]);
        let b = g.add_vertex([("type", Value::str("person")), ("age", Value::Int(25))]);
        let c = g.add_vertex([("type", Value::str("city"))]);
        g.add_edge(a, b, "knows", [("since", Value::Int(2003))]);
        g.add_edge(a, c, "livesIn", []);
        g
    }

    #[test]
    fn catalogs_vertex_and_edge_attributes() {
        let d = AttributeDomains::build(&g(), 100);
        let ages = d.vertex_attr("age").unwrap();
        assert_eq!(ages.values, vec![Value::Int(25), Value::Int(30)]);
        assert_eq!(ages.min, Some(25.0));
        assert_eq!(ages.max, Some(30.0));
        let since = d.edge_attr("since").unwrap();
        assert_eq!(since.values.len(), 1);
        assert_eq!(
            d.edge_types(),
            &["knows".to_string(), "livesIn".to_string()]
        );
        assert!(d.vertex_attr("nope").is_none());
    }

    #[test]
    fn neighbors_of_present_and_absent_values() {
        let d = AttributeDomains::build(&g(), 100);
        let ages = d.vertex_attr("age").unwrap();
        // neighbors of 25 → [30]; of 30 → [25]
        assert_eq!(ages.neighbors(&Value::Int(25)), vec![&Value::Int(30)]);
        assert_eq!(ages.neighbors(&Value::Int(30)), vec![&Value::Int(25)]);
        // absent value between → both sides
        assert_eq!(
            ages.neighbors(&Value::Int(27)),
            vec![&Value::Int(25), &Value::Int(30)]
        );
    }

    #[test]
    fn string_domain_values_stay_dictionary_encoded() {
        let graph = g();
        let d = AttributeDomains::build(&graph, 100);
        let types = d.vertex_attr("type").unwrap();
        assert_eq!(types.values.len(), 2);
        for v in &types.values {
            let sv = v.as_sym().expect("catalog keeps the encoded form");
            assert_eq!(sv.dict_id(), graph.values().dict_id());
        }
        // neighbors of the encoded "city" is the encoded "person"
        let city = types.values[0].clone();
        assert_eq!(city.as_str(), Some("city"));
        let n = types.neighbors(&city);
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].as_str(), Some("person"));
    }

    #[test]
    fn cap_truncates_but_keeps_range() {
        let mut graph = PropertyGraph::new();
        for i in 0..50 {
            graph.add_vertex([("x", Value::Int(i))]);
        }
        let d = AttributeDomains::build(&graph, 10);
        let x = d.vertex_attr("x").unwrap();
        assert_eq!(x.values.len(), 10);
        assert!(x.truncated);
        assert_eq!(x.min, Some(0.0));
        assert_eq!(x.max, Some(49.0));
        assert!((x.range_step() - 2.45).abs() < 1e-9);
    }
}
