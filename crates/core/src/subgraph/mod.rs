//! Subgraph-based explanations (Ch. 4).
//!
//! *Why did the query deliver an unexpected number of answers?* — answered
//! in terms of the query's own topology: traverse the query graph while
//! maintaining the intermediate results of the traversed subquery, find the
//! largest subquery that still behaves as expected (the **maximum common
//! connected subgraph** between query and data, §4.1.1) and report the rest
//! as the **differential graph** (§4.1.2).
//!
//! * [`discover::DiscoverMcs`] — the DISCOVERMCS algorithm for why-empty
//!   queries (§4.2.1);
//! * [`bounded::BoundedMcs`] — the BOUNDEDMCS algorithm for why-so-few and
//!   why-so-many queries (§4.2.2);
//! * [`traversal`] — traversal-path enumeration and the single-path
//!   selection heuristics (§4.3.2, §4.4.2).
//!
//! The §4.3 optimizations are configuration switches on [`McsConfig`]:
//! weakly-connected-component decomposition (§4.3.1), single traversal path
//! (§4.3.2) and unconnected-component handling (§4.3.3).

pub mod bounded;
pub mod discover;
pub mod traversal;

pub use bounded::BoundedMcs;
pub use discover::DiscoverMcs;
pub use traversal::{PathStrategy, TraversalPath};

use whyq_matcher::Budget;

/// Configuration shared by DISCOVERMCS and BOUNDEDMCS.
#[derive(Debug, Clone)]
pub struct McsConfig {
    /// How traversal paths are chosen (§4.3.2 / §4.4.2).
    pub strategy: PathStrategy,
    /// Process weakly connected query components separately (§4.3.1).
    pub decompose: bool,
    /// Cap on intermediate result-set sizes during traversal.
    pub max_intermediate: usize,
    /// Cap on the number of traversal paths tried per component in
    /// exhaustive mode.
    pub max_paths: usize,
    /// Cap used when counting the cardinality of the final MCS.
    pub cardinality_limit: u64,
    /// Resource governor of the run: deadline, step budget and external
    /// cancellation. On a trip the traversal stops where it stands and
    /// the explanation assembled from the components finished so far is
    /// returned, tagged with the budget's
    /// [`Termination`](whyq_matcher::Termination) — a degraded answer, not
    /// an error. The budget is single-run state: use a fresh one per
    /// `run()` call.
    pub budget: Budget,
}

impl Default for McsConfig {
    fn default() -> Self {
        McsConfig {
            strategy: PathStrategy::Exhaustive,
            decompose: true,
            max_intermediate: 10_000,
            max_paths: 64,
            cardinality_limit: 100_000,
            budget: Budget::unlimited(),
        }
    }
}
