//! The DISCOVERMCS algorithm for why-empty queries (§4.2.1).
//!
//! DISCOVERMCS detects the maximum common connected subgraph (MCS) between
//! a failed query and the data graph: the largest connected subquery that
//! still delivers results. It traverses the query edge-by-edge along
//! traversal paths while maintaining the intermediate result sets of the
//! traversed prefix; the first edge whose addition empties the results is
//! the *crossing edge*, the traversed prefix is an MCS candidate, and the
//! maximum over all tried paths is returned. The differential graph
//! `Q ∖ MCS` — the failed query part — is the explanation (§4.2.3).
//!
//! With exhaustive path enumeration the result is exact (every satisfiable
//! connected subquery is a prefix of some connected order); the single-path
//! strategies of §4.3.2/§4.4.2 approximate it with one traversal.

use crate::explanation::{DifferentialGraph, SubgraphExplanation};
use crate::grow::{extend_matches, seed_matches};
use crate::stats::Statistics;
use crate::subgraph::traversal::{
    enumerate_paths, selectivity_path, user_centric_path, PathStrategy, TraversalPath,
};
use crate::subgraph::McsConfig;
use whyq_graph::PropertyGraph;
use whyq_matcher::{Budget, MatchOptions};
use whyq_query::{PatternQuery, QEid, QVid};
use whyq_session::{Database, Executor, Session, WhyqError};

/// Outcome of traversing one component along its best path.
#[derive(Debug, Clone)]
pub(crate) struct PrefixOutcome {
    pub start: QVid,
    pub prefix: Vec<QEid>,
    pub crossing: Option<QEid>,
    pub seed_ok: bool,
}

/// Traverse one path, growing the prefix while `satisfied(count)` holds.
/// (`satisfied` is `Sync` so sibling paths can be traversed concurrently —
/// see [`best_prefix`].) The budget is polled before every extension; on a
/// trip the prefix grown so far is returned as-is (with no crossing edge —
/// an exhausted budget is not a semantic bound violation).
pub(crate) fn traverse_path(
    g: &PropertyGraph,
    q: &PatternQuery,
    path: &TraversalPath,
    cap: usize,
    satisfied: &(dyn Fn(usize) -> bool + Sync),
    budget: &Budget,
    extensions: &mut u64,
) -> PrefixOutcome {
    if budget.poll().is_err() {
        return PrefixOutcome {
            start: path.start,
            prefix: Vec::new(),
            crossing: None,
            seed_ok: false,
        };
    }
    let mut partial = seed_matches(g, q, path.start, cap);
    *extensions += 1;
    if !satisfied(partial.len()) {
        return PrefixOutcome {
            start: path.start,
            prefix: Vec::new(),
            crossing: None,
            seed_ok: false,
        };
    }
    let mut prefix = Vec::new();
    for &e in &path.edges {
        if budget.charge(partial.len() as u64).is_err() {
            break;
        }
        let next = extend_matches(g, q, &partial, e, cap);
        *extensions += 1;
        if !satisfied(next.len()) {
            return PrefixOutcome {
                start: path.start,
                prefix,
                crossing: Some(e),
                seed_ok: true,
            };
        }
        partial = next;
        prefix.push(e);
    }
    PrefixOutcome {
        start: path.start,
        prefix,
        crossing: None,
        seed_ok: true,
    }
}

/// Best prefix over a set of paths for one component: the longest prefix
/// wins; exploration stops early once a path covers every component edge.
/// Sibling paths are independent probes, so with a parallel `executor`
/// they are all traversed concurrently ([`Executor::map_batch`]) and the
/// fold then replays them in path order *with the same early break* — the
/// selected prefix and the reported `paths_tried`/`extensions` statistics
/// are identical to the serial scan's (ties break on the earlier path
/// either way, and a later path can never beat a complete one).
///
/// `Err` is reserved for a panicked parallel worker; a tripped budget just
/// ends the scan early with the best prefix found so far.
#[allow(clippy::too_many_arguments)]
pub(crate) fn best_prefix(
    g: &PropertyGraph,
    q: &PatternQuery,
    paths: &[TraversalPath],
    component_edges: usize,
    cap: usize,
    satisfied: &(dyn Fn(usize) -> bool + Sync),
    budget: &Budget,
    extensions: &mut u64,
    paths_tried: &mut usize,
    executor: &Executor,
) -> Result<PrefixOutcome, WhyqError> {
    let mut best: Option<PrefixOutcome> = None;
    let select = |best: &mut Option<PrefixOutcome>, outcome: PrefixOutcome| -> bool {
        let better = match &*best {
            None => true,
            Some(b) => outcome.prefix.len() > b.prefix.len() || (!b.seed_ok && outcome.seed_ok),
        };
        if better {
            let complete = outcome.prefix.len() == component_edges;
            *best = Some(outcome);
            complete
        } else {
            false
        }
    };
    if executor.is_parallel() && paths.len() > 1 {
        let results = executor.map_batch(paths, |path| {
            let mut ext = 0u64;
            let outcome = traverse_path(g, q, path, cap, satisfied, budget, &mut ext);
            (outcome, ext)
        })?;
        // replay with the serial early-break so the reported
        // `paths_tried`/`extensions` statistics are bit-identical to
        // serial mode (the paths computed past the break are the wasted
        // speculation, not a measurement)
        for (outcome, ext) in results {
            *paths_tried += 1;
            *extensions += ext;
            if select(&mut best, outcome) {
                break;
            }
        }
    } else {
        for path in paths {
            if budget.poll().is_err() {
                break;
            }
            *paths_tried += 1;
            let outcome = traverse_path(g, q, path, cap, satisfied, budget, extensions);
            if select(&mut best, outcome) {
                break;
            }
        }
    }
    Ok(best.unwrap_or(PrefixOutcome {
        start: QVid(0),
        prefix: Vec::new(),
        crossing: None,
        seed_ok: false,
    }))
}

/// Components to traverse: per-WCC when decomposition is on (§4.3.1),
/// otherwise the whole live vertex set at once.
pub(crate) fn components_of(q: &PatternQuery, decompose: bool) -> Vec<Vec<QVid>> {
    if decompose {
        q.weakly_connected_components()
    } else {
        let all: Vec<QVid> = q.vertex_ids().collect();
        if all.is_empty() {
            Vec::new()
        } else {
            vec![all]
        }
    }
}

/// Paths for one component per the configured strategy.
pub(crate) fn paths_for(
    q: &PatternQuery,
    component: &[QVid],
    config: &McsConfig,
    stats: &Statistics<'_>,
) -> Vec<TraversalPath> {
    match &config.strategy {
        PathStrategy::Exhaustive => enumerate_paths(q, component, config.max_paths),
        PathStrategy::SingleSelectivity => vec![selectivity_path(q, component, stats)],
        PathStrategy::UserCentric(prefs) => {
            vec![user_centric_path(q, component, prefs, stats)]
        }
    }
}

/// Assemble the MCS query from per-component outcomes, preserving ids.
pub(crate) fn assemble_mcs(q: &PatternQuery, outcomes: &[PrefixOutcome]) -> PatternQuery {
    let all_edges: Vec<QEid> = outcomes
        .iter()
        .flat_map(|o| o.prefix.iter().copied())
        .collect();
    let mut mcs = q.edge_subquery(&all_edges);
    for o in outcomes {
        // an edgeless but matching seed still belongs to the MCS
        if o.seed_ok && mcs.vertex(o.start).is_none() {
            if let Some(v) = q.vertex(o.start) {
                mcs.restore_vertex(o.start, v.clone());
            }
        }
    }
    mcs
}

/// The DISCOVERMCS algorithm (§4.2.1).
pub struct DiscoverMcs<'g> {
    db: &'g Database,
    config: McsConfig,
    executor: Executor,
}

impl<'g> DiscoverMcs<'g> {
    /// DISCOVERMCS over `db` with default configuration. Sibling traversal
    /// paths are probed in parallel when the environment enables it
    /// ([`whyq_session::ParallelOpts::from_env`]); the explanation is
    /// identical either way.
    pub fn new(db: &'g Database) -> Self {
        DiscoverMcs {
            db,
            config: McsConfig::default(),
            executor: Executor::from_env(),
        }
    }

    /// Override the configuration (path strategy, caps, decomposition).
    pub fn with_config(mut self, config: McsConfig) -> Self {
        self.config = config;
        self
    }

    /// Override the executor used for sibling path probes.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Explain a why-empty query: detect the MCS and the differential graph.
    ///
    /// When the configured [`McsConfig::budget`] trips mid-run the
    /// traversal degrades gracefully: the explanation assembled from the
    /// components finished so far is returned with its
    /// [`termination`](SubgraphExplanation::termination) naming the cause.
    /// `Err` is reserved for real failures (a panicked parallel worker, an
    /// invalid query).
    pub fn run(&self, q: &PatternQuery) -> Result<SubgraphExplanation, WhyqError> {
        self.run_impl(q, None)
    }

    /// Like [`DiscoverMcs::run`], but measuring the MCS cardinality through
    /// a caller-provided session (which must belong to the same database) —
    /// the why-engine reuses its long-lived session this way instead of
    /// opening a throwaway one per explanation.
    pub fn run_with(
        &self,
        q: &PatternQuery,
        session: &Session<'_>,
    ) -> Result<SubgraphExplanation, WhyqError> {
        self.run_impl(q, Some(session))
    }

    fn run_impl(
        &self,
        q: &PatternQuery,
        session: Option<&Session<'_>>,
    ) -> Result<SubgraphExplanation, WhyqError> {
        let g = self.db.graph();
        let stats = Statistics::new(self.db);
        let budget = &self.config.budget;
        let satisfied = |n: usize| n > 0;
        let mut extensions = 0u64;
        let mut paths_tried = 0usize;
        let mut outcomes = Vec::new();
        for component in components_of(q, self.config.decompose) {
            if budget.poll().is_err() {
                break;
            }
            // `incident_edges` yields each edge once per *vertex* it
            // touches (a self-loop included once, not twice); the set
            // dedups the edges shared by two component endpoints so the
            // component edge count stays exact
            let comp_edges: std::collections::BTreeSet<QEid> = component
                .iter()
                .flat_map(|&v| q.incident_edges(v))
                .collect();
            let paths = paths_for(q, &component, &self.config, &stats);
            let outcome = best_prefix(
                g,
                q,
                &paths,
                comp_edges.len(),
                self.config.max_intermediate,
                &satisfied,
                budget,
                &mut extensions,
                &mut paths_tried,
                &self.executor,
            )?;
            outcomes.push(outcome);
        }
        let mcs = assemble_mcs(q, &outcomes);
        let mcs_cardinality = if mcs.num_vertices() == 0 {
            0
        } else {
            // the final count shares the run's budget: a tripped governor
            // yields the partial count enumerated so far instead of an error
            let opts = MatchOptions::counting(Some(self.config.cardinality_limit))
                .with_budget(budget.clone());
            let count = |s: &Session<'_>| Ok::<u64, WhyqError>(s.count_governed(&mcs, opts)?.value);
            match session {
                Some(s) => count(s)?,
                None => count(&self.db.session())?,
            }
        };
        let crossing_edge = outcomes.iter().find_map(|o| o.crossing);
        Ok(SubgraphExplanation {
            differential: DifferentialGraph::between(q, &mcs),
            mcs,
            mcs_cardinality,
            crossing_edge,
            paths_tried,
            extensions,
            termination: budget.termination(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_graph::Value;
    use whyq_query::{Predicate, QueryBuilder};

    /// Data: Anna works at TUD (since 2003), TUD located in Dresden.
    fn data() -> Database {
        let mut g = PropertyGraph::new();
        let anna = g.add_vertex([("type", Value::str("person")), ("name", Value::str("Anna"))]);
        let tud = g.add_vertex([("type", Value::str("university"))]);
        let dresden = g.add_vertex([
            ("type", Value::str("city")),
            ("name", Value::str("Dresden")),
        ]);
        g.add_edge(anna, tud, "workAt", [("sinceYear", Value::Int(2003))]);
        g.add_edge(tud, dresden, "locatedIn", []);
        Database::open(g).expect("open")
    }

    /// Query asking for the university in *Berlin* — fails on the city name.
    fn failing_query() -> PatternQuery {
        QueryBuilder::new("f")
            .vertex("p", [Predicate::eq("type", "person")])
            .vertex("u", [Predicate::eq("type", "university")])
            .vertex(
                "c",
                [
                    Predicate::eq("type", "city"),
                    Predicate::eq("name", "Berlin"),
                ],
            )
            .edge("p", "u", "workAt")
            .edge("u", "c", "locatedIn")
            .build()
    }

    #[test]
    fn finds_mcs_and_differential() {
        let db = data();
        let expl = DiscoverMcs::new(&db).run(&failing_query()).unwrap();
        // MCS: person -workAt-> university (1 edge, 2 vertices)
        assert_eq!(expl.mcs.num_edges(), 1);
        assert_eq!(expl.mcs.num_vertices(), 2);
        assert_eq!(expl.mcs_cardinality, 1);
        // differential: the city vertex and the locatedIn edge
        let failed_vs: Vec<QVid> = expl.differential.vertex_ids().collect();
        let failed_es: Vec<QEid> = expl.differential.edge_ids().collect();
        assert_eq!(failed_vs, vec![QVid(2)]);
        assert_eq!(failed_es, vec![QEid(1)]);
        assert_eq!(expl.crossing_edge, Some(QEid(1)));
        assert!(expl.paths_tried >= 1);
        assert!(expl.extensions >= 2);
    }

    #[test]
    fn succeeding_query_has_empty_differential() {
        let g = data();
        let q = QueryBuilder::new("ok")
            .vertex("p", [Predicate::eq("type", "person")])
            .vertex("u", [Predicate::eq("type", "university")])
            .edge("p", "u", "workAt")
            .build();
        let expl = DiscoverMcs::new(&g).run(&q).unwrap();
        assert!(expl.differential.is_empty());
        assert_eq!(expl.mcs_cardinality, 1);
        assert_eq!(expl.crossing_edge, None);
    }

    #[test]
    fn totally_failing_seed_excludes_component() {
        let g = data();
        let q = QueryBuilder::new("alien")
            .vertex("x", [Predicate::eq("type", "spaceship")])
            .build();
        let expl = DiscoverMcs::new(&g).run(&q).unwrap();
        assert_eq!(expl.mcs.num_vertices(), 0);
        assert_eq!(expl.mcs_cardinality, 0);
        assert_eq!(expl.differential.len(), 1);
    }

    #[test]
    fn single_path_strategy_is_cheaper() {
        let db = data();
        let q = failing_query();
        let exhaustive = DiscoverMcs::new(&db).run(&q).unwrap();
        let single = DiscoverMcs::new(&db)
            .with_config(McsConfig {
                strategy: PathStrategy::SingleSelectivity,
                ..McsConfig::default()
            })
            .run(&q)
            .unwrap();
        assert!(single.paths_tried <= exhaustive.paths_tried);
        assert!(single.extensions <= exhaustive.extensions);
        // on this simple query the approximation is exact
        assert_eq!(single.mcs.num_edges(), exhaustive.mcs.num_edges());
    }

    #[test]
    fn parallel_path_probes_match_serial() {
        use whyq_session::ParallelOpts;
        let db = data();
        let q = failing_query();
        let serial = DiscoverMcs::new(&db)
            .with_executor(Executor::serial())
            .run(&q)
            .unwrap();
        let par = DiscoverMcs::new(&db)
            .with_executor(Executor::new(ParallelOpts::with_threads(4)))
            .run(&q)
            .unwrap();
        assert_eq!(par.mcs.num_edges(), serial.mcs.num_edges());
        assert_eq!(par.mcs.num_vertices(), serial.mcs.num_vertices());
        assert_eq!(par.mcs_cardinality, serial.mcs_cardinality);
        assert_eq!(par.crossing_edge, serial.crossing_edge);
        // the parallel fold replays the serial early-break, so even the
        // reported measurement statistics are machine-independent
        assert_eq!(par.paths_tried, serial.paths_tried);
        assert_eq!(par.extensions, serial.extensions);
    }

    #[test]
    fn elapsed_deadline_degrades_gracefully() {
        use whyq_matcher::{Budget, Termination};
        let db = data();
        let expl = DiscoverMcs::new(&db)
            .with_config(McsConfig {
                budget: Budget::deadline(std::time::Duration::ZERO),
                ..McsConfig::default()
            })
            .run(&failing_query())
            .unwrap();
        // the budget tripped before any component was traversed: the
        // partial explanation is empty but tagged, not an error
        assert_eq!(expl.termination, Termination::DeadlineExceeded);
        assert_eq!(expl.mcs.num_vertices(), 0);
        assert_eq!(expl.extensions, 0);
    }

    #[test]
    fn ungoverned_run_reports_complete() {
        use whyq_matcher::Termination;
        let db = data();
        let expl = DiscoverMcs::new(&db).run(&failing_query()).unwrap();
        assert_eq!(expl.termination, Termination::Complete);
    }

    #[test]
    fn disconnected_query_components_processed_separately() {
        let g = data();
        let q = QueryBuilder::new("two-parts")
            .vertex("p", [Predicate::eq("type", "person")])
            .vertex(
                "c",
                [
                    Predicate::eq("type", "city"),
                    Predicate::eq("name", "Atlantis"),
                ],
            )
            .build();
        let expl = DiscoverMcs::new(&g).run(&q).unwrap();
        // person part matches, Atlantis part fails
        assert!(expl.mcs.vertex(QVid(0)).is_some());
        assert!(expl.mcs.vertex(QVid(1)).is_none());
        assert_eq!(expl.differential.len(), 1);
    }
}
