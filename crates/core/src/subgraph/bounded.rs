//! The BOUNDEDMCS algorithm for why-so-few and why-so-many queries
//! (§4.2.2).
//!
//! BOUNDEDMCS generalizes DISCOVERMCS from "non-empty" to an arbitrary
//! cardinality bound. A traversal path is walked to the end (while the
//! prefix still has *any* matches), the cardinality of every prefix is
//! recorded, and the **bounded MCS** is the longest prefix whose
//! cardinality satisfies the bound; the edge following it is the *crossing
//! edge* where the bound is violated:
//!
//! * **why-so-few** (`AtLeast(t)`): the crossing edge is the constraint
//!   that pushes the count below the threshold — the subgraph to blame for
//!   the missing answers;
//! * **why-so-many** (`AtMost(t)`): the crossing edge is where the
//!   explosion begins (e.g. a high-fan-out traversal). When already every
//!   seed vertex exceeds the bound, the MCS is empty — the query is
//!   under-constrained from the start, which is itself the explanation.
//!
//! Intermediate result sets are capped at `max(max_intermediate, t + 1)`
//! so every bound test below the cap is exact.

use crate::explanation::{DifferentialGraph, SubgraphExplanation};
use crate::grow::{extend_matches, seed_matches};
use crate::problem::CardinalityGoal;
use crate::stats::Statistics;
use crate::subgraph::discover::{assemble_mcs, components_of, paths_for, PrefixOutcome};
use crate::subgraph::traversal::TraversalPath;
use crate::subgraph::McsConfig;
use whyq_matcher::{Budget, MatchOptions};
use whyq_query::PatternQuery;
use whyq_session::{Database, Executor, Session, WhyqError};

/// The BOUNDEDMCS algorithm (§4.2.2).
pub struct BoundedMcs<'g> {
    db: &'g Database,
    config: McsConfig,
    executor: Executor,
}

impl<'g> BoundedMcs<'g> {
    /// BOUNDEDMCS over `db` with default configuration. Sibling traversal
    /// paths are probed in parallel when the environment enables it
    /// ([`whyq_session::ParallelOpts::from_env`]); the explanation is
    /// identical either way.
    pub fn new(db: &'g Database) -> Self {
        BoundedMcs {
            db,
            config: McsConfig::default(),
            executor: Executor::from_env(),
        }
    }

    /// Override the configuration.
    pub fn with_config(mut self, config: McsConfig) -> Self {
        self.config = config;
        self
    }

    /// Override the executor used for sibling path probes.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Walk one path to its end (or until the prefix empties), returning
    /// the per-prefix cardinalities: `counts[0]` is the seed count,
    /// `counts[i]` the count after traversing `i` edges. The budget is
    /// charged before every extension; a trip truncates the walk, leaving
    /// the counts measured so far.
    fn traverse_counts(
        &self,
        q: &PatternQuery,
        path: &TraversalPath,
        cap: usize,
        budget: &Budget,
        extensions: &mut u64,
    ) -> Vec<usize> {
        let g = self.db.graph();
        if budget.poll().is_err() {
            return Vec::new();
        }
        let mut partial = seed_matches(g, q, path.start, cap);
        *extensions += 1;
        let mut counts = vec![partial.len()];
        for &e in &path.edges {
            if partial.is_empty() || budget.charge(partial.len() as u64).is_err() {
                break;
            }
            partial = extend_matches(g, q, &partial, e, cap);
            *extensions += 1;
            counts.push(partial.len());
        }
        counts
    }

    /// Explain a query whose cardinality violates `goal`.
    ///
    /// When the configured [`McsConfig::budget`](crate::subgraph::McsConfig::budget)
    /// trips mid-run the traversal degrades gracefully: the explanation
    /// assembled from the components finished so far is returned with its
    /// [`termination`](SubgraphExplanation::termination) naming the cause.
    /// `Err` is reserved for real failures (a panicked parallel worker, an
    /// invalid query).
    pub fn run(
        &self,
        q: &PatternQuery,
        goal: CardinalityGoal,
    ) -> Result<SubgraphExplanation, WhyqError> {
        self.run_impl(q, goal, None)
    }

    /// Like [`BoundedMcs::run`], but measuring the MCS cardinality through
    /// a caller-provided session (which must belong to the same database) —
    /// the why-engine reuses its long-lived session this way instead of
    /// opening a throwaway one per explanation.
    pub fn run_with(
        &self,
        q: &PatternQuery,
        goal: CardinalityGoal,
        session: &Session<'_>,
    ) -> Result<SubgraphExplanation, WhyqError> {
        self.run_impl(q, goal, Some(session))
    }

    fn run_impl(
        &self,
        q: &PatternQuery,
        goal: CardinalityGoal,
        session: Option<&Session<'_>>,
    ) -> Result<SubgraphExplanation, WhyqError> {
        let stats = Statistics::new(self.db);
        let budget = &self.config.budget;
        let bound_cap = match goal {
            CardinalityGoal::NonEmpty => 1,
            CardinalityGoal::AtLeast(t) | CardinalityGoal::AtMost(t) => t as usize + 1,
            CardinalityGoal::Between(_, hi) => hi as usize + 1,
        };
        let cap = self.config.max_intermediate.max(bound_cap);
        let mut extensions = 0u64;
        let mut paths_tried = 0usize;
        let mut outcomes = Vec::new();

        for component in components_of(q, self.config.decompose) {
            if budget.poll().is_err() {
                break;
            }
            // set-dedup of per-vertex incidence lists: two-endpoint edges
            // arrive twice, self-loops once — the count compares against
            // prefix lengths, so it must be exact (see discover.rs)
            let comp_edge_count = component
                .iter()
                .flat_map(|&v| q.incident_edges(v))
                .collect::<std::collections::BTreeSet<_>>()
                .len();
            let paths = paths_for(q, &component, &self.config, &stats);
            // sibling paths are independent cardinality probes: with a
            // parallel executor all per-prefix counts are measured
            // concurrently up front, and the selection loop below replays
            // them in path order — the bounded MCS it picks is identical
            // to the serial scan's
            let precomputed: Option<Vec<(Vec<usize>, u64)>> =
                if self.executor.is_parallel() && paths.len() > 1 {
                    Some(self.executor.map_batch(&paths, |path| {
                        let mut ext = 0u64;
                        let counts = self.traverse_counts(q, path, cap, budget, &mut ext);
                        (counts, ext)
                    })?)
                } else {
                    None
                };
            let mut best: Option<PrefixOutcome> = None;
            for (pi, path) in paths.iter().enumerate() {
                if precomputed.is_none() && budget.poll().is_err() {
                    break;
                }
                paths_tried += 1;
                let counts = match &precomputed {
                    Some(all) => {
                        extensions += all[pi].1;
                        all[pi].0.clone()
                    }
                    None => self.traverse_counts(q, path, cap, budget, &mut extensions),
                };
                // longest prefix position with a satisfied cardinality;
                // position 0 = seed only, position i = i edges traversed
                let satisfied_len = counts
                    .iter()
                    .enumerate()
                    .rev()
                    .find(|&(_, &c)| goal.satisfied(c as u64))
                    .map_or(-1, |(i, _)| i as i64);
                let outcome = if satisfied_len < 0 {
                    PrefixOutcome {
                        start: path.start,
                        prefix: Vec::new(),
                        crossing: path.edges.first().copied(),
                        seed_ok: false,
                    }
                } else {
                    let n = satisfied_len as usize;
                    PrefixOutcome {
                        start: path.start,
                        prefix: path.edges[..n].to_vec(),
                        crossing: path.edges.get(n).copied(),
                        seed_ok: true,
                    }
                };
                let better = match &best {
                    None => true,
                    Some(b) => {
                        outcome.prefix.len() > b.prefix.len() || (!b.seed_ok && outcome.seed_ok)
                    }
                };
                if better {
                    let complete = outcome.prefix.len() == comp_edge_count;
                    best = Some(outcome);
                    if complete {
                        break;
                    }
                }
            }
            if let Some(b) = best {
                outcomes.push(b);
            }
        }

        let mcs = assemble_mcs(q, &outcomes);
        let mcs_cardinality = if mcs.num_vertices() == 0 {
            0
        } else {
            // the final count shares the run's budget: a tripped governor
            // yields the partial count enumerated so far instead of an error
            let opts = MatchOptions::counting(Some(self.config.cardinality_limit))
                .with_budget(budget.clone());
            let count = |s: &Session<'_>| Ok::<u64, WhyqError>(s.count_governed(&mcs, opts)?.value);
            match session {
                Some(s) => count(s)?,
                None => count(&self.db.session())?,
            }
        };
        let crossing_edge = outcomes.iter().find_map(|o| o.crossing);
        Ok(SubgraphExplanation {
            differential: DifferentialGraph::between(q, &mcs),
            mcs,
            mcs_cardinality,
            crossing_edge,
            paths_tried,
            extensions,
            termination: budget.termination(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_graph::{PropertyGraph, Value};
    use whyq_query::{Predicate, QEid, QVid, QueryBuilder};

    /// Star data: one city with ten inhabitants; only one of them works at
    /// the rare company.
    fn data() -> Database {
        let mut g = PropertyGraph::new();
        let city = g.add_vertex([("type", Value::str("city"))]);
        let rare = g.add_vertex([
            ("type", Value::str("company")),
            ("name", Value::str("RareCo")),
        ]);
        for i in 0..10 {
            let p = g.add_vertex([("type", Value::str("person"))]);
            g.add_edge(p, city, "livesIn", []);
            if i == 0 {
                g.add_edge(p, rare, "worksAt", []);
            }
        }
        Database::open(g).expect("open")
    }

    /// person -livesIn-> city, person -worksAt-> company(RareCo)
    fn star_query() -> PatternQuery {
        QueryBuilder::new("star")
            .vertex("p", [Predicate::eq("type", "person")])
            .vertex("c", [Predicate::eq("type", "city")])
            .vertex(
                "co",
                [
                    Predicate::eq("type", "company"),
                    Predicate::eq("name", "RareCo"),
                ],
            )
            .edge("p", "c", "livesIn")
            .edge("p", "co", "worksAt")
            .build()
    }

    #[test]
    fn why_so_few_blames_the_selective_edge() {
        let db = data();
        let q = star_query();
        // full query delivers 1 answer; the user expected ≥ 5
        let expl = BoundedMcs::new(&db)
            .run(&q, CardinalityGoal::AtLeast(5))
            .unwrap();
        // bounded MCS: person + livesIn + city (10 matches ≥ 5)
        assert_eq!(expl.mcs.num_edges(), 1);
        assert!(expl.mcs.edge(whyq_query::QEid(0)).is_some());
        assert_eq!(expl.mcs_cardinality, 10);
        // crossing edge: the worksAt edge towards the rare company
        assert_eq!(expl.crossing_edge, Some(whyq_query::QEid(1)));
        let failed: Vec<QEid> = expl.differential.edge_ids().collect();
        assert_eq!(failed, vec![whyq_query::QEid(1)]);
    }

    #[test]
    fn why_so_many_finds_explosion_edge() {
        let db = data();
        // city joined with every inhabitant: 10 answers, user wanted ≤ 3
        let q = QueryBuilder::new("many")
            .vertex("c", [Predicate::eq("type", "city")])
            .vertex("p", [Predicate::eq("type", "person")])
            .edge("p", "c", "livesIn")
            .build();
        let expl = BoundedMcs::new(&db)
            .run(&q, CardinalityGoal::AtMost(3))
            .unwrap();
        // the city seed (1 ≤ 3) is fine; adding livesIn explodes to 10
        assert_eq!(expl.mcs.num_edges(), 0);
        assert!(expl.mcs.vertex(QVid(0)).is_some());
        assert_eq!(expl.crossing_edge, Some(whyq_query::QEid(0)));
    }

    #[test]
    fn satisfied_bound_covers_whole_query() {
        let db = data();
        let q = QueryBuilder::new("ok")
            .vertex("c", [Predicate::eq("type", "city")])
            .vertex("p", [Predicate::eq("type", "person")])
            .edge("p", "c", "livesIn")
            .build();
        let expl = BoundedMcs::new(&db)
            .run(&q, CardinalityGoal::AtMost(50))
            .unwrap();
        assert!(expl.differential.is_empty());
        assert_eq!(expl.mcs_cardinality, 10);
    }

    #[test]
    fn bounded_with_nonempty_goal_matches_discover() {
        let db = data();
        let q = QueryBuilder::new("fail")
            .vertex(
                "p",
                [
                    Predicate::eq("type", "person"),
                    Predicate::eq("gender", "unknown"),
                ],
            )
            .vertex("c", [Predicate::eq("type", "city")])
            .edge("p", "c", "livesIn")
            .build();
        let bounded = BoundedMcs::new(&db)
            .run(&q, CardinalityGoal::NonEmpty)
            .unwrap();
        let discover = crate::subgraph::DiscoverMcs::new(&db).run(&q).unwrap();
        assert_eq!(bounded.mcs.num_edges(), discover.mcs.num_edges());
        assert_eq!(bounded.mcs.num_vertices(), discover.mcs.num_vertices());
    }

    #[test]
    fn parallel_path_probes_match_serial() {
        use whyq_session::{Executor, ParallelOpts};
        let db = data();
        let q = star_query();
        for goal in [
            CardinalityGoal::AtLeast(5),
            CardinalityGoal::AtMost(3),
            CardinalityGoal::NonEmpty,
        ] {
            let serial = BoundedMcs::new(&db)
                .with_executor(Executor::serial())
                .run(&q, goal)
                .unwrap();
            let par = BoundedMcs::new(&db)
                .with_executor(Executor::new(ParallelOpts::with_threads(4)))
                .run(&q, goal)
                .unwrap();
            assert_eq!(par.mcs.num_edges(), serial.mcs.num_edges(), "{goal:?}");
            assert_eq!(par.mcs.num_vertices(), serial.mcs.num_vertices());
            assert_eq!(par.mcs_cardinality, serial.mcs_cardinality);
            assert_eq!(par.crossing_edge, serial.crossing_edge);
        }
    }

    #[test]
    fn cancelled_run_returns_tagged_partial() {
        use whyq_matcher::{Budget, CancelToken, Termination};
        let db = data();
        let token = CancelToken::new();
        token.cancel();
        let expl = BoundedMcs::new(&db)
            .with_config(McsConfig {
                budget: Budget::cancelled_by(&token),
                ..McsConfig::default()
            })
            .run(&star_query(), CardinalityGoal::AtLeast(5))
            .unwrap();
        assert_eq!(expl.termination, Termination::Cancelled);
        assert_eq!(expl.mcs.num_vertices(), 0);
    }

    #[test]
    fn hopeless_bound_yields_empty_mcs() {
        let db = data();
        let q = star_query();
        // nothing in this data ever reaches 1000 matches
        let expl = BoundedMcs::new(&db)
            .run(&q, CardinalityGoal::AtLeast(1000))
            .unwrap();
        assert_eq!(expl.mcs.num_vertices(), 0);
        assert_eq!(expl.differential.len(), q.num_vertices() + q.num_edges());
    }
}
