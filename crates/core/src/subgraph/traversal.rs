//! Traversal paths over the query graph (§4.2, §4.3.2, §4.4.2).
//!
//! A traversal path fixes the order in which query edges are evaluated
//! while growing the common subgraph. DISCOVERMCS is exact when it may try
//! *all* connected edge orders (every satisfiable connected subquery is a
//! prefix of some order); the §4.3.2 optimization instead selects a
//! *single* path by a selectivity heuristic, trading exactness for a large
//! cut in traversals. §4.4.2 selects the path by user-preference rank
//! instead, so the elements the user cares about are examined first.

use crate::stats::Statistics;
use crate::user::UserPreferences;
use whyq_query::{PatternQuery, QEid, QVid};

/// One traversal order: a start vertex and a sequence of query edges. Each
/// edge either touches the already-visited subquery or — for unconnected
/// queries (§4.3.3) — starts a new traversal island (a *jump*).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraversalPath {
    /// Seed vertex.
    pub start: QVid,
    /// Edge evaluation order.
    pub edges: Vec<QEid>,
}

/// Strategy for choosing traversal paths.
#[derive(Debug, Clone)]
pub enum PathStrategy {
    /// Try every connected edge order (up to the configured cap) — exact
    /// but exponential in the worst case.
    Exhaustive,
    /// One path chosen greedily by ascending `path(1)` selectivity
    /// (§4.3.2): cheap, approximate.
    SingleSelectivity,
    /// One path chosen by user preference, most interesting elements first
    /// (§4.4.2); selectivity breaks ties.
    UserCentric(UserPreferences),
}

/// Enumerate traversal paths of the subquery induced by `component`,
/// stopping after `max` paths.
pub fn enumerate_paths(q: &PatternQuery, component: &[QVid], max: usize) -> Vec<TraversalPath> {
    let mut out = Vec::new();
    let comp_edges: Vec<QEid> = collect_component_edges(q, component);
    for &start in component {
        if out.len() >= max {
            break;
        }
        let mut visited = vec![start];
        let mut order = Vec::new();
        let mut remaining = comp_edges.clone();
        extend_orders(
            q,
            start,
            &mut visited,
            &mut order,
            &mut remaining,
            &mut out,
            max,
        );
    }
    out
}

/// Edges of the subquery induced by `component`, each exactly once.
/// `incident_edges` reports an edge once per touched vertex (self-loops
/// once), so the sort+dedup collapses the two-endpoint duplicates.
fn collect_component_edges(q: &PatternQuery, component: &[QVid]) -> Vec<QEid> {
    let mut edges: Vec<QEid> = component
        .iter()
        .flat_map(|&v| q.incident_edges(v))
        .collect();
    edges.sort();
    edges.dedup();
    edges
}

#[allow(clippy::too_many_arguments)]
fn extend_orders(
    q: &PatternQuery,
    start: QVid,
    visited: &mut Vec<QVid>,
    order: &mut Vec<QEid>,
    remaining: &mut Vec<QEid>,
    out: &mut Vec<TraversalPath>,
    max: usize,
) {
    if out.len() >= max {
        return;
    }
    if remaining.is_empty() {
        out.push(TraversalPath {
            start,
            edges: order.clone(),
        });
        return;
    }
    // frontier edges touch a visited vertex; if none exist the query is
    // unconnected from here — allow a jump to any remaining edge (§4.3.3)
    let frontier: Vec<QEid> = remaining
        .iter()
        .copied()
        .filter(|&e| {
            let ed = q.edge(e).expect("live");
            visited.contains(&ed.src) || visited.contains(&ed.dst)
        })
        .collect();
    let candidates = if frontier.is_empty() {
        remaining.clone()
    } else {
        frontier
    };
    for e in candidates {
        let pos = remaining.iter().position(|&x| x == e).expect("present");
        remaining.remove(pos);
        order.push(e);
        let ed = q.edge(e).expect("live");
        let mut pushed = Vec::new();
        for v in [ed.src, ed.dst] {
            if !visited.contains(&v) {
                visited.push(v);
                pushed.push(v);
            }
        }
        extend_orders(q, start, visited, order, remaining, out, max);
        for _ in pushed {
            visited.pop();
        }
        order.pop();
        remaining.insert(pos, e);
        if out.len() >= max {
            return;
        }
    }
}

/// Greedy single path: seed at the most selective vertex that still has
/// candidates, then repeatedly take the frontier edge with the smallest
/// *non-zero* `path(1)` cardinality — zero-cardinality (failing) elements
/// are pushed to the end of the path so the succeeding prefix grows as
/// long as possible before the failure is hit.
pub fn selectivity_path(
    q: &PatternQuery,
    component: &[QVid],
    stats: &Statistics<'_>,
) -> TraversalPath {
    let start = selective_start(q, component, stats);
    greedy_path(q, component, start, |e| {
        selectivity_key(stats.edge_card(q, e))
    })
}

/// Greedy single path by *descending* user preference (§4.4.2); the seed
/// is an endpoint of the most interesting edge and the selectivity
/// estimate breaks ties, so uninteresting cheap edges still come before
/// uninteresting expensive ones.
pub fn user_centric_path(
    q: &PatternQuery,
    component: &[QVid],
    prefs: &UserPreferences,
    stats: &Statistics<'_>,
) -> TraversalPath {
    // seed next to the edge the user cares most about (if any stands out)
    let favorite = component
        .iter()
        .flat_map(|&v| q.incident_edges(v))
        .max_by(|&a, &b| {
            prefs
                .edge_weight(a)
                .partial_cmp(&prefs.edge_weight(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.cmp(&a))
        });
    let start = match favorite {
        Some(e) if prefs.edge_weight(e) > crate::user::preferences::NEUTRAL_WEIGHT => {
            let ed = q.edge(e).expect("live");
            if stats.vertex_card(q, ed.src) <= stats.vertex_card(q, ed.dst) {
                ed.src
            } else {
                ed.dst
            }
        }
        _ => selective_start(q, component, stats),
    };
    greedy_path(q, component, start, |e| {
        // lower key = earlier; high preference lowers the key strongly
        let sel = selectivity_key(stats.edge_card(q, e));
        (1.0 - prefs.edge_weight(e)) * 1e12 + sel
    })
}

/// Zero-cardinality elements sort last: they are the failing parts.
fn selectivity_key(card: u64) -> f64 {
    if card == 0 {
        f64::INFINITY
    } else {
        card as f64
    }
}

/// The most selective vertex that still has candidates (fallback: minimum
/// cardinality overall).
fn selective_start(q: &PatternQuery, component: &[QVid], stats: &Statistics<'_>) -> QVid {
    component
        .iter()
        .copied()
        .min_by_key(|&v| {
            let c = stats.vertex_card(q, v);
            (if c == 0 { u64::MAX } else { c }, v)
        })
        .expect("non-empty component")
}

fn greedy_path(
    q: &PatternQuery,
    component: &[QVid],
    start: QVid,
    key: impl Fn(QEid) -> f64,
) -> TraversalPath {
    let mut visited = vec![start];
    let mut remaining = collect_component_edges(q, component);
    let mut order = Vec::new();
    while !remaining.is_empty() {
        let frontier: Vec<QEid> = remaining
            .iter()
            .copied()
            .filter(|&e| {
                let ed = q.edge(e).expect("live");
                visited.contains(&ed.src) || visited.contains(&ed.dst)
            })
            .collect();
        let pool = if frontier.is_empty() {
            remaining.clone()
        } else {
            frontier
        };
        let best = pool
            .into_iter()
            .min_by(|&a, &b| {
                key(a)
                    .partial_cmp(&key(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            })
            .expect("pool non-empty");
        remaining.retain(|&e| e != best);
        let ed = q.edge(best).expect("live");
        for v in [ed.src, ed.dst] {
            if !visited.contains(&v) {
                visited.push(v);
            }
        }
        order.push(best);
    }
    TraversalPath {
        start,
        edges: order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_graph::{PropertyGraph, Value};
    use whyq_query::{Predicate, QueryBuilder};

    fn tri_query() -> PatternQuery {
        QueryBuilder::new("tri")
            .vertex("a", [Predicate::eq("type", "person")])
            .vertex("b", [Predicate::eq("type", "person")])
            .vertex("c", [Predicate::eq("type", "city")])
            .edge("a", "b", "knows")
            .edge("a", "c", "livesIn")
            .edge("b", "c", "livesIn")
            .build()
    }

    #[test]
    fn enumerates_connected_orders() {
        let q = tri_query();
        let comp: Vec<QVid> = q.vertex_ids().collect();
        let paths = enumerate_paths(&q, &comp, 1000);
        // every path covers all three edges
        assert!(paths.iter().all(|p| p.edges.len() == 3));
        // multiple orders and starts exist
        assert!(paths.len() >= 6);
        // connectivity invariant: each prefix touches the visited set
        for p in &paths {
            let mut seen = vec![p.start];
            for &e in &p.edges {
                let ed = q.edge(e).unwrap();
                assert!(seen.contains(&ed.src) || seen.contains(&ed.dst));
                for v in [ed.src, ed.dst] {
                    if !seen.contains(&v) {
                        seen.push(v);
                    }
                }
            }
        }
    }

    #[test]
    fn cap_limits_enumeration() {
        let q = tri_query();
        let comp: Vec<QVid> = q.vertex_ids().collect();
        assert_eq!(enumerate_paths(&q, &comp, 4).len(), 4);
    }

    #[test]
    fn selectivity_path_orders_cheap_edges_first() {
        let mut g = PropertyGraph::new();
        // many knows edges, one livesIn edge → livesIn is more selective
        let city = g.add_vertex([("type", Value::str("city"))]);
        let mut people = Vec::new();
        for _ in 0..6 {
            people.push(g.add_vertex([("type", Value::str("person"))]));
        }
        for w in people.windows(2) {
            g.add_edge(w[0], w[1], "knows", []);
        }
        g.add_edge(people[0], city, "livesIn", []);
        let db = whyq_session::Database::open(g).expect("open");
        let q = tri_query();
        let stats = Statistics::new(&db);
        let comp: Vec<QVid> = q.vertex_ids().collect();
        let p = selectivity_path(&q, &comp, &stats);
        assert_eq!(p.edges.len(), 3);
        // first edge must be one of the livesIn edges (card 1 each)
        let first = q.edge(p.edges[0]).unwrap();
        assert_eq!(first.types, vec!["livesIn".to_string()]);
    }

    #[test]
    fn user_centric_path_honors_preferences() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person"))]);
        let b = g.add_vertex([("type", Value::str("person"))]);
        let c = g.add_vertex([("type", Value::str("city"))]);
        g.add_edge(a, b, "knows", []);
        g.add_edge(a, c, "livesIn", []);
        g.add_edge(b, c, "livesIn", []);
        let db = whyq_session::Database::open(g).expect("open");
        let q = tri_query();
        let stats = Statistics::new(&db);
        let comp: Vec<QVid> = q.vertex_ids().collect();
        let mut prefs = UserPreferences::new();
        prefs.set_edge(QEid(0), 1.0); // the knows edge is most interesting
        let p = user_centric_path(&q, &comp, &prefs, &stats);
        assert_eq!(p.edges[0], QEid(0));
    }

    #[test]
    fn disconnected_queries_jump() {
        let q = QueryBuilder::new("two")
            .vertex("a", [])
            .vertex("b", [])
            .vertex("x", [])
            .vertex("y", [])
            .edge("a", "b", "t")
            .edge("x", "y", "t")
            .build();
        let comp: Vec<QVid> = q.vertex_ids().collect();
        let paths = enumerate_paths(&q, &comp, 10);
        assert!(paths.iter().all(|p| p.edges.len() == 2));
    }
}
