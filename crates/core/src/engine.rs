//! The holistic why-query engine (§3.1.3).
//!
//! `WhyEngine` is the user-facing entry point: given a query and a
//! cardinality goal it measures the result size, classifies the problem
//! (why-empty / why-so-few / why-so-many, Fig. 3.1) and dispatches to the
//! matching explanation generator:
//!
//! | problem      | subgraph-based        | modification-based          |
//! |--------------|-----------------------|-----------------------------|
//! | why-empty    | DISCOVERMCS (§4.2.1)  | coarse rewriting (Ch. 5)    |
//! | why-so-few   | BOUNDEDMCS (§4.2.2)   | TRAVERSESEARCHTREE (Ch. 6)  |
//! | why-so-many  | BOUNDEDMCS (§4.2.2)   | TRAVERSESEARCHTREE (Ch. 6)  |

use crate::explanation::{ModificationExplanation, SubgraphExplanation};
use crate::fine::{FineConfig, TraverseSearchTree};
use crate::problem::{CardinalityGoal, WhyProblem};
use crate::relax::{CoarseRewriter, RelaxConfig};
use crate::subgraph::{BoundedMcs, DiscoverMcs, McsConfig};
use whyq_graph::PropertyGraph;
use whyq_matcher::MatchOptions;
use whyq_query::PatternQuery;
use whyq_session::{Database, Session, WhyqError};

/// A complete diagnosis: classification plus both explanation kinds.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// The classified problem.
    pub problem: WhyProblem,
    /// Measured (capped) cardinality of the original query.
    pub cardinality: u64,
    /// Subgraph-based explanation (absent when the goal is satisfied).
    pub subgraph: Option<SubgraphExplanation>,
    /// Modification-based explanation (absent when the goal is satisfied
    /// or the rewriting budget was exhausted).
    pub rewrite: Option<ModificationExplanation>,
}

/// The why-query engine bound to one [`Database`].
///
/// Every entry point returns `Result<_, WhyqError>`: queries are validated
/// through [`Session::prepare`] before any algorithm runs, and all
/// cardinality measurements flow through the database's shared plan cache
/// — the relax loop's hundreds of sibling candidates pay for compilation
/// once per distinct signature.
///
/// The explanation generators constructed here inherit the
/// environment-configured executor (`WHYQ_THREADS`, else the machine's
/// parallelism — see [`whyq_session::ParallelOpts::from_env`]): the relax
/// loop batches its sibling cardinality probes and the MCS algorithms
/// probe sibling traversal paths concurrently, each against its own
/// session arena. Explanations are identical in serial and parallel mode;
/// construct the generators directly (`with_executor`) to override.
pub struct WhyEngine<'db> {
    db: &'db Database,
    /// Session reused across every cardinality measurement (its scratch
    /// arena is built exactly once; indexes come from the database
    /// configuration instead of a hard-coded attribute).
    session: Session<'db>,
    /// Cap used when measuring cardinalities.
    pub count_cap: u64,
    /// Configuration of the subgraph-based algorithms.
    pub mcs_config: McsConfig,
    /// Configuration of the coarse (why-empty) rewriter.
    pub relax_config: RelaxConfig,
    /// Configuration of the fine (cardinality-driven) rewriter.
    pub fine_config: FineConfig,
}

impl<'db> WhyEngine<'db> {
    /// Engine with default configurations.
    pub fn new(db: &'db Database) -> Self {
        WhyEngine {
            db,
            session: db.session(),
            count_cap: 1_000_000,
            mcs_config: McsConfig::default(),
            relax_config: RelaxConfig::default(),
            fine_config: FineConfig::default(),
        }
    }

    /// The underlying database.
    pub fn database(&self) -> &'db Database {
        self.db
    }

    /// The underlying data graph.
    pub fn graph(&self) -> &'db PropertyGraph {
        self.db.graph()
    }

    /// Measured (capped) cardinality of a query.
    pub fn cardinality(&self, q: &PatternQuery) -> Result<u64, WhyqError> {
        self.session
            .count_opts(q, MatchOptions::counting(Some(self.count_cap)))
    }

    /// Classify the why-problem of `q` under `goal`.
    pub fn classify(
        &self,
        q: &PatternQuery,
        goal: CardinalityGoal,
    ) -> Result<WhyProblem, WhyqError> {
        Ok(goal.classify(self.cardinality(q)?))
    }

    /// Subgraph-based explanation for an empty result (DISCOVERMCS).
    ///
    /// A tripped [`McsConfig::budget`] is not an error: the partial
    /// explanation is returned with a non-`Complete`
    /// [`termination`](SubgraphExplanation::termination).
    pub fn why_empty(&self, q: &PatternQuery) -> Result<SubgraphExplanation, WhyqError> {
        // validate (and warm the plan cache) before the traversal starts
        self.session.prepare(q)?;
        DiscoverMcs::new(self.db)
            .with_config(self.mcs_config.clone())
            .run_with(q, &self.session)
    }

    /// Subgraph-based explanation for any cardinality problem.
    pub fn subgraph_explanation(
        &self,
        q: &PatternQuery,
        goal: CardinalityGoal,
    ) -> Result<SubgraphExplanation, WhyqError> {
        match self.classify(q, goal)? {
            WhyProblem::WhyEmpty => self.why_empty(q),
            _ => BoundedMcs::new(self.db)
                .with_config(self.mcs_config.clone())
                .run_with(q, goal, &self.session),
        }
    }

    /// Modification-based explanation: rewrite `q` so it satisfies `goal`.
    pub fn rewrite(
        &self,
        q: &PatternQuery,
        goal: CardinalityGoal,
    ) -> Result<Option<ModificationExplanation>, WhyqError> {
        Ok(match self.classify(q, goal)? {
            WhyProblem::Satisfied => None,
            WhyProblem::WhyEmpty if matches!(goal, CardinalityGoal::NonEmpty) => {
                CoarseRewriter::new(self.db)
                    .rewrite(q, &self.relax_config)
                    .explanation
            }
            // cardinality-driven problems (including empty results under a
            // threshold goal) go to the fine-grained engine
            _ => {
                TraverseSearchTree::new(self.db)
                    .with_config(self.fine_config.clone())
                    .run(q, goal)
                    .explanation
            }
        })
    }

    /// Full diagnosis: classify, then produce both explanation kinds.
    pub fn diagnose(
        &self,
        q: &PatternQuery,
        goal: CardinalityGoal,
    ) -> Result<Diagnosis, WhyqError> {
        let cardinality = self.cardinality(q)?;
        let problem = goal.classify(cardinality);
        if problem == WhyProblem::Satisfied {
            return Ok(Diagnosis {
                problem,
                cardinality,
                subgraph: None,
                rewrite: None,
            });
        }
        Ok(Diagnosis {
            problem,
            cardinality,
            subgraph: Some(self.subgraph_explanation(q, goal)?),
            rewrite: self.rewrite(q, goal)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_graph::Value;
    use whyq_query::{Predicate, QueryBuilder};

    fn data() -> Database {
        let mut g = PropertyGraph::new();
        let city = g.add_vertex([
            ("type", Value::str("city")),
            ("name", Value::str("Dresden")),
        ]);
        for i in 0..8 {
            let p = g.add_vertex([("type", Value::str("person")), ("age", Value::Int(20 + i))]);
            g.add_edge(p, city, "livesIn", []);
        }
        Database::open(g).expect("open")
    }

    #[test]
    fn diagnose_why_empty() {
        let db = data();
        let engine = WhyEngine::new(&db);
        let q = QueryBuilder::new("berlin")
            .vertex("p", [Predicate::eq("type", "person")])
            .vertex(
                "c",
                [
                    Predicate::eq("type", "city"),
                    Predicate::eq("name", "Berlin"),
                ],
            )
            .edge("p", "c", "livesIn")
            .build();
        let d = engine.diagnose(&q, CardinalityGoal::NonEmpty).unwrap();
        assert_eq!(d.problem, WhyProblem::WhyEmpty);
        assert_eq!(d.cardinality, 0);
        let sub = d.subgraph.expect("subgraph explanation");
        assert!(!sub.differential.is_empty());
        let rw = d.rewrite.expect("rewrite found");
        assert!(rw.cardinality > 0);
    }

    #[test]
    fn diagnose_why_so_many() {
        let db = data();
        let engine = WhyEngine::new(&db);
        let q = QueryBuilder::new("all")
            .vertex("p", [Predicate::eq("type", "person")])
            .vertex("c", [Predicate::eq("type", "city")])
            .edge("p", "c", "livesIn")
            .build();
        let d = engine.diagnose(&q, CardinalityGoal::AtMost(3)).unwrap();
        assert_eq!(d.problem, WhyProblem::WhySoMany);
        assert_eq!(d.cardinality, 8);
        let rw = d.rewrite.expect("rewrite found");
        assert!(rw.cardinality <= 3 && rw.cardinality > 0);
    }

    #[test]
    fn diagnose_why_so_few() {
        let db = data();
        let engine = WhyEngine::new(&db);
        let q = QueryBuilder::new("narrow")
            .vertex(
                "p",
                [
                    Predicate::eq("type", "person"),
                    Predicate::between("age", 20.0, 21.0),
                ],
            )
            .vertex("c", [Predicate::eq("type", "city")])
            .edge("p", "c", "livesIn")
            .build();
        let d = engine.diagnose(&q, CardinalityGoal::AtLeast(5)).unwrap();
        assert_eq!(d.problem, WhyProblem::WhySoFew);
        let rw = d.rewrite.expect("rewrite found");
        assert!(rw.cardinality >= 5);
    }

    #[test]
    fn satisfied_goal_produces_no_explanations() {
        let db = data();
        let engine = WhyEngine::new(&db);
        let q = QueryBuilder::new("ok")
            .vertex("p", [Predicate::eq("type", "person")])
            .build();
        let d = engine.diagnose(&q, CardinalityGoal::NonEmpty).unwrap();
        assert_eq!(d.problem, WhyProblem::Satisfied);
        assert!(d.subgraph.is_none());
        assert!(d.rewrite.is_none());
        assert!(engine
            .rewrite(&q, CardinalityGoal::NonEmpty)
            .unwrap()
            .is_none());
    }

    #[test]
    fn empty_under_threshold_goal_uses_fine_engine() {
        let db = data();
        let engine = WhyEngine::new(&db);
        let q = QueryBuilder::new("none")
            .vertex(
                "p",
                [
                    Predicate::eq("type", "person"),
                    Predicate::between("age", 90.0, 95.0),
                ],
            )
            .vertex("c", [Predicate::eq("type", "city")])
            .edge("p", "c", "livesIn")
            .build();
        let d = engine.diagnose(&q, CardinalityGoal::AtLeast(3)).unwrap();
        assert_eq!(d.problem, WhyProblem::WhyEmpty);
        let rw = d.rewrite.expect("rewrite found");
        assert!(rw.cardinality >= 3);
    }
}
