//! Fine-grained cardinality-driven query modification (Ch. 6).
//!
//! When a cardinality threshold is involved, discarding whole constraints
//! is too blunt: every change must move the result size *toward* the
//! threshold. The TRAVERSESEARCHTREE method constructs a modification tree
//! at runtime (§6.1.3), expands the node with the smallest cardinality
//! deviation first (§6.2.1), generates value-level predicate changes and
//! topology edits (§6.2.2), guarantees change propagation through the
//! operational pipeline (§6.3.1) and discards non-contributing changes and
//! their branches (§6.3.2).

pub mod baselines;
pub mod generate;
pub mod mod_tree;
pub mod ops;

pub use mod_tree::{ModTreeNode, ModificationTree, NodeStatus};

use crate::domains::AttributeDomains;
use crate::explanation::ModificationExplanation;
use crate::fine::generate::fine_candidates;
use crate::fine::ops::{Pipeline, PipelineEvaluator};
use crate::problem::CardinalityGoal;
use std::collections::{BinaryHeap, HashSet};
use whyq_matcher::MatchOptions;
use whyq_metrics::syntactic_distance;
use whyq_query::{signature::signature, GraphMod, PatternQuery, Target};
use whyq_session::{Database, Session};

/// Configuration of the fine-grained rewriter.
#[derive(Debug, Clone)]
pub struct FineConfig {
    /// Budget: maximum number of executed candidate queries.
    pub max_executed: usize,
    /// Allow topology modifications (§6.4.3 ablates this).
    pub allow_topology: bool,
    /// Reuse pipeline prefixes across predicate-level children (§6.3.1).
    pub reuse_prefix: bool,
    /// Cap on children generated per expansion.
    pub max_children: usize,
    /// Cap on counted results / materialized partials.
    pub count_cap: u64,
    /// Cap on distinct values per attribute in the domain catalog.
    pub domain_cap: usize,
}

impl Default for FineConfig {
    fn default() -> Self {
        FineConfig {
            max_executed: 300,
            allow_topology: true,
            reuse_prefix: true,
            max_children: 48,
            count_cap: 50_000,
            domain_cap: 256,
        }
    }
}

/// Outcome of a TRAVERSESEARCHTREE run.
#[derive(Debug, Clone)]
pub struct FineOutcome {
    /// The goal-satisfying explanation, if found within budget.
    pub explanation: Option<ModificationExplanation>,
    /// Executed candidate queries.
    pub executed: usize,
    /// Seed/extension operations performed (work measure, §6.4).
    pub extensions: u64,
    /// The constructed modification tree.
    pub tree: ModificationTree,
    /// Convergence trajectory: `(executed, best deviation so far)`.
    pub trajectory: Vec<(usize, u64)>,
    /// Best deviation reached (0 when a solution was found).
    pub best_deviation: u64,
}

struct FrontierNode {
    deviation: u64,
    depth: usize,
    seq: u64,
    tree_id: usize,
    query: PatternQuery,
    cardinality: u64,
    mods: Vec<GraphMod>,
}

impl PartialEq for FrontierNode {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for FrontierNode {}
impl PartialOrd for FrontierNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FrontierNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: smaller deviation = greater priority
        other
            .deviation
            .cmp(&self.deviation)
            .then(other.depth.cmp(&self.depth))
            .then(other.seq.cmp(&self.seq))
    }
}

/// The TRAVERSESEARCHTREE algorithm (§6.2.1).
pub struct TraverseSearchTree<'g> {
    db: &'g Database,
    session: Session<'g>,
    domains: AttributeDomains,
    config: FineConfig,
}

impl<'g> TraverseSearchTree<'g> {
    /// Rewriter over `db` with default configuration.
    pub fn new(db: &'g Database) -> Self {
        let config = FineConfig::default();
        TraverseSearchTree {
            db,
            session: db.session(),
            domains: AttributeDomains::build(db.graph(), config.domain_cap),
            config,
        }
    }

    /// Override the configuration.
    pub fn with_config(mut self, config: FineConfig) -> Self {
        if config.domain_cap != self.config.domain_cap {
            self.domains = AttributeDomains::build(self.db.graph(), config.domain_cap);
        }
        self.config = config;
        self
    }

    /// The domain catalog (for tests and harnesses).
    pub fn domains(&self) -> &AttributeDomains {
        &self.domains
    }

    /// Modify `q` until its cardinality satisfies `goal`.
    pub fn run(&self, q: &PatternQuery, goal: CardinalityGoal) -> FineOutcome {
        let count = |query: &PatternQuery| {
            self.session
                .count_opts(query, MatchOptions::counting(Some(self.config.count_cap)))
                .expect("fine modification preserves query validity")
        };
        let evaluator = PipelineEvaluator::new(self.db.graph(), self.config.count_cap as usize);
        let mut extensions = 0u64;
        let mut executed = 0usize;
        let mut trajectory = Vec::new();

        let c0 = count(q);
        executed += 1;
        let dev0 = goal.deviation(c0);
        let mut tree = ModificationTree::with_root(c0, dev0);
        let mut best_dev = dev0;
        trajectory.push((executed, best_dev));
        if goal.satisfied(c0) {
            tree.set_status(0, NodeStatus::Solution);
            return FineOutcome {
                explanation: Some(ModificationExplanation {
                    query: q.clone(),
                    mods: Vec::new(),
                    cardinality: c0,
                    syntactic_distance: 0.0,
                }),
                executed,
                extensions,
                tree,
                trajectory,
                best_deviation: 0,
            };
        }

        let mut visited: HashSet<String> = HashSet::new();
        visited.insert(signature(q));
        let mut frontier: BinaryHeap<FrontierNode> = BinaryHeap::new();
        let mut seq = 0u64;
        frontier.push(FrontierNode {
            deviation: dev0,
            depth: 0,
            seq,
            tree_id: 0,
            query: q.clone(),
            cardinality: c0,
            mods: Vec::new(),
        });

        while let Some(node) = frontier.pop() {
            if executed >= self.config.max_executed {
                break;
            }
            tree.set_status(node.tree_id, NodeStatus::Expanded);
            // direction per node — this is the holistic oscillation of
            // Fig. 3.1: a node below the goal relaxes, one above restricts
            let need_more = node.cardinality == 0
                || !matches!(
                    goal.classify(node.cardinality),
                    crate::problem::WhyProblem::WhySoMany
                );

            // change propagation: evaluate the parent pipeline once, then
            // each predicate-level child re-evaluates only its suffix
            let pipeline = if self.config.reuse_prefix && node.query.is_connected() {
                Pipeline::for_query(&node.query)
            } else {
                None
            };
            let parent_states = pipeline
                .as_ref()
                .map(|p| evaluator.eval_full(&node.query, p, &mut extensions));

            let mut candidates = fine_candidates(
                &node.query,
                &self.domains,
                need_more,
                self.config.allow_topology,
            );
            candidates.truncate(self.config.max_children);

            for m in candidates {
                if executed >= self.config.max_executed {
                    break;
                }
                let Ok((child, _)) = m.applied(&node.query) else {
                    continue;
                };
                let sig = signature(&child);
                if !visited.insert(sig) {
                    continue;
                }
                // measure the child's cardinality
                let c = match (&pipeline, &parent_states, changed_target(&m)) {
                    (Some(p), Some(states), Some(target)) if !m.is_topological() => {
                        let from = p.position_of(&child, target);
                        evaluator.eval_suffix(&child, p, states, from, &mut extensions)
                    }
                    _ => count(&child),
                };
                executed += 1;
                let dev = goal.deviation(c);
                let tree_id = tree.add_child(node.tree_id, m.clone(), c, dev);
                if dev < best_dev {
                    best_dev = dev;
                }
                trajectory.push((executed, best_dev));

                if goal.satisfied(c) {
                    tree.set_status(tree_id, NodeStatus::Solution);
                    let mut mods = node.mods.clone();
                    mods.push(m);
                    return FineOutcome {
                        explanation: Some(ModificationExplanation {
                            syntactic_distance: syntactic_distance(q, &child),
                            query: child,
                            mods,
                            cardinality: c,
                        }),
                        executed,
                        extensions,
                        tree,
                        trajectory,
                        best_deviation: 0,
                    };
                }
                // §6.3.2: a change that did not move the cardinality is
                // non-contributing — discard the branch
                if c == node.cardinality {
                    tree.set_status(tree_id, NodeStatus::Discarded);
                    continue;
                }
                let mut mods = node.mods.clone();
                mods.push(m);
                seq += 1;
                frontier.push(FrontierNode {
                    deviation: dev,
                    depth: node.depth + 1,
                    seq,
                    tree_id,
                    query: child,
                    cardinality: c,
                    mods,
                });
            }
        }

        FineOutcome {
            explanation: None,
            executed,
            extensions,
            tree,
            trajectory,
            best_deviation: best_dev,
        }
    }
}

/// The query element a modification touches (None for vertex/edge
/// insertions, which change the topology anyway).
fn changed_target(m: &GraphMod) -> Option<Target> {
    match m {
        GraphMod::RemovePredicate { target, .. }
        | GraphMod::InsertPredicate { target, .. }
        | GraphMod::ReplaceInterval { target, .. } => Some(*target),
        GraphMod::RemoveType { edge, .. }
        | GraphMod::InsertType { edge, .. }
        | GraphMod::RemoveDirection { edge, .. }
        | GraphMod::InsertDirection { edge, .. } => Some(Target::Edge(*edge)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_graph::{PropertyGraph, Value};
    use whyq_query::{Predicate, QueryBuilder};

    /// One city, persons aged 20..=29 living there.
    fn data() -> Database {
        let mut g = PropertyGraph::new();
        let city = g.add_vertex([("type", Value::str("city"))]);
        for i in 0..10 {
            let p = g.add_vertex([("type", Value::str("person")), ("age", Value::Int(20 + i))]);
            g.add_edge(p, city, "livesIn", []);
        }
        Database::open(g).expect("open")
    }

    fn age_query(lo: f64, hi: f64) -> PatternQuery {
        QueryBuilder::new("ages")
            .vertex(
                "p",
                [
                    Predicate::eq("type", "person"),
                    Predicate::between("age", lo, hi),
                ],
            )
            .vertex("c", [Predicate::eq("type", "city")])
            .edge("p", "c", "livesIn")
            .build()
    }

    #[test]
    fn widens_range_to_reach_at_least() {
        let db = data();
        // 3 matches now (ages 24..=26); user wants at least 7
        let q = age_query(24.0, 26.0);
        let out = TraverseSearchTree::new(&db).run(&q, CardinalityGoal::AtLeast(7));
        let expl = out.explanation.expect("found");
        assert!(expl.cardinality >= 7);
        assert!(!expl.mods.is_empty());
        assert!(expl.syntactic_distance > 0.0);
        assert_eq!(out.best_deviation, 0);
    }

    #[test]
    fn narrows_range_to_reach_at_most() {
        let db = data();
        // 10 matches; user wants at most 4
        let q = age_query(18.0, 32.0);
        let out = TraverseSearchTree::new(&db).run(&q, CardinalityGoal::AtMost(4));
        let expl = out.explanation.expect("found");
        assert!(expl.cardinality <= 4 && expl.cardinality > 0);
    }

    #[test]
    fn satisfied_query_returns_immediately() {
        let db = data();
        let q = age_query(20.0, 29.0);
        let out = TraverseSearchTree::new(&db).run(&q, CardinalityGoal::AtLeast(5));
        assert_eq!(out.executed, 1);
        assert!(out.explanation.unwrap().mods.is_empty());
    }

    #[test]
    fn non_contributing_changes_are_discarded() {
        let db = data();
        let q = age_query(24.0, 26.0);
        let out = TraverseSearchTree::new(&db).run(&q, CardinalityGoal::AtLeast(7));
        // some generated changes (e.g. direction flips on livesIn) change
        // nothing — they must be in the tree as Discarded
        assert!(out.tree.count_status(NodeStatus::Discarded) > 0);
    }

    #[test]
    fn prefix_reuse_reduces_extensions() {
        let db = data();
        let q = age_query(24.0, 26.0);
        let goal = CardinalityGoal::AtLeast(7);
        let with = TraverseSearchTree::new(&db)
            .with_config(FineConfig {
                reuse_prefix: true,
                ..FineConfig::default()
            })
            .run(&q, goal);
        let without = TraverseSearchTree::new(&db)
            .with_config(FineConfig {
                reuse_prefix: false,
                ..FineConfig::default()
            })
            .run(&q, goal);
        // both find a solution; the reuse variant does pipeline work, the
        // other delegates to the matcher (extensions == 0)
        assert!(with.explanation.is_some());
        assert!(without.explanation.is_some());
        assert!(with.extensions > 0);
        assert_eq!(without.extensions, 0);
    }

    #[test]
    fn budget_limits_execution() {
        let db = data();
        let q = age_query(24.0, 26.0);
        let out = TraverseSearchTree::new(&db)
            .with_config(FineConfig {
                max_executed: 3,
                ..FineConfig::default()
            })
            .run(&q, CardinalityGoal::AtLeast(1000));
        assert!(out.executed <= 3);
        assert!(out.explanation.is_none());
        assert!(out.best_deviation > 0);
        // trajectory is monotone non-increasing in deviation
        for w in out.trajectory.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
    }

    #[test]
    fn oscillation_converges_to_interval() {
        let db = data();
        // start with 10 answers, goal: between 4 and 6
        let q = age_query(18.0, 32.0);
        let out = TraverseSearchTree::new(&db).run(&q, CardinalityGoal::Between(4, 6));
        let expl = out.explanation.expect("found");
        assert!((4..=6).contains(&expl.cardinality));
    }
}
