//! Baseline approaches for the §6.4.1 comparison.
//!
//! The thesis compares TRAVERSESEARCHTREE against simpler strategies:
//!
//! * [`random_walk`] — apply uniformly random direction-aware
//!   modifications, keeping a change only when it improves the deviation;
//! * [`exhaustive_bfs`] — enumerate the modification lattice breadth-first
//!   without any cardinality guidance (a SEAVE-style level-wise search);
//! * predicate-only search — TRAVERSESEARCHTREE with
//!   [`crate::fine::FineConfig::allow_topology`] `= false` (§6.4.3).

use crate::domains::AttributeDomains;
use crate::explanation::ModificationExplanation;
use crate::fine::generate::fine_candidates;
use crate::problem::CardinalityGoal;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashSet, VecDeque};
use whyq_matcher::{Budget, MatchOptions, Termination};
use whyq_metrics::syntactic_distance;
use whyq_query::{signature::signature, GraphMod, PatternQuery};
use whyq_session::Database;

/// Attempt budget substituted when a baseline's `governor` is unlimited:
/// it bounds the sampling loop of [`random_walk`] (a node whose
/// neighborhood is fully visited would otherwise spin without consuming
/// execution budget) with the same shared [`Budget`] machinery callers use
/// for deadlines and cancellation, instead of an ad-hoc multiple of the
/// execution budget.
pub const DEFAULT_ATTEMPT_BUDGET: u64 = 10_000;

/// Effective governor of a baseline run: the caller's, or — when that one
/// is unlimited — a fresh [`DEFAULT_ATTEMPT_BUDGET`]-step budget.
fn effective_governor(governor: &Budget) -> Budget {
    if governor.is_unlimited() {
        Budget::steps(DEFAULT_ATTEMPT_BUDGET)
    } else {
        governor.clone()
    }
}

/// Outcome of a baseline run (same shape as the §6.4.2 series).
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Goal-satisfying explanation, if found within budget.
    pub explanation: Option<ModificationExplanation>,
    /// Executed candidate queries.
    pub executed: usize,
    /// Convergence trajectory `(executed, best deviation so far)`.
    pub trajectory: Vec<(usize, u64)>,
    /// Best deviation reached.
    pub best_deviation: u64,
    /// How the run ended: [`Termination::Complete`] when the search
    /// finished on its own (explanation found, execution budget or
    /// candidate space exhausted); otherwise the cause the governor
    /// tripped on — [`Termination::BudgetExhausted`] for the implicit
    /// attempt budget of an ungoverned [`random_walk`].
    pub termination: Termination,
}

/// Greedy random walk: sample a random candidate modification of the
/// current query, execute it, move only when the deviation improves.
///
/// `governor` bounds the *sampling attempts* (one step charged per
/// attempt) and carries any deadline or cancellation; pass
/// [`Budget::unlimited`] to get the default attempt budget.
#[allow(clippy::too_many_arguments)]
pub fn random_walk(
    db: &Database,
    q: &PatternQuery,
    goal: CardinalityGoal,
    budget: usize,
    seed: u64,
    domains: &AttributeDomains,
    count_cap: u64,
    governor: &Budget,
) -> BaselineOutcome {
    let governor = effective_governor(governor);
    let session = db.session();
    let count = |query: &PatternQuery| {
        session
            .count_opts(query, MatchOptions::counting(Some(count_cap)))
            .expect("baseline modification preserves query validity")
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut executed = 0usize;
    let mut trajectory = Vec::new();

    let mut current = q.clone();
    let mut current_c = count(&current);
    executed += 1;
    let mut current_mods: Vec<GraphMod> = Vec::new();
    let mut best_dev = goal.deviation(current_c);
    trajectory.push((executed, best_dev));
    if goal.satisfied(current_c) {
        return BaselineOutcome {
            explanation: Some(ModificationExplanation {
                query: current,
                mods: current_mods,
                cardinality: current_c,
                syntactic_distance: 0.0,
            }),
            executed,
            trajectory,
            best_deviation: 0,
            termination: governor.termination(),
        };
    }

    let mut visited: HashSet<String> = HashSet::new();
    visited.insert(signature(&current));

    // the governor bounds the sampling loop (one step per attempt): a node
    // whose neighborhood is fully visited would otherwise spin without
    // consuming execution budget
    while executed < budget {
        if governor.charge(1).is_err() {
            break;
        }
        let need_more = current_c == 0
            || !matches!(
                goal.classify(current_c),
                crate::problem::WhyProblem::WhySoMany
            );
        let candidates = fine_candidates(&current, domains, need_more, true);
        if candidates.is_empty() {
            break;
        }
        let m = &candidates[rng.random_range(0..candidates.len())];
        let Ok((child, _)) = m.applied(&current) else {
            continue;
        };
        let sig = signature(&child);
        if visited.contains(&sig) {
            continue;
        }
        visited.insert(sig);
        let c = count(&child);
        executed += 1;
        let dev = goal.deviation(c);
        if dev < best_dev {
            best_dev = dev;
        }
        trajectory.push((executed, best_dev));
        if goal.satisfied(c) {
            let mut mods = current_mods;
            mods.push(m.clone());
            return BaselineOutcome {
                explanation: Some(ModificationExplanation {
                    syntactic_distance: syntactic_distance(q, &child),
                    query: child,
                    mods,
                    cardinality: c,
                }),
                executed,
                trajectory,
                best_deviation: 0,
                termination: governor.termination(),
            };
        }
        // hill-climb: adopt the child only on improvement
        if dev < goal.deviation(current_c) {
            current = child;
            current_c = c;
            current_mods.push(m.clone());
        }
    }

    BaselineOutcome {
        explanation: None,
        executed,
        trajectory,
        best_deviation: best_dev,
        termination: governor.termination(),
    }
}

/// Breadth-first lattice enumeration without cardinality guidance.
///
/// `governor` carries any deadline or cancellation (one step charged per
/// executed candidate); [`Budget::unlimited`] leaves the run bounded by
/// `budget` alone — unlike [`random_walk`], BFS never spins without
/// executing, so no implicit attempt budget is substituted.
pub fn exhaustive_bfs(
    db: &Database,
    q: &PatternQuery,
    goal: CardinalityGoal,
    budget: usize,
    domains: &AttributeDomains,
    count_cap: u64,
    governor: &Budget,
) -> BaselineOutcome {
    let session = db.session();
    let count = |query: &PatternQuery| {
        session
            .count_opts(query, MatchOptions::counting(Some(count_cap)))
            .expect("baseline modification preserves query validity")
    };
    let mut executed = 0usize;
    let mut trajectory = Vec::new();
    let mut best_dev;

    let c0 = count(q);
    executed += 1;
    best_dev = goal.deviation(c0);
    trajectory.push((executed, best_dev));
    if goal.satisfied(c0) {
        return BaselineOutcome {
            explanation: Some(ModificationExplanation {
                query: q.clone(),
                mods: Vec::new(),
                cardinality: c0,
                syntactic_distance: 0.0,
            }),
            executed,
            trajectory,
            best_deviation: 0,
            termination: governor.termination(),
        };
    }

    let mut visited: HashSet<String> = HashSet::new();
    visited.insert(signature(q));
    let mut queue: VecDeque<(PatternQuery, u64, Vec<GraphMod>)> = VecDeque::new();
    queue.push_back((q.clone(), c0, Vec::new()));

    'outer: while let Some((node, node_c, mods)) = queue.pop_front() {
        if executed >= budget || governor.poll().is_err() {
            break;
        }
        let need_more =
            node_c == 0 || !matches!(goal.classify(node_c), crate::problem::WhyProblem::WhySoMany);
        for m in fine_candidates(&node, domains, need_more, true) {
            if executed >= budget {
                break;
            }
            if governor.charge(1).is_err() {
                break 'outer;
            }
            let Ok((child, _)) = m.applied(&node) else {
                continue;
            };
            let sig = signature(&child);
            if !visited.insert(sig) {
                continue;
            }
            let c = count(&child);
            executed += 1;
            let dev = goal.deviation(c);
            if dev < best_dev {
                best_dev = dev;
            }
            trajectory.push((executed, best_dev));
            if goal.satisfied(c) {
                let mut all_mods = mods.clone();
                all_mods.push(m);
                return BaselineOutcome {
                    explanation: Some(ModificationExplanation {
                        syntactic_distance: syntactic_distance(q, &child),
                        query: child,
                        mods: all_mods,
                        cardinality: c,
                    }),
                    executed,
                    trajectory,
                    best_deviation: 0,
                    termination: governor.termination(),
                };
            }
            let mut all_mods = mods.clone();
            all_mods.push(m);
            queue.push_back((child, c, all_mods));
        }
    }

    BaselineOutcome {
        explanation: None,
        executed,
        trajectory,
        best_deviation: best_dev,
        termination: governor.termination(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_graph::{PropertyGraph, Value};
    use whyq_query::{Predicate, QueryBuilder};

    fn data() -> Database {
        let mut g = PropertyGraph::new();
        let city = g.add_vertex([("type", Value::str("city"))]);
        for i in 0..10 {
            let p = g.add_vertex([("type", Value::str("person")), ("age", Value::Int(20 + i))]);
            g.add_edge(p, city, "livesIn", []);
        }
        Database::open(g).expect("open")
    }

    fn narrow_query() -> PatternQuery {
        QueryBuilder::new("q")
            .vertex(
                "p",
                [
                    Predicate::eq("type", "person"),
                    Predicate::between("age", 24.0, 26.0),
                ],
            )
            .vertex("c", [Predicate::eq("type", "city")])
            .edge("p", "c", "livesIn")
            .build()
    }

    #[test]
    fn random_walk_eventually_finds_solution() {
        let db = data();
        let domains = AttributeDomains::build(db.graph(), 100);
        let out = random_walk(
            &db,
            &narrow_query(),
            CardinalityGoal::AtLeast(7),
            500,
            42,
            &domains,
            10_000,
            &Budget::unlimited(),
        );
        assert!(out.explanation.is_some());
    }

    #[test]
    fn random_walk_is_deterministic_per_seed() {
        let db = data();
        let domains = AttributeDomains::build(db.graph(), 100);
        let a = random_walk(
            &db,
            &narrow_query(),
            CardinalityGoal::AtLeast(7),
            200,
            7,
            &domains,
            10_000,
            &Budget::unlimited(),
        );
        let b = random_walk(
            &db,
            &narrow_query(),
            CardinalityGoal::AtLeast(7),
            200,
            7,
            &domains,
            10_000,
            &Budget::unlimited(),
        );
        assert_eq!(a.executed, b.executed);
        assert_eq!(a.trajectory, b.trajectory);
    }

    #[test]
    fn bfs_finds_solution_with_enough_budget() {
        let db = data();
        let domains = AttributeDomains::build(db.graph(), 100);
        let out = exhaustive_bfs(
            &db,
            &narrow_query(),
            CardinalityGoal::AtLeast(7),
            2000,
            &domains,
            10_000,
            &Budget::unlimited(),
        );
        assert!(out.explanation.is_some());
    }

    #[test]
    fn cancelled_governor_stops_the_walk_tagged() {
        use whyq_matcher::CancelToken;
        let db = data();
        let domains = AttributeDomains::build(db.graph(), 100);
        let token = CancelToken::new();
        token.cancel();
        let out = random_walk(
            &db,
            &narrow_query(),
            CardinalityGoal::AtLeast(7),
            500,
            42,
            &domains,
            10_000,
            &Budget::cancelled_by(&token),
        );
        assert!(out.explanation.is_none());
        // only the original query was measured before the governor tripped
        assert_eq!(out.executed, 1);
        assert_eq!(out.termination, Termination::Cancelled);
    }

    #[test]
    fn trajectories_are_monotone() {
        let db = data();
        let domains = AttributeDomains::build(db.graph(), 100);
        let out = exhaustive_bfs(
            &db,
            &narrow_query(),
            CardinalityGoal::AtLeast(1000),
            50,
            &domains,
            10_000,
            &Budget::unlimited(),
        );
        for w in out.trajectory.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
        assert!(out.explanation.is_none());
    }
}
