//! The modification tree (§6.1.3).
//!
//! Every explored candidate is a tree node: the root is the original query,
//! a child is its parent plus one modification, annotated with the measured
//! cardinality and its deviation from the threshold. The tree records which
//! branches were *discarded* as non-contributing (§6.3.2) — a change that
//! left the cardinality identical cannot move the search toward the goal
//! and its whole branch is cut.

use whyq_query::GraphMod;

/// Lifecycle of a tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// Generated and queued for expansion.
    Open,
    /// Expanded into children.
    Expanded,
    /// Discarded (non-contributing change, §6.3.2).
    Discarded,
    /// Satisfies the cardinality goal.
    Solution,
}

/// One node of the modification tree.
#[derive(Debug, Clone)]
pub struct ModTreeNode {
    /// Node id (index into the tree's arena).
    pub id: usize,
    /// Parent node id (`None` for the root).
    pub parent: Option<usize>,
    /// The modification that produced this node (`None` for the root).
    pub applied: Option<GraphMod>,
    /// Measured (capped) result cardinality.
    pub cardinality: u64,
    /// `|C_thr − C|` deviation from the goal.
    pub deviation: u64,
    /// Tree depth (root = 0).
    pub depth: usize,
    /// Lifecycle status.
    pub status: NodeStatus,
}

/// Arena-backed modification tree.
#[derive(Debug, Clone, Default)]
pub struct ModificationTree {
    nodes: Vec<ModTreeNode>,
}

impl ModificationTree {
    /// Tree with a root for the original query.
    pub fn with_root(cardinality: u64, deviation: u64) -> Self {
        ModificationTree {
            nodes: vec![ModTreeNode {
                id: 0,
                parent: None,
                applied: None,
                cardinality,
                deviation,
                depth: 0,
                status: NodeStatus::Open,
            }],
        }
    }

    /// Add a child node; returns its id.
    pub fn add_child(
        &mut self,
        parent: usize,
        applied: GraphMod,
        cardinality: u64,
        deviation: u64,
    ) -> usize {
        let depth = self.nodes[parent].depth + 1;
        let id = self.nodes.len();
        self.nodes.push(ModTreeNode {
            id,
            parent: Some(parent),
            applied: Some(applied),
            cardinality,
            deviation,
            depth,
            status: NodeStatus::Open,
        });
        id
    }

    /// Update a node's status.
    pub fn set_status(&mut self, id: usize, status: NodeStatus) {
        self.nodes[id].status = status;
    }

    /// Node by id.
    pub fn node(&self, id: usize) -> &ModTreeNode {
        &self.nodes[id]
    }

    /// All nodes in creation order.
    pub fn nodes(&self) -> &[ModTreeNode] {
        &self.nodes
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True only before a root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of nodes with a given status.
    pub fn count_status(&self, status: NodeStatus) -> usize {
        self.nodes.iter().filter(|n| n.status == status).count()
    }

    /// The modification path from the root to `id` (root first).
    pub fn path_to(&self, id: usize) -> Vec<GraphMod> {
        let mut mods = Vec::new();
        let mut cur = Some(id);
        while let Some(i) = cur {
            if let Some(m) = &self.nodes[i].applied {
                mods.push(m.clone());
            }
            cur = self.nodes[i].parent;
        }
        mods.reverse();
        mods
    }

    /// Maximum depth reached.
    pub fn max_depth(&self) -> usize {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_query::{QEid, Target};

    fn sample_mod() -> GraphMod {
        GraphMod::RemovePredicate {
            target: Target::Edge(QEid(0)),
            attr: "x".into(),
        }
    }

    #[test]
    fn tree_construction_and_paths() {
        let mut t = ModificationTree::with_root(0, 10);
        let a = t.add_child(0, sample_mod(), 5, 5);
        let b = t.add_child(a, GraphMod::RemoveEdge(QEid(1)), 10, 0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.node(b).depth, 2);
        assert_eq!(t.path_to(b).len(), 2);
        assert_eq!(t.path_to(0).len(), 0);
        assert_eq!(t.max_depth(), 2);
    }

    #[test]
    fn status_tracking() {
        let mut t = ModificationTree::with_root(0, 10);
        let a = t.add_child(0, sample_mod(), 0, 10);
        t.set_status(a, NodeStatus::Discarded);
        t.set_status(0, NodeStatus::Expanded);
        assert_eq!(t.count_status(NodeStatus::Discarded), 1);
        assert_eq!(t.count_status(NodeStatus::Expanded), 1);
        assert_eq!(t.count_status(NodeStatus::Solution), 0);
    }
}
