//! Fine-grained candidate generation (§6.2.2).
//!
//! Unlike coarse relaxation (whole constraints), fine-grained modification
//! edits predicates on the *value level*: extend a `OneOf` disjunction with
//! a neighboring domain value, widen or shrink a numeric range by a
//! domain-derived step, add or drop individual values, plus the topology
//! operations when enabled. The direction (relax vs concretize) follows the
//! sign of the current cardinality deviation — holistic support in action.

use crate::domains::AttributeDomains;
use whyq_query::{Direction, DirectionSet, GraphMod, Interval, PatternQuery, Predicate, Target};

/// Candidate modifications for a node needing **more** results
/// (relaxations) or **fewer** results (concretizations).
pub fn fine_candidates(
    q: &PatternQuery,
    domains: &AttributeDomains,
    need_more: bool,
    allow_topology: bool,
) -> Vec<GraphMod> {
    if need_more {
        relaxations(q, domains, allow_topology)
    } else {
        concretizations(q, domains, allow_topology)
    }
}

fn relaxations(q: &PatternQuery, domains: &AttributeDomains, topology: bool) -> Vec<GraphMod> {
    let mut out = Vec::new();
    // value-level predicate widening
    for v in q.vertex_ids() {
        for p in &q.vertex(v).expect("live").predicates {
            widen_interval(Target::Vertex(v), p, domains.vertex_attr(&p.attr), &mut out);
        }
    }
    for e in q.edge_ids() {
        let ed = q.edge(e).expect("live");
        for p in &ed.predicates {
            widen_interval(Target::Edge(e), p, domains.edge_attr(&p.attr), &mut out);
        }
        // direction relaxation: forward-only → both
        if ed.directions.len() == 1 {
            let missing = if ed.directions.forward {
                Direction::Backward
            } else {
                Direction::Forward
            };
            out.push(GraphMod::InsertDirection {
                edge: e,
                dir: missing,
            });
        }
        // type relaxation: admit one more existing type
        if let Some(extra) = domains.edge_types().iter().find(|t| !ed.types.contains(t)) {
            if !ed.types.is_empty() {
                out.push(GraphMod::InsertType {
                    edge: e,
                    ty: extra.clone(),
                });
            }
        }
    }
    // whole-constraint discards
    for v in q.vertex_ids() {
        for p in &q.vertex(v).expect("live").predicates {
            out.push(GraphMod::RemovePredicate {
                target: Target::Vertex(v),
                attr: p.attr.clone(),
            });
        }
    }
    for e in q.edge_ids() {
        for p in &q.edge(e).expect("live").predicates {
            out.push(GraphMod::RemovePredicate {
                target: Target::Edge(e),
                attr: p.attr.clone(),
            });
        }
    }
    if topology {
        for e in q.edge_ids() {
            out.push(GraphMod::RemoveEdge(e));
        }
        if q.num_vertices() > 1 {
            for v in q.vertex_ids() {
                out.push(GraphMod::RemoveVertex(v));
            }
        }
    }
    out
}

fn concretizations(q: &PatternQuery, domains: &AttributeDomains, topology: bool) -> Vec<GraphMod> {
    let mut out = Vec::new();
    // value-level predicate narrowing
    for v in q.vertex_ids() {
        for p in &q.vertex(v).expect("live").predicates {
            narrow_interval(Target::Vertex(v), p, &mut out);
        }
    }
    for e in q.edge_ids() {
        let ed = q.edge(e).expect("live");
        for p in &ed.predicates {
            narrow_interval(Target::Edge(e), p, &mut out);
        }
        // direction concretization: both → forward
        if ed.directions == DirectionSet::BOTH {
            out.push(GraphMod::RemoveDirection {
                edge: e,
                dir: Direction::Backward,
            });
        }
        // type concretization: drop one of several admitted types
        if ed.types.len() > 1 {
            out.push(GraphMod::RemoveType {
                edge: e,
                ty: ed.types.last().expect("non-empty").clone(),
            });
        }
    }
    // new predicates on unconstrained attributes (first / median / last
    // domain value per element+attr — distinct selectivities to pick from)
    for v in q.vertex_ids() {
        let vx = q.vertex(v).expect("live");
        for attr in domains.vertex_attr_names() {
            if vx.predicate(attr).is_none() {
                for p in anchor_predicates(attr, domains.vertex_attr(attr)) {
                    out.push(GraphMod::InsertPredicate {
                        target: Target::Vertex(v),
                        predicate: p,
                    });
                }
            }
        }
    }
    if topology {
        // connect currently unconnected vertex pairs with an existing type
        let vids: Vec<_> = q.vertex_ids().collect();
        if let Some(ty) = domains.edge_types().first() {
            for (i, &a) in vids.iter().enumerate() {
                for &b in vids.iter().skip(i + 1) {
                    let connected = q.edge_ids().any(|e| {
                        let ed = q.edge(e).expect("live");
                        ed.touches(a) && ed.touches(b)
                    });
                    if !connected {
                        out.push(GraphMod::InsertEdge {
                            src: a,
                            dst: b,
                            types: vec![ty.clone()],
                            directions: DirectionSet::BOTH,
                            predicates: vec![],
                        });
                    }
                }
            }
        }
    }
    out
}

fn widen_interval(
    target: Target,
    p: &Predicate,
    domain: Option<&crate::domains::AttrDomain>,
    out: &mut Vec<GraphMod>,
) {
    match &p.interval {
        Interval::OneOf(vals) => {
            let Some(domain) = domain else { return };
            // extend with neighbors of each present value
            let mut extended = Vec::new();
            for v in vals {
                for n in domain.neighbors(v) {
                    if !vals.contains(n) && !extended.contains(n) {
                        extended.push(n.clone());
                    }
                }
            }
            for n in extended {
                let mut widened = p.interval.clone();
                widened.add_value(n);
                out.push(GraphMod::ReplaceInterval {
                    target,
                    attr: p.attr.clone(),
                    interval: widened,
                });
            }
        }
        Interval::Range { .. } => {
            let step = domain.map_or(1.0, super::super::domains::AttrDomain::range_step);
            let mut widened = p.interval.clone();
            if widened.widen(step) {
                out.push(GraphMod::ReplaceInterval {
                    target,
                    attr: p.attr.clone(),
                    interval: widened,
                });
            }
        }
    }
}

fn narrow_interval(target: Target, p: &Predicate, out: &mut Vec<GraphMod>) {
    match &p.interval {
        Interval::OneOf(vals) if vals.len() > 1 => {
            // drop each value in turn (deterministic: first and last)
            for v in [vals.first(), vals.last()].into_iter().flatten() {
                let mut narrowed = p.interval.clone();
                narrowed.remove_value(v);
                out.push(GraphMod::ReplaceInterval {
                    target,
                    attr: p.attr.clone(),
                    interval: narrowed,
                });
            }
        }
        Interval::Range { lo, hi, .. } => {
            if let (Some(lo), Some(hi)) = (lo, hi) {
                let step = ((hi - lo) / 4.0).max(0.5);
                let mut narrowed = p.interval.clone();
                if narrowed.shrink(step) {
                    out.push(GraphMod::ReplaceInterval {
                        target,
                        attr: p.attr.clone(),
                        interval: narrowed,
                    });
                }
            }
        }
        _ => {}
    }
}

fn anchor_predicates(attr: &str, domain: Option<&crate::domains::AttrDomain>) -> Vec<Predicate> {
    let Some(domain) = domain else {
        return Vec::new();
    };
    if domain.values.is_empty() {
        return Vec::new();
    }
    let mut picks = vec![
        domain.values[0].clone(),
        domain.values[domain.values.len() / 2].clone(),
        domain.values[domain.values.len() - 1].clone(),
    ];
    picks.dedup();
    let mut out: Vec<Predicate> = picks
        .into_iter()
        .map(|v| Predicate {
            attr: attr.to_string(),
            interval: Interval::OneOf(vec![v]),
        })
        .collect();
    // numeric attributes additionally get tunable half-range predicates —
    // later shrink/widen steps can fine-adjust these toward the threshold
    if let (Some(lo), Some(hi)) = (domain.min, domain.max) {
        if hi > lo {
            let mid = (lo + hi) / 2.0;
            out.push(Predicate {
                attr: attr.to_string(),
                interval: Interval::between(lo, mid),
            });
            out.push(Predicate {
                attr: attr.to_string(),
                interval: Interval::between(mid, hi),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_graph::{PropertyGraph, Value};
    use whyq_query::QueryBuilder;

    fn setup() -> (AttributeDomains, PatternQuery) {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person")), ("age", Value::Int(25))]);
        let b = g.add_vertex([("type", Value::str("person")), ("age", Value::Int(30))]);
        let c = g.add_vertex([("type", Value::str("city"))]);
        g.add_edge(a, b, "knows", [("since", Value::Int(2005))]);
        g.add_edge(a, c, "livesIn", []);
        let q = QueryBuilder::new("q")
            .vertex(
                "p",
                [
                    Predicate::eq("type", "person"),
                    Predicate::between("age", 24.0, 26.0),
                ],
            )
            .vertex("c", [Predicate::eq("type", "city")])
            .edge("p", "c", "livesIn")
            .build();
        (AttributeDomains::build(&g, 100), q)
    }

    #[test]
    fn relaxations_include_value_widening() {
        let (domains, q) = setup();
        let mods = fine_candidates(&q, &domains, true, true);
        // a ReplaceInterval widening the age range must be present
        assert!(mods.iter().any(|m| matches!(
            m,
            GraphMod::ReplaceInterval { attr, .. } if attr == "age"
        )));
        // and a OneOf extension of the type predicate (person → +city)
        assert!(mods.iter().any(|m| matches!(
            m,
            GraphMod::ReplaceInterval { attr, .. } if attr == "type"
        )));
        // topology removals present
        assert!(mods.iter().any(|m| matches!(m, GraphMod::RemoveEdge(_))));
    }

    #[test]
    fn concretizations_include_narrowing_and_new_predicates() {
        let (domains, q) = setup();
        let mods = fine_candidates(&q, &domains, false, true);
        // inserting a predicate on an unconstrained attribute (e.g. age on c)
        assert!(mods
            .iter()
            .any(|m| matches!(m, GraphMod::InsertPredicate { .. })));
        // inserting an edge between unconnected pair is impossible here
        // (only p–c exist and they are connected) — so no InsertEdge
        assert!(!mods
            .iter()
            .any(|m| matches!(m, GraphMod::InsertEdge { .. })));
    }

    #[test]
    fn topology_flag_suppresses_structure_changes() {
        let (domains, q) = setup();
        let mods = fine_candidates(&q, &domains, true, false);
        assert!(!mods.iter().any(whyq_query::GraphMod::is_topological));
    }

    #[test]
    fn all_candidates_apply() {
        let (domains, q) = setup();
        for need_more in [true, false] {
            for m in fine_candidates(&q, &domains, need_more, true) {
                assert!(m.applied(&q).is_ok(), "failed: {m}");
            }
        }
    }

    #[test]
    fn narrowing_one_of_drops_values() {
        let mut q = PatternQuery::new();
        q.add_vertex(whyq_query::QueryVertex::with([Predicate::one_of(
            "type",
            ["a", "b", "c"],
        )]));
        let g = PropertyGraph::new();
        let domains = AttributeDomains::build(&g, 10);
        let mods = fine_candidates(&q, &domains, false, false);
        let narrowed = mods
            .iter()
            .filter(|m| matches!(m, GraphMod::ReplaceInterval { .. }))
            .count();
        assert_eq!(narrowed, 2); // drop first ("a") and last ("c")
    }
}
