//! Operational graph-query representation and change propagation
//! (§6.1.2, §6.3.1).
//!
//! A query is compiled into a *pipeline* of operators: a seed scan followed
//! by one edge-expansion per query edge. Evaluating the pipeline
//! materializes the partial result set behind every operator. When the
//! fine-grained rewriter modifies a predicate on one element, only the
//! pipeline *suffix* starting at that element's operator must be
//! re-evaluated — the prefix states are reused. This is the guaranteed
//! change propagation of §6.3.1: a change at operator *i* re-flows through
//! operators *i..n* and its effect on the final cardinality is always
//! observed.

use crate::grow::{extend_matches, seed_matches};
use whyq_graph::PropertyGraph;
use whyq_matcher::ResultGraph;
use whyq_query::{PatternQuery, QEid, QVid, Target};

/// One pipeline operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineStep {
    /// Scan candidates of the seed vertex.
    Seed(QVid),
    /// Expand / close one query edge.
    Edge(QEid),
}

/// The operator order for one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pipeline {
    /// Steps in evaluation order; `steps[0]` is always a seed.
    pub steps: Vec<PipelineStep>,
}

impl Pipeline {
    /// Deterministic pipeline for a query: seed at the smallest live vertex
    /// id, then BFS over edges (jumping across unconnected parts, §4.3.3).
    pub fn for_query(q: &PatternQuery) -> Option<Pipeline> {
        let start = q.vertex_ids().next()?;
        let mut steps = vec![PipelineStep::Seed(start)];
        let mut bound = vec![start];
        let mut remaining: Vec<QEid> = q.edge_ids().collect();
        while !remaining.is_empty() {
            // prefer edges touching the bound set; otherwise jump
            let pos = remaining
                .iter()
                .position(|&e| {
                    let ed = q.edge(e).expect("live");
                    bound.contains(&ed.src) || bound.contains(&ed.dst)
                })
                .unwrap_or(0);
            let e = remaining.remove(pos);
            let ed = q.edge(e).expect("live");
            for v in [ed.src, ed.dst] {
                if !bound.contains(&v) {
                    bound.push(v);
                }
            }
            steps.push(PipelineStep::Edge(e));
        }
        Some(Pipeline { steps })
    }

    /// The first step index whose evaluation depends on `target` — a
    /// changed predicate on that element invalidates states from here on.
    pub fn position_of(&self, q: &PatternQuery, target: Target) -> usize {
        match target {
            Target::Edge(e) => self
                .steps
                .iter()
                .position(|&s| s == PipelineStep::Edge(e))
                .unwrap_or(0),
            Target::Vertex(v) => {
                // the step that binds v: its seed or the first incident edge
                for (i, &s) in self.steps.iter().enumerate() {
                    match s {
                        PipelineStep::Seed(sv) if sv == v => return i,
                        PipelineStep::Edge(e) if q.edge(e).is_some_and(|ed| ed.touches(v)) => {
                            return i;
                        }
                        _ => {}
                    }
                }
                0
            }
        }
    }
}

/// Pipeline evaluator with state materialization for prefix reuse.
pub struct PipelineEvaluator<'g> {
    g: &'g PropertyGraph,
    /// Cap on materialized partial-result sets (counts saturate here).
    pub cap: usize,
}

impl<'g> PipelineEvaluator<'g> {
    /// Evaluator over `g` with a partial-result cap.
    pub fn new(g: &'g PropertyGraph, cap: usize) -> Self {
        PipelineEvaluator { g, cap }
    }

    /// Evaluate all steps, returning the per-step states; the final state's
    /// length is the (capped) result cardinality. `extensions` counts the
    /// performed seed/extend operations — the work measure of §6.4.
    pub fn eval_full(
        &self,
        q: &PatternQuery,
        pipeline: &Pipeline,
        extensions: &mut u64,
    ) -> Vec<Vec<ResultGraph>> {
        let mut states: Vec<Vec<ResultGraph>> = Vec::with_capacity(pipeline.steps.len());
        for (i, &step) in pipeline.steps.iter().enumerate() {
            let next = self.eval_step(q, step, states.get(i.wrapping_sub(1)), extensions);
            states.push(next);
            if states.last().expect("pushed").is_empty() {
                // short-circuit: remaining steps stay empty
                for _ in i + 1..pipeline.steps.len() {
                    states.push(Vec::new());
                }
                break;
            }
        }
        states
    }

    /// Re-evaluate only the suffix starting at `from`, reusing the parent's
    /// prefix states (change propagation). Returns the (capped) final
    /// cardinality of the modified query.
    pub fn eval_suffix(
        &self,
        q: &PatternQuery,
        pipeline: &Pipeline,
        prefix_states: &[Vec<ResultGraph>],
        from: usize,
        extensions: &mut u64,
    ) -> u64 {
        let mut current: Option<Vec<ResultGraph>> = None;
        for (i, &step) in pipeline.steps.iter().enumerate().skip(from) {
            let input = match (&current, i) {
                (Some(c), _) => Some(c),
                (None, 0) => None,
                (None, _) => prefix_states.get(i - 1),
            };
            let next = self.eval_step(q, step, input, extensions);
            if next.is_empty() {
                return 0;
            }
            current = Some(next);
        }
        match current {
            Some(c) => c.len() as u64,
            // from beyond the end: cardinality unchanged from prefix
            None => prefix_states.last().map_or(0, |s| s.len() as u64),
        }
    }

    fn eval_step(
        &self,
        q: &PatternQuery,
        step: PipelineStep,
        input: Option<&Vec<ResultGraph>>,
        extensions: &mut u64,
    ) -> Vec<ResultGraph> {
        *extensions += 1;
        match step {
            PipelineStep::Seed(v) => seed_matches(self.g, q, v, self.cap),
            PipelineStep::Edge(e) => {
                let empty = Vec::new();
                let partial = input.unwrap_or(&empty);
                extend_matches(self.g, q, partial, e, self.cap)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_graph::Value;
    use whyq_matcher::{MatchOptions, Matcher};
    use whyq_query::{GraphMod, Interval, Predicate, QueryBuilder};

    fn data() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let city = g.add_vertex([("type", Value::str("city"))]);
        for i in 0..5 {
            let p = g.add_vertex([("type", Value::str("person")), ("age", Value::Int(20 + i))]);
            g.add_edge(p, city, "livesIn", []);
        }
        g
    }

    fn query() -> PatternQuery {
        QueryBuilder::new("q")
            .vertex(
                "p",
                [
                    Predicate::eq("type", "person"),
                    Predicate::between("age", 21.0, 23.0),
                ],
            )
            .vertex("c", [Predicate::eq("type", "city")])
            .edge("p", "c", "livesIn")
            .build()
    }

    #[test]
    fn full_eval_matches_matcher() {
        let g = data();
        let q = query();
        let pipeline = Pipeline::for_query(&q).unwrap();
        let ev = PipelineEvaluator::new(&g, 100_000);
        let mut ext = 0;
        let states = ev.eval_full(&q, &pipeline, &mut ext);
        assert_eq!(
            states.last().unwrap().len() as u64,
            Matcher::new(&g).count(&q, MatchOptions::default())
        );
        assert_eq!(ext, pipeline.steps.len() as u64);
    }

    #[test]
    fn suffix_eval_propagates_predicate_change() {
        let g = data();
        let q = query();
        let pipeline = Pipeline::for_query(&q).unwrap();
        let ev = PipelineEvaluator::new(&g, 100_000);
        let mut ext = 0;
        let states = ev.eval_full(&q, &pipeline, &mut ext);

        // widen the age interval — touches the seed vertex (position 0)
        let m = GraphMod::ReplaceInterval {
            target: Target::Vertex(whyq_query::QVid(0)),
            attr: "age".into(),
            interval: Interval::between(20.0, 24.0),
        };
        let (child, _) = m.applied(&q).unwrap();
        let pos = pipeline.position_of(&child, Target::Vertex(whyq_query::QVid(0)));
        let mut ext2 = 0;
        let c = ev.eval_suffix(&child, &pipeline, &states, pos, &mut ext2);
        assert_eq!(c, Matcher::new(&g).count(&child, MatchOptions::default()));
        assert_eq!(c, 5);
    }

    #[test]
    fn suffix_reuse_is_cheaper_for_late_changes() {
        let g = data();
        // three-step query: p -livesIn-> c, with an edge predicate we change
        let q = QueryBuilder::new("q")
            .vertex("p", [Predicate::eq("type", "person")])
            .vertex("c", [Predicate::eq("type", "city")])
            .edge("p", "c", "livesIn")
            .build();
        let pipeline = Pipeline::for_query(&q).unwrap();
        let ev = PipelineEvaluator::new(&g, 100_000);
        let mut ext = 0;
        let states = ev.eval_full(&q, &pipeline, &mut ext);
        // change on the edge (last step) → only 1 re-evaluated step
        let pos = pipeline.position_of(&q, Target::Edge(whyq_query::QEid(0)));
        let mut ext2 = 0;
        let _ = ev.eval_suffix(&q, &pipeline, &states, pos, &mut ext2);
        assert!(ext2 < ext);
        assert_eq!(ext2, 1);
    }

    #[test]
    fn position_of_vertex_is_binding_step() {
        let q = query();
        let pipeline = Pipeline::for_query(&q).unwrap();
        // seed is vertex 0 (p); c is bound by the edge step
        assert_eq!(
            pipeline.position_of(&q, Target::Vertex(whyq_query::QVid(0))),
            0
        );
        assert_eq!(
            pipeline.position_of(&q, Target::Vertex(whyq_query::QVid(1))),
            1
        );
        assert_eq!(
            pipeline.position_of(&q, Target::Edge(whyq_query::QEid(0))),
            1
        );
    }

    #[test]
    fn empty_prefix_short_circuits() {
        let g = data();
        let q = QueryBuilder::new("none")
            .vertex("x", [Predicate::eq("type", "spaceship")])
            .vertex("c", [Predicate::eq("type", "city")])
            .edge("x", "c", "livesIn")
            .build();
        let pipeline = Pipeline::for_query(&q).unwrap();
        let ev = PipelineEvaluator::new(&g, 1000);
        let mut ext = 0;
        let states = ev.eval_full(&q, &pipeline, &mut ext);
        assert!(states.iter().all(Vec::is_empty));
        // short-circuit: only the seed was actually evaluated
        assert_eq!(ext, 1);
    }
}
