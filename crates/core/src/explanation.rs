//! Explanation types delivered to the user.

use whyq_matcher::Termination;
use whyq_query::{GraphMod, PatternQuery, QEid, QVid};

/// The failed query part: elements of the original query **not** contained
/// in the maximum common (connected) subgraph (§4.1.2, §4.2.3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DifferentialGraph {
    vertices: Vec<QVid>,
    edges: Vec<QEid>,
}

impl DifferentialGraph {
    /// Differential between an original query and a subquery of it: all
    /// elements live in `original` but absent from `subquery`.
    pub fn between(original: &PatternQuery, subquery: &PatternQuery) -> Self {
        let vertices = original
            .vertex_ids()
            .filter(|&v| subquery.vertex(v).is_none())
            .collect();
        let edges = original
            .edge_ids()
            .filter(|&e| subquery.edge(e).is_none())
            .collect();
        DifferentialGraph { vertices, edges }
    }

    /// Query vertices in the failed part.
    pub fn vertex_ids(&self) -> impl Iterator<Item = QVid> + '_ {
        self.vertices.iter().copied()
    }

    /// Query edges in the failed part.
    pub fn edge_ids(&self) -> impl Iterator<Item = QEid> + '_ {
        self.edges.iter().copied()
    }

    /// True when the whole query succeeded (nothing failed).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty() && self.edges.is_empty()
    }

    /// Number of failed elements.
    pub fn len(&self) -> usize {
        self.vertices.len() + self.edges.len()
    }

    /// Materialize the failed part as a query graph (with original ids).
    pub fn subquery(&self, original: &PatternQuery) -> PatternQuery {
        let mut q = original.induced_subquery(&self.vertices);
        // also keep failed edges whose endpoints survived in the MCS
        for &e in &self.edges {
            if q.edge(e).is_none() {
                if let Some(ed) = original.edge(e) {
                    if q.vertex(ed.src).is_none() {
                        if let Some(v) = original.vertex(ed.src) {
                            q.restore_vertex(ed.src, v.clone());
                        }
                    }
                    if q.vertex(ed.dst).is_none() {
                        if let Some(v) = original.vertex(ed.dst) {
                            q.restore_vertex(ed.dst, v.clone());
                        }
                    }
                    q.restore_edge(e, ed.clone());
                }
            }
        }
        q
    }
}

impl std::fmt::Display for DifferentialGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "∅ (query succeeded)");
        }
        let vs: Vec<String> = self
            .vertices
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let es: Vec<String> = self
            .edges
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        write!(
            f,
            "failed vertices: [{}], failed edges: [{}]",
            vs.join(", "),
            es.join(", ")
        )
    }
}

/// A subgraph-based explanation (Ch. 4): the maximal succeeding subquery
/// and the differential (failed) part.
#[derive(Debug, Clone)]
pub struct SubgraphExplanation {
    /// The maximum common connected subgraph between query and data — the
    /// largest subquery still satisfying the cardinality bound.
    pub mcs: PatternQuery,
    /// Result cardinality of the MCS.
    pub mcs_cardinality: u64,
    /// The failed query part (`Q ∖ MCS`).
    pub differential: DifferentialGraph,
    /// The query edge whose addition violated the bound, if the traversal
    /// identified one.
    pub crossing_edge: Option<QEid>,
    /// Number of traversal paths explored.
    pub paths_tried: usize,
    /// Number of edge-extension operations performed (work measure used by
    /// the §4.5 evaluation).
    pub extensions: u64,
    /// How the run ended. [`Termination::Complete`] means the traversal
    /// finished on its own; any other variant marks a *degraded* answer —
    /// the budget in [`crate::subgraph::McsConfig`] tripped and the MCS
    /// reflects only the components traversed (and the cardinality counted)
    /// up to that point.
    pub termination: Termination,
}

/// A modification-based explanation (Ch. 5/6): a rewritten query together
/// with the modifications that produced it.
#[derive(Debug, Clone)]
pub struct ModificationExplanation {
    /// The rewritten query.
    pub query: PatternQuery,
    /// The modification sequence applied to the original query.
    pub mods: Vec<GraphMod>,
    /// Result cardinality of the rewritten query.
    pub cardinality: u64,
    /// Syntactic distance to the original query (§3.2.2).
    pub syntactic_distance: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_query::{Predicate, QueryBuilder};

    fn q3() -> PatternQuery {
        QueryBuilder::new("q")
            .vertex("a", [Predicate::eq("type", "person")])
            .vertex("b", [Predicate::eq("type", "person")])
            .vertex("c", [Predicate::eq("type", "city")])
            .edge("a", "b", "knows")
            .edge("b", "c", "livesIn")
            .build()
    }

    #[test]
    fn differential_between_query_and_subquery() {
        let q = q3();
        let sub = q.induced_subquery(&[QVid(0), QVid(1)]);
        let diff = DifferentialGraph::between(&q, &sub);
        assert_eq!(diff.vertex_ids().collect::<Vec<_>>(), vec![QVid(2)]);
        assert_eq!(diff.edge_ids().collect::<Vec<_>>(), vec![QEid(1)]);
        assert_eq!(diff.len(), 2);
        assert!(!diff.is_empty());
    }

    #[test]
    fn differential_of_identical_queries_is_empty() {
        let q = q3();
        let diff = DifferentialGraph::between(&q, &q);
        assert!(diff.is_empty());
        assert_eq!(diff.to_string(), "∅ (query succeeded)");
    }

    #[test]
    fn differential_subquery_materializes_failed_part() {
        let q = q3();
        let sub = q.induced_subquery(&[QVid(0), QVid(1)]);
        let diff = DifferentialGraph::between(&q, &sub);
        let failed = diff.subquery(&q);
        // failed part: vertex c plus edge b->c (with endpoint b restored)
        assert!(failed.vertex(QVid(2)).is_some());
        assert!(failed.edge(QEid(1)).is_some());
        assert!(failed.vertex(QVid(1)).is_some());
        assert!(failed.edge(QEid(0)).is_none());
    }

    #[test]
    fn display_lists_elements() {
        let q = q3();
        let sub = q.induced_subquery(&[QVid(0), QVid(1)]);
        let diff = DifferentialGraph::between(&q, &sub);
        let s = diff.to_string();
        assert!(s.contains("v3"));
        assert!(s.contains("e2"));
    }
}
