//! A deterministic simulated user for reproducible experiments.
//!
//! The thesis evaluates user integration with users who rate delivered
//! explanations (§5.5.4, App. B.1). The paper's users are human; for a
//! reproducible benchmark we substitute a simulated user holding *hidden*
//! protection weights: elements the user silently considers essential.
//! An explanation that modifies protected elements receives a low rating;
//! one that only touches irrelevant elements receives a high rating. The
//! rewriting engine never sees the hidden weights — only the ratings —
//! exactly matching the paper's non-intrusive integration model.

use crate::user::preferences::UserPreferences;
use whyq_query::{PatternQuery, QEid, QVid, Target};

/// A user with hidden per-element protection weights.
#[derive(Debug, Clone, Default)]
pub struct SimulatedUser {
    hidden: UserPreferences,
}

impl SimulatedUser {
    /// User with the given hidden protection weights (1.0 = must not be
    /// modified, 0.0 = free to modify).
    pub fn new(hidden: UserPreferences) -> Self {
        SimulatedUser { hidden }
    }

    /// The hidden model (test/benchmark introspection only).
    pub fn hidden(&self) -> &UserPreferences {
        &self.hidden
    }

    /// Elements of `original` that `explanation` modified or removed.
    pub fn changed_elements(original: &PatternQuery, explanation: &PatternQuery) -> Vec<Target> {
        let mut out = Vec::new();
        for v in original.vertex_ids() {
            let changed = match explanation.vertex(v) {
                None => true,
                Some(ex) => original.vertex(v).expect("live") != ex,
            };
            if changed {
                out.push(Target::Vertex(v));
            }
        }
        for e in original.edge_ids() {
            let changed = match explanation.edge(e) {
                None => true,
                Some(ex) => original.edge(e).expect("live") != ex,
            };
            if changed {
                out.push(Target::Edge(e));
            }
        }
        out
    }

    /// Rate an explanation in `[0, 1]`: `1 − mean(protection of changed
    /// elements)`, where elements the user never rated count as freely
    /// modifiable (protection 0). An explanation that changes nothing
    /// rates 1.0.
    pub fn rate(&self, original: &PatternQuery, explanation: &PatternQuery) -> f64 {
        let changed = Self::changed_elements(original, explanation);
        if changed.is_empty() {
            return 1.0;
        }
        let penalty: f64 = changed
            .iter()
            .map(|&t| self.hidden.weight_or(t, 0.0))
            .sum::<f64>()
            / changed.len() as f64;
        1.0 - penalty
    }

    /// Convenience: protect the given edges fully, leave the rest free.
    pub fn protecting_edges(edges: &[QEid]) -> Self {
        let mut prefs = UserPreferences::new();
        for &e in edges {
            prefs.set_edge(e, 1.0);
        }
        SimulatedUser { hidden: prefs }
    }

    /// Convenience: protect the given vertices fully, leave the rest free.
    pub fn protecting_vertices(vertices: &[QVid]) -> Self {
        let mut prefs = UserPreferences::new();
        for &v in vertices {
            prefs.set_vertex(v, 1.0);
        }
        SimulatedUser { hidden: prefs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_query::{GraphMod, Predicate, QueryBuilder};

    fn q() -> PatternQuery {
        QueryBuilder::new("q")
            .vertex("a", [Predicate::eq("type", "person")])
            .vertex("b", [Predicate::eq("type", "city")])
            .edge("a", "b", "livesIn")
            .build()
    }

    #[test]
    fn unchanged_explanation_rates_one() {
        let u = SimulatedUser::protecting_edges(&[QEid(0)]);
        assert_eq!(u.rate(&q(), &q()), 1.0);
    }

    #[test]
    fn modifying_protected_edge_rates_zero() {
        let u = SimulatedUser::protecting_edges(&[QEid(0)]);
        let mut modified = q();
        GraphMod::RemoveEdge(QEid(0)).apply(&mut modified).unwrap();
        assert_eq!(u.rate(&q(), &modified), 0.0);
    }

    #[test]
    fn modifying_free_element_rates_high() {
        let mut prefs = UserPreferences::new();
        prefs.set_vertex(QVid(0), 0.0); // vertex a free to modify
        let u = SimulatedUser::new(prefs);
        let mut modified = q();
        GraphMod::RemovePredicate {
            target: Target::Vertex(QVid(0)),
            attr: "type".into(),
        }
        .apply(&mut modified)
        .unwrap();
        assert_eq!(u.rate(&q(), &modified), 1.0);
    }

    #[test]
    fn changed_elements_detects_predicate_edits() {
        let mut modified = q();
        GraphMod::RemovePredicate {
            target: Target::Vertex(QVid(1)),
            attr: "type".into(),
        }
        .apply(&mut modified)
        .unwrap();
        let changed = SimulatedUser::changed_elements(&q(), &modified);
        assert_eq!(changed, vec![Target::Vertex(QVid(1))]);
    }

    #[test]
    fn removed_vertex_marks_vertex_and_edges() {
        let mut modified = q();
        GraphMod::RemoveVertex(QVid(1))
            .apply(&mut modified)
            .unwrap();
        let changed = SimulatedUser::changed_elements(&q(), &modified);
        assert!(changed.contains(&Target::Vertex(QVid(1))));
        assert!(changed.contains(&Target::Edge(QEid(0))));
    }
}
