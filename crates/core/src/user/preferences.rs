//! User preference weights over query elements (§4.4.1).
//!
//! A weight in `[0, 1]` per query vertex/edge expresses the user's interest
//! in having that element *examined first* during subgraph-explanation
//! traversal (high interest → traverse early, §4.4.2) and, during
//! rewriting, the tolerance for *modifying* it (§5.4). Unweighted elements
//! default to a neutral 0.5.

use std::collections::HashMap;
use whyq_query::{QEid, QVid, Target};

/// Neutral weight of elements the user never rated.
pub const NEUTRAL_WEIGHT: f64 = 0.5;

/// Preference weights over query elements.
#[derive(Debug, Clone, Default)]
pub struct UserPreferences {
    weights: HashMap<Target, f64>,
}

impl UserPreferences {
    /// No expressed preferences (all neutral).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the weight of a query vertex (clamped to `[0, 1]`).
    pub fn set_vertex(&mut self, v: QVid, w: f64) -> &mut Self {
        self.weights.insert(Target::Vertex(v), w.clamp(0.0, 1.0));
        self
    }

    /// Set the weight of a query edge (clamped to `[0, 1]`).
    pub fn set_edge(&mut self, e: QEid, w: f64) -> &mut Self {
        self.weights.insert(Target::Edge(e), w.clamp(0.0, 1.0));
        self
    }

    /// Weight of an element (neutral when unrated).
    pub fn weight(&self, t: Target) -> f64 {
        self.weights.get(&t).copied().unwrap_or(NEUTRAL_WEIGHT)
    }

    /// Weight of an element with a custom default for unrated ones.
    pub fn weight_or(&self, t: Target, default: f64) -> f64 {
        self.weights.get(&t).copied().unwrap_or(default)
    }

    /// Weight of a query edge.
    pub fn edge_weight(&self, e: QEid) -> f64 {
        self.weight(Target::Edge(e))
    }

    /// Weight of a query vertex.
    pub fn vertex_weight(&self, v: QVid) -> f64 {
        self.weight(Target::Vertex(v))
    }

    /// Number of explicitly rated elements.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when the user expressed no preference at all.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Rank of a traversal path (§4.4.3): positionally discounted sum of
    /// edge weights, normalized to `[0, 1]` — elements the user cares about
    /// contribute more when traversed earlier.
    pub fn path_rank(&self, edges: &[QEid]) -> f64 {
        if edges.is_empty() {
            return NEUTRAL_WEIGHT;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &e) in edges.iter().enumerate() {
            let discount = 1.0 / (i as f64 + 1.0);
            num += self.edge_weight(e) * discount;
            den += discount;
        }
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_neutral() {
        let p = UserPreferences::new();
        assert_eq!(p.edge_weight(QEid(3)), NEUTRAL_WEIGHT);
        assert_eq!(p.vertex_weight(QVid(3)), NEUTRAL_WEIGHT);
        assert!(p.is_empty());
    }

    #[test]
    fn weights_clamped() {
        let mut p = UserPreferences::new();
        p.set_edge(QEid(0), 2.5);
        p.set_vertex(QVid(0), -1.0);
        assert_eq!(p.edge_weight(QEid(0)), 1.0);
        assert_eq!(p.vertex_weight(QVid(0)), 0.0);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn path_rank_prefers_interesting_first() {
        let mut p = UserPreferences::new();
        p.set_edge(QEid(0), 1.0);
        p.set_edge(QEid(1), 0.0);
        let interesting_first = p.path_rank(&[QEid(0), QEid(1)]);
        let interesting_last = p.path_rank(&[QEid(1), QEid(0)]);
        assert!(interesting_first > interesting_last);
        // empty path is neutral
        assert_eq!(p.path_rank(&[]), NEUTRAL_WEIGHT);
    }

    #[test]
    fn path_rank_bounds() {
        let mut p = UserPreferences::new();
        p.set_edge(QEid(0), 1.0);
        p.set_edge(QEid(1), 1.0);
        assert!((p.path_rank(&[QEid(0), QEid(1)]) - 1.0).abs() < 1e-12);
    }
}
