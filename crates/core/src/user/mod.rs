//! Non-intrusive user integration (§3.1.6, §4.4, §5.4).
//!
//! The thesis integrates users without asking them to steer every decision:
//! a preference weight per query element expresses how *interesting* an
//! element is for the explanation ([`UserPreferences`]); the traversal-path
//! selection consumes the weights (§4.4.2) and the rewriting engines learn
//! a preference model from ratings of delivered explanations (§5.4).
//!
//! For reproducible experiments a [`SimulatedUser`] with hidden preferences
//! rates explanations deterministically.

pub mod preferences;
pub mod simulated;

pub use preferences::UserPreferences;
pub use simulated::SimulatedUser;
